//! Streaming (single-pass) summary statistics.

use serde::{Deserialize, Serialize};

/// Welford-style streaming mean/variance/min/max accumulator.
///
/// Numerically stable for long runs (hundreds of thousands of packet
/// latencies), O(1) per sample, no allocation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Streaming {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Streaming {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of samples pushed so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance, or `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample standard deviation, or `None` with fewer than two samples.
    pub fn stddev(&self) -> Option<f64> {
        (self.count > 1).then(|| (self.m2 / (self.count - 1) as f64).sqrt())
    }

    /// Smallest sample seen, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample seen, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel-sweep reduction).
    pub fn merge(&mut self, other: &Streaming) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reset to the empty state (used at the warmup→measurement boundary).
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Fold the full accumulator state into `d` (determinism fingerprints).
    pub fn digest_into(&self, d: &mut crate::Digest) {
        d.write_u64(self.count);
        d.write_f64(self.mean);
        d.write_f64(self.m2);
        d.write_f64(self.min);
        d.write_f64(self.max);
        d.write_f64(self.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_mean() {
        let s = Streaming::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert!(s.variance().is_none());
        assert!(s.stddev().is_none());
    }

    #[test]
    fn mean_min_max_of_known_sequence() {
        let mut s = Streaming::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert_eq!(s.min().unwrap(), 2.0);
        assert_eq!(s.max().unwrap(), 9.0);
        // Population variance of this classic sequence is 4.
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let mut all = Streaming::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Streaming::new();
        let mut b = Streaming::new();
        for &x in &xs[..317] {
            a.push(x);
        }
        for &x in &xs[317..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean().unwrap() - all.mean().unwrap()).abs() < 1e-9);
        assert!((a.variance().unwrap() - all.variance().unwrap()).abs() < 1e-6);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Streaming::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean().unwrap();
        a.merge(&Streaming::new());
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean().unwrap(), before);

        let mut e = Streaming::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean().unwrap(), before);
    }

    #[test]
    fn reset_empties() {
        let mut s = Streaming::new();
        s.push(42.0);
        s.reset();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_none());
    }

    #[test]
    fn single_sample_stddev_none() {
        let mut s = Streaming::new();
        s.push(7.0);
        assert!(s.stddev().is_none());
        assert_eq!(s.variance(), Some(0.0));
    }
}
