//! Oracle verification matrix: run the real (unmutated) kernel across the
//! scheme × routing × load grid with every invariant checker force-enabled
//! and report the violation count per cell — the "prove the simulator
//! clean" companion to the fault-injection differential tests.
//!
//! Also measures the oracle's runtime overhead (enabled vs disabled wall
//! time at a low and a high load), which backs the cost numbers quoted in
//! EXPERIMENTS.md.

use crate::runner::{run_one, ExpConfig, RunResult};
use crate::sweep::build_network;
use metrics::Table;
use noc_sim::config::SimConfig;
use noc_sim::oracle::OracleConfig;
use rair::scheme::{Routing, Scheme};
use std::time::Instant;
use traffic::scenario::two_app;

/// One (scheme, routing, load) cell of the verification matrix.
#[derive(Debug)]
pub struct MatrixCell {
    pub result: RunResult,
    pub load: &'static str,
}

/// The matrix plus the measured enabled/disabled overhead probe.
#[derive(Debug)]
pub struct OracleMatrix {
    pub cells: Vec<MatrixCell>,
    /// Wall-time ratio oracle-on / oracle-off at (low, high) load.
    pub overhead: (f64, f64),
}

impl OracleMatrix {
    /// Total violations across every cell (must be 0 on a healthy kernel).
    pub fn total_violations(&self) -> u64 {
        self.cells.iter().map(|c| c.result.oracle_violations).sum()
    }
}

fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::RoRr,
        Scheme::RoAge,
        Scheme::ro_rank(vec![0.1, 0.3]),
        Scheme::rair(),
    ]
}

const ROUTINGS: [Routing; 3] = [Routing::Xy, Routing::Local, Routing::Dbar];

/// Loads as (p, rate0, rate1) for the two-application scenario: a lightly
/// loaded mesh and one near App 1's saturation.
const LOADS: [(&str, f64, f64, f64); 2] = [("low", 0.2, 0.02, 0.05), ("high", 1.0, 0.08, 0.30)];

fn forced_cfg() -> SimConfig {
    let mut cfg = SimConfig::table1();
    // Record violations instead of panicking so the matrix reports a count
    // per cell rather than dying on the first one.
    cfg.oracle = OracleConfig::forced();
    cfg
}

/// Run the full matrix with the oracle checking every cycle.
pub fn run(ec: &ExpConfig) -> OracleMatrix {
    let cycles = if ec.quick { 2_000 } else { 6_000 };
    let warmup = cycles / 4;
    let run_ec = ExpConfig {
        warmup,
        measure: cycles - warmup,
        ..*ec
    };
    let cfg = forced_cfg();
    let mut cells = Vec::new();
    for scheme in schemes() {
        for routing in ROUTINGS {
            for &(load, p, r0, r1) in &LOADS {
                let (region, scenario) = two_app(&cfg, p, r0, r1);
                let net =
                    build_network(&cfg, &region, &scheme, routing, Box::new(scenario), ec.seed);
                let label = format!("{}/{}", scheme.label(), routing.label());
                cells.push(MatrixCell {
                    result: run_one(label, net, &run_ec),
                    load,
                });
            }
        }
    }
    let overhead = (overhead_probe(ec, LOADS[0]), overhead_probe(ec, LOADS[1]));
    OracleMatrix { cells, overhead }
}

/// Wall-time ratio of an oracle-on run over an oracle-off run of the same
/// configuration (RAIR/Local, `cycles` as in the matrix).
fn overhead_probe(ec: &ExpConfig, (_, p, r0, r1): (&str, f64, f64, f64)) -> f64 {
    let cycles = if ec.quick { 2_000 } else { 6_000 };
    let mut times = [0.0f64; 2];
    for (i, enabled) in [false, true].into_iter().enumerate() {
        let mut cfg = SimConfig::table1();
        cfg.oracle = if enabled {
            OracleConfig::forced()
        } else {
            OracleConfig {
                enabled: Some(false),
                ..OracleConfig::default()
            }
        };
        let (region, scenario) = two_app(&cfg, p, r0, r1);
        let mut net = build_network(
            &cfg,
            &region,
            &Scheme::rair(),
            Routing::Local,
            Box::new(scenario),
            ec.seed,
        );
        let t = Instant::now();
        net.run(cycles);
        times[i] = t.elapsed().as_secs_f64();
    }
    times[1] / times[0].max(1e-9)
}

/// Render the matrix as a table with one row per cell.
pub fn table(m: &OracleMatrix) -> Table {
    let mut t = Table::new(
        "Oracle verification matrix (violations must be 0)",
        &["scheme/routing", "load", "delivered", "violations"],
    );
    for c in &m.cells {
        t.row(vec![
            c.result.label.clone(),
            c.load.to_string(),
            c.result.delivered.to_string(),
            c.result.oracle_violations.to_string(),
        ]);
    }
    t
}
