//! Optional run-time analysis instrumentation: per-link flit counts,
//! VC-occupancy breakdown by native/foreign and regional/global class, and
//! single-packet journey tracing.
//!
//! Disabled by default (the hot path pays one branch); enable with
//! [`crate::network::Network::enable_analysis`]. Used by the
//! link-utilization example and the congestion analyses in the experiment
//! write-ups.

use crate::ids::{NodeId, Port, NUM_PORTS};
use serde::{Deserialize, Serialize};

/// One event in a traced packet's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JourneyEvent {
    /// Head flit entered the network at this node.
    Injected { node: NodeId },
    /// A flit won switch allocation and left through `port`.
    Forwarded { router: NodeId, port: Port },
    /// Tail flit consumed at the destination.
    Delivered { node: NodeId },
}

/// Accumulated analysis state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisState {
    /// Flits forwarded per router per output port (LOCAL = ejections).
    pub link_flits: Vec<[u64; NUM_PORTS]>,
    /// Cycles observed.
    pub cycles: u64,
    /// Occupied-VC cycle counts by traffic origin (native vs foreign),
    /// summed over all routers and cycles.
    pub occ_native: u64,
    pub occ_foreign: u64,
    /// Occupied-VC cycle counts by adaptive-VC tag.
    pub occ_regional: u64,
    pub occ_global: u64,
    /// Packet id being traced, if any.
    pub watch: Option<u64>,
    /// The traced packet's journey so far.
    pub journey: Vec<(u64, JourneyEvent)>,
}

impl AnalysisState {
    pub fn new(num_nodes: usize) -> Self {
        Self {
            link_flits: vec![[0; NUM_PORTS]; num_nodes],
            cycles: 0,
            occ_native: 0,
            occ_foreign: 0,
            occ_regional: 0,
            occ_global: 0,
            watch: None,
            journey: Vec::new(),
        }
    }

    /// Mean utilization (flits/cycle) of output `port` at `router`.
    pub fn link_utilization(&self, router: NodeId, port: Port) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.link_flits[router as usize][port] as f64 / self.cycles as f64
    }

    /// Total flits forwarded by each router onto mesh links (ejections
    /// excluded) — a per-node activity map for heatmaps.
    pub fn forwarding_activity(&self) -> Vec<f64> {
        self.link_flits
            .iter()
            .map(|ports| {
                ports
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| *p != crate::ids::PORT_LOCAL)
                    .map(|(_, &c)| c as f64)
                    .sum()
            })
            .collect()
    }

    /// The most heavily used (router, port) link and its utilization.
    pub fn hottest_link(&self) -> Option<(NodeId, Port, f64)> {
        let mut best: Option<(NodeId, Port, u64)> = None;
        for (r, ports) in self.link_flits.iter().enumerate() {
            for (p, &c) in ports.iter().enumerate() {
                if p == crate::ids::PORT_LOCAL {
                    continue;
                }
                if best.is_none_or(|(_, _, b)| c > b) {
                    best = Some((r as NodeId, p, c));
                }
            }
        }
        best.map(|(r, p, c)| {
            (
                r,
                p,
                if self.cycles == 0 {
                    0.0
                } else {
                    c as f64 / self.cycles as f64
                },
            )
        })
    }

    /// Fraction of occupied-VC cycles held by foreign traffic.
    pub fn foreign_occupancy_share(&self) -> f64 {
        let total = self.occ_native + self.occ_foreign;
        if total == 0 {
            0.0
        } else {
            self.occ_foreign as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let mut a = AnalysisState::new(4);
        a.cycles = 100;
        a.link_flits[2][crate::ids::PORT_EAST] = 50;
        assert!((a.link_utilization(2, crate::ids::PORT_EAST) - 0.5).abs() < 1e-12);
        assert_eq!(a.link_utilization(1, crate::ids::PORT_EAST), 0.0);
        let (r, p, u) = a.hottest_link().unwrap();
        assert_eq!((r, p), (2, crate::ids::PORT_EAST));
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn forwarding_activity_excludes_ejections() {
        let mut a = AnalysisState::new(2);
        a.link_flits[0][crate::ids::PORT_LOCAL] = 100;
        a.link_flits[0][crate::ids::PORT_EAST] = 7;
        let act = a.forwarding_activity();
        assert_eq!(act[0], 7.0);
        assert_eq!(act[1], 0.0);
    }

    #[test]
    fn empty_state_is_quiet() {
        let a = AnalysisState::new(3);
        assert_eq!(a.foreign_occupancy_share(), 0.0);
        assert_eq!(a.hottest_link().map(|(_, _, u)| u), Some(0.0));
        assert_eq!(a.link_utilization(0, crate::ids::PORT_WEST), 0.0);
    }

    #[test]
    fn occupancy_share() {
        let mut a = AnalysisState::new(1);
        a.occ_native = 30;
        a.occ_foreign = 10;
        assert!((a.foreign_occupancy_share() - 0.25).abs() < 1e-12);
    }
}
