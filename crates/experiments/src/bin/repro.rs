//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//! ```text
//! repro [--quick] [--seed N] [--csv] [--oracle] <experiment>...
//! ```
//! where `<experiment>` is one of `table1`, `fig9`, `fig10`, `fig12`,
//! `fig14`, `fig15`, `fig17`, `lbdr`, `oracle`, `bench-kernel`,
//! `bench-parallel`, `ablation-delta`, `ablation-vcsplit`, or `all`.
//!
//! `--oracle` force-enables the invariant oracle for every simulation of
//! the invocation (equivalent to `RAIR_ORACLE=1`); the `oracle` experiment
//! additionally runs the dedicated scheme × routing verification matrix
//! with per-cycle checking.

use experiments::figs;
use experiments::runner::ExpConfig;
use metrics::Table;
use std::process::ExitCode;

const USAGE: &str = "usage: repro [--quick] [--smoke] [--seed N] [--csv] [--oracle] [--prune] [--inject-cyclic] [--inject-broken] \
[--topology mesh|torus|ring|cmesh[:N]] \
<table1|fig9|fig10|fig12|fig14|fig15|fig17|lbdr|oracle|curve|trace-demo|bench-kernel|bench-parallel|bench-model|verify-config|admit|resilience|ablation-delta|ablation-vcsplit|ablation-rank|baselines|all> \
[--trace-file PATH]\n\
       repro [--quick] [--windows W,M] serve <jobs-file> [--dir PATH] [--retries N] [--timeout-ms N] [--screen]\n\
       repro [--smoke] [--seed N] chaos [--inject-wrong-result]";

fn main() -> ExitCode {
    let mut ec = ExpConfig::full();
    let mut csv = false;
    let mut smoke = false;
    let mut inject_cyclic = false;
    let mut inject_broken = false;
    let mut topology = noc_sim::topology::TopologyKind::Mesh;
    let mut trace_file = String::from("/tmp/rair_trace.bin");
    let mut serve_dir = String::from("results/serve");
    let mut retries: u32 = 3;
    let mut timeout_ms: Option<u64> = None;
    let mut screen = false;
    let mut inject_wrong_result = false;
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                ec = ExpConfig {
                    seed: ec.seed,
                    prune: ec.prune,
                    ..ExpConfig::quick()
                };
            }
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => ec.seed = s,
                None => {
                    eprintln!("--seed needs an integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--csv" => csv = true,
            // Opt-in: curve points the analytical model classifies as
            // deep-saturated or trivially stable get shortened
            // confirmation runs (default digests are untouched).
            "--prune" => ec.prune = true,
            // CI-sized: quick windows plus a reduced matrix for the
            // experiments that support it (currently `resilience`).
            "--smoke" => {
                smoke = true;
                ec = ExpConfig {
                    seed: ec.seed,
                    prune: ec.prune,
                    ..ExpConfig::quick()
                };
            }
            "--oracle" => {
                // Every Network built by this process resolves the toggle
                // through SimConfig::oracle / RAIR_ORACLE, so the env var
                // reaches all experiment drivers without threading a flag.
                std::env::set_var("RAIR_ORACLE", "1");
            }
            "--inject-cyclic" => inject_cyclic = true,
            "--inject-broken" => inject_broken = true,
            "--inject-wrong-result" => inject_wrong_result = true,
            // Explicit warmup,measure override (the chaos battery drives
            // child sweeps with tiny-but-real windows through this).
            "--windows" => {
                let parsed = args.next().and_then(|s| {
                    let (w, m) = s.split_once(',')?;
                    Some((w.trim().parse().ok()?, m.trim().parse().ok()?))
                });
                match parsed {
                    Some((w, m)) => {
                        ec.warmup = w;
                        ec.measure = m;
                    }
                    None => {
                        eprintln!("--windows needs WARMUP,MEASURE cycles\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--dir" => match args.next() {
                Some(d) => serve_dir = d,
                None => {
                    eprintln!("--dir needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--retries" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => retries = n,
                None => {
                    eprintln!("--retries needs an integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--timeout-ms" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => timeout_ms = Some(n),
                None => {
                    eprintln!("--timeout-ms needs milliseconds\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--screen" => screen = true,
            "--topology" => {
                match args
                    .next()
                    .and_then(|s| noc_sim::topology::TopologyKind::parse(&s))
                {
                    Some(k) => topology = k,
                    None => {
                        eprintln!("--topology needs mesh|torus|ring|cmesh[:N]\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--trace-file" => match args.next() {
                Some(p) => trace_file = p,
                None => {
                    eprintln!("--trace-file needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    // The service subcommands take over the whole invocation (serve also
    // consumes the following positional as its jobs file).
    if experiments[0] == "serve" {
        let Some(jobs_path) = experiments.get(1) else {
            eprintln!("serve needs a jobs file\n{USAGE}");
            return ExitCode::FAILURE;
        };
        return run_serve(jobs_path, &ec, &serve_dir, retries, timeout_ms, screen, csv);
    }
    if experiments[0] == "chaos" {
        return run_chaos_battery(smoke, ec.seed, inject_wrong_result, csv);
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "table1",
            "lbdr",
            "fig9",
            "fig10",
            "fig12",
            "fig14",
            "fig15",
            "fig17",
            "ablation-delta",
            "ablation-vcsplit",
            "ablation-rank",
        ]
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    }

    let emit = |t: &Table| {
        if csv {
            print!("{}", t.to_csv());
        } else {
            println!("{}", t.render());
        }
    };

    for exp in &experiments {
        eprintln!(
            "[repro] running {exp} ({} + {} cycles, seed {})…",
            ec.warmup, ec.measure, ec.seed
        );
        match exp.as_str() {
            "table1" => emit(&figs::table1::table()),
            "lbdr" => emit(&figs::lbdr_analysis::table(200_000, ec.seed)),
            "fig9" => {
                let r = figs::fig9::run(&ec);
                emit(&figs::fig9::table(
                    "Fig.9 — APL vs inter-region fraction p (MSP stages)",
                    &r,
                ));
                let base = r.point("RO_RR", 1.0);
                let full = r.point("RAIR_VA+SA", 1.0);
                println!(
                    "at p=100%: RAIR_VA+SA vs RO_RR: App0 {:+.1}%, App1 {:+.1}%  (paper: -18.9%, <+3%)\n",
                    (full.apl[0] / base.apl[0] - 1.0) * 100.0,
                    (full.apl[1] / base.apl[1] - 1.0) * 100.0,
                );
            }
            "fig10" => {
                let r = figs::fig10::run(&ec);
                emit(&figs::fig10::table(&r));
                let base = r.point("RO_RR_Local", 1.0);
                let rd = r.point("RAIR_DBAR", 1.0);
                let bd = r.point("RO_RR_DBAR", 1.0);
                println!(
                    "at p=100%: RAIR_DBAR vs RO_RR_Local: App0 {:+.1}%, App1 {:+.1}% (paper: -24.8%, -3.3%); vs RO_RR_DBAR: App0 {:+.1}%, App1 {:+.1}% (paper: -12.8%, +1.8%)\n",
                    (rd.apl[0] / base.apl[0] - 1.0) * 100.0,
                    (rd.apl[1] / base.apl[1] - 1.0) * 100.0,
                    (rd.apl[0] / bd.apl[0] - 1.0) * 100.0,
                    (rd.apl[1] / bd.apl[1] - 1.0) * 100.0,
                );
            }
            "fig12" => {
                let (a, b) = figs::fig12::run(&ec);
                emit(&figs::fig12::table(&a));
                emit(&figs::fig12::table(&b));
                println!(
                    "RAIR_DPA avg reduction: (a) {:+.1}%, (b) {:+.1}%  (paper: 12.8%, 12.2%)\n",
                    a.avg_reduction("RAIR_DPA") * 100.0,
                    b.avg_reduction("RAIR_DPA") * 100.0,
                );
            }
            "fig14" => {
                let r = figs::fig14::run(&ec);
                emit(&figs::fig14::table(&r));
                println!(
                    "avg reduction vs RO_RR: RA_DBAR {:+.1}%, RO_Rank {:+.1}%, RA_RAIR {:+.1}%  (paper: 3.4%, 5.8%, 10.1%)\n",
                    r.avg_reduction("RA_DBAR", None) * 100.0,
                    r.avg_reduction("RO_Rank", None) * 100.0,
                    r.avg_reduction("RA_RAIR", None) * 100.0,
                );
            }
            "fig15" => {
                let r = figs::fig15::run(&ec);
                emit(&figs::fig15::table(&r));
                println!(
                    "RA_RAIR average over patterns: {:+.1}%  (paper: 13.4%)\n",
                    r.overall_reduction("RA_RAIR") * 100.0
                );
            }
            "fig17" => {
                let r = figs::fig17::run(&ec);
                emit(&figs::fig17::table(&r));
                println!(
                    "avg slowdowns: RO_RR {:.2}, RA_DBAR {:.2}, RO_Rank {:.2}, RA_RAIR {:.2}  (paper: 1.92, 1.75, 1.47, 1.18)\n",
                    r.avg_slowdown("RO_RR"),
                    r.avg_slowdown("RA_DBAR"),
                    r.avg_slowdown("RO_Rank"),
                    r.avg_slowdown("RA_RAIR"),
                );
            }
            "oracle" => {
                let m = figs::oracle_check::run(&ec);
                emit(&figs::oracle_check::table(&m));
                println!(
                    "{}",
                    metrics::report::oracle_summary(true, m.total_violations())
                );
                println!(
                    "oracle overhead (per-cycle checking, wall time on/off): \
                     {:.2}x at low load, {:.2}x at high load\n",
                    m.overhead.0, m.overhead.1
                );
                if m.total_violations() > 0 {
                    eprintln!("[repro] ORACLE FOUND VIOLATIONS — kernel invariants broken");
                    return ExitCode::FAILURE;
                }
            }
            "resilience" => {
                let rows = figs::resilience::run(&ec, smoke);
                emit(&figs::resilience::table(&rows));
                let json = figs::resilience::to_json(&rows);
                std::fs::write("RESILIENCE_report.json", &json)
                    .expect("write RESILIENCE_report.json");
                eprintln!(
                    "[repro] wrote {} resilience rows to RESILIENCE_report.json",
                    rows.len()
                );
                let worst = figs::resilience::worst_fraction(&rows);
                println!(
                    "worst delivered fraction across faulted cells: {worst:.4} (target >= 0.99)\n"
                );
                let viol: u64 = rows.iter().map(|r| r.oracle_violations).sum();
                if viol > 0 {
                    eprintln!(
                        "[repro] RESILIENCE FAILED — {viol} oracle violation(s) under faults"
                    );
                    return ExitCode::FAILURE;
                }
                if worst < 0.99 {
                    eprintln!(
                        "[repro] RESILIENCE FAILED — delivered fraction {worst:.4} below 0.99"
                    );
                    return ExitCode::FAILURE;
                }
            }
            "trace-demo" => trace_demo(&ec, &trace_file, csv),
            "verify-config" => {
                if inject_cyclic {
                    return verify_config_negative(topology);
                }
                if let Some(code) = verify_config_positive(topology, &emit) {
                    return code;
                }
            }
            "admit" => {
                if inject_broken {
                    return admit_negative(topology);
                }
                if let Some(code) = admit_positive(topology, &emit) {
                    return code;
                }
            }
            "bench-kernel" => {
                let rows = experiments::bench_kernel::run(&ec);
                emit(&experiments::bench_kernel::table(&rows));
                let json = experiments::bench_kernel::to_json(&rows);
                std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
                eprintln!(
                    "[repro] wrote {} bench rows to BENCH_kernel.json",
                    rows.len()
                );
            }
            "bench-model" => {
                let b = experiments::bench_model::run(&ec);
                emit(&experiments::bench_model::sat_table(&b));
                emit(&experiments::bench_model::lat_table(&b));
                let (mean, max, max_cfg) = b.sat_error();
                let (wp, cp) = b.table1_probes();
                println!(
                    "model saturation error: mean |rel| {mean:.3}, max |rel| {max:.3} \
                     ({max_cfg}); Table-1 probes warm/cold {wp}/{cp}; \
                     sweep prune speedup {:.2}x ({} points shortened)\n",
                    b.sweep_full_secs / b.sweep_pruned_secs.max(1e-9),
                    b.sweep_pruned_points
                );
                let json = experiments::bench_model::to_json(&b);
                std::fs::write("BENCH_model.json", &json).expect("write BENCH_model.json");
                eprintln!(
                    "[repro] wrote {} saturation + {} latency rows to BENCH_model.json",
                    b.sat.len(),
                    b.lat.len()
                );
            }
            "bench-parallel" => {
                let rows = experiments::bench_parallel::run(&ec);
                emit(&experiments::bench_parallel::table(&rows));
                let json = experiments::bench_parallel::to_json(&rows);
                std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
                eprintln!(
                    "[repro] wrote {} scaling rows to BENCH_parallel.json \
                     (host parallelism: {})",
                    rows.len(),
                    experiments::bench_parallel::host_parallelism()
                );
            }
            "curve" => {
                for pattern in [
                    traffic::pattern::Pattern::UniformRandom,
                    traffic::pattern::Pattern::Transpose,
                    traffic::pattern::Pattern::BitComplement,
                ] {
                    let c = figs::curve::run(&ec, pattern, 0.6, 12);
                    emit(&figs::curve::table(&c));
                    if let Some(k) = figs::curve::knee(&c) {
                        println!(
                            "{} knee (3x zero-load) at ~{k:.3} flits/cycle/node\n",
                            c.pattern
                        );
                    }
                }
            }
            "ablation-delta" => emit(&figs::ablation::table(&figs::ablation::delta_sweep(&ec))),
            "ablation-vcsplit" => {
                emit(&figs::ablation::table(&figs::ablation::vc_split_sweep(&ec)));
            }
            "ablation-rank" => emit(&figs::ablation::table(&figs::ablation::rank_estimation(
                &ec,
            ))),
            "baselines" => emit(&figs::ablation::table(&figs::ablation::baselines(&ec))),
            other => {
                eprintln!("unknown experiment {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Run the static verifier over the full shipped scheme×routing×region
/// matrix (plus LBDR-confined variants) on the canonical config of the
/// selected topology. Returns `Some(FAILURE)` when any configuration
/// fails, printing the witnesses; `None` on success.
fn verify_config_positive(
    topology: noc_sim::topology::TopologyKind,
    emit: &impl Fn(&Table),
) -> Option<ExitCode> {
    use experiments::verify_config as vc;
    let rows = vc::run_matrix_for(topology);
    emit(&vc::table(&rows));
    let json = vc::to_json(&rows);
    std::fs::write("VERIFY_report.json", &json).expect("write VERIFY_report.json");
    eprintln!(
        "[repro] wrote {} verification rows ({} topology) to VERIFY_report.json",
        rows.len(),
        topology.label()
    );
    let mut failed = false;
    for r in &rows {
        if r.violations > 0 {
            failed = true;
            eprintln!(
                "[repro] VERIFY FAILED {}/{} (lbdr {}): {}",
                r.region,
                r.routing,
                r.lbdr,
                r.first_witness.as_deref().unwrap_or("(no witness)")
            );
        }
    }
    for (label, errs) in vc::scheme_checks() {
        for e in &errs {
            failed = true;
            eprintln!("[repro] SCHEME CHECK FAILED {label}: {e}");
        }
    }
    if failed {
        eprintln!("[repro] static verification FAILED");
        return Some(ExitCode::FAILURE);
    }
    println!(
        "static verification: all {} configurations proved deadlock-free and legal\n",
        rows.len()
    );
    None
}

/// Run the injected-fault battery: every deliberately broken configuration
/// must be rejected with a concrete witness. Always exits nonzero (the
/// configurations are invalid); prints `NOT REJECTED` if the verifier
/// missed one, which the CLI tests treat as a verifier bug.
fn verify_config_negative(topology: noc_sim::topology::TopologyKind) -> ExitCode {
    let mut cases = experiments::verify_config::negative_battery();
    if topology.wraps() {
        // No dateline lane switch on a wrapping topology → the verifier
        // must extract the wrap cycle.
        cases.push(experiments::verify_config::torus_no_dateline_case());
    }
    for c in &cases {
        if c.rejected {
            println!("[{}] rejected with witness: {}", c.name, c.witness);
        } else {
            println!(
                "[{}] NOT REJECTED — verifier missed an injected fault",
                c.name
            );
        }
    }
    eprintln!(
        "[repro] {} injected cyclic/broken configs, {} rejected",
        cases.len(),
        cases.iter().filter(|c| c.rejected).count()
    );
    ExitCode::FAILURE
}

/// Run the static admission pipeline over the shipped scheme × routing ×
/// region matrix on the canonical config of the selected topology.
/// Returns `Some(FAILURE)` when any cell is rejected (the golden matrix
/// must be admitted without false rejections); `None` on success.
fn admit_positive(
    topology: noc_sim::topology::TopologyKind,
    emit: &impl Fn(&Table),
) -> Option<ExitCode> {
    use experiments::admit;
    let rows = admit::run_matrix_for(topology);
    emit(&admit::table(&rows));
    let json = admit::to_json(&rows);
    std::fs::write("ADMIT_report.json", &json).expect("write ADMIT_report.json");
    eprintln!(
        "[repro] wrote {} admission rows ({} topology) to ADMIT_report.json",
        rows.len(),
        topology.label()
    );
    let mut failed = false;
    for r in &rows {
        if r.verdict == "reject" {
            failed = true;
            eprintln!(
                "[repro] ADMIT FAILED {}/{}/{}: {}",
                r.region,
                r.routing,
                r.scheme,
                r.defect.as_deref().unwrap_or("(no defect detail)")
            );
        } else if r.verdict == "warn" {
            eprintln!(
                "[repro] admit warning {}/{}/{}: {}",
                r.region,
                r.routing,
                r.scheme,
                r.defect.as_deref().unwrap_or("(no defect detail)")
            );
        }
    }
    if failed {
        eprintln!("[repro] static admission FAILED — false rejection in the golden matrix");
        return Some(ExitCode::FAILURE);
    }
    let worst = rows.iter().map(|r| r.micros).max().unwrap_or(0);
    println!(
        "static admission: all {} configurations admitted \
         (slowest cell {worst} µs, target <= 10 ms)\n",
        rows.len()
    );
    None
}

/// Run the admission negative battery: every deliberately broken
/// configuration must be rejected with the named property and a concrete
/// witness. Always exits nonzero (the configurations are invalid);
/// prints `NOT REJECTED` if the pipeline missed one, which the CLI tests
/// treat as a pipeline bug.
fn admit_negative(topology: noc_sim::topology::TopologyKind) -> ExitCode {
    let cases = experiments::admit::negative_battery(topology);
    for c in &cases {
        if c.rejected {
            println!(
                "[{}] rejected ({}) with witness: {}",
                c.name, c.property, c.witness
            );
        } else {
            println!(
                "[{}] NOT REJECTED — admission pipeline missed an injected defect",
                c.name
            );
        }
    }
    eprintln!(
        "[repro] {} injected broken configs, {} rejected",
        cases.len(),
        cases.iter().filter(|c| c.rejected).count()
    );
    ExitCode::FAILURE
}

/// `repro serve <jobs>` — run a jobs file through the crash-safe service:
/// journaled transitions, result dedup, admission gate, supervised retries.
/// Quarantined (poison) jobs are labeled in the report, never abort the
/// sweep, and do not fail the invocation.
fn run_serve(
    jobs_path: &str,
    ec: &ExpConfig,
    dir: &str,
    retries: u32,
    timeout_ms: Option<u64>,
    screen: bool,
    csv: bool,
) -> ExitCode {
    use experiments::service::{serve, sim_exec, std_store, JobSpec, ServeConfig};
    let text = match std::fs::read_to_string(jobs_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[serve] cannot read jobs file {jobs_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let specs = match JobSpec::parse_jobs(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[serve] invalid jobs file {jobs_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scfg = ServeConfig {
        max_attempts: retries.max(1),
        timeout_ms,
        screen,
        ..ServeConfig::new(dir, *ec)
    };
    let exec = sim_exec();
    let report = serve(std_store(), &specs, &scfg, &exec);
    let mut t = Table::new(
        "Experiment service — job outcomes",
        &["job", "status", "attempts", "source", "detail"],
    );
    for o in &report.outcomes {
        let detail = o.reason.clone().unwrap_or_else(|| {
            o.result.as_ref().map_or_else(String::new, |r| {
                format!("APL {}", metrics::report::f2(r.mean_apl(None)))
            })
        });
        t.row(vec![
            o.spec.label.clone(),
            o.status.label().to_string(),
            o.attempts.to_string(),
            if o.restored { "restored" } else { "executed" }.to_string(),
            detail,
        ]);
    }
    if csv {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
    println!(
        "sweep digest {:016x}  ({} resumed, {} cache hits, {} executed, {} quarantined)",
        report.sweep_digest,
        report.resumed,
        report.cache_hits,
        report.executed,
        report.quarantined(),
    );
    if report.quarantined() > 0 {
        eprintln!(
            "[serve] warning: {} poison job(s) quarantined — see the report for labels",
            report.quarantined()
        );
    }
    ExitCode::SUCCESS
}

/// `repro chaos` — run the fault-injection battery and fail the invocation
/// on any unrecovered fault. `--inject-wrong-result` runs the negative
/// control instead (always exits nonzero; prints whether the tampered
/// result was detected).
fn run_chaos_battery(smoke: bool, seed: u64, inject_wrong_result: bool, csv: bool) -> ExitCode {
    use experiments::service::{run_chaos, run_wrong_result};
    if inject_wrong_result {
        let (detected, detail) = run_wrong_result(seed);
        println!(
            "[inject-wrong-result] {}: {detail}",
            if detected { "DETECTED" } else { "NOT DETECTED" }
        );
        // The negative control always exits nonzero: the store is corrupt
        // by construction, whether or not the harness caught it — and CI
        // asserts the nonzero exit.
        return ExitCode::FAILURE;
    }
    let report = run_chaos(smoke, seed);
    if csv {
        print!("{}", report.table().to_csv());
    } else {
        println!("{}", report.table().render());
    }
    std::fs::write("CHAOS_report.json", report.to_json()).expect("write CHAOS_report.json");
    eprintln!(
        "[repro] wrote {} battery results to CHAOS_report.json",
        report.batteries.len()
    );
    if report.all_green() {
        println!(
            "chaos battery: all {} fault classes recovered with bit-identical digests\n",
            report.batteries.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("[repro] CHAOS FAILED — at least one fault class did not recover");
        ExitCode::FAILURE
    }
}

/// Capture a six-application trace to `path`, then replay the *identical*
/// offered traffic under RO_RR and RA_RAIR — the deterministic trace-driven
/// mode that sharpens scheme comparisons.
fn trace_demo(ec: &ExpConfig, path: &str, csv: bool) {
    use experiments::runner::run_one;
    use experiments::sweep::build_network;
    use noc_sim::config::SimConfig;
    use rair::scheme::{Routing, Scheme};
    use traffic::scenario::{six_app, InterDest};
    use traffic::trace::{Trace, TraceReplay};

    let cfg = SimConfig::table1();
    let rates = [0.03, 0.3, 0.1, 0.07, 0.08, 0.3];
    let cycles = ec.warmup + ec.measure;
    let (region, scenario) = six_app(&cfg, rates, InterDest::OutsideUniform);
    let trace = Trace::capture(scenario, cfg.num_nodes() as u16, cycles, ec.seed);
    std::fs::write(path, trace.to_bytes()).expect("write trace file");
    eprintln!(
        "[repro] captured {} events over {} cycles to {path}",
        trace.events.len(),
        cycles
    );
    let loaded = Trace::from_bytes(std::fs::read(path).expect("read trace file").into())
        .expect("parse trace file");
    assert_eq!(loaded, trace, "trace file round-trip mismatch");

    let mut t = metrics::Table::new(
        "Trace-driven comparison (identical offered traffic from file)",
        &["scheme", "App0", "App1", "App2", "App3", "App4", "App5"],
    );
    for scheme in [Scheme::RoRr, Scheme::rair()] {
        let replay = TraceReplay::new(&loaded, cfg.num_nodes() as u16);
        let net = build_network(
            &cfg,
            &region,
            &scheme,
            Routing::Local,
            Box::new(replay),
            ec.seed,
        );
        let r = run_one(scheme.label(), net, ec);
        eprintln!("[{}] {}", r.label, r.kernel_summary());
        let mut row = vec![r.label.clone()];
        row.extend((0..6).map(|a| metrics::report::f2(r.app_apl(a))));
        t.row(row);
    }
    if csv {
        print!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
}
