//! Per-figure experiment drivers. Each module regenerates one table or
//! figure of the paper's evaluation section (§V) and renders the same
//! rows/series the paper reports.

pub mod ablation;
pub mod curve;
pub mod fig10;
pub mod fig12;
pub mod fig14;
pub mod fig15;
pub mod fig17;
pub mod fig9;
pub mod lbdr_analysis;
pub mod oracle_check;
pub mod resilience;
pub mod table1;

use crate::runner::ExpConfig;
use crate::sweep::cached_saturation;
use noc_sim::config::SimConfig;
use noc_sim::region::RegionMap;
use traffic::scenario::AppSpec;

/// Reference loads for the two-application scenario of Figs. 8–10:
/// App 0 at 10 % and App 1 at 90 % of the half-mesh intra-region
/// uniform-random saturation load (flits/cycle/node).
///
/// The binary search measures the *admission cliff*; the usable latency
/// knee of our 3-stage router sits ~10 % below it. The p sweep pours App
/// 0's entire inter-region load on top of App 1's region, so the reference
/// is derated to the knee — otherwise the p = 100 % point operates *past*
/// saturation and latencies grow with the window length instead of
/// reflecting steady-state interference (the paper's operating points are
/// clearly sub-saturation: its Fig. 9 latencies stay in the tens of
/// cycles).
pub(crate) fn two_app_rates(ec: &ExpConfig) -> (f64, f64) {
    let cfg = SimConfig::table1();
    let region = RegionMap::halves(&cfg);
    let sat = 0.9
        * cached_saturation(
            "halves/intra",
            ec,
            &cfg,
            &region,
            0,
            &AppSpec::intra_only(0.0),
        );
    (0.10 * sat, 0.90 * sat)
}

/// Quadrant-region intra-region saturation (Figs. 11–12 reference load).
pub(crate) fn quadrant_sat(ec: &ExpConfig) -> f64 {
    let cfg = SimConfig::table1();
    let region = RegionMap::quadrants(&cfg);
    cached_saturation(
        "quadrants/intra",
        ec,
        &cfg,
        &region,
        0,
        &AppSpec::intra_only(0.0),
    )
}
