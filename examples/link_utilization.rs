//! Link-utilization analysis: where does inter-region traffic actually
//! flow, and what is the hottest link on the chip?
//!
//! Runs the six-application Fig. 13 scenario with analysis instrumentation
//! enabled, prints a per-router forwarding-activity heatmap, the hottest
//! link, the foreign share of VC occupancy, and traces one packet's journey
//! hop by hop.
//!
//! ```text
//! cargo run --release --example link_utilization
//! ```

use metrics::viz::heatmap;
use noc_sim::analysis::JourneyEvent;
use noc_sim::ids::port_name;
use noc_sim::network::Network;
use noc_sim::prelude::*;
use rair::prelude::*;
use traffic::prelude::*;

fn main() {
    let cfg = SimConfig::table1();
    let rates = [0.03, 0.3, 0.1, 0.07, 0.08, 0.3];
    let (region, scenario) = six_app(&cfg, rates, InterDest::OutsideUniform);
    let mut net = Network::new(
        cfg.clone(),
        region,
        Routing::Local.build(),
        Scheme::rair().build(),
        Box::new(scenario),
        2026,
    );
    net.enable_analysis();
    net.watch_packet(5_000); // trace the 5000th generated packet
    net.run(20_000);

    let a = net.analysis().expect("analysis enabled");
    println!("six-app RNoC (Fig. 13 layout), RAIR, 20K cycles\n");
    println!("per-router forwarding activity (flits onto mesh links):");
    print!("{}", heatmap(&a.forwarding_activity(), cfg.width as usize));

    if let Some((router, port, util)) = a.hottest_link() {
        let c = cfg.coord_of(router);
        println!(
            "hottest link: router ({}, {}) port {} at {:.1}% utilization",
            c.x,
            c.y,
            port_name(port),
            util * 100.0
        );
    }
    println!(
        "foreign share of occupied VC-cycles: {:.1}% (RB-3: the minority of \
         traffic is inter-region)",
        a.foreign_occupancy_share() * 100.0
    );

    println!("\ntraced packet journey:");
    for (cycle, ev) in &a.journey {
        match ev {
            JourneyEvent::Injected { node } => {
                let c = cfg.coord_of(*node);
                println!("  cycle {cycle:>6}: injected at ({}, {})", c.x, c.y);
            }
            JourneyEvent::Forwarded { router, port } => {
                let c = cfg.coord_of(*router);
                println!(
                    "  cycle {cycle:>6}: ({}, {}) --{}-->",
                    c.x,
                    c.y,
                    port_name(*port)
                );
            }
            JourneyEvent::Delivered { node } => {
                let c = cfg.coord_of(*node);
                println!("  cycle {cycle:>6}: delivered at ({}, {})", c.x, c.y);
            }
        }
    }
    if a.journey.is_empty() {
        println!("  (watched packet was not generated within the window)");
    }
}
