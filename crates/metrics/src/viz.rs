//! Minimal dependency-free terminal visualizations: shaded grid heatmaps
//! (per-node congestion) and sparklines (time series), used by the examples
//! and the experiment drivers for at-a-glance inspection.

/// Shade characters from empty to full.
const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];

/// Render a `width × height` grid of values (row-major) as a shaded
/// heatmap. Values are normalized to the maximum; an all-zero grid renders
/// as blanks. Each cell is two characters wide for a squarer aspect ratio.
pub fn heatmap(values: &[f64], width: usize) -> String {
    assert!(
        width > 0 && values.len().is_multiple_of(width),
        "non-rectangular grid"
    );
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    let mut out = String::new();
    let border = "─".repeat(width * 2);
    out.push_str(&format!("┌{border}┐\n"));
    for row in values.chunks(width) {
        out.push('│');
        for &v in row {
            let shade = if max == 0.0 {
                SHADES[0]
            } else {
                let idx = ((v / max) * (SHADES.len() - 1) as f64).round() as usize;
                SHADES[idx.min(SHADES.len() - 1)]
            };
            out.push(shade);
            out.push(shade);
        }
        out.push_str("│\n");
    }
    out.push_str(&format!("└{border}┘\n"));
    out
}

/// Render a time series as a one-line sparkline.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max == 0.0 {
                BARS[0]
            } else {
                let idx = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
                BARS[idx.min(BARS.len() - 1)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_has_grid_shape() {
        let vals: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let m = heatmap(&vals, 4);
        let lines: Vec<&str> = m.lines().collect();
        assert_eq!(lines.len(), 6); // border + 4 rows + border
                                    // The max cell renders as full blocks.
        assert!(m.contains("██"));
    }

    #[test]
    fn zero_grid_is_blank() {
        let m = heatmap(&[0.0; 4], 2);
        assert!(!m.contains('█'));
        assert!(!m.contains('░'));
    }

    #[test]
    #[should_panic(expected = "non-rectangular")]
    fn rejects_ragged_grid() {
        heatmap(&[1.0; 5], 2);
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert!(s.starts_with('▁'));
    }

    #[test]
    fn sparkline_of_zeros() {
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
    }
}
