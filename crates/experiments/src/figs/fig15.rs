//! Figure 15 — reduction of average packet latency under different global
//! traffic patterns.
//!
//! The six-application scenario of Figure 14 with its 20 % inter-region
//! component drawn from uniform random, transpose, bit complement and
//! hotspot patterns. The paper reports RA_RAIR averaging a 13.4 % APL
//! reduction over RO_RR across the patterns — demonstrating that RAIR
//! places no implicit restrictions on the global traffic pattern.

use crate::figs::fig14::{run_with_global, SixAppResult};
use crate::runner::ExpConfig;
use metrics::report::pct;
use metrics::Table;
use noc_sim::config::SimConfig;
use traffic::pattern::Pattern;
use traffic::scenario::InterDest;

/// Results per global-traffic pattern.
#[derive(Debug, Clone)]
pub struct Fig15Result {
    pub per_pattern: Vec<SixAppResult>,
}

impl Fig15Result {
    /// Average reduction of `scheme` vs RO_RR across all patterns.
    pub fn overall_reduction(&self, scheme: &str) -> f64 {
        let s: f64 = self
            .per_pattern
            .iter()
            .map(|r| r.avg_reduction(scheme, None))
            .sum();
        s / self.per_pattern.len() as f64
    }
}

/// The swept global-traffic patterns.
pub fn patterns() -> Vec<(&'static str, InterDest)> {
    let cfg = SimConfig::table1();
    vec![
        ("UR", InterDest::OutsideUniform),
        ("TP", InterDest::Pattern(Pattern::Transpose)),
        ("BC", InterDest::Pattern(Pattern::BitComplement)),
        (
            "HS",
            InterDest::Pattern(Pattern::Hotspot {
                spots: Pattern::center_hotspots(&cfg),
                bias: 0.5,
            }),
        ),
    ]
}

/// Run Figure 15.
pub fn run(ec: &ExpConfig) -> Fig15Result {
    let per_pattern = patterns()
        .into_iter()
        .map(|(label, global)| run_with_global(ec, label, global))
        .collect();
    Fig15Result { per_pattern }
}

/// Render the figure's table: average APL reduction vs RO_RR per pattern.
pub fn table(res: &Fig15Result) -> Table {
    let mut t = Table::new(
        "Fig.15 — average APL reduction vs RO_RR per global traffic pattern",
        &["scheme", "UR", "TP", "BC", "HS", "avg"],
    );
    for scheme in ["RA_DBAR", "RO_Rank", "RA_RAIR"] {
        let mut row = vec![scheme.to_string()];
        for r in &res.per_pattern {
            row.push(pct(r.avg_reduction(scheme, None)));
        }
        row.push(pct(res.overall_reduction(scheme)));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figs::fig14::SixAppResult;

    #[test]
    fn overall_reduction_averages_patterns() {
        let mk = |apl: f64| SixAppResult {
            pattern: "X".into(),
            schemes: vec![
                ("RO_RR".into(), vec![20.0; 6]),
                ("RA_RAIR".into(), vec![apl; 6]),
            ],
        };
        let r = Fig15Result {
            per_pattern: vec![mk(18.0), mk(16.0)],
        };
        // Reductions 0.1 and 0.2 → 0.15 overall.
        assert!((r.overall_reduction("RA_RAIR") - 0.15).abs() < 1e-12);
    }

    #[test]
    fn pattern_list_matches_paper() {
        let labels: Vec<&str> = patterns().into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["UR", "TP", "BC", "HS"]);
    }
}
