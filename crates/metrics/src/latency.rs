//! Per-application packet-latency bookkeeping.
//!
//! The paper reports *average packet latency* (APL) per application and
//! averaged over applications. Two latency definitions are tracked:
//!
//! * **Network latency** — from the head flit entering the injection VC to
//!   the tail flit being ejected (what GARNET calls network latency).
//! * **Total latency** — from packet generation (entering the source queue)
//!   to tail ejection; includes source queuing, which is where most
//!   contention shows up near saturation.

use crate::{Histogram, Streaming};
use serde::{Deserialize, Serialize};

/// Which latency definition to read out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencyKind {
    /// Injection-to-ejection.
    Network,
    /// Generation-to-ejection (includes source queuing delay).
    Total,
}

/// Latency accumulators for a single application.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PerAppLatency {
    pub network: Streaming,
    pub total: Streaming,
    pub network_hist: Histogram,
    /// Hops traversed, for sanity-checking routing minimality in tests.
    pub hops: Streaming,
}

impl PerAppLatency {
    fn record(&mut self, network: u64, total: u64, hops: u32) {
        self.network.push(network as f64);
        self.total.push(total as f64);
        self.network_hist.push(network);
        self.hops.push(hops as f64);
    }

    /// Mean latency of the requested kind, `None` if no packets delivered.
    pub fn mean(&self, kind: LatencyKind) -> Option<f64> {
        match kind {
            LatencyKind::Network => self.network.mean(),
            LatencyKind::Total => self.total.mean(),
        }
    }

    fn reset(&mut self) {
        self.network.reset();
        self.total.reset();
        self.network_hist.reset();
        self.hops.reset();
    }

    fn merge(&mut self, other: &Self) {
        self.network.merge(&other.network);
        self.total.merge(&other.total);
        self.network_hist.merge(&other.network_hist);
        self.hops.merge(&other.hops);
    }

    /// Fold every accumulator into `d` (determinism fingerprints).
    pub fn digest_into(&self, d: &mut crate::Digest) {
        self.network.digest_into(d);
        self.total.digest_into(d);
        self.network_hist.digest_into(d);
        self.hops.digest_into(d);
    }
}

/// Latency recorder for all applications in a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyRecorder {
    apps: Vec<PerAppLatency>,
    /// Packets delivered (all apps).
    delivered: u64,
    /// Flits delivered (all apps), for throughput accounting.
    flits_delivered: u64,
}

impl LatencyRecorder {
    /// Create a recorder for `num_apps` applications.
    pub fn new(num_apps: usize) -> Self {
        Self {
            apps: vec![PerAppLatency::default(); num_apps],
            delivered: 0,
            flits_delivered: 0,
        }
    }

    /// Record a delivered packet for application `app`.
    #[inline]
    pub fn record(&mut self, app: usize, network: u64, total: u64, hops: u32, flits: u32) {
        self.apps[app].record(network, total, hops);
        self.delivered += 1;
        self.flits_delivered += flits as u64;
    }

    /// Number of applications tracked.
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    /// Accumulators for application `app`.
    pub fn app(&self, app: usize) -> &PerAppLatency {
        &self.apps[app]
    }

    /// Total packets delivered during the measurement window.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total flits delivered during the measurement window.
    pub fn flits_delivered(&self) -> u64 {
        self.flits_delivered
    }

    /// Mean latency over *all* packets of all apps (packet-weighted).
    pub fn overall_mean(&self, kind: LatencyKind) -> Option<f64> {
        let mut s = Streaming::new();
        for a in &self.apps {
            s.merge(match kind {
                LatencyKind::Network => &a.network,
                LatencyKind::Total => &a.total,
            });
        }
        s.mean()
    }

    /// Unweighted average of the per-application mean latencies.
    ///
    /// This is how the paper averages "over all applications" (each
    /// application counts once regardless of its packet volume).
    pub fn mean_of_app_means(&self, kind: LatencyKind) -> Option<f64> {
        let means: Vec<f64> = self.apps.iter().filter_map(|a| a.mean(kind)).collect();
        if means.is_empty() {
            None
        } else {
            Some(means.iter().sum::<f64>() / means.len() as f64)
        }
    }

    /// Clear all accumulators (warmup boundary).
    pub fn reset(&mut self) {
        self.apps.iter_mut().for_each(PerAppLatency::reset);
        self.delivered = 0;
        self.flits_delivered = 0;
    }

    /// Fold the whole recorder state into `d` (determinism fingerprints).
    pub fn digest_into(&self, d: &mut crate::Digest) {
        d.write_u64(self.apps.len() as u64);
        for a in &self.apps {
            a.digest_into(d);
        }
        d.write_u64(self.delivered);
        d.write_u64(self.flits_delivered);
    }

    /// Merge another recorder (must track the same number of apps).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.apps.len(), other.apps.len());
        for (a, b) in self.apps.iter_mut().zip(&other.apps) {
            a.merge(b);
        }
        self.delivered += other.delivered;
        self.flits_delivered += other.flits_delivered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_app_separation() {
        let mut r = LatencyRecorder::new(2);
        r.record(0, 10, 12, 3, 1);
        r.record(0, 20, 25, 4, 5);
        r.record(1, 100, 150, 8, 5);
        assert_eq!(r.delivered(), 3);
        assert_eq!(r.flits_delivered(), 11);
        assert!((r.app(0).mean(LatencyKind::Network).unwrap() - 15.0).abs() < 1e-12);
        assert!((r.app(1).mean(LatencyKind::Network).unwrap() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn app_mean_vs_packet_mean() {
        let mut r = LatencyRecorder::new(2);
        // App 0: many cheap packets; app 1: one expensive packet.
        for _ in 0..9 {
            r.record(0, 10, 10, 1, 1);
        }
        r.record(1, 110, 110, 1, 1);
        // Packet-weighted mean = (9*10 + 110)/10 = 20.
        assert!((r.overall_mean(LatencyKind::Network).unwrap() - 20.0).abs() < 1e-12);
        // App-weighted mean = (10 + 110)/2 = 60.
        assert!((r.mean_of_app_means(LatencyKind::Network).unwrap() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn empty_app_excluded_from_app_mean() {
        let mut r = LatencyRecorder::new(3);
        r.record(0, 10, 10, 1, 1);
        r.record(2, 30, 30, 1, 1);
        assert!((r.mean_of_app_means(LatencyKind::Network).unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears() {
        let mut r = LatencyRecorder::new(1);
        r.record(0, 10, 10, 1, 1);
        r.reset();
        assert_eq!(r.delivered(), 0);
        assert!(r.overall_mean(LatencyKind::Network).is_none());
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyRecorder::new(1);
        let mut b = LatencyRecorder::new(1);
        a.record(0, 10, 10, 1, 1);
        b.record(0, 30, 30, 1, 1);
        a.merge(&b);
        assert_eq!(a.delivered(), 2);
        assert!((a.overall_mean(LatencyKind::Network).unwrap() - 20.0).abs() < 1e-12);
    }
}
