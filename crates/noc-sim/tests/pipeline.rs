//! End-to-end tests of the router pipeline and network invariants.

use noc_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

/// Simple Bernoulli uniform-random load generator for tests.
struct UniformLoad {
    /// Packet-generation probability per node per cycle.
    rate: f64,
    size: u32,
    num_nodes: u16,
    /// Stop generating after this cycle (for drain tests).
    stop_at: u64,
}

impl TrafficSource for UniformLoad {
    fn num_apps(&self) -> usize {
        1
    }

    fn generate(&mut self, node: NodeId, cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        if cycle >= self.stop_at || !rng.random_bool(self.rate) {
            return None;
        }
        let mut dst = rng.random_range(0..self.num_nodes);
        if dst == node {
            dst = (dst + 1) % self.num_nodes;
        }
        Some(NewPacket {
            dst,
            app: 0,
            class: 0,
            size: self.size,
            reply: None,
        })
    }
}

fn single_packet_net(src: NodeId, dst: NodeId, size: u32) -> Network {
    let cfg = SimConfig::table1();
    let region = RegionMap::single(&cfg);
    let pkt = NewPacket {
        dst,
        app: 0,
        class: 0,
        size,
        reply: None,
    };
    Network::new(
        cfg,
        region,
        Box::new(DuatoLocalAdaptive),
        Box::new(RoundRobin),
        Box::new(ScriptedSource::new(1, vec![(0, src, pkt)])),
        7,
    )
}

#[test]
fn single_flit_packet_delivered_with_expected_latency() {
    // One hop: node 0 -> node 1.
    let mut net = single_packet_net(0, 1, 1);
    net.run(60);
    assert!(net.is_drained());
    let rec = &net.stats.recorder;
    assert_eq!(rec.delivered(), 1);
    let lat = rec.app(0).mean(LatencyKind::Network).unwrap();
    // Pipeline: inject t0, RC t1, VA t2, SA t3 -> link, arrive t4;
    // RC t4, VA t5, SA(eject) t6, consumed t7 => 7 cycles network latency
    // for one hop with a 3-stage router + link + ejection.
    assert!(
        (6.0..=9.0).contains(&lat),
        "unexpected zero-load 1-hop latency {lat}"
    );
    assert!((net.stats.recorder.app(0).hops.mean().unwrap() - 1.0).abs() < 1e-9);
}

#[test]
fn latency_scales_with_distance() {
    let mut short = single_packet_net(0, 1, 1);
    short.run(100);
    // Corner to corner: 14 hops on an 8x8 mesh.
    let mut long = single_packet_net(0, 63, 1);
    long.run(200);
    let l_short = short
        .stats
        .recorder
        .app(0)
        .mean(LatencyKind::Network)
        .unwrap();
    let l_long = long
        .stats
        .recorder
        .app(0)
        .mean(LatencyKind::Network)
        .unwrap();
    assert_eq!(long.stats.recorder.app(0).hops.mean().unwrap(), 14.0);
    // Each extra hop costs ~3 cycles at zero load.
    let per_hop = (l_long - l_short) / 13.0;
    assert!(
        (2.5..=4.5).contains(&per_hop),
        "per-hop latency {per_hop} out of range ({l_short} -> {l_long})"
    );
}

#[test]
fn five_flit_packet_arrives_intact() {
    let mut net = single_packet_net(5, 60, 5);
    net.run(200);
    assert!(net.is_drained());
    assert_eq!(net.stats.recorder.delivered(), 1);
    assert_eq!(net.stats.injected_flits, 5);
    assert_eq!(net.stats.ejected_flits, 5);
}

#[test]
fn minimal_routing_invariant() {
    // Every delivered packet's hop count equals the Manhattan distance.
    let cfg = SimConfig::table1();
    let mut events = vec![];
    for (i, (s, d)) in [(0u16, 63u16), (7, 56), (12, 34), (33, 2), (63, 0)]
        .into_iter()
        .enumerate()
    {
        events.push((
            (i * 3) as u64,
            s,
            NewPacket {
                dst: d,
                app: 0,
                class: 0,
                size: 1,
                reply: None,
            },
        ));
    }
    let expected_hops: f64 = [(0u16, 63u16), (7, 56), (12, 34), (33, 2), (63, 0)]
        .iter()
        .map(|&(s, d)| cfg.coord_of(s).hops_to(cfg.coord_of(d)) as f64)
        .sum::<f64>()
        / 5.0;
    let mut net = Network::new(
        cfg,
        RegionMap::single(&SimConfig::table1()),
        Box::new(DuatoLocalAdaptive),
        Box::new(RoundRobin),
        Box::new(ScriptedSource::new(1, events)),
        3,
    );
    net.run(300);
    assert_eq!(net.stats.recorder.delivered(), 5);
    let mean_hops = net.stats.recorder.app(0).hops.mean().unwrap();
    assert!(
        (mean_hops - expected_hops).abs() < 1e-9,
        "non-minimal route"
    );
}

#[test]
fn flit_conservation_under_load() {
    let cfg = SimConfig::table1();
    let n = cfg.num_nodes() as u16;
    let mut net = Network::new(
        cfg,
        RegionMap::single(&SimConfig::table1()),
        Box::new(DuatoLocalAdaptive),
        Box::new(RoundRobin),
        Box::new(UniformLoad {
            rate: 0.05,
            size: 5,
            num_nodes: n,
            stop_at: u64::MAX,
        }),
        11,
    );
    for _ in 0..50 {
        net.run(100);
        assert_eq!(
            net.stats.injected_flits,
            net.stats.ejected_flits + net.flits_in_network(),
            "flit conservation violated at cycle {}",
            net.cycle()
        );
    }
    assert!(net.stats.recorder.delivered() > 1000);
}

#[test]
fn drains_after_traffic_stops() {
    let cfg = SimConfig::table1();
    let n = cfg.num_nodes() as u16;
    let mut net = Network::new(
        cfg,
        RegionMap::single(&SimConfig::table1()),
        Box::new(DuatoLocalAdaptive),
        Box::new(RoundRobin),
        Box::new(UniformLoad {
            rate: 0.1,
            size: 5,
            num_nodes: n,
            stop_at: 2000,
        }),
        13,
    );
    net.run(2000);
    assert!(net.stats.recorder.delivered() > 0);
    net.run(3000);
    assert!(net.is_drained(), "network failed to drain");
    assert_eq!(net.stats.injected_flits, net.stats.ejected_flits);
}

#[test]
fn deterministic_across_runs() {
    let run = |seed: u64| {
        let cfg = SimConfig::table1();
        let n = cfg.num_nodes() as u16;
        let mut net = Network::new(
            cfg,
            RegionMap::single(&SimConfig::table1()),
            Box::new(DuatoLocalAdaptive),
            Box::new(RoundRobin),
            Box::new(UniformLoad {
                rate: 0.08,
                size: 5,
                num_nodes: n,
                stop_at: u64::MAX,
            }),
            seed,
        );
        net.run(3000);
        (
            net.stats.recorder.delivered(),
            net.stats.injected_flits,
            net.stats
                .recorder
                .app(0)
                .mean(LatencyKind::Network)
                .unwrap(),
        )
    };
    let a = run(99);
    let b = run(99);
    assert_eq!(a, b, "same seed must reproduce identical results");
    let c = run(100);
    assert_ne!(a, c, "different seeds should differ");
}

#[test]
fn no_deadlock_under_heavy_adversarial_load() {
    // Offer far beyond saturation for a long time with each routing
    // algorithm; progress must never stall (escape VCs guarantee it).
    for routing in [
        Box::new(XyRouting) as Box<dyn RoutingAlgorithm>,
        Box::new(DuatoLocalAdaptive),
        Box::new(DbarAdaptive),
    ] {
        let cfg = SimConfig::table1();
        let n = cfg.num_nodes() as u16;
        let mut net = Network::new(
            cfg,
            RegionMap::single(&SimConfig::table1()),
            routing,
            Box::new(RoundRobin),
            Box::new(UniformLoad {
                rate: 0.9,
                size: 5,
                num_nodes: n,
                stop_at: u64::MAX,
            }),
            17,
        );
        net.run(5000);
        assert!(
            net.cycles_since_progress() < 100,
            "{}: no progress for {} cycles (deadlock?)",
            net.routing_name(),
            net.cycles_since_progress()
        );
        assert!(net.stats.recorder.delivered() > 500);
    }
}

#[test]
fn request_reply_closed_loop() {
    // A request with a reply spec generates a reply back to the requester.
    let cfg = SimConfig::table1_req_reply();
    let pkt = NewPacket {
        dst: 9,
        app: 0,
        class: 0,
        size: 1,
        reply: Some(ReplySpec {
            service_latency: 6,
            size: 5,
            class: 1,
        }),
    };
    let mut net = Network::new(
        cfg,
        RegionMap::single(&SimConfig::table1_req_reply()),
        Box::new(DuatoLocalAdaptive),
        Box::new(RoundRobin),
        Box::new(ScriptedSource::new(1, vec![(0, 0, pkt)])),
        5,
    );
    net.run(500);
    assert!(net.is_drained());
    // Two packets delivered: the request and the reply.
    assert_eq!(net.stats.recorder.delivered(), 2);
    assert_eq!(net.stats.injected_flits, 6); // 1 request + 5 reply flits
}

#[test]
fn warmup_reset_discards_warmup_packets() {
    let cfg = SimConfig::table1();
    let n = cfg.num_nodes() as u16;
    let mut net = Network::new(
        cfg,
        RegionMap::single(&SimConfig::table1()),
        Box::new(DuatoLocalAdaptive),
        Box::new(RoundRobin),
        Box::new(UniformLoad {
            rate: 0.05,
            size: 1,
            num_nodes: n,
            stop_at: u64::MAX,
        }),
        21,
    );
    net.run_warmup_measure(1000, 1000);
    let measured = net.stats.recorder.delivered();
    // Roughly 64 nodes * 0.05 * 1000 = 3200 packets; warmup excluded.
    assert!(measured > 2000 && measured < 4000, "measured {measured}");
}

#[test]
fn throughput_tracks_offered_load_below_saturation() {
    let cfg = SimConfig::table1();
    let n = cfg.num_nodes() as u16;
    let rate = 0.04; // packets/node/cycle, size 1 => 0.04 flits/node/cycle
    let mut net = Network::new(
        cfg,
        RegionMap::single(&SimConfig::table1()),
        Box::new(DuatoLocalAdaptive),
        Box::new(RoundRobin),
        Box::new(UniformLoad {
            rate,
            size: 1,
            num_nodes: n,
            stop_at: u64::MAX,
        }),
        23,
    );
    net.run_warmup_measure(2000, 5000);
    let thpt = net.stats.throughput(net.cycle(), 64);
    assert!(
        (thpt - rate).abs() < rate * 0.15,
        "throughput {thpt} vs offered {rate}"
    );
}

#[test]
fn backlog_grows_past_saturation() {
    let cfg = SimConfig::table1();
    let n = cfg.num_nodes() as u16;
    let mut net = Network::new(
        cfg,
        RegionMap::single(&SimConfig::table1()),
        Box::new(DuatoLocalAdaptive),
        Box::new(RoundRobin),
        Box::new(UniformLoad {
            rate: 0.5,
            size: 5, // 2.5 flits/node/cycle offered — far past capacity
            num_nodes: n,
            stop_at: u64::MAX,
        }),
        29,
    );
    net.run(2000);
    let b1 = net.total_backlog();
    net.run(2000);
    let b2 = net.total_backlog();
    assert!(
        b2 > b1 + 1000,
        "backlog should grow unboundedly past saturation ({b1} -> {b2})"
    );
}
