//! Order-sensitive 64-bit fingerprints for regression and determinism tests.
//!
//! The hash is FNV-1a over the little-endian bytes of each written word.
//! FNV is hand-rolled (rather than `std::hash::DefaultHasher`) because the
//! standard hasher's algorithm is explicitly unstable across Rust releases,
//! and the golden-digest regression files must survive toolchain bumps.

/// Incremental FNV-1a (64-bit) hasher.
///
/// `f64` values are hashed via their IEEE-754 bit pattern, so two runs
/// producing bit-identical floats produce identical digests — which is
/// exactly the determinism contract the simulator promises.
#[derive(Debug, Clone)]
pub struct Digest(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// Start a fresh digest.
    pub fn new() -> Self {
        Digest(FNV_OFFSET)
    }

    /// Fold one `u64` into the digest.
    #[inline]
    pub fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold one `f64` into the digest via its bit pattern.
    #[inline]
    pub fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// Fold a byte slice into the digest, length-prefixed so that
    /// `("ab", "c")` and `("a", "bc")` hash differently.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a string into the digest (UTF-8 bytes, length-prefixed).
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a of eight zero bytes, precomputed once; pins the algorithm
        // so an accidental change breaks loudly instead of silently
        // invalidating every golden file.
        let mut d = Digest::new();
        d.write_u64(0);
        let mut expect = FNV_OFFSET;
        for _ in 0..8 {
            expect = expect.wrapping_mul(FNV_PRIME);
        }
        assert_eq!(d.finish(), expect);
    }

    #[test]
    fn order_sensitive() {
        let mut a = Digest::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Digest::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_uses_bit_pattern() {
        let mut a = Digest::new();
        a.write_f64(0.0);
        let mut b = Digest::new();
        b.write_f64(-0.0);
        // 0.0 and -0.0 compare equal but have different bits; the digest
        // must see the bits (bit-identical runs, not numerically-equal runs).
        assert_ne!(a.finish(), b.finish());

        let mut c = Digest::new();
        c.write_f64(1.5);
        let mut d = Digest::new();
        d.write_f64(1.5);
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn strings_are_length_prefixed() {
        let mut a = Digest::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Digest::new();
        b.write_str("a");
        b.write_str("bc");
        // Same concatenated bytes, different boundaries: must differ.
        assert_ne!(a.finish(), b.finish());

        let mut c = Digest::new();
        c.write_str("rair");
        let mut d = Digest::new();
        d.write_bytes(b"rair");
        assert_eq!(c.finish(), d.finish());
    }
}
