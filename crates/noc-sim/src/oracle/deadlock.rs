//! Deadlock/livelock detection: a global no-progress watchdog with a
//! wait-for-graph cycle search and per-VC residency ages for diagnosis.

use super::{Checker, OracleViolation};
use crate::config::SimConfig;
use crate::ids::{opposite, NodeId, Port, NUM_PORTS, PORT_LOCAL};
use crate::network::Network;
use crate::vc::VcState;

const UNOCCUPIED: u64 = u64::MAX;

/// Flags the whole network making no crossbar/ejection progress for longer
/// than `stall_horizon` (`crate::oracle::OracleConfig::stall_horizon`)
/// while flits are present — the signature of both deadlock (cyclic waits)
/// and total livelock (allocators spinning without moving anything).
///
/// On a stall it walks the wait-for graph (switch-allocated VC → the
/// downstream input VC it feeds) looking for a cycle over VC holders; a
/// found cycle names the deadlocked resources, its absence points at an
/// allocation stall instead. The occupancy hooks additionally track how
/// long each input VC has been claimed, and the report names the oldest
/// one — a *diagnostic*, not a violation by itself: under strict-priority
/// schemes a starved VC can legitimately wait unboundedly (the very
/// interference the paper measures) while the network keeps progressing.
#[derive(Debug)]
pub struct DeadlockWatch {
    horizon: u64,
    vcs_per_port: usize,
    /// Cycle each `(router, port, vc)` became occupied; [`UNOCCUPIED`] when
    /// free. Diagnostic input to the stall report.
    since: Vec<u64>,
    /// `last_progress` value the global watchdog already reported for
    /// (re-arm: one report per distinct stall, not one per check).
    reported_progress: Option<u64>,
}

impl DeadlockWatch {
    pub fn new(cfg: &SimConfig) -> Self {
        Self {
            horizon: cfg.oracle.stall_horizon,
            vcs_per_port: cfg.vcs_per_port(),
            since: vec![UNOCCUPIED; cfg.num_routers() * NUM_PORTS * cfg.vcs_per_port()],
            reported_progress: None,
        }
    }

    fn slot(&self, router: NodeId, port: Port, vc: usize) -> usize {
        (router as usize * NUM_PORTS + port) * self.vcs_per_port + vc
    }

    /// Search the wait-for graph for a cycle: each switch-allocated
    /// (`Active`) input VC waits on the downstream input VC its output
    /// leads to. Returns the cycle as `(router, port, vc)` triples.
    fn find_wait_cycle(&self, net: &Network) -> Option<Vec<(usize, Port, usize)>> {
        let v = self.vcs_per_port;
        let slots = net.routers.len() * NUM_PORTS * v;
        // Functional graph: at most one successor per slot.
        let mut next = vec![usize::MAX; slots];
        for (i, r) in net.routers.iter().enumerate() {
            for (port, vcs) in r.inputs.iter().enumerate() {
                for (vc, ivc) in vcs.iter().enumerate() {
                    let VcState::Active { out_port, out_vc } = ivc.state else {
                        continue;
                    };
                    if out_port == PORT_LOCAL || !ivc.occupied() {
                        continue;
                    }
                    let d = Network::neighbor(&net.cfg, i, out_port);
                    next[(i * NUM_PORTS + port) * v + vc] =
                        (d * NUM_PORTS + opposite(out_port)) * v + out_vc;
                }
            }
        }
        // Color-marking walk: 0 unvisited, 1 on current path, 2 done.
        let mut color = vec![0u8; slots];
        for start in 0..slots {
            if color[start] != 0 {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = start;
            while cur != usize::MAX && color[cur] == 0 {
                color[cur] = 1;
                path.push(cur);
                cur = next[cur];
            }
            if cur != usize::MAX && color[cur] == 1 {
                let pos = path.iter().position(|&s| s == cur).unwrap();
                return Some(
                    path[pos..]
                        .iter()
                        .map(|&s| (s / (NUM_PORTS * v), s / v % NUM_PORTS, s % v))
                        .collect(),
                );
            }
            for s in path {
                color[s] = 2;
            }
        }
        None
    }
}

impl Checker for DeadlockWatch {
    fn name(&self) -> &'static str {
        "deadlock-livelock"
    }

    fn on_occupancy(&mut self, router: NodeId, port: Port, vc: usize, occupied: bool, cycle: u64) {
        let slot = self.slot(router, port, vc);
        self.since[slot] = if occupied { cycle } else { UNOCCUPIED };
    }

    fn end_of_cycle(&mut self, net: &Network, out: &mut Vec<OracleViolation>) {
        let now = net.cycle();
        let v = self.vcs_per_port;
        let stalled = now.saturating_sub(net.stats.last_progress) > self.horizon;
        if stalled
            && net.flits_in_network() > 0
            && self.reported_progress != Some(net.stats.last_progress)
        {
            self.reported_progress = Some(net.stats.last_progress);
            let diagnosis = match self.find_wait_cycle(net) {
                Some(cycle) => format!("wait-for cycle over VCs {cycle:?}"),
                None => "no wait-for cycle (allocation stall or livelock)".into(),
            };
            let oldest = self
                .since
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s != UNOCCUPIED)
                .min_by_key(|&(_, &s)| s)
                .map(|(slot, &s)| {
                    format!(
                        "; oldest stuck VC: router {} input ({}, {}) since cycle {s}",
                        slot / (NUM_PORTS * v),
                        slot / v % NUM_PORTS,
                        slot % v
                    )
                })
                .unwrap_or_default();
            out.push(OracleViolation {
                cycle: now,
                checker: self.name(),
                router: None,
                detail: format!(
                    "no crossbar progress since cycle {} with {} flits in flight; \
                     {diagnosis}{oldest}",
                    net.stats.last_progress,
                    net.flits_in_network()
                ),
            });
        }
    }
}
