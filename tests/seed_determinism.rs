//! Seed determinism: two runs with the same `SimConfig` + seed must produce
//! bit-identical `SimStats` digests for every scheme × routing combination,
//! and different seeds must (for a loaded run) produce different digests.
//! The digest covers every counter and the full latency-recorder state
//! (`SimStats::digest`), so any nondeterminism in arbitration order, RNG
//! use, or float accumulation shows up as a digest mismatch.

use noc_sim::network::Network;
use noc_sim::prelude::*;
use rair::prelude::*;
use traffic::prelude::*;

fn digest_of(scheme: &Scheme, routing: Routing, seed: u64) -> u64 {
    let cfg = SimConfig::table1();
    let (region, scenario) = two_app(&cfg, 0.4, 0.04, 0.15);
    let mut net = Network::new(
        cfg,
        region,
        routing.build(),
        scheme.build(),
        Box::new(scenario),
        seed,
    );
    net.run_warmup_measure(400, 1_000);
    net.stats.digest()
}

fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::RoRr,
        Scheme::RoAge,
        Scheme::ro_rank(vec![0.1, 0.3]),
        Scheme::rair(),
    ]
}

#[test]
fn same_seed_same_digest_across_matrix() {
    for scheme in all_schemes() {
        for routing in [Routing::Xy, Routing::Local, Routing::Dbar] {
            let a = digest_of(&scheme, routing, 42);
            let b = digest_of(&scheme, routing, 42);
            assert_eq!(
                a,
                b,
                "nondeterministic run: {}/{}",
                scheme.label(),
                routing.label()
            );
        }
    }
}

#[test]
fn different_seeds_differ() {
    // A loaded run's packet schedule depends on the seed, so distinct seeds
    // must fingerprint differently (collision odds are negligible across 3
    // pairs of 64-bit digests).
    for routing in [Routing::Xy, Routing::Local, Routing::Dbar] {
        let a = digest_of(&Scheme::rair(), routing, 1);
        let b = digest_of(&Scheme::rair(), routing, 2);
        assert_ne!(a, b, "seed ignored under {}", routing.label());
    }
}

#[test]
fn digest_differs_across_schemes() {
    // Sanity: the digest is sensitive enough to distinguish schemes on the
    // same traffic and seed.
    let rr = digest_of(&Scheme::RoRr, Routing::Local, 42);
    let rair = digest_of(&Scheme::rair(), Routing::Local, 42);
    assert_ne!(rr, rair);
}
