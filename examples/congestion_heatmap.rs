//! Congestion heatmap: visualize where interference lives on the chip and
//! how RAIR reshapes it.
//!
//! Renders per-node VC-occupancy heatmaps for the Fig. 8 two-application
//! scenario (light app on the left half sending inter-region traffic into
//! the heavily loaded right half), under round-robin and under RAIR, plus a
//! sparkline of the light application's latency over time.
//!
//! ```text
//! cargo run --release --example congestion_heatmap
//! ```

use metrics::viz::{heatmap, sparkline};
use noc_sim::network::Network;
use noc_sim::prelude::*;
use rair::prelude::*;
use traffic::prelude::*;

fn main() {
    let cfg = SimConfig::table1();
    for scheme in [Scheme::RoRr, Scheme::rair()] {
        let (region, scenario) = two_app(&cfg, 1.0, 0.035, 0.33);
        let mut net = Network::new(
            cfg.clone(),
            region,
            Routing::Local.build(),
            scheme.build(),
            Box::new(scenario),
            42,
        );
        net.run(3_000); // warm up into steady state

        // Accumulate occupancy over a window, sampling the latency of the
        // light application as we go.
        let mut acc = vec![0.0f64; cfg.num_nodes()];
        let mut lat_series = Vec::new();
        let samples = 40;
        for s in 0..samples {
            net.stats.reset_window(net.cycle());
            net.run(500);
            for (a, &c) in acc.iter_mut().zip(net.congestion_snapshot()) {
                *a += c as f64;
            }
            if s % 2 == 0 {
                lat_series.push(
                    net.stats
                        .recorder
                        .app(0)
                        .mean(LatencyKind::Network)
                        .unwrap_or(0.0),
                );
            }
        }

        println!("=== {} ===", scheme.label());
        println!("mean VC occupancy per node (left half: light app; right half: 90%-load app)");
        print!("{}", heatmap(&acc, cfg.width as usize));
        println!(
            "light app APL over time: {}  (mean {:.1} cycles)\n",
            sparkline(&lat_series),
            lat_series.iter().sum::<f64>() / lat_series.len() as f64
        );
    }
    println!("under RAIR the light application's packets cut through the hot");
    println!("half with priority, so its latency band sits visibly lower while");
    println!("the occupancy picture stays almost unchanged.");
}
