//! End-to-end tests of the static deadlock-freedom verifier through the
//! public API: injected-fault configurations produce the expected concrete
//! witnesses, `Network::new` enforces the verdict, and — the theorem the
//! verifier exists to discharge — statically verified configurations never
//! trip the runtime deadlock watchdog, across randomized region maps,
//! schemes and loads.

use noc_sim::ids::{PORT_EAST, PORT_NORTH, PORT_SOUTH, PORT_WEST};
use noc_sim::network::Network;
use noc_sim::prelude::*;
use noc_sim::routing::{escape_port, SelectCtx};
use proptest::prelude::*;
use rair::prelude::*;
use traffic::prelude::*;

/// A deliberately broken "escape" function: XY toward even-parity
/// destinations, YX toward odd. The turn union is cyclic, so the verifier
/// must reject any network built on it.
struct MixedDor;

impl RoutingAlgorithm for MixedDor {
    fn name(&self) -> &'static str {
        "MixedDOR-test"
    }
    fn adaptive_ports(&self, _cfg: &SimConfig, _cur: Coord, _dst: Coord) -> [Option<Port>; 2] {
        [None, None]
    }
    fn select(&self, _ctx: &SelectCtx<'_>, _cands: &[Port]) -> usize {
        0
    }
    fn next_hops(&self, _cfg: &SimConfig, cur: Coord, dst: Coord) -> NextHops {
        let escape = if (dst.x + dst.y).is_multiple_of(2) {
            escape_port(cur, dst)
        } else if dst.y > cur.y {
            PORT_SOUTH
        } else if dst.y < cur.y {
            PORT_NORTH
        } else if dst.x > cur.x {
            PORT_EAST
        } else {
            PORT_WEST
        };
        NextHops {
            adaptive: [None, None],
            escape,
            escape_lane: 0,
        }
    }
}

#[test]
fn escape_vcs_disabled_yields_a_cycle_witness() {
    let cfg = SimConfig::table1();
    let report = Verifier::new(&cfg, &DuatoLocalAdaptive)
        .without_escape()
        .run();
    assert!(!report.ok());
    let cycle = report
        .violations
        .iter()
        .find_map(|v| match &v.witness {
            Witness::Cycle(c) => Some(c.clone()),
            _ => None,
        })
        .expect("expected a concrete cycle witness");
    // A genuine cycle: at least 4 distinct channels (the smallest turn
    // cycle in a mesh); the closing edge back to the first is implicit.
    assert!(cycle.len() >= 4, "cycle too short: {cycle:?}");
    let distinct: std::collections::BTreeSet<_> = cycle.iter().collect();
    assert_eq!(distinct.len(), cycle.len(), "repeated channel: {cycle:?}");
}

#[test]
fn torus_without_datelines_yields_a_wrap_cycle_witness() {
    // The torus negative case behind `repro verify-config --topology torus
    // --inject-cyclic`: correct minimal dimension-order escape, but every
    // packet pinned to dateline lane 0 — the wraparound link closes the
    // lane-0 channel ring and the verifier must extract that cycle.
    let case = experiments::verify_config::torus_no_dateline_case();
    assert!(case.rejected, "no-dateline torus escape was not rejected");
    assert!(!case.witness.is_empty(), "no witness extracted");

    let cfg = SimConfig::table1_topology(TopologyKind::Torus);
    let report = Verifier::new(&cfg, &experiments::verify_config::NoDatelineEscape).run();
    assert!(!report.ok());
    let cycle = report
        .violations
        .iter()
        .find_map(|v| match &v.witness {
            Witness::Cycle(c) => Some(c.clone()),
            _ => None,
        })
        .expect("expected a concrete cycle witness");
    // The deadlock lives on the un-switched lane: every channel in the
    // witness is a lane-0 escape channel.
    assert!(cycle.len() >= 3, "cycle too short: {cycle:?}");
    assert!(
        cycle.iter().all(|ch| ch.lane == 0),
        "cycle must stay on lane 0: {cycle:?}"
    );
    // Sanity: the properly datelined escape on the same config is clean.
    let clean = Verifier::new(&cfg, &DuatoLocalAdaptive).run();
    assert!(clean.ok(), "{:?}", clean.violations.first());
}

#[test]
fn severed_dimension_yields_unreachable_pairs() {
    let cfg = SimConfig::table1();
    let report = Verifier::new(&cfg, &DuatoLocalAdaptive)
        .with_link_filter(|router, port| {
            let c = SimConfig::table1().coord_of(router);
            !((c.x == 3 && port == PORT_EAST) || (c.x == 4 && port == PORT_WEST))
        })
        .run();
    assert!(!report.ok());
    assert!(report.violations.iter().any(|v| matches!(
        v.witness,
        Witness::UnreachablePair { .. } | Witness::NoEscape { .. }
    )));
}

#[test]
fn inconsistent_lbdr_bits_are_rejected() {
    let cfg = SimConfig::table1();
    let mut bits = rair::lbdr::ConnectivityBits::from_region(&cfg, &RegionMap::quadrants(&cfg));
    assert!(
        bits.check_consistency(&cfg).is_empty(),
        "clean before fault"
    );
    // Sever an intra-region link (router 0 → router 1 inside quadrant 0):
    // region boundaries are already cleared symmetrically, so the fault
    // must hit an interior link to create an asymmetry.
    bits.sever(0, PORT_EAST);
    let errs = bits.check_consistency(&cfg);
    assert_eq!(errs.len(), 1, "{errs:?}");
    assert!(errs[0].contains("asymmetric"), "{}", errs[0]);
}

/// A config with the verifier force-enabled and recording (not panicking).
fn verified_cfg() -> SimConfig {
    let mut cfg = SimConfig::table1();
    cfg.verify = VerifyConfig::forced();
    cfg
}

#[test]
#[should_panic(expected = "static verifier")]
fn network_new_panics_on_a_cyclic_routing_function() {
    let mut cfg = SimConfig::table1();
    cfg.verify = VerifyConfig {
        enabled: Some(true),
        panic_on_violation: Some(true),
    };
    let region = RegionMap::single(&cfg);
    let _net = Network::new(
        cfg.clone(),
        region,
        Box::new(MixedDor),
        Scheme::RoRr.build(),
        Box::new(NoTraffic),
        1,
    );
}

#[test]
fn network_new_records_violations_when_panic_disabled() {
    let cfg = verified_cfg();
    let region = RegionMap::single(&cfg);
    let net = Network::new(
        cfg.clone(),
        region,
        Box::new(MixedDor),
        Scheme::RoRr.build(),
        Box::new(NoTraffic),
        1,
    );
    assert!(net.stats.verify_violation_count > 0);
    assert!(net
        .stats
        .verify_violations
        .iter()
        .any(|v| matches!(v.witness, Witness::Cycle(_))));
}

#[test]
fn shipped_routings_verify_clean_through_network_new() {
    let cfg = verified_cfg();
    for routing in [Routing::Xy, Routing::Local, Routing::Dbar] {
        let (region, scenario) = two_app(&cfg, 0.5, 0.02, 0.02);
        let net = Network::new(
            cfg.clone(),
            region,
            routing.build(),
            Scheme::rair().build(),
            Box::new(scenario),
            1,
        );
        assert_eq!(
            net.stats.verify_violation_count,
            0,
            "{}: {:?}",
            routing.label(),
            net.stats.verify_violations
        );
    }
}

fn any_routing() -> impl Strategy<Value = Routing> {
    prop_oneof![Just(Routing::Xy), Just(Routing::Local), Just(Routing::Dbar)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any rectangular partition of the mesh (random vertical and
    /// horizontal cuts → four quadrant regions) verifies clean under LBDR
    /// confinement: rectangles are convex under minimal routing, so every
    /// in-region pair keeps a legal minimal path and the confined escape
    /// CDG stays acyclic.
    #[test]
    fn random_rectangular_region_maps_verify_under_lbdr(
        xcut in 1u8..8,
        ycut in 1u8..8,
        routing in any_routing(),
    ) {
        let cfg = SimConfig::table1();
        let region = RegionMap::from_fn(&cfg, 4, |c| {
            u8::from(c.x >= xcut) + 2 * u8::from(c.y >= ycut)
        });
        let report = rair::verify::verify_lbdr(&cfg, &region, routing.build().as_ref());
        prop_assert!(
            report.ok(),
            "cuts ({xcut},{ycut}) {}: {:?}",
            routing.label(),
            report.violations.first()
        );
        prop_assert!(report.pairs_checked > 0);
    }

    /// The verifier's soundness contract at runtime: a configuration the
    /// static pass proves clean never trips the oracle's deadlock-livelock
    /// watchdog in simulation.
    #[test]
    fn verified_configs_never_trip_the_deadlock_watchdog(
        routing in any_routing(),
        p in 0.0f64..=1.0,
        r0 in 0.01f64..0.12,
        r1 in 0.01f64..0.3,
        seed in 0u64..1000,
    ) {
        let mut cfg = verified_cfg();
        cfg.oracle = OracleConfig {
            enabled: Some(true),
            panic_on_violation: Some(false),
            check_interval: 1,
            stall_horizon: 2_000,
            ..OracleConfig::default()
        };
        let (region, scenario) = two_app(&cfg, p, r0, r1);
        let mut net = Network::new(
            cfg.clone(),
            region,
            routing.build(),
            Scheme::rair().build(),
            Box::new(scenario),
            seed,
        );
        prop_assert_eq!(net.stats.verify_violation_count, 0);
        net.run(3_000);
        net.check_oracle_now();
        let deadlocks = net
            .stats
            .oracle_violations
            .iter()
            .filter(|v| v.checker == "deadlock-livelock")
            .count();
        prop_assert_eq!(deadlocks, 0, "watchdog fired on a verified config");
    }
}
