//! The pipelined virtual-channel router.
//!
//! State only — the pipeline stages themselves are driven by
//! [`crate::network::Network`], which owns all routers and moves flits
//! between them. Each router holds:
//!
//! * per-input-port VC buffers and their pipeline state,
//! * output-VC allocation table and credit counters toward downstream,
//! * rotating-arbiter pointers for VA_out, SA_in and SA_out,
//! * the DPA occupancy registers (`OVC_n`, `OVC_f`) and the hysteresis
//!   priority bit of §IV.C — maintained generically, consumed by the RAIR
//!   policy.

use crate::bits::low_bits;
use crate::config::SimConfig;
use crate::ids::{AppId, Coord, NodeId, Port, APP_NONE, NUM_PORTS, PORT_LOCAL};
use crate::vc::{InputVc, VcState};

/// A single mesh router.
#[derive(Debug)]
pub struct Router {
    /// Node id this router serves.
    pub id: NodeId,
    /// Mesh coordinate.
    pub coord: Coord,
    /// Region tag: the application assigned to this tile (`APP_NONE` if
    /// unassigned). Packets whose app matches are native traffic here.
    pub app: AppId,

    /// Input VCs, `inputs[port][vc]`.
    pub inputs: Vec<Vec<InputVc>>,
    /// Output-VC allocation: `out_alloc[port][vc] = Some((in_port, in_vc))`
    /// while a packet holds the output VC.
    pub out_alloc: Vec<Vec<Option<(Port, usize)>>>,
    /// Credits toward the downstream input VC, `credits[port][vc]`.
    /// The local (ejection) port has effectively infinite credit.
    pub credits: Vec<Vec<usize>>,

    /// VA_out rotating pointer, one per output VC (flattened `port*V+vc`),
    /// rotating over input-VC keys (flattened `in_port*V+in_vc`).
    pub va_ptr: Vec<usize>,
    /// SA_in rotating pointer per input port (over VC indices).
    pub sa_in_ptr: Vec<usize>,
    /// SA_out rotating pointer per output port (over input-port indices).
    pub sa_out_ptr: Vec<usize>,

    /// Consecutive cycles each routed (Active) input VC has held a head
    /// flit without moving it through the crossbar — whether it lost
    /// arbitration or was credit-starved — flattened `port * vcs + vc`.
    /// Maintained by the SA band only while the oracle observes the run
    /// (`PhaseOut::record_notes`) — the starvation observer's raw signal,
    /// never read by the kernel itself.
    pub arb_wait: Vec<u32>,

    /// DPA register: occupied VCs holding native traffic (previous cycle).
    pub ovc_native: u32,
    /// DPA register: occupied VCs holding foreign traffic (previous cycle).
    pub ovc_foreign: u32,
    /// DPA hysteresis output: `true` = native traffic currently has the
    /// high priority. Defaults to `false` — foreign-high is the DPA default
    /// (§IV.C case 3).
    pub dpa_native_high: bool,

    // --- Active-set occupancy summary (maintained incrementally by the
    // network at the only two occupancy transition points: head written
    // into an empty idle VC, tail departed through the crossbar).
    /// Occupied input VCs per input port.
    pub occ_port: [u16; NUM_PORTS],
    /// Total occupied input VCs (sum of `occ_port`). Zero ⇔ the router has
    /// no RC/VA/SA work and the per-cycle kernel may skip it entirely.
    pub occ_vcs: u16,
    /// Set whenever a VC changed occupancy since the last per-cycle state
    /// update; while clear, the DPA registers and the congestion export
    /// cannot change, so the update may be skipped.
    pub occ_dirty: bool,

    // --- Bitset hot-path state. One bit per VC slot, flattened
    // `port * vcs + vc` (config validation guarantees this fits in a u64).
    // Maintained at the same transition points as the summaries above, so
    // the oracle hooks double as coherence checkpoints.
    /// VCs per port (cached from config; the bit-flattening stride).
    pub(crate) vcs: usize,
    /// Downstream buffer depth (cached from config; full-credit threshold).
    pub(crate) vc_depth: usize,
    /// Bit set ⇔ the input VC is occupied. SA/VA/RC candidate enumeration
    /// iterates these bits instead of scanning `inputs`.
    pub occ_bits: u64,
    /// Bit set ⇔ the output VC has no holder (`out_alloc[..] == None`).
    pub out_free: u64,
    /// Bit set ⇔ all credits returned (`credits == vc_depth`) — the atomic
    /// reallocation gate. Local-port bits are always set (infinite credit).
    pub credits_full: u64,
    /// Bit set ⇔ at least one credit available (`credits > 0`). Local-port
    /// bits are always set.
    pub credits_avail: u64,
}

impl Router {
    /// Create an idle router with full credits.
    pub fn new(cfg: &SimConfig, id: NodeId, coord: Coord, app: AppId) -> Self {
        let v = cfg.vcs_per_port();
        // `validate()` caps NUM_PORTS * vcs_per_port() at 64, so the checked
        // helper is exact (the old `>= 64 ? !0` branch silently saturated).
        let valid = low_bits(NUM_PORTS * v);
        Self {
            id,
            coord,
            app,
            inputs: (0..NUM_PORTS)
                .map(|_| (0..v).map(|_| InputVc::new(cfg.vc_depth)).collect())
                .collect(),
            out_alloc: vec![vec![None; v]; NUM_PORTS],
            credits: vec![vec![cfg.vc_depth; v]; NUM_PORTS],
            va_ptr: vec![0; NUM_PORTS * v],
            sa_in_ptr: vec![0; NUM_PORTS],
            sa_out_ptr: vec![0; NUM_PORTS],
            arb_wait: vec![0; NUM_PORTS * v],
            ovc_native: 0,
            ovc_foreign: 0,
            dpa_native_high: false,
            occ_port: [0; NUM_PORTS],
            occ_vcs: 0,
            // Start dirty so the first state update always runs.
            occ_dirty: true,
            vcs: v,
            vc_depth: cfg.vc_depth,
            occ_bits: 0,
            out_free: valid,
            credits_full: valid,
            credits_avail: valid,
        }
    }

    /// The bit representing VC slot `(port, vc)` in the flattened bitsets.
    #[inline]
    pub fn vc_bit(&self, port: Port, vc: usize) -> u64 {
        debug_assert!(vc < self.vcs);
        1u64 << (port * self.vcs + vc)
    }

    /// Mask of all valid VC slots (low `NUM_PORTS * vcs` bits).
    #[inline]
    pub fn valid_vc_mask(&self) -> u64 {
        low_bits(NUM_PORTS * self.vcs)
    }

    /// Record that input VC `(port, vc)` transitioned unoccupied → occupied.
    #[inline]
    pub fn note_vc_occupied(&mut self, port: Port, vc: usize) {
        debug_assert_eq!(self.occ_bits & self.vc_bit(port, vc), 0);
        self.occ_port[port] += 1;
        self.occ_vcs += 1;
        self.occ_bits |= self.vc_bit(port, vc);
        self.occ_dirty = true;
    }

    /// Record that input VC `(port, vc)` transitioned occupied → unoccupied.
    #[inline]
    pub fn note_vc_freed(&mut self, port: Port, vc: usize) {
        debug_assert!(self.occ_port[port] > 0 && self.occ_vcs > 0);
        debug_assert_ne!(self.occ_bits & self.vc_bit(port, vc), 0);
        self.occ_port[port] -= 1;
        self.occ_vcs -= 1;
        self.occ_bits &= !self.vc_bit(port, vc);
        self.occ_dirty = true;
    }

    /// Consume one credit toward downstream `(port, vc)`, keeping the
    /// credit bitmaps coherent. The local port never consumes credits.
    #[inline]
    pub fn take_credit(&mut self, port: Port, vc: usize) {
        let bit = self.vc_bit(port, vc);
        let c = &mut self.credits[port][vc];
        debug_assert!(*c > 0);
        *c -= 1;
        let empty = *c == 0;
        self.credits_full &= !bit;
        if empty {
            self.credits_avail &= !bit;
        }
    }

    /// Return one credit from downstream `(port, vc)`.
    #[inline]
    pub fn return_credit(&mut self, port: Port, vc: usize) {
        let bit = self.vc_bit(port, vc);
        let c = &mut self.credits[port][vc];
        *c += 1;
        debug_assert!(*c <= self.vc_depth);
        let full = *c == self.vc_depth;
        self.credits_avail |= bit;
        if full {
            self.credits_full |= bit;
        }
    }

    /// Grant output VC `(port, vc)` to `holder = (in_port, in_vc)`.
    #[inline]
    pub fn alloc_out_vc(&mut self, port: Port, vc: usize, holder: (Port, usize)) {
        debug_assert!(self.out_alloc[port][vc].is_none());
        self.out_alloc[port][vc] = Some(holder);
        self.out_free &= !self.vc_bit(port, vc);
    }

    /// Release output VC `(port, vc)` (tail departed through the crossbar).
    #[inline]
    pub fn release_out_vc(&mut self, port: Port, vc: usize) {
        debug_assert!(self.out_alloc[port][vc].is_some());
        self.out_alloc[port][vc] = None;
        self.out_free |= self.vc_bit(port, vc);
    }

    /// Mask of output VCs a new packet may be allocated: no holder AND the
    /// downstream buffer fully drained (atomic VCs). Local-port bits are
    /// exact because local credits are never consumed.
    #[inline]
    pub fn allocatable_mask(&self) -> u64 {
        self.out_free & self.credits_full
    }

    /// Recompute all four bitsets by exhaustive scan (the slow definition
    /// the incremental bitmaps must always agree with). Returns
    /// `(occ_bits, out_free, credits_full, credits_avail)`.
    pub fn recount_bitsets(&self) -> (u64, u64, u64, u64) {
        let mut occ = 0u64;
        let mut free = 0u64;
        let mut full = 0u64;
        let mut avail = 0u64;
        for port in 0..NUM_PORTS {
            for vc in 0..self.vcs {
                let bit = 1u64 << (port * self.vcs + vc);
                if self.inputs[port][vc].occupied() {
                    occ |= bit;
                }
                if self.out_alloc[port][vc].is_none() {
                    free |= bit;
                }
                if self.credits[port][vc] == self.vc_depth {
                    full |= bit;
                }
                if self.credits[port][vc] > 0 {
                    avail |= bit;
                }
            }
        }
        (occ, free, full, avail)
    }

    /// Recompute the occupancy summary by exhaustive scan (the slow way the
    /// incremental counters must always agree with).
    pub fn recount_occupancy_summary(&self) -> ([u16; NUM_PORTS], u16) {
        let mut per_port = [0u16; NUM_PORTS];
        let mut total = 0u16;
        for (port, vcs) in self.inputs.iter().enumerate() {
            for ivc in vcs {
                if ivc.occupied() {
                    per_port[port] += 1;
                    total += 1;
                }
            }
        }
        (per_port, total)
    }

    /// Is `app` native traffic at this router? Unassigned routers treat all
    /// traffic as native (no discrimination).
    #[inline]
    pub fn is_native(&self, app: AppId) -> bool {
        self.app == APP_NONE || self.app == app
    }

    /// Can output VC `(port, vc)` be allocated to a new packet? Atomic VCs
    /// (Table 1) are only reallocated when the downstream buffer is fully
    /// drained (all credits returned) and the previous holder released it.
    #[inline]
    pub fn out_vc_allocatable(&self, cfg: &SimConfig, port: Port, vc: usize) -> bool {
        self.out_alloc[port][vc].is_none()
            && (port == PORT_LOCAL || self.credits[port][vc] == cfg.vc_depth)
    }

    /// Is there a credit available to forward one flit on `(port, vc)`?
    #[inline]
    pub fn has_credit(&self, port: Port, vc: usize) -> bool {
        port == PORT_LOCAL || self.credits[port][vc] > 0
    }

    /// Count occupied input VCs, split into (native, foreign) with respect
    /// to this router's region tag. Feeds the DPA registers: the paper
    /// counts *all* VCs in the router, not just one port, to tolerate
    /// non-uniform per-port status (§IV.C).
    pub fn count_occupancy(&self) -> (u32, u32) {
        let mut native = 0;
        let mut foreign = 0;
        for vcs in &self.inputs {
            for ivc in vcs {
                if !ivc.occupied() {
                    continue;
                }
                if let Some(a) = ivc.holder_app() {
                    if self.is_native(a) {
                        native += 1;
                    } else {
                        foreign += 1;
                    }
                }
            }
        }
        (native, foreign)
    }

    /// Number of occupied *adaptive* input VCs — the congestion metric
    /// exported to congestion-aware routing (local and DBAR selection).
    pub fn adaptive_occupancy(&self, cfg: &SimConfig) -> u16 {
        let mut n = 0;
        for vcs in &self.inputs {
            for vc in cfg.adaptive_vc_range() {
                if vcs[vc].occupied() {
                    n += 1;
                }
            }
        }
        n
    }

    /// Occupied adaptive input VCs split by regional/global tag.
    pub fn tag_occupancy(&self, cfg: &SimConfig) -> (u16, u16) {
        let mut regional = 0;
        let mut global = 0;
        for vcs in &self.inputs {
            for vc in cfg.adaptive_vc_range() {
                if vcs[vc].occupied() {
                    match cfg.vc_class(vc) {
                        crate::vc::VcClass::Adaptive {
                            tag: crate::vc::VcTag::Regional,
                        } => regional += 1,
                        crate::vc::VcClass::Adaptive {
                            tag: crate::vc::VcTag::Global,
                        } => global += 1,
                        crate::vc::VcClass::Escape { .. } => {}
                    }
                }
            }
        }
        (regional, global)
    }

    /// Total flits buffered in this router's input VCs (conservation checks).
    pub fn buffered_flits(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|vcs| vcs.iter())
            .map(|vc| vc.buf.len())
            .sum()
    }

    /// True when the router holds no packets at all.
    pub fn is_idle(&self) -> bool {
        self.inputs
            .iter()
            .flat_map(|vcs| vcs.iter())
            .all(|vc| !vc.occupied() && vc.state == VcState::Idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Flit, FlitKind, PacketInfo};

    fn cfg() -> SimConfig {
        SimConfig::table1()
    }

    fn mk() -> Router {
        let c = cfg();
        Router::new(&c, 9, c.coord_of(9), 1)
    }

    fn put_flit(r: &mut Router, port: Port, vc: usize, app: AppId) {
        r.inputs[port][vc].buf.push_back(Flit {
            kind: FlitKind::Single,
            seq: 0,
            hops: 0,
            payload: 0,
            crc: crate::flit::crc16(0),
            info: PacketInfo {
                id: 0,
                src: 0,
                dst: 9,
                app,
                class: 0,
                size: 1,
                birth: 0,
                inject: 0,
                reply: None,
            },
        });
        r.inputs[port][vc].holder = Some(app);
        r.note_vc_occupied(port, vc);
    }

    #[test]
    fn max_radix_vc_bitmaps_stay_in_word_bounds() {
        // The densest legal VC layout: a 4-class torus (8 escape lanes per
        // port) plus 4 adaptive VCs → 12 VCs/port, 60 of the 64 u64 slots
        // used. Every bitset must come from `low_bits` (no `1 << 64`-class
        // overflow) and the top unused bits must stay clear.
        let c = SimConfig {
            topology: crate::topology::TopologyKind::Torus,
            num_classes: 4,
            adaptive_vcs: 4,
            regional_vcs: 2,
            ..SimConfig::table1()
        };
        c.validate().expect("densest layout must validate");
        assert_eq!(c.vcs_per_port(), 12);
        assert_eq!(NUM_PORTS * c.vcs_per_port(), 60);
        let r = Router::new(&c, 0, c.coord_of(0), 0);
        assert_eq!(r.valid_vc_mask(), crate::bits::low_bits(60));
        assert_eq!(r.valid_vc_mask().count_ones(), 60);
        assert_eq!(r.out_free, r.valid_vc_mask());
        assert_eq!(r.credits_full, r.valid_vc_mask());
        // The highest valid slot is bit 59; its single-bit mask is exact.
        assert_eq!(r.vc_bit(NUM_PORTS - 1, c.vcs_per_port() - 1), 1u64 << 59);

        // One more adaptive VC would need 65 slots — validate must reject
        // it rather than let a mask construction overflow at runtime.
        let over = SimConfig {
            adaptive_vcs: 5,
            ..c
        };
        assert!(over.validate().is_err());
    }

    #[test]
    fn fresh_router_full_credits_and_idle() {
        let r = mk();
        let c = cfg();
        assert!(r.is_idle());
        for p in 0..NUM_PORTS {
            for v in 0..c.vcs_per_port() {
                assert!(r.out_vc_allocatable(&c, p, v));
                assert!(r.has_credit(p, v));
            }
        }
        assert_eq!(r.count_occupancy(), (0, 0));
        assert_eq!(r.adaptive_occupancy(&c), 0);
    }

    #[test]
    fn native_foreign_occupancy_split() {
        let mut r = mk();
        put_flit(&mut r, 1, 1, 1); // native (router app = 1)
        put_flit(&mut r, 2, 2, 0); // foreign
        put_flit(&mut r, 3, 3, 2); // foreign
        assert_eq!(r.count_occupancy(), (1, 2));
        assert!(!r.is_idle());
    }

    #[test]
    fn unassigned_router_counts_all_native() {
        let c = cfg();
        let mut r = Router::new(&c, 0, c.coord_of(0), APP_NONE);
        put_flit(&mut r, 1, 1, 0);
        put_flit(&mut r, 2, 2, 5);
        assert_eq!(r.count_occupancy(), (2, 0));
    }

    #[test]
    fn atomic_reallocation_gate() {
        let mut r = mk();
        let c = cfg();
        // Simulate a partially drained downstream buffer.
        r.credits[1][2] = c.vc_depth - 1;
        assert!(!r.out_vc_allocatable(&c, 1, 2));
        r.credits[1][2] = c.vc_depth;
        assert!(r.out_vc_allocatable(&c, 1, 2));
        r.out_alloc[1][2] = Some((0, 0));
        assert!(!r.out_vc_allocatable(&c, 1, 2));
    }

    #[test]
    fn local_port_always_has_credit() {
        let mut r = mk();
        r.credits[PORT_LOCAL][0] = 0;
        assert!(r.has_credit(PORT_LOCAL, 0));
        assert!(!{
            r.credits[1][0] = 0;
            r.has_credit(1, 0)
        });
    }

    #[test]
    fn occupancy_summary_tracks_transitions() {
        let mut r = mk();
        assert_eq!(r.recount_occupancy_summary(), (r.occ_port, r.occ_vcs));
        assert!(r.occ_dirty, "fresh router must start dirty");
        r.occ_dirty = false;
        put_flit(&mut r, 1, 0, 1);
        put_flit(&mut r, 1, 2, 0);
        put_flit(&mut r, 3, 1, 2);
        assert_eq!(r.occ_vcs, 3);
        assert_eq!(r.occ_port[1], 2);
        assert_eq!(r.occ_port[3], 1);
        assert!(r.occ_dirty);
        assert_eq!(r.recount_occupancy_summary(), (r.occ_port, r.occ_vcs));
        // Free one back down and re-check agreement with the slow scan.
        r.inputs[1][0].buf.clear();
        r.inputs[1][0].holder = None;
        r.note_vc_freed(1, 0);
        assert_eq!(r.occ_vcs, 2);
        assert_eq!(r.recount_occupancy_summary(), (r.occ_port, r.occ_vcs));
    }

    #[test]
    fn bitsets_track_transitions() {
        let mut r = mk();
        let c = cfg();
        assert_eq!(
            r.recount_bitsets(),
            (r.occ_bits, r.out_free, r.credits_full, r.credits_avail)
        );
        assert_eq!(r.occ_bits, 0);
        assert_eq!(r.out_free, r.valid_vc_mask());

        put_flit(&mut r, 1, 2, 0);
        put_flit(&mut r, 3, 0, 1);
        assert_eq!(r.occ_bits, r.vc_bit(1, 2) | r.vc_bit(3, 0));

        // Allocate an output VC and drain the downstream buffer by one.
        r.alloc_out_vc(2, 3, (1, 2));
        r.take_credit(2, 3);
        assert!(!r.out_vc_allocatable(&c, 2, 3));
        assert_eq!(r.allocatable_mask() & r.vc_bit(2, 3), 0);
        assert_ne!(r.credits_avail & r.vc_bit(2, 3), 0);
        assert_eq!(
            r.recount_bitsets(),
            (r.occ_bits, r.out_free, r.credits_full, r.credits_avail)
        );

        // Drain to zero credits: availability bit clears too.
        for _ in 1..c.vc_depth {
            r.take_credit(2, 3);
        }
        assert_eq!(r.credits_avail & r.vc_bit(2, 3), 0);
        assert!(!r.has_credit(2, 3));

        // Return everything and release: slot becomes allocatable again.
        for _ in 0..c.vc_depth {
            r.return_credit(2, 3);
        }
        r.release_out_vc(2, 3);
        assert_ne!(r.allocatable_mask() & r.vc_bit(2, 3), 0);
        r.inputs[1][2].buf.clear();
        r.inputs[1][2].holder = None;
        r.note_vc_freed(1, 2);
        assert_eq!(
            r.recount_bitsets(),
            (r.occ_bits, r.out_free, r.credits_full, r.credits_avail)
        );
    }

    #[test]
    fn holder_classifies_drained_active_vc() {
        // The DPA registers must keep counting a VC whose flits all moved
        // on (tail still upstream) — the case the buggy holder lookup lost.
        let mut r = mk(); // router app = 1
        put_flit(&mut r, 2, 1, 0); // foreign
        r.inputs[2][1].state = VcState::Active {
            out_port: 1,
            out_vc: 0,
        };
        r.inputs[2][1].buf.clear(); // flits forwarded, VC still held
        assert_eq!(r.count_occupancy(), (0, 1));
    }

    #[test]
    fn adaptive_occupancy_ignores_escape_vcs() {
        let mut r = mk();
        let c = cfg();
        put_flit(&mut r, 1, c.escape_vc(0), 0); // escape VC
        assert_eq!(r.adaptive_occupancy(&c), 0);
        put_flit(&mut r, 1, c.adaptive_vc_range().start, 0);
        assert_eq!(r.adaptive_occupancy(&c), 1);
    }
}
