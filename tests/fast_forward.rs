//! Bit-identity and boundary discipline of the idle fast-forward.
//!
//! The event-driven kernel jumps the clock over provably-idle spans (no
//! occupied VC, nothing in flight, source promises silence). These tests
//! pin its contract: runs are digest-identical to plain ticking across the
//! scheme × routing matrix and under randomized scripted workloads, the
//! jump never crosses a `run()` boundary (so warmup/measurement windows are
//! exact), and the invariant oracle observes exactly the same end-of-cycle
//! scans it would under plain ticking.

use noc_sim::network::Network;
use noc_sim::oracle::OracleConfig;
use noc_sim::prelude::*;
use proptest::prelude::*;
use rair::prelude::*;
use traffic::prelude::*;
use traffic::trace::{Trace, TraceReplay};

/// Build a network over a deterministic trace replay (RNG-free, so the
/// fast-forward can engage on idle gaps).
fn replay_net(trace: &Trace, region: &RegionMap, scheme: &Scheme, routing: Routing) -> Network {
    let cfg = SimConfig::table1();
    Network::new(
        cfg,
        region.clone(),
        routing.build(),
        scheme.build(),
        Box::new(TraceReplay::new(trace, 64)),
        42,
    )
}

#[test]
fn fast_forward_is_digest_identical_across_matrix() {
    let cfg = SimConfig::table1();
    // Light and moderate loads; light traces leave real idle gaps for the
    // fast-forward to jump.
    for &(p, r0, r1) in &[(0.2, 0.01, 0.01), (0.5, 0.08, 0.1)] {
        let (region, scenario) = two_app(&cfg, p, r0, r1);
        let trace = Trace::capture(scenario, 64, 1_200, 7);
        for scheme in [
            Scheme::RoRr,
            Scheme::RoAge,
            Scheme::ro_rank(vec![0.1, 0.9]),
            Scheme::rair(),
        ] {
            for routing in [Routing::Xy, Routing::Local, Routing::Dbar] {
                let mut fast = replay_net(&trace, &region, &scheme, routing);
                fast.run(1_500);
                let mut plain = replay_net(&trace, &region, &scheme, routing);
                plain.set_fast_forward(false);
                plain.run(1_500);
                let mut exhaustive = replay_net(&trace, &region, &scheme, routing);
                exhaustive.set_fast_forward(false);
                exhaustive.set_force_exhaustive(true);
                exhaustive.run(1_500);
                assert_eq!(fast.cycle(), plain.cycle());
                assert_eq!(
                    fast.stats.digest(),
                    plain.stats.digest(),
                    "fast-forward diverged from plain ticking: {} {:?} p={p} r0={r0} r1={r1}",
                    scheme.label(),
                    routing,
                );
                assert_eq!(
                    fast.stats.digest(),
                    exhaustive.stats.digest(),
                    "fast-forward diverged from exhaustive: {} {:?} p={p} r0={r0} r1={r1}",
                    scheme.label(),
                    routing,
                );
            }
        }
    }
}

#[test]
fn fast_forward_engages_on_sparse_traffic() {
    let pkt = NewPacket {
        dst: 9,
        app: 0,
        class: 0,
        size: 1,
        reply: None,
    };
    let cfg = SimConfig::table1();
    let mut net = Network::new(
        cfg,
        RegionMap::single(&SimConfig::table1()),
        Box::new(DuatoLocalAdaptive),
        Box::new(RoundRobin),
        Box::new(ScriptedSource::new(1, vec![(500, 0, pkt), (3_000, 5, pkt)])),
        1,
    );
    net.run(4_000);
    assert_eq!(net.cycle(), 4_000);
    assert!(
        net.stats.idle_cycles_skipped > 3_000,
        "sparse run skipped only {} cycles",
        net.stats.idle_cycles_skipped
    );
    assert_eq!(net.stats.recorder.delivered(), 2);
}

#[test]
fn fast_forward_never_crosses_run_boundaries() {
    // The only injection sits at cycle 5000, beyond the 1000-cycle warmup:
    // the jump must stop at the warmup boundary so the measurement window
    // opens exactly at cycle 1000.
    let pkt = NewPacket {
        dst: 30,
        app: 0,
        class: 0,
        size: 5,
        reply: None,
    };
    let cfg = SimConfig::table1();
    let mut net = Network::new(
        cfg,
        RegionMap::single(&SimConfig::table1()),
        Box::new(DuatoLocalAdaptive),
        Box::new(RoundRobin),
        Box::new(ScriptedSource::new(1, vec![(5_000, 0, pkt)])),
        1,
    );
    net.run_warmup_measure(1_000, 10_000);
    assert_eq!(
        net.stats.measure_start, 1_000,
        "jumped past the warmup boundary"
    );
    assert_eq!(net.cycle(), 11_000);
    assert_eq!(net.stats.recorder.delivered(), 1);
    // The packet (injected after warmup) was measured, not lost to the jump.
    assert!(net
        .stats
        .recorder
        .app(0)
        .mean(LatencyKind::Network)
        .is_some());
}

#[test]
fn fast_forward_preserves_oracle_scan_schedule() {
    // A long idle gap under a forced oracle with the default 16-cycle scan
    // interval: the fast-forward must replay every scheduled scan it jumps
    // over, so both kernels report the identical scan count and verdict.
    let pkt = NewPacket {
        dst: 9,
        app: 0,
        class: 0,
        size: 1,
        reply: None,
    };
    let run = |fast: bool| -> Network {
        let mut cfg = SimConfig::table1();
        cfg.oracle = OracleConfig::forced();
        cfg.oracle.check_interval = 16;
        let mut net = Network::new(
            cfg,
            RegionMap::single(&SimConfig::table1()),
            Box::new(DuatoLocalAdaptive),
            Box::new(RoundRobin),
            Box::new(ScriptedSource::new(1, vec![(100, 0, pkt), (1_900, 3, pkt)])),
            1,
        );
        net.set_fast_forward(fast);
        net.run(2_048);
        net
    };
    let fast = run(true);
    let plain = run(false);
    assert!(
        fast.stats.idle_cycles_skipped > 1_000,
        "fast-forward never engaged"
    );
    assert_eq!(
        fast.oracle_scans(),
        plain.oracle_scans(),
        "fast-forward changed the oracle scan schedule"
    );
    assert!(fast.oracle_scans() >= 2_048 / 16);
    assert_eq!(fast.stats.oracle_violation_count, 0);
    assert_eq!(fast.stats.digest(), plain.stats.digest());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized scripted workloads: arbitrary event times (with long
    /// gaps), sources, sizes — the fast-forward run must be digest-identical
    /// to plain ticking, cycle for cycle.
    #[test]
    fn fast_forward_matches_plain_on_random_scripts(
        events in proptest::collection::vec(
            (0u64..4_000, 0u16..64, 0u16..64, prop_oneof![Just(1u32), Just(5u32)]),
            0..40,
        ),
        split in 1u64..4_500,
    ) {
        let script: Vec<(u64, NodeId, NewPacket)> = events
            .iter()
            .map(|&(cycle, node, dst, size)| {
                let dst = if dst == node { (dst + 1) % 64 } else { dst };
                (cycle, node, NewPacket { dst, app: 0, class: 0, size, reply: None })
            })
            .collect();
        let build = || {
            Network::new(
                SimConfig::table1(),
                RegionMap::single(&SimConfig::table1()),
                Box::new(DuatoLocalAdaptive),
                Box::new(RoundRobin),
                Box::new(ScriptedSource::new(1, script.clone())),
                9,
            )
        };
        // Split the span into two run() calls to also exercise boundary
        // clamping at an arbitrary point.
        let mut fast = build();
        fast.run(split);
        prop_assert_eq!(fast.cycle(), split);
        fast.run(4_500 - split);
        let mut plain = build();
        plain.set_fast_forward(false);
        plain.run(split);
        plain.run(4_500 - split);
        prop_assert_eq!(fast.cycle(), plain.cycle());
        prop_assert_eq!(fast.stats.digest(), plain.stats.digest());
    }
}
