//! Flits and packet descriptors.

use crate::ids::{AppId, MsgClass, NodeId};
use serde::{Deserialize, Serialize};

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit of a multi-flit packet (carries routing info).
    Head,
    /// Middle flit.
    Body,
    /// Last flit of a multi-flit packet (releases the VC).
    Tail,
    /// Single-flit packet (head and tail at once).
    Single,
}

impl FlitKind {
    /// True for `Head` and `Single` (flits that trigger route computation).
    #[inline]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::Single)
    }

    /// True for `Tail` and `Single` (flits that release the VC).
    #[inline]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::Single)
    }
}

/// If the packet is a request, what reply its delivery triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplySpec {
    /// Cycles the destination "services" the request before replying
    /// (L2 bank or memory latency from Table 1).
    pub service_latency: u64,
    /// Reply packet size in flits.
    pub size: u32,
    /// Reply message class.
    pub class: MsgClass,
}

/// Routing- and accounting-relevant packet metadata, carried by every flit.
///
/// In hardware only the head flit carries this; duplicating it per flit is a
/// standard simulator convenience (GARNET does the same) and keeps the flit
/// a small `Copy` value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketInfo {
    /// Globally unique packet id (monotonic per run).
    pub id: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Application this packet belongs to; compared against the router's
    /// region tag to classify the packet as native or foreign traffic.
    pub app: AppId,
    /// Message class (virtual network).
    pub class: MsgClass,
    /// Packet length in flits.
    pub size: u32,
    /// Cycle the packet was generated (entered the source queue).
    pub birth: u64,
    /// Cycle the head flit entered the injection VC (set by the NI).
    pub inject: u64,
    /// Reply to generate on delivery, if this is a request.
    pub reply: Option<ReplySpec>,
}

/// A single flow-control unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Flit {
    pub kind: FlitKind,
    /// Index of this flit within the packet (0-based).
    pub seq: u32,
    /// Links traversed so far (incremented on every router-to-router hop).
    pub hops: u32,
    /// Stand-in data word; link-level error control protects it with [`crc16`].
    pub payload: u64,
    /// CRC-16/CCITT over `payload`, checked by the oracle's CRC checker.
    pub crc: u16,
    pub info: PacketInfo,
}

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over the payload's eight
/// little-endian bytes — the link-level error-detection code.
pub fn crc16(payload: u64) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for byte in payload.to_le_bytes() {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Deterministic stand-in payload for flit `seq` of packet `id` (splitmix-style
/// mix so corruptions flip a random-looking word, not a constant).
#[inline]
pub fn payload_of(id: u64, seq: u32) -> u64 {
    let mut z = id ^ (u64::from(seq) << 32) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Flit {
    /// Break a packet descriptor into its flit sequence.
    pub fn flits_of(info: PacketInfo) -> impl Iterator<Item = Flit> {
        let size = info.size;
        (0..size).map(move |seq| {
            let payload = payload_of(info.id, seq);
            Flit {
                kind: match (seq, size) {
                    (_, 1) => FlitKind::Single,
                    (0, _) => FlitKind::Head,
                    (s, n) if s + 1 == n => FlitKind::Tail,
                    _ => FlitKind::Body,
                },
                seq,
                hops: 0,
                payload,
                crc: crc16(payload),
                info,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(size: u32) -> PacketInfo {
        PacketInfo {
            id: 1,
            src: 0,
            dst: 5,
            app: 0,
            class: 0,
            size,
            birth: 10,
            inject: 0,
            reply: None,
        }
    }

    #[test]
    fn single_flit_packet() {
        let f: Vec<Flit> = Flit::flits_of(info(1)).collect();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FlitKind::Single);
        assert!(f[0].kind.is_head() && f[0].kind.is_tail());
    }

    #[test]
    fn five_flit_packet() {
        let f: Vec<Flit> = Flit::flits_of(info(5)).collect();
        assert_eq!(f.len(), 5);
        assert_eq!(f[0].kind, FlitKind::Head);
        assert_eq!(f[1].kind, FlitKind::Body);
        assert_eq!(f[3].kind, FlitKind::Body);
        assert_eq!(f[4].kind, FlitKind::Tail);
        assert!(f.iter().enumerate().all(|(i, fl)| fl.seq == i as u32));
        assert_eq!(f.iter().filter(|fl| fl.kind.is_head()).count(), 1);
        assert_eq!(f.iter().filter(|fl| fl.kind.is_tail()).count(), 1);
    }

    #[test]
    fn two_flit_packet_head_then_tail() {
        let f: Vec<Flit> = Flit::flits_of(info(2)).collect();
        assert_eq!(f[0].kind, FlitKind::Head);
        assert_eq!(f[1].kind, FlitKind::Tail);
    }

    #[test]
    fn crc16_detects_single_bit_flips() {
        // Any single-bit payload flip must change the CRC (CRC-16 has
        // Hamming distance >= 4 at this length).
        for base in [0u64, 0xDEAD_BEEF_CAFE_F00D] {
            for bit in 0..64 {
                assert_ne!(crc16(base), crc16(base ^ (1u64 << bit)), "bit {bit}");
            }
        }
    }

    #[test]
    fn flits_are_sealed() {
        for f in Flit::flits_of(info(5)) {
            assert_eq!(f.crc, crc16(f.payload));
            assert_eq!(f.payload, payload_of(f.info.id, f.seq));
        }
    }
}
