//! Concrete generators. `SmallRng` is xoshiro256++, the same algorithm the
//! real `rand` crate's `SmallRng` uses on 64-bit platforms.

use crate::{RngCore, SeedableRng};

/// Small, fast, non-cryptographic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to seed xoshiro state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256++ with state [1, 2, 3, 4]: first outputs from the
        // reference implementation (Blackman & Vigna).
        let mut r = SmallRng { s: [1, 2, 3, 4] };
        let expected = [41943041u64, 58720359, 3588806011781223, 3591011842654386];
        for e in expected {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn state_never_all_zero_after_seeding() {
        for seed in 0..64 {
            let r = SmallRng::seed_from_u64(seed);
            assert_ne!(r.s, [0; 4], "seed {seed}");
        }
    }
}
