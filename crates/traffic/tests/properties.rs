//! Property-based tests of the traffic substrate.

use noc_sim::config::SimConfig;
use noc_sim::region::RegionMap;
use noc_sim::source::TrafficSource;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use traffic::pattern::Pattern;
use traffic::saturation::{bisect_saturation, WarmOutcome, WarmStart};
use traffic::scenario::{six_app, two_app, InterDest};
use traffic::trace::Trace;
use traffic::workload::{AppModel, ParsecWorkload};

fn any_pattern() -> impl Strategy<Value = Pattern> {
    let cfg = SimConfig::table1();
    let spots = Pattern::center_hotspots(&cfg);
    prop_oneof![
        Just(Pattern::UniformRandom),
        Just(Pattern::Transpose),
        Just(Pattern::BitComplement),
        Just(Pattern::UniformWithin((0..16).collect())),
        Just(Pattern::UniformOutside((0..32).collect())),
        Just(Pattern::Hotspot { spots, bias: 0.5 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every pattern destination is in-bounds and never the source.
    #[test]
    fn pattern_destinations_valid(pattern in any_pattern(), src in 0u16..64, seed in 0u64..1000) {
        let cfg = SimConfig::table1();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            if let Some(d) = pattern.dest(&cfg, src, &mut rng) {
                prop_assert!(d != src);
                prop_assert!((d as usize) < cfg.num_nodes());
            }
        }
    }

    /// Scenario generators never emit self-addressed or oversized packets
    /// and tag packets with the generating node's own application.
    #[test]
    fn scenario_packets_well_formed(p in 0.0f64..=1.0, seed in 0u64..500) {
        let cfg = SimConfig::table1();
        let (region, mut s) = two_app(&cfg, p, 0.3, 0.3);
        let mut rng = SmallRng::seed_from_u64(seed);
        for cycle in 0..300 {
            for node in 0..64u16 {
                if let Some(pkt) = s.generate(node, cycle, &mut rng) {
                    prop_assert!(pkt.dst != node);
                    prop_assert!((pkt.dst as usize) < cfg.num_nodes());
                    prop_assert_eq!(pkt.app, region.app_of(node));
                    prop_assert!(pkt.size == 1 || pkt.size == cfg.long_flits);
                    prop_assert!((pkt.class as usize) < cfg.num_classes);
                }
            }
        }
    }

    /// The warm-started bisection returns the bit-identical load of the
    /// cold one for *every* monotone stability threshold, prediction and
    /// margin — accurate hints, wildly wrong hints, degenerate margins.
    /// This is the invariant that lets the sweep cache accept warm results
    /// without perturbing golden digests.
    #[test]
    fn warm_bisection_is_bit_identical_to_cold(
        threshold in 0.001f64..1.2,
        predicted in 0.001f64..1.2,
        margin in 0.0005f64..0.3,
        iters in 1u32..9,
        max_rate in prop_oneof![Just(1.0f64), Just(0.7), Just(2.0)],
    ) {
        let stable = |rate: f64| rate <= threshold;
        let (cold, cold_probes, oc) = bisect_saturation(iters, max_rate, None, stable);
        prop_assert_eq!(oc, WarmOutcome::NoHint);
        let warm = Some(WarmStart { predicted, margin });
        let (load, warm_probes, outcome) = bisect_saturation(iters, max_rate, warm, stable);
        prop_assert_eq!(
            load.to_bits(), cold.to_bits(),
            "warm {} != cold {} (t={}, pred={}, m={}, iters={}, {:?})",
            load, cold, threshold, predicted, margin, iters, outcome
        );
        // The memo guarantees a probe is never repeated, so even a
        // rejected warm phase costs at most the cold search plus the
        // warm midpoints and bracket verification.
        prop_assert!(warm_probes <= cold_probes + iters + 2);
    }

    /// Six-app scenarios respect the 75/20/5 mix within tolerance, for any
    /// inter-destination rule.
    #[test]
    fn six_app_mix_fractions(seed in 0u64..200) {
        let cfg = SimConfig::table1();
        let (region, mut s) = six_app(&cfg, [0.3; 6], InterDest::OutsideUniform);
        let mut rng = SmallRng::seed_from_u64(seed);
        let (mut intra, mut inter, mut mc) = (0u32, 0u32, 0u32);
        let corners = cfg.corners();
        for cycle in 0..4000 {
            for node in 0..64u16 {
                if let Some(pkt) = s.generate(node, cycle, &mut rng) {
                    if pkt.reply.is_some() {
                        mc += 1;
                        prop_assert!(corners.contains(&pkt.dst));
                    } else if region.app_of(pkt.dst) == pkt.app {
                        intra += 1;
                    } else {
                        inter += 1;
                    }
                }
            }
        }
        let total = (intra + inter + mc) as f64;
        prop_assume!(total > 5000.0);
        // MC-fraction draws can land inside the own region when a corner is
        // native; intra count absorbs none of those (they carry replies).
        prop_assert!(((mc as f64 / total) - 0.05).abs() < 0.02);
        // The inter count excludes inter-region MC requests, so compare
        // intra against its nominal share.
        prop_assert!(((intra as f64 / total) - 0.75).abs() < 0.05);
    }

    /// Workload generation is a pure function of the RNG stream: the same
    /// seed gives the same packets, a different seed diverges.
    #[test]
    fn workload_deterministic(seed in 0u64..500) {
        let cfg = SimConfig::table1_req_reply();
        let region = RegionMap::quadrants(&cfg);
        let collect = |seed: u64| {
            let mut w = ParsecWorkload::new(&cfg, &region, AppModel::parsec_four());
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut v = Vec::new();
            for cycle in 0..3000 {
                for node in 0..64u16 {
                    if let Some(p) = w.generate(node, cycle, &mut rng) {
                        v.push((cycle, node, p.dst, p.app));
                    }
                }
            }
            v
        };
        prop_assert_eq!(collect(seed), collect(seed));
    }

    /// Trace serialization is injective on distinct event streams.
    #[test]
    fn trace_bytes_roundtrip(p in 0.0f64..=1.0, seed in 0u64..300) {
        let cfg = SimConfig::table1();
        let (_r, s) = two_app(&cfg, p, 0.2, 0.1);
        let t = Trace::capture(s, 64, 400, seed);
        let back = Trace::from_bytes(t.to_bytes()).unwrap();
        prop_assert_eq!(t, back);
    }
}
