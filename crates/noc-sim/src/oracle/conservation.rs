//! Flit conservation: injected = in-flight + ejected (+ dropped), per
//! application. Under an active fault timeline the network keeps a drop
//! ledger (stranded-packet extraction, terminal drops); ledgered flits left
//! the network legitimately and are added back into the balance.

use super::{Checker, OracleViolation};
use crate::ids::AppId;
use crate::network::Network;

/// Counts injections and ejections per application from the hooks and
/// reconciles them against an exhaustive scan of every flit still inside
/// the network (input buffers, link registers, ejection queue).
#[derive(Debug, Default)]
pub struct FlitConservation {
    injected: Vec<u64>,
    ejected: Vec<u64>,
    scratch: Vec<i64>,
}

impl FlitConservation {
    pub fn new(num_apps: usize) -> Self {
        Self {
            injected: vec![0; num_apps],
            ejected: vec![0; num_apps],
            scratch: Vec::new(),
        }
    }

    fn bump(counts: &mut Vec<u64>, app: AppId) {
        let i = app as usize;
        if counts.len() <= i {
            counts.resize(i + 1, 0);
        }
        counts[i] += 1;
    }
}

impl Checker for FlitConservation {
    fn name(&self) -> &'static str {
        "flit-conservation"
    }

    fn on_inject(&mut self, app: AppId, _cycle: u64) {
        Self::bump(&mut self.injected, app);
    }

    fn on_eject(&mut self, app: AppId, _cycle: u64) {
        Self::bump(&mut self.ejected, app);
    }

    fn end_of_cycle(&mut self, net: &Network, out: &mut Vec<OracleViolation>) {
        let napps = self.injected.len().max(self.ejected.len());
        self.scratch.clear();
        self.scratch.resize(napps, 0);
        let mut count = |app: AppId| {
            let i = app as usize;
            if self.scratch.len() <= i {
                self.scratch.resize(i + 1, 0);
            }
            self.scratch[i] += 1;
        };
        for r in &net.routers {
            for vcs in &r.inputs {
                for ivc in vcs {
                    for f in &ivc.buf {
                        count(f.info.app);
                    }
                }
            }
        }
        for a in &net.in_flight {
            count(a.flit.info.app);
        }
        for (_, f) in &net.eject_q {
            count(f.info.app);
        }
        for (app, &in_net) in self.scratch.iter().enumerate() {
            let injected = self.injected.get(app).copied().unwrap_or(0) as i64;
            let ejected = self.ejected.get(app).copied().unwrap_or(0) as i64;
            let dropped = net.dropped_flits_of(app) as i64;
            if injected != ejected + in_net + dropped {
                out.push(OracleViolation {
                    cycle: net.cycle(),
                    checker: self.name(),
                    router: None,
                    detail: format!(
                        "app {app}: injected {injected} != ejected {ejected} \
                         + in-network {in_net} + dropped {dropped}"
                    ),
                });
            }
        }
        // Cross-check the kernel's own cumulative counters.
        let total_in_net: i64 = self.scratch.iter().sum();
        let total_dropped = net.dropped_flits_total() as i64;
        if net.stats.injected_flits as i64
            != net.stats.ejected_flits as i64 + total_in_net + total_dropped
        {
            out.push(OracleViolation {
                cycle: net.cycle(),
                checker: self.name(),
                router: None,
                detail: format!(
                    "global: injected {} != ejected {} + in-network {total_in_net} \
                     + dropped {total_dropped}",
                    net.stats.injected_flits, net.stats.ejected_flits
                ),
            });
        }
    }
}
