//! Bench for Figure 12 (dynamic priority adaptation): regenerates both DPA
//! scenarios, then times the four-application scenario under each DPA mode.

use bench::{bench_config, TIMED_CYCLES};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figs::fig12;
use experiments::sweep::build_network;
use noc_sim::config::SimConfig;
use rair::scheme::{Routing, Scheme};
use traffic::scenario::four_app_dpa_a;

fn regen_and_time(c: &mut Criterion) {
    let ec = bench_config();
    let (a, b) = fig12::run(&ec);
    eprintln!("{}", fig12::table(&a).render());
    eprintln!("{}", fig12::table(&b).render());

    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    for (label, scheme) in [
        ("native_high", Scheme::rair_native_high()),
        ("foreign_high", Scheme::rair_foreign_high()),
        ("dpa", Scheme::rair()),
    ] {
        g.bench_function(label, |bch| {
            bch.iter(|| {
                let cfg = SimConfig::table1();
                let (region, scenario) = four_app_dpa_a(&cfg, 0.03, 0.55);
                let mut net = build_network(
                    &cfg,
                    &region,
                    &scheme,
                    Routing::Local,
                    Box::new(scenario),
                    1,
                );
                net.run(TIMED_CYCLES);
                net.stats.recorder.delivered()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, regen_and_time);
criterion_main!(benches);
