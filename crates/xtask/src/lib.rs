//! # xtask — kernel determinism lint
//!
//! The simulator's headline guarantee is bit-identical replay: the same
//! config and seed must produce the same [`metrics::Digest`] on every
//! machine, every run. A handful of standard-library conveniences silently
//! break that guarantee — `HashMap` iteration order depends on a per-process
//! random `RandomState`, `thread_rng` pulls OS entropy, wall-clock reads
//! differ across hosts, and rayon's unordered iterators interleave
//! nondeterministically. `cargo run -p xtask -- lint` bans those tokens from
//! the kernel crates.
//!
//! A second, *function-scoped* rule (`panic-in-hot-path`, see
//! [`PANIC_RULE`] / [`HOT_PATHS`]) bans the panic family — `unwrap`,
//! `expect`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` and the
//! release-mode `assert*` macros — from the bodies of the six
//! pipeline-phase band functions and the admission verifier's checks.
//! `debug_assert*` stays legal there: it documents the invariant while the
//! release kernel recovers instead of aborting.
//!
//! The issue asked for a `syn`-based AST pass; `syn` is not vendored in this
//! offline build environment (and pulling it in would violate the
//! no-new-dependencies constraint), so the lint is a hand-rolled
//! comment- and string-aware token scanner instead. It tokenizes each
//! source file with full knowledge of line comments, nesting block
//! comments, regular/raw strings, char literals and lifetimes, and flags
//! banned *identifier tokens* only — a `HashMap` inside a string literal or
//! doc comment never fires. That is strictly coarser than an AST pass (it
//! cannot tell `std::collections::HashMap` from a local type named
//! `HashMap`), which is the right trade-off for a lint: shadowing a banned
//! name with a deterministic local type would be at least as confusing as
//! the original offence.
//!
//! ## Escape hatch
//!
//! A `// lint: allow(rule-name)` comment suppresses one rule on its own
//! line and the line immediately after, so both trailing and preceding
//! placements work:
//!
//! ```text
//! use std::time::Instant; // lint: allow(wall-clock)
//!
//! // lint: allow(wall-clock)
//! let t0 = Instant::now();
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

/// One determinism rule: a name (used in `lint: allow(...)`), the banned
/// identifier tokens, and the reason shown alongside each finding.
pub struct Rule {
    pub name: &'static str,
    pub tokens: &'static [&'static str],
    pub why: &'static str,
}

/// All rules, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "hash-collections",
        tokens: &["HashMap", "HashSet"],
        why: "RandomState makes iteration order differ per process; use BTreeMap/BTreeSet",
    },
    Rule {
        name: "os-entropy",
        tokens: &[
            "thread_rng",
            "ThreadRng",
            "OsRng",
            "from_entropy",
            "getrandom",
        ],
        why: "OS entropy breaks replay; seed a SmallRng from the run seed",
    },
    Rule {
        name: "wall-clock",
        tokens: &["Instant", "SystemTime"],
        why: "wall-clock reads differ across hosts; count cycles, not seconds",
    },
    Rule {
        name: "unordered-parallelism",
        tokens: &[
            "par_iter",
            "par_iter_mut",
            "into_par_iter",
            "par_bridge",
            "try_iter",
            "try_recv",
            "recv_timeout",
            "is_finished",
        ],
        why: "rayon interleaving and racy channel drains (try_iter/try_recv/recv_timeout) or \
              completion polling (is_finished) are nondeterministic; reduce into per-job slots, \
              drain channels with blocking recv in a fixed order, and join in index order",
    },
];

/// The function-scoped panic rule: inside the kernel's six pipeline-phase
/// band functions and the admission verifier's property checks, a panic is
/// a simulator abort a caller can neither catch nor attribute — those
/// paths must degrade via `debug_assert!` + recovery instead. Applied only
/// to the bodies listed in [`HOT_PATHS`], not file-wide (constructors and
/// tests in the same files validate inputs with `assert!` legitimately).
pub const PANIC_RULE: Rule = Rule {
    name: "panic-in-hot-path",
    tokens: &[
        "unwrap",
        "expect",
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
    ],
    why: "pipeline bands and admission checks must not abort mid-run; \
          recover with `let .. else { debug_assert!(false, ..); .. }`",
};

/// The statement-scoped durability rule: in the modules that own crash
/// safety (the checkpoint runner, the saturation cache, the experiment
/// service), discarding an IO result with `let _ = …` is how checkpoint
/// rows silently vanish. The rule flags a `let _ =` binding whose
/// right-hand side mentions one of these filesystem/write tokens; the
/// `// lint: allow(swallowed-io-error)` hatch marks the sites where
/// discarding really is the policy (best-effort temp-dir cleanup in tests).
pub const SWALLOWED_IO_RULE: Rule = Rule {
    name: "swallowed-io-error",
    tokens: &[
        "fs",
        "File",
        "OpenOptions",
        "write",
        "writeln",
        "write_all",
        "flush",
        "sync_all",
        "sync_data",
        "rename",
        "remove_file",
        "remove_dir_all",
        "create_dir_all",
        "create_dir",
        "set_len",
        "copy",
        "hard_link",
        "append_durable",
        "write_atomic",
    ],
    why: "durability modules must surface IO failures (warning + counter), \
          not discard them with `let _ =`",
};

/// Files and subtrees held to [`SWALLOWED_IO_RULE`] — the durability layer.
pub const DURABILITY_SCOPES: &[&str] = &[
    "crates/experiments/src/runner.rs",
    "crates/experiments/src/sweep.rs",
    "crates/experiments/src/service",
];

/// One file whose named function bodies are held to [`PANIC_RULE`].
pub struct HotPath {
    /// Path relative to the workspace root.
    pub file: &'static str,
    /// Function names whose bodies are scanned.
    pub functions: &'static [&'static str],
}

/// The hot paths: the six pure pipeline-phase bands (shared by the serial
/// and sharded engines) and the admission verifier's entry points.
pub const HOT_PATHS: &[HotPath] = &[
    HotPath {
        file: "crates/noc-sim/src/network.rs",
        functions: &[
            "sa_band",
            "va_band",
            "rc_band",
            "generate_packets",
            "inject_band",
            "update_band",
        ],
    },
    HotPath {
        file: "crates/noc-sim/src/admit.rs",
        functions: &[
            "check_progress",
            "check_non_interference",
            "admit_network",
            "admit_network_cached",
        ],
    },
];

/// Look up a rule by name.
pub fn rule(name: &str) -> Option<&'static Rule> {
    RULES
        .iter()
        .find(|r| r.name == name)
        .or((PANIC_RULE.name == name).then_some(&PANIC_RULE))
        .or((SWALLOWED_IO_RULE.name == name).then_some(&SWALLOWED_IO_RULE))
}

/// One banned token found in a scanned file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub token: String,
    pub why: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] banned token `{}` — {}",
            self.path, self.line, self.rule, self.token, self.why
        )
    }
}

/// A directory subtree to lint with a given rule set.
pub struct Scope {
    /// Path relative to the workspace root, e.g. `crates/noc-sim/src`.
    pub dir: &'static str,
    /// Rule names that do *not* apply in this scope.
    pub exempt: &'static [&'static str],
}

/// The lint scopes: every kernel crate in full, plus the experiments crate
/// without the wall-clock rule (its drivers legitimately time the verifier
/// and the cycle kernel — timing is reported, never fed back into
/// simulation state).
pub const SCOPES: &[Scope] = &[
    Scope {
        dir: "crates/noc-sim/src",
        exempt: &[],
    },
    Scope {
        dir: "crates/noc-sim/tests",
        exempt: &[],
    },
    Scope {
        dir: "crates/rair/src",
        exempt: &[],
    },
    Scope {
        dir: "crates/rair/tests",
        exempt: &[],
    },
    Scope {
        dir: "crates/traffic/src",
        exempt: &[],
    },
    Scope {
        dir: "crates/traffic/tests",
        exempt: &[],
    },
    Scope {
        dir: "crates/metrics/src",
        exempt: &[],
    },
    Scope {
        dir: "crates/metrics/tests",
        exempt: &[],
    },
    Scope {
        dir: "crates/model/src",
        exempt: &[],
    },
    Scope {
        dir: "crates/model/tests",
        exempt: &[],
    },
    Scope {
        dir: "crates/experiments/src",
        exempt: &["wall-clock"],
    },
    Scope {
        dir: "crates/experiments/tests",
        exempt: &["wall-clock"],
    },
];

/// Scanner state while walking a source file character by character.
#[derive(PartialEq)]
enum Mode {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the depth.
    BlockComment(u32),
    Str,
    /// Raw string with `n` hashes: `r##"…"##`.
    RawStr(u32),
    Char,
}

/// One code token the scanner emits: an identifier, or a curly brace
/// (braces inside comments, strings and char literals never appear —
/// they fuel the function-body spans of the hot-path lint).
enum Tok {
    Ident(usize, String),
    Open,
    Close,
}

/// Tokenize `src` into a [`Tok`] stream plus, per line, the set of rule
/// names allowed on that line via `lint: allow(...)` comments (a directive
/// covers its own line and the next).
fn scan(src: &str) -> (Vec<Tok>, Vec<Vec<String>>) {
    let num_lines = src.lines().count() + 1;
    let mut idents: Vec<Tok> = Vec::new();
    let mut allows: Vec<Vec<String>> = vec![Vec::new(); num_lines + 2];
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut mode = Mode::Code;
    let mut comment = String::new();
    let mut comment_line = 1usize;

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    mode = Mode::LineComment;
                    comment.clear();
                    comment_line = line;
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    mode = Mode::BlockComment(1);
                    comment.clear();
                    comment_line = line;
                    i += 2;
                    continue;
                }
                '"' => mode = Mode::Str,
                'r' | 'b' if is_raw_string_start(&bytes, i) => {
                    let (hashes, skip) = raw_string_open(&bytes, i);
                    mode = Mode::RawStr(hashes);
                    i += skip;
                    continue;
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`): a
                    // lifetime is an identifier not followed by a closing
                    // quote. `'_'` and `'x'` both close; `'static` does not.
                    let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                        && bytes.get(i + 2).copied() != Some('\'');
                    if is_lifetime {
                        i += 2; // skip the quote and first ident char
                        while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                            i += 1;
                        }
                        continue;
                    }
                    mode = Mode::Char;
                }
                '{' => idents.push(Tok::Open),
                '}' => idents.push(Tok::Close),
                _ if c.is_alphabetic() || c == '_' => {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                    idents.push(Tok::Ident(line, bytes[start..i].iter().collect()));
                    continue;
                }
                _ => {}
            },
            Mode::LineComment => {
                if c == '\n' {
                    record_allows(&comment, comment_line, &mut allows);
                    mode = Mode::Code;
                } else {
                    comment.push(c);
                }
            }
            Mode::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        record_allows(&comment, comment_line, &mut allows);
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                comment.push(c);
            }
            Mode::Str => match c {
                '\\' => {
                    i += 2;
                    if next == Some('\n') {
                        line += 1;
                    }
                    continue;
                }
                '"' => mode = Mode::Code,
                _ => {}
            },
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes, i, hashes) {
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                    continue;
                }
            }
            Mode::Char => match c {
                '\\' => {
                    i += 2;
                    continue;
                }
                '\'' => mode = Mode::Code,
                _ => {}
            },
        }
        if c == '\n' {
            line += 1;
        }
        i += 1;
    }
    if mode == Mode::LineComment {
        record_allows(&comment, comment_line, &mut allows);
    }
    (idents, allows)
}

/// Does position `i` open a raw (byte) string literal: `r"`, `r#"`, `br"`…?
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if bytes.get(j).copied() != Some('r') {
            return false;
        }
    }
    if bytes.get(j).copied() != Some('r') {
        return false;
    }
    j += 1;
    while bytes.get(j).copied() == Some('#') {
        j += 1;
    }
    bytes.get(j).copied() == Some('"')
}

/// Hash count and total prefix length of a raw-string opener at `i`.
fn raw_string_open(bytes: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0u32;
    while bytes.get(j).copied() == Some('#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j + 1 - i) // include the opening quote
}

/// Is the `"` at position `i` followed by `hashes` `#` characters?
fn closes_raw(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k).copied() == Some('#'))
}

/// Parse every `lint: allow(rule)` directive out of one comment body and
/// register it for the comment's line and the next.
fn record_allows(comment: &str, line: usize, allows: &mut [Vec<String>]) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        rest = &rest[pos + "lint: allow(".len()..];
        if let Some(end) = rest.find(')') {
            let name = rest[..end].trim().to_string();
            for l in [line, line + 1] {
                if l < allows.len() {
                    allows[l].push(name.clone());
                }
            }
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
}

/// Lint one source text against `rules`; `path` labels the findings.
pub fn lint_source(path: &str, src: &str, rules: &[&Rule]) -> Vec<Finding> {
    let (toks, allows) = scan(src);
    let mut findings = Vec::new();
    for t in &toks {
        let Tok::Ident(line, ident) = t else { continue };
        for r in rules {
            if r.tokens.contains(&ident.as_str())
                && !allows
                    .get(*line)
                    .is_some_and(|a| a.iter().any(|n| n == r.name))
            {
                findings.push(Finding {
                    path: path.to_string(),
                    line: *line,
                    rule: r.name,
                    token: ident.clone(),
                    why: r.why,
                });
            }
        }
    }
    findings
}

/// Token-index spans (half-open) of the bodies of `functions` in `toks`.
///
/// A body starts at the first `{` after `fn <name>` — sound for this
/// codebase because nothing brace-bearing (const-generic expressions,
/// struct-expression defaults) appears in the signatures of the listed
/// functions, and braces inside comments and strings are never emitted by
/// the scanner.
fn body_spans(toks: &[Tok], functions: &[&str]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let hit = matches!(&toks[i], Tok::Ident(_, id) if id == "fn")
            && matches!(&toks[i + 1..].iter().find(|t| matches!(t, Tok::Ident(..))),
                        Some(Tok::Ident(_, name)) if functions.contains(&name.as_str()));
        if !hit {
            i += 1;
            continue;
        }
        // Skip to the body's opening brace, then to its matching close.
        let Some(open) = (i..toks.len()).find(|k| matches!(toks[*k], Tok::Open)) else {
            break;
        };
        let mut depth = 0usize;
        let mut close = toks.len();
        for (k, t) in toks.iter().enumerate().skip(open) {
            match t {
                Tok::Open => depth += 1,
                Tok::Close => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                Tok::Ident(..) => {}
            }
        }
        spans.push((open, close));
        i = close.min(toks.len() - 1) + 1;
    }
    spans
}

/// Apply [`PANIC_RULE`] to the bodies of `functions` within one source
/// text; `path` labels the findings. The `lint: allow(panic-in-hot-path)`
/// hatch works exactly as for the file-wide rules.
pub fn lint_hot_source(path: &str, src: &str, functions: &[&str]) -> Vec<Finding> {
    let (toks, allows) = scan(src);
    let mut findings = Vec::new();
    for (open, close) in body_spans(&toks, functions) {
        for t in &toks[open..close] {
            let Tok::Ident(line, ident) = t else { continue };
            if PANIC_RULE.tokens.contains(&ident.as_str())
                && !allows
                    .get(*line)
                    .is_some_and(|a| a.iter().any(|n| n == PANIC_RULE.name))
            {
                findings.push(Finding {
                    path: path.to_string(),
                    line: *line,
                    rule: PANIC_RULE.name,
                    token: ident.clone(),
                    why: PANIC_RULE.why,
                });
            }
        }
    }
    findings
}

/// Apply [`SWALLOWED_IO_RULE`] to one source text: flag every `let _ = …`
/// statement whose right-hand side mentions a filesystem/write token.
///
/// The scanner has no statement boundaries, so the right-hand side is
/// approximated as the tokens after the `_` up to the next `let`/`fn`
/// ident, a 24-token window, or two lines past the binding — generous
/// enough for chained `std::fs::…` calls, tight enough that an IO call in
/// a *following* statement never attributes backwards. The
/// `lint: allow(swallowed-io-error)` hatch is honored at the `let` line
/// (directives cover their own line and the next, so a comment directly
/// above works).
pub fn lint_swallowed_io_source(path: &str, src: &str) -> Vec<Finding> {
    let (toks, allows) = scan(src);
    let mut findings = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let Tok::Ident(line, id) = &toks[i] else {
            i += 1;
            continue;
        };
        if id != "let" {
            i += 1;
            continue;
        }
        // The binding must be exactly `_` (not `_named`).
        let Some(Tok::Ident(_, bind)) = toks[i + 1..].iter().find(|t| matches!(t, Tok::Ident(..)))
        else {
            break;
        };
        if bind != "_" {
            i += 1;
            continue;
        }
        if allows
            .get(*line)
            .is_some_and(|a| a.iter().any(|n| n == SWALLOWED_IO_RULE.name))
        {
            i += 1;
            continue;
        }
        // Report the LAST matching token in the window: for a path like
        // `std::fs::remove_file` that is the call name, not the module.
        let mut hit: Option<String> = None;
        for t in toks.iter().skip(i + 2).take(24) {
            let Tok::Ident(l2, id2) = t else { continue };
            if *l2 > line + 2 || id2 == "let" || id2 == "fn" {
                break;
            }
            if SWALLOWED_IO_RULE.tokens.contains(&id2.as_str()) {
                hit = Some(id2.clone());
            }
        }
        if let Some(id2) = hit {
            findings.push(Finding {
                path: path.to_string(),
                line: *line,
                rule: SWALLOWED_IO_RULE.name,
                token: format!("let _ = …{id2}…"),
                why: SWALLOWED_IO_RULE.why,
            });
        }
        i += 1;
    }
    findings
}

/// Lint every durability-scoped file under `root` (the workspace root)
/// with [`SWALLOWED_IO_RULE`].
pub fn lint_durability_scopes(root: &Path) -> Vec<Finding> {
    let mut files: Vec<PathBuf> = Vec::new();
    for scope in DURABILITY_SCOPES {
        let p = root.join(scope);
        if p.is_dir() {
            rust_files(&p, &mut files);
        } else if p.extension().is_some_and(|e| e == "rs") {
            files.push(p);
        }
    }
    files.sort();
    files.dedup();
    let mut findings = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(&f).unwrap_or_default();
        let label = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .display()
            .to_string()
            .replace('\\', "/");
        findings.extend(lint_swallowed_io_source(&label, &src));
    }
    findings
}

/// Lint every configured hot path under `root` (the workspace root).
pub fn lint_hot_paths(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for hp in HOT_PATHS {
        let Ok(src) = std::fs::read_to_string(root.join(hp.file)) else {
            continue;
        };
        findings.extend(lint_hot_source(hp.file, &src, hp.functions));
    }
    findings
}

/// Collect every `.rs` file under `dir`, sorted for deterministic output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lint one scope subtree under `root` (the workspace root).
pub fn lint_scope(root: &Path, scope: &Scope) -> Vec<Finding> {
    let rules: Vec<&Rule> = RULES
        .iter()
        .filter(|r| !scope.exempt.contains(&r.name))
        .collect();
    let mut files = Vec::new();
    rust_files(&root.join(scope.dir), &mut files);
    let mut findings = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(&f).unwrap_or_default();
        let label = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .display()
            .to_string()
            .replace('\\', "/");
        findings.extend(lint_source(&label, &src, &rules));
    }
    findings
}

/// Lint every configured scope, the hot-path function bodies, and the
/// durability scopes. Empty result = clean tree.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut findings: Vec<Finding> = SCOPES.iter().flat_map(|s| lint_scope(root, s)).collect();
    findings.extend(lint_hot_paths(root));
    findings.extend(lint_durability_scopes(root));
    findings
}

/// The workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask is two levels below the workspace root")
        .to_path_buf()
}
