//! Per-hop routing legality: every link traversal is minimal, and escape
//! VCs only ever carry dimension-order (Duato-legal) hops on the correct
//! dateline lane.

use super::{Checker, OracleViolation};
use crate::config::SimConfig;
use crate::flit::Flit;
use crate::ids::{opposite, NodeId, Port, PORT_LOCAL};
use crate::topology;

/// Checked at the arrival hook (the only place a hop's direction is still
/// known): the upstream router is `step(here, in_port)` (wrap-aware), and
/// the hop it sent the flit over is `opposite(in_port)`.
///
/// * **Minimality** (all VCs): the hop must reduce the topology's distance
///   to the destination by exactly one — both the adaptive routing
///   functions and the escape path are minimal in this design.
/// * **Duato legality** (escape VCs, index `< num_escape_vcs`): the hop
///   must be exactly the dimension-order (port, dateline-lane) pair the
///   escape sub-network prescribes at the upstream router, or the escape
///   network's deadlock-freedom argument collapses.
///
/// After a permanent-fault reconfiguration (`on_reconfigure`) both checks
/// stand down: the degraded routing takes deliberate non-minimal detours
/// and a lane-shifted escape function, and its safety was just re-proven
/// statically by the CDG verifier. Packets routed under the pre-fault table
/// may also still be in flight, so per-hop re-checking against either table
/// would false-positive.
#[derive(Debug, Default)]
pub struct RoutingLegality {
    degraded: bool,
}

impl Checker for RoutingLegality {
    fn name(&self) -> &'static str {
        "routing-legality"
    }

    fn on_reconfigure(&mut self, _net: &crate::network::Network) {
        self.degraded = true;
    }

    fn on_arrival(
        &mut self,
        cfg: &SimConfig,
        router: NodeId,
        in_port: Port,
        vc: usize,
        flit: &Flit,
        cycle: u64,
        out: &mut Vec<OracleViolation>,
    ) {
        if in_port == PORT_LOCAL || self.degraded {
            return; // injections are not link traversals; degraded routing
                    // is verified statically at reconfiguration instead
        }
        let here = cfg.router_coord(router as usize);
        let upstream = topology::step(cfg, here, in_port);
        let dst = cfg.coord_of(flit.info.dst);
        if topology::distance(cfg, upstream, dst) != topology::distance(cfg, here, dst) + 1 {
            out.push(OracleViolation {
                cycle,
                checker: self.name(),
                router: Some(router),
                detail: format!(
                    "packet {} to {:?} took a non-minimal hop {:?} -> {:?}",
                    flit.info.id, dst, upstream, here
                ),
            });
        }
        if vc < cfg.num_escape_vcs() {
            let lane = (vc % cfg.escape_lanes()) as u8;
            if topology::escape_hop(cfg, upstream, dst) != (opposite(in_port), lane) {
                out.push(OracleViolation {
                    cycle,
                    checker: self.name(),
                    router: Some(router),
                    detail: format!(
                        "packet {} to {:?} entered escape VC {vc} over a non-DOR hop \
                         {:?} -> {:?} (expected lane {lane})",
                        flit.info.id, dst, upstream, here
                    ),
                });
            }
        }
    }
}
