//! White-box tests of individual router pipeline behaviors, driven through
//! the public `Network` API with scripted single packets.

use noc_sim::network::Network;
use noc_sim::prelude::*;
use noc_sim::vc::VcState;

fn net_with(
    events: Vec<(u64, NodeId, NewPacket)>,
    policy: Box<dyn noc_sim::arbitration::PriorityPolicy>,
) -> Network {
    let cfg = SimConfig::table1();
    Network::new(
        cfg,
        RegionMap::single(&SimConfig::table1()),
        Box::new(DuatoLocalAdaptive),
        policy,
        Box::new(ScriptedSource::new(1, events)),
        1,
    )
}

fn pkt(dst: NodeId, size: u32) -> NewPacket {
    NewPacket {
        dst,
        app: 0,
        class: 0,
        size,
        reply: None,
    }
}

#[test]
fn wormhole_flits_stay_in_one_vc_per_hop() {
    // A 5-flit packet from 0 to 2 (two hops east): at every router along
    // the way, all its flits traverse the same input VC (atomic VCs).
    let mut net = net_with(vec![(0, 0, pkt(2, 5))], Box::new(RoundRobin));
    let mut seen_multi_vc = false;
    for _ in 0..60 {
        net.tick();
        // Check router 1 (the intermediate hop): at most one occupied VC on
        // its west input port at any time.
        let r = &net.routers[1];
        let west_occupied = r.inputs[noc_sim::ids::PORT_WEST]
            .iter()
            .filter(|vc| vc.occupied())
            .count();
        assert!(west_occupied <= 1, "wormhole split across VCs");
        seen_multi_vc |= west_occupied == 1;
    }
    assert!(
        seen_multi_vc,
        "packet never traversed the intermediate router"
    );
    assert!(net.is_drained());
}

#[test]
fn body_flits_follow_head_in_order() {
    let mut net = net_with(vec![(0, 0, pkt(63, 5))], Box::new(RoundRobin));
    net.run(300);
    assert!(net.is_drained());
    // Delivery implies in-order reassembly (the recorder only records on
    // the tail after all 5 flits ejected); conservation cross-check:
    assert_eq!(net.stats.injected_flits, 5);
    assert_eq!(net.stats.ejected_flits, 5);
    assert_eq!(net.stats.recorder.delivered(), 1);
}

#[test]
fn vc_states_progress_through_pipeline() {
    // Observe the local input VC of the source router stepping through
    // Idle → Routed → Active → Idle.
    let mut net = net_with(vec![(0, 0, pkt(1, 1))], Box::new(RoundRobin));
    let mut saw_routed = false;
    let mut saw_active = false;
    for _ in 0..30 {
        net.tick();
        for vc in &net.routers[0].inputs[noc_sim::ids::PORT_LOCAL] {
            match vc.state {
                VcState::Routed { .. } => saw_routed = true,
                VcState::Active { .. } => saw_active = true,
                VcState::Idle => {}
            }
        }
    }
    assert!(saw_routed, "VC never reached Routed");
    assert!(saw_active, "VC never reached Active");
    assert!(net.is_drained());
    assert!(net.routers[0].is_idle());
}

#[test]
fn credits_return_after_drain() {
    // After the network drains, every credit counter is back at full depth.
    let events = (0..20)
        .map(|i| {
            (
                i as u64,
                (i % 8) as NodeId,
                pkt(((i * 7) % 64) as NodeId, 5),
            )
        })
        .filter(|(_, s, p)| *s != p.dst)
        .collect();
    let mut net = net_with(events, Box::new(RoundRobin));
    net.run(1_000);
    assert!(net.is_drained());
    let depth = net.cfg.vc_depth;
    for r in &net.routers {
        for port in 0..noc_sim::ids::NUM_PORTS {
            for vc in 0..net.cfg.vcs_per_port() {
                assert_eq!(
                    r.credits[port][vc], depth,
                    "router {} port {port} vc {vc} leaked credits",
                    r.id
                );
                assert!(r.out_alloc[port][vc].is_none(), "output VC leaked");
            }
        }
    }
}

#[test]
fn two_packets_share_physical_link_via_different_vcs() {
    // Two long packets from the same source down the same path: both make
    // progress concurrently on different VCs (no head-of-line blocking of
    // the whole port).
    let mut net = net_with(
        vec![(0, 0, pkt(7, 5)), (1, 0, pkt(7, 5))],
        Box::new(RoundRobin),
    );
    net.run(500);
    assert!(net.is_drained());
    assert_eq!(net.stats.recorder.delivered(), 2);
    // Sanity: both took the minimal 7-hop route.
    assert_eq!(net.stats.recorder.app(0).hops.mean().unwrap(), 7.0);
}

#[test]
fn ejection_bandwidth_is_one_flit_per_cycle() {
    // Many single-flit packets converging on one node: the destination can
    // eject at most one flit per cycle, so N packets need ≥ N cycles after
    // the first arrival.
    let n = 16u64;
    let events: Vec<(u64, NodeId, NewPacket)> =
        (0..n).map(|i| (0, (i + 1) as NodeId, pkt(0, 1))).collect();
    let mut net = net_with(events, Box::new(RoundRobin));
    let mut first_delivery = None;
    let mut last_delivery = None;
    for _ in 0..600 {
        net.tick();
        let d = net.stats.recorder.delivered();
        if d > 0 && first_delivery.is_none() {
            first_delivery = Some(net.cycle());
        }
        if d == n && last_delivery.is_none() {
            last_delivery = Some(net.cycle());
        }
    }
    let (f, l) = (first_delivery.unwrap(), last_delivery.unwrap());
    assert!(
        l - f >= n - 1,
        "ejected {n} packets in {} cycles (> 1 flit/cycle/node)",
        l - f
    );
}

#[test]
fn age_policy_orders_competing_packets() {
    // Two nodes race long packets to the same destination through the same
    // column; with AgeBased the earlier-born packet must be delivered first.
    let early = (0u64, 8u16, pkt(56, 5)); // node (0,1) -> (0,7)
    let late = (3u64, 16u16, pkt(56, 5)); // node (0,2) -> (0,7)
    let mut net = net_with(vec![early, late], Box::new(AgeBased));
    net.run(400);
    assert!(net.is_drained());
    assert_eq!(net.stats.recorder.delivered(), 2);
    // Cannot observe per-packet order via the recorder directly, but the
    // later packet is closer to the destination — if the earlier one still
    // wins every arbitration it must not be starved. Check both finished
    // with bounded latency.
    assert!(net.stats.recorder.app(0).network.max().unwrap() < 200.0);
}

#[test]
fn local_port_injection_contends_with_through_traffic() {
    // A node under heavy through-traffic can still inject (no permanent
    // injection starvation) because ejection and injection use the local
    // port's separate input/output sides.
    let mut events = vec![(50u64, 9u16, pkt(10, 1))];
    // Flood the row 1 path around node 9.
    for i in 0..40u64 {
        events.push((i, 8, pkt(15, 5)));
    }
    let mut net = net_with(events, Box::new(RoundRobin));
    net.run(2_000);
    assert!(net.is_drained());
    assert_eq!(net.stats.recorder.delivered(), 41);
}

#[test]
fn analysis_records_links_and_journey() {
    // One packet 0 -> 2 (two hops east): analysis must record its journey
    // and the link counters along row 0.
    let mut net = net_with(vec![(0, 0, pkt(2, 1))], Box::new(RoundRobin));
    net.enable_analysis();
    net.watch_packet(0); // first packet gets id 0
    net.run(60);
    assert!(net.is_drained());
    let a = net.analysis().unwrap();
    assert_eq!(a.cycles, 60);
    // Journey: injected at 0, forwarded east twice, delivered at 2.
    use noc_sim::analysis::JourneyEvent::*;
    let events: Vec<_> = a.journey.iter().map(|&(_, e)| e).collect();
    assert_eq!(
        events,
        vec![
            Injected { node: 0 },
            Forwarded {
                router: 0,
                port: noc_sim::ids::PORT_EAST
            },
            Forwarded {
                router: 1,
                port: noc_sim::ids::PORT_EAST
            },
            Delivered { node: 2 },
        ]
    );
    // Cycles are strictly increasing along the journey.
    assert!(a.journey.windows(2).all(|w| w[0].0 < w[1].0));
    // Link counters: one flit on 0->E and 1->E, one ejection at 2.
    assert_eq!(a.link_flits[0][noc_sim::ids::PORT_EAST], 1);
    assert_eq!(a.link_flits[1][noc_sim::ids::PORT_EAST], 1);
    assert_eq!(a.link_flits[2][noc_sim::ids::PORT_LOCAL], 1);
    assert_eq!(a.hottest_link().unwrap().2, 1.0 / 60.0);
}

#[test]
fn analysis_occupancy_breakdown_accumulates() {
    let events: Vec<(u64, NodeId, NewPacket)> = (0..10).map(|i| (i, 0u16, pkt(63, 5))).collect();
    let mut net = net_with(events, Box::new(RoundRobin));
    net.enable_analysis();
    net.run(400);
    let a = net.analysis().unwrap();
    // Single-region map: everything is native.
    assert!(a.occ_native > 0);
    assert_eq!(a.occ_foreign, 0);
    assert_eq!(a.foreign_occupancy_share(), 0.0);
    // Packets used adaptive VCs of both tags at some point.
    assert!(a.occ_regional + a.occ_global > 0);
}
