//! Starvation observer: the dynamic oracle counterpart of the static
//! progress proof (`crate::admit::check_progress`).

use super::{Checker, OracleViolation};
use crate::config::SimConfig;
use crate::ids::NUM_PORTS;
use crate::network::Network;
use crate::vc::VcState;

/// Flags any *native-class* head flit that has failed to traverse the
/// crossbar for more than `bound` consecutive cycles — the run-time
/// refutation of the admission pipeline's statically derived wait bound
/// ([`crate::admit::Admission::wait_bound`]).
///
/// The raw signal is `Router::arb_wait`, maintained by the SA band while
/// the oracle observes the run: the counter advances each cycle a routed
/// (Active) VC holds a head flit that does not move — whether it lost
/// switch allocation or was credit-starved by a standing downstream
/// backlog — and resets when it moves. Foreign-class waits are deliberately ignored —
/// under strict-priority schemes a foreign VC can legitimately wait
/// unboundedly (the very interference the paper measures), and the
/// static bound is a native-class guarantee only.
///
/// Not part of the default checker set: the `RAIR_ForeignH` priority
/// inversion is a deliberately measured ablation in several experiments,
/// and this checker exists precisely to flag it. The differential suite
/// attaches it explicitly ([`Network::attach_checker`]) with the bound
/// the admission pipeline proved.
#[derive(Debug)]
pub struct StarvationWatch {
    bound: u64,
    vcs_per_port: usize,
    /// Slots already reported for the current excursion (re-arm on reset
    /// below the bound: one report per starvation episode, not one per
    /// scan).
    reported: Vec<bool>,
}

impl StarvationWatch {
    /// Observer with the oracle's default no-progress horizon as bound.
    pub fn new(cfg: &SimConfig) -> Self {
        Self::with_bound(cfg, cfg.oracle.stall_horizon)
    }

    /// Observer enforcing an explicit wait bound (the differential suite
    /// passes the statically proven one).
    pub fn with_bound(cfg: &SimConfig, bound: u64) -> Self {
        Self {
            bound,
            vcs_per_port: cfg.vcs_per_port(),
            reported: vec![false; cfg.num_routers() * NUM_PORTS * cfg.vcs_per_port()],
        }
    }
}

impl Checker for StarvationWatch {
    fn name(&self) -> &'static str {
        "starvation-observer"
    }

    fn end_of_cycle(&mut self, net: &Network, out: &mut Vec<OracleViolation>) {
        let v = self.vcs_per_port;
        for (i, r) in net.routers.iter().enumerate() {
            for (port, vcs) in r.inputs.iter().enumerate() {
                for (vc, ivc) in vcs.iter().enumerate() {
                    let slot = port * v + vc;
                    let wait = u64::from(r.arb_wait[slot]);
                    let global = i * NUM_PORTS * v + slot;
                    if wait <= self.bound {
                        self.reported[global] = false;
                        continue;
                    }
                    if self.reported[global] {
                        continue;
                    }
                    let VcState::Active { out_port, out_vc } = ivc.state else {
                        continue;
                    };
                    let Some(head) = ivc.buf.front() else {
                        continue;
                    };
                    if !r.is_native(head.info.app) {
                        continue;
                    }
                    self.reported[global] = true;
                    out.push(OracleViolation {
                        cycle: net.cycle(),
                        checker: self.name(),
                        router: Some(r.id),
                        detail: format!(
                            "native head flit of app {} (packet {}) in input ({port}, {vc}) \
                             has failed to traverse toward ({out_port}, {out_vc}) for \
                             {wait} consecutive cycles (> bound {})",
                            head.info.app, head.info.id, self.bound
                        ),
                    });
                }
            }
        }
    }
}
