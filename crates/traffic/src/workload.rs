//! PARSEC-like statistical workload models.
//!
//! **Substitution note (see DESIGN.md §3).** The paper drives its PARSEC
//! experiments with traces captured from a SIMICS+GEMS full-system
//! simulation of the Table 1 machine. Neither the traces nor the simulators
//! are available, so we model each application as a closed-loop,
//! Markov-modulated request/reply process whose *relative* network
//! intensities follow the published PARSEC characterization (blackscholes ≲
//! swaptions ≪ raytrace < fluidanimate in traffic volume), with per-node
//! MLP limits (low-intensity apps have low memory-level parallelism — the
//! STC criticality argument), bursty on/off phases, and a destination mix
//! that is region-local for L2 bank accesses (the cooperative-cache
//! regionalization of §II) with a small remote and memory-controller
//! fraction. RAIR and the baselines react to intensity ordering, burstiness
//! and regional mix — all preserved — not to instruction-level behavior.
//!
//! Requests are short packets (a cache-line address), replies long packets
//! (head + 64 B data), serviced after the L2 or memory latency of Table 1.

use noc_sim::config::SimConfig;
use noc_sim::flit::{PacketInfo, ReplySpec};
use noc_sim::ids::{AppId, NodeId};
use noc_sim::region::RegionMap;
use noc_sim::source::{NewPacket, TrafficSource};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Statistical model of one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppModel {
    pub name: String,
    /// Request probability per node per cycle while the node is in an ON
    /// phase.
    pub on_rate: f64,
    /// Probability of leaving the ON phase each cycle.
    pub p_on_to_off: f64,
    /// Probability of leaving the OFF phase each cycle.
    pub p_off_to_on: f64,
    /// Maximum outstanding requests per node (memory-level parallelism).
    pub max_outstanding: u32,
    /// Fraction of requests served by a region-local L2 bank.
    pub local_fraction: f64,
    /// Fraction of requests going to a memory controller (corner tile).
    pub mc_fraction: f64,
}

impl AppModel {
    /// blackscholes: tiny working set, very light network traffic.
    pub fn blackscholes() -> Self {
        Self {
            name: "blackscholes".into(),
            on_rate: 0.004,
            p_on_to_off: 0.002,
            p_off_to_on: 0.004,
            max_outstanding: 2,
            local_fraction: 0.92,
            mc_fraction: 0.04,
        }
    }

    /// swaptions: light traffic, slightly above blackscholes.
    pub fn swaptions() -> Self {
        Self {
            name: "swaptions".into(),
            on_rate: 0.007,
            p_on_to_off: 0.003,
            p_off_to_on: 0.005,
            max_outstanding: 2,
            local_fraction: 0.92,
            mc_fraction: 0.04,
        }
    }

    /// raytrace: moderate traffic with irregular sharing.
    pub fn raytrace() -> Self {
        Self {
            name: "raytrace".into(),
            on_rate: 0.018,
            p_on_to_off: 0.004,
            p_off_to_on: 0.006,
            max_outstanding: 4,
            local_fraction: 0.85,
            mc_fraction: 0.06,
        }
    }

    /// fluidanimate: the network-intensive one of the four, bursty.
    pub fn fluidanimate() -> Self {
        Self {
            name: "fluidanimate".into(),
            on_rate: 0.035,
            p_on_to_off: 0.008,
            p_off_to_on: 0.008,
            max_outstanding: 8,
            local_fraction: 0.82,
            mc_fraction: 0.06,
        }
    }

    /// The representative four-application subset evaluated in §V.G,
    /// "containing both low and high intensity traffic".
    pub fn parsec_four() -> Vec<AppModel> {
        vec![
            Self::blackscholes(),
            Self::swaptions(),
            Self::fluidanimate(),
            Self::raytrace(),
        ]
    }

    /// Mean request rate accounting for the ON/OFF duty cycle — the
    /// intensity oracle handed to RO_Rank.
    pub fn mean_rate(&self) -> f64 {
        let duty = self.p_off_to_on / (self.p_off_to_on + self.p_on_to_off);
        self.on_rate * duty
    }
}

#[derive(Debug, Clone, Copy)]
struct NodeState {
    on: bool,
    outstanding: u32,
}

/// Closed-loop multi-application PARSEC-like workload.
#[derive(Debug, Clone)]
pub struct ParsecWorkload {
    cfg: SimConfig,
    region: RegionMap,
    models: Vec<AppModel>,
    state: Vec<NodeState>,
    /// Request message class; replies use class 1 when the config has two
    /// classes, else everything shares class 0.
    reply_class: u8,
}

impl ParsecWorkload {
    /// One model per application of the region map.
    pub fn new(cfg: &SimConfig, region: &RegionMap, models: Vec<AppModel>) -> Self {
        assert_eq!(models.len(), region.num_apps());
        Self {
            state: vec![
                NodeState {
                    on: true,
                    outstanding: 0,
                };
                cfg.num_nodes()
            ],
            reply_class: (cfg.num_classes - 1) as u8,
            cfg: cfg.clone(),
            region: region.clone(),
            models,
        }
    }

    /// The intensity oracle for RO_Rank (mean request rate per app).
    pub fn intensities(&self) -> Vec<f64> {
        self.models.iter().map(AppModel::mean_rate).collect()
    }

    fn draw_dest(
        &self,
        model: &AppModel,
        app: AppId,
        src: NodeId,
        rng: &mut SmallRng,
    ) -> Option<(NodeId, u64)> {
        let u: f64 = rng.random();
        if u < model.local_fraction {
            // Region-local L2 bank.
            let own = self.region.nodes_of(app);
            let d = pick_other(&own, src, rng)?;
            Some((d, self.cfg.l2_latency))
        } else if u < model.local_fraction + model.mc_fraction {
            // Memory controller at a corner.
            let corners = self.cfg.corners();
            let mut d = corners[rng.random_range(0..4)];
            if d == src {
                d = corners[(corners.iter().position(|&x| x == src).unwrap() + 1) % 4];
            }
            Some((d, self.cfg.mem_latency))
        } else {
            // Remote L2 bank in another region (inter-VM/app sharing).
            let n = self.cfg.num_nodes() as NodeId;
            for _ in 0..16 {
                let d = rng.random_range(0..n);
                if d != src && self.region.app_of(d) != app {
                    return Some((d, self.cfg.l2_latency));
                }
            }
            None
        }
    }
}

impl TrafficSource for ParsecWorkload {
    fn num_apps(&self) -> usize {
        self.models.len()
    }

    fn generate(&mut self, node: NodeId, _cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        let app = self.region.app_of(node);
        if app == noc_sim::ids::APP_NONE {
            return None;
        }
        let model = &self.models[app as usize];
        let st = &mut self.state[node as usize];
        // ON/OFF phase transition.
        if st.on {
            if rng.random_bool(model.p_on_to_off) {
                st.on = false;
            }
        } else if rng.random_bool(model.p_off_to_on) {
            st.on = true;
        }
        if !st.on || st.outstanding >= model.max_outstanding || !rng.random_bool(model.on_rate) {
            return None;
        }
        let model = model.clone();
        let (dst, service) = self.draw_dest(&model, app, node, rng)?;
        self.state[node as usize].outstanding += 1;
        Some(NewPacket {
            dst,
            app,
            class: 0,
            size: self.cfg.short_flits,
            reply: Some(ReplySpec {
                service_latency: service,
                size: self.cfg.long_flits,
                class: self.reply_class,
            }),
        })
    }

    fn next_injection_cycle(&self, _now: u64) -> Option<u64> {
        // The ON/OFF Markov chain draws from every node's RNG every cycle;
        // skipping calls would desynchronize the streams. Keep the default.
        None
    }

    fn on_delivered(&mut self, node: NodeId, info: &PacketInfo, _cycle: u64) {
        // A reply delivered at `node` retires one outstanding request there.
        if info.class == self.reply_class && info.reply.is_none() && self.cfg.num_classes > 1 {
            let st = &mut self.state[node as usize];
            st.outstanding = st.outstanding.saturating_sub(1);
        }
    }
}

fn pick_other(set: &[NodeId], src: NodeId, rng: &mut SmallRng) -> Option<NodeId> {
    let has_src = set.contains(&src);
    let n = set.len() - usize::from(has_src);
    if n == 0 {
        return None;
    }
    let mut idx = rng.random_range(0..n);
    if has_src {
        let pos = set.iter().position(|&x| x == src).unwrap();
        if idx >= pos {
            idx += 1;
        }
    }
    Some(set[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn intensity_ordering_matches_characterization() {
        let b = AppModel::blackscholes().mean_rate();
        let s = AppModel::swaptions().mean_rate();
        let r = AppModel::raytrace().mean_rate();
        let f = AppModel::fluidanimate().mean_rate();
        assert!(b < s && s < r && r < f, "{b} {s} {r} {f}");
    }

    #[test]
    fn mlp_caps_outstanding() {
        let cfg = SimConfig::table1_req_reply();
        let region = RegionMap::quadrants(&cfg);
        let mut w = ParsecWorkload::new(&cfg, &region, AppModel::parsec_four());
        let mut rng = SmallRng::seed_from_u64(1);
        // Node 63 runs raytrace (quadrant 3), MLP 4; without replies it
        // must stop at 4 outstanding.
        let mlp = AppModel::raytrace().max_outstanding;
        let mut issued = 0;
        for cyc in 0..400_000 {
            if w.generate(63, cyc, &mut rng).is_some() {
                issued += 1;
            }
        }
        assert_eq!(issued, mlp, "MLP cap not enforced");
        // Retiring one via a reply delivery allows one more.
        let reply = PacketInfo {
            id: 0,
            src: 0,
            dst: 63,
            app: 3,
            class: 1,
            size: 5,
            birth: 0,
            inject: 0,
            reply: None,
        };
        w.on_delivered(63, &reply, 0);
        let mut extra = 0;
        for cyc in 0..200_000 {
            if w.generate(63, cyc, &mut rng).is_some() {
                extra += 1;
            }
        }
        assert_eq!(extra, 1);
    }

    #[test]
    fn requests_are_short_with_long_replies() {
        let cfg = SimConfig::table1_req_reply();
        let region = RegionMap::quadrants(&cfg);
        let mut w = ParsecWorkload::new(&cfg, &region, AppModel::parsec_four());
        let mut rng = SmallRng::seed_from_u64(2);
        let mut found = 0;
        for cyc in 0..100_000 {
            for node in 0..64u16 {
                if let Some(p) = w.generate(node, cyc, &mut rng) {
                    assert_eq!(p.size, 1);
                    let r = p.reply.unwrap();
                    assert_eq!(r.size, 5);
                    assert_eq!(r.class, 1);
                    assert!(
                        r.service_latency == cfg.l2_latency || r.service_latency == cfg.mem_latency
                    );
                    found += 1;
                    // Retire immediately so the MLP cap never throttles the
                    // sample collection.
                    w.state[node as usize].outstanding = 0;
                }
            }
            if found > 500 {
                break;
            }
        }
        assert!(found > 500);
    }

    #[test]
    fn destination_mix_is_mostly_local() {
        let cfg = SimConfig::table1_req_reply();
        let region = RegionMap::quadrants(&cfg);
        // All four quadrants run fluidanimate to get volume quickly.
        let mut w = ParsecWorkload::new(&cfg, &region, vec![AppModel::fluidanimate(); 4]);
        let mut rng = SmallRng::seed_from_u64(3);
        let (mut local, mut total) = (0u32, 0u32);
        for cyc in 0..50_000 {
            for node in 0..64u16 {
                if let Some(p) = w.generate(node, cyc, &mut rng) {
                    total += 1;
                    if region.app_of(p.dst) == region.app_of(node)
                        && !cfg.corners().contains(&p.dst)
                    {
                        local += 1;
                    }
                    // Retire immediately so MLP does not throttle the test.
                    w.state[node as usize].outstanding = 0;
                }
            }
        }
        let frac = local as f64 / total as f64;
        // local_fraction 0.82, but corners that fall inside the own region
        // subtract a little.
        assert!((0.70..0.90).contains(&frac), "local fraction {frac}");
    }
}
