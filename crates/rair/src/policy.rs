//! The RAIR priority policy: VC regionalization + MSP + DPA plugged into
//! the router's arbitration steps (§IV of the paper).

use crate::dpa::DpaMode;
use crate::msp::MspConfig;
use noc_sim::arbitration::{ArbReq, ArbStage, PriorityPolicy};
use noc_sim::router::Router;
use noc_sim::vc::{VcClass, VcTag};

/// Priority value for the currently favored flow. Low-priority requests get
/// [`LOW`]; equal-priority requests fall back to round-robin, which is also
/// the paper's rule among multiple foreign applications.
const HIGH: u64 = 2;
const LOW: u64 = 1;

/// Region-Aware Interference Reduction.
///
/// * **VC regionalization** (§IV.A): at VA_out, *global* output VCs always
///   grant foreign traffic priority over native traffic; *regional* output
///   VCs (and the escape VCs, which we treat like regional ones) follow the
///   DPA decision.
/// * **MSP** (§IV.B): the stages enforcing prioritization are configurable;
///   disabled stages behave as plain round-robin.
/// * **DPA** (§IV.C): the per-router `native_high` bit maintained with
///   hysteresis; computed at the end of each cycle from the OVC registers
///   and consumed the next cycle (the paper's one-cycle delay, §IV.E).
#[derive(Debug, Clone)]
pub struct RairPolicy {
    pub msp: MspConfig,
    pub dpa: DpaMode,
}

impl RairPolicy {
    /// The full RAIR configuration used in the paper's headline results.
    pub fn full() -> Self {
        Self {
            msp: MspConfig::va_and_sa(),
            dpa: DpaMode::dynamic(),
        }
    }

    /// RAIR with custom MSP/DPA settings (for the ablations).
    pub fn with(msp: MspConfig, dpa: DpaMode) -> Self {
        Self { msp, dpa }
    }
}

/// Pure, state-explicit core of [`RairPolicy::priority`]: the same
/// per-stage priority with the router replaced by its one relevant bit
/// (`native_high`). This is the transition-system view the static
/// admission pipeline (`noc_sim::admit`) explores; the trait impl
/// delegates here so the kernel and the analyzer can never drift apart.
/// A `None` VC class at VA_out is treated like the escape/regional case
/// (the kernel always passes the concrete class).
pub fn stage_priority(
    msp: MspConfig,
    stage: ArbStage,
    native_high: bool,
    out_vc: Option<VcClass>,
    is_native: bool,
) -> u64 {
    let dpa = if is_native == native_high { HIGH } else { LOW };
    match stage {
        ArbStage::VaOut => {
            if !msp.at_va_out {
                return 0;
            }
            match out_vc {
                // Global VCs: foreign traffic always wins (its global
                // nature implies higher criticality).
                Some(VcClass::Adaptive { tag: VcTag::Global }) => {
                    if is_native {
                        LOW
                    } else {
                        HIGH
                    }
                }
                // Regional VCs and escape VCs: DPA decides.
                _ => dpa,
            }
        }
        ArbStage::SaIn | ArbStage::SaOut => {
            if msp.at_sa {
                dpa
            } else {
                0
            }
        }
    }
}

impl PriorityPolicy for RairPolicy {
    fn name(&self) -> &'static str {
        "RA_RAIR"
    }

    fn priority(
        &self,
        stage: ArbStage,
        router: &Router,
        out_vc: Option<VcClass>,
        req: &ArbReq,
    ) -> u64 {
        stage_priority(
            self.msp,
            stage,
            router.dpa_native_high,
            out_vc,
            req.is_native,
        )
    }

    fn update_router(&self, router: &mut Router, _cycle: u64) {
        router.dpa_native_high = self.dpa.next_native_high(
            router.dpa_native_high,
            router.ovc_native,
            router.ovc_foreign,
        );
    }

    /// The DPA hysteresis bit must be a fixed point of its own transition
    /// on the router's current occupancy registers: `update_router` runs
    /// every cycle (or is elided exactly when occupancy is unchanged), so
    /// any drift means a missed or corrupted state update.
    fn check_invariant(&self, router: &Router) -> Option<String> {
        let next = self.dpa.next_native_high(
            router.dpa_native_high,
            router.ovc_native,
            router.ovc_foreign,
        );
        (next != router.dpa_native_high).then(|| {
            format!(
                "DPA priority bit {} is not a fixed point of its transition \
                 (native={}, foreign={} => {})",
                router.dpa_native_high, router.ovc_native, router.ovc_foreign, next
            )
        })
    }

    /// Foreign traffic steers toward global VCs where it is guaranteed the
    /// high priority; native traffic prefers regional VCs.
    fn vc_tag_preference(&self, _router: &Router, req: &ArbReq) -> Option<VcTag> {
        Some(if req.is_native {
            VcTag::Regional
        } else {
            VcTag::Global
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::SimConfig;

    fn router_with_priority(native_high: bool) -> Router {
        let cfg = SimConfig::table1();
        let mut r = Router::new(&cfg, 0, cfg.coord_of(0), 0);
        r.dpa_native_high = native_high;
        r
    }

    fn native() -> ArbReq {
        ArbReq {
            app: 0,
            class: 0,
            birth: 0,
            inject: 0,
            is_native: true,
        }
    }

    fn foreign() -> ArbReq {
        ArbReq {
            is_native: false,
            app: 1,
            ..native()
        }
    }

    const GLOBAL: VcClass = VcClass::Adaptive { tag: VcTag::Global };
    const REGIONAL: VcClass = VcClass::Adaptive {
        tag: VcTag::Regional,
    };
    const ESCAPE: VcClass = VcClass::Escape { class: 0 };

    #[test]
    fn global_vcs_always_favor_foreign() {
        let p = RairPolicy::full();
        // Even when DPA currently says native-high.
        let r = router_with_priority(true);
        let pf = p.priority(ArbStage::VaOut, &r, Some(GLOBAL), &foreign());
        let pn = p.priority(ArbStage::VaOut, &r, Some(GLOBAL), &native());
        assert!(pf > pn);
    }

    #[test]
    fn regional_vcs_follow_dpa() {
        let p = RairPolicy::full();
        let r = router_with_priority(true);
        assert!(
            p.priority(ArbStage::VaOut, &r, Some(REGIONAL), &native())
                > p.priority(ArbStage::VaOut, &r, Some(REGIONAL), &foreign())
        );
        let r = router_with_priority(false);
        assert!(
            p.priority(ArbStage::VaOut, &r, Some(REGIONAL), &foreign())
                > p.priority(ArbStage::VaOut, &r, Some(REGIONAL), &native())
        );
    }

    #[test]
    fn escape_vcs_treated_like_regional() {
        let p = RairPolicy::full();
        let r = router_with_priority(true);
        assert!(
            p.priority(ArbStage::VaOut, &r, Some(ESCAPE), &native())
                > p.priority(ArbStage::VaOut, &r, Some(ESCAPE), &foreign())
        );
    }

    #[test]
    fn sa_stages_use_same_dpa_priority() {
        // §IV.B: the same DPA priority applies to VA_out (regional),
        // SA_in and SA_out at any given time.
        let p = RairPolicy::full();
        let r = router_with_priority(false);
        for stage in [ArbStage::SaIn, ArbStage::SaOut] {
            assert!(
                p.priority(stage, &r, None, &foreign()) > p.priority(stage, &r, None, &native()),
                "{stage:?}"
            );
        }
        assert_eq!(
            p.priority(ArbStage::SaIn, &r, None, &foreign()),
            p.priority(ArbStage::VaOut, &r, Some(REGIONAL), &foreign())
        );
    }

    #[test]
    fn disabled_stages_degrade_to_round_robin() {
        let p = RairPolicy::with(MspConfig::va_only(), DpaMode::dynamic());
        let r = router_with_priority(false);
        assert_eq!(p.priority(ArbStage::SaIn, &r, None, &foreign()), 0);
        assert_eq!(p.priority(ArbStage::SaIn, &r, None, &native()), 0);
        // VA still prioritizes.
        assert!(
            p.priority(ArbStage::VaOut, &r, Some(GLOBAL), &foreign())
                > p.priority(ArbStage::VaOut, &r, Some(GLOBAL), &native())
        );

        let p = RairPolicy::with(MspConfig::none(), DpaMode::dynamic());
        assert_eq!(p.priority(ArbStage::VaOut, &r, Some(GLOBAL), &foreign()), 0);
    }

    #[test]
    fn update_router_applies_hysteresis() {
        let p = RairPolicy::full();
        let mut r = router_with_priority(false);
        r.ovc_native = 10;
        r.ovc_foreign = 13; // r = 1.3 > 1.2
        p.update_router(&mut r, 0);
        assert!(r.dpa_native_high);
        r.ovc_foreign = 9; // r = 0.9, inside band → keep
        p.update_router(&mut r, 1);
        assert!(r.dpa_native_high);
        r.ovc_foreign = 7; // r = 0.7 < 0.8 → low
        p.update_router(&mut r, 2);
        assert!(!r.dpa_native_high);
    }

    /// RAIR keeps the default `update_is_idempotent() == true`, which lets
    /// the network skip `update_router` on cycles with unchanged occupancy.
    /// That is only sound if re-applying the DPA transition with the same
    /// registers is a fixed point — verify it across the state space.
    #[test]
    fn update_router_is_idempotent() {
        let p = RairPolicy::full();
        assert!(p.update_is_idempotent());
        for start in [false, true] {
            for n in 0..12u32 {
                for f in 0..12u32 {
                    let mut r = router_with_priority(start);
                    r.ovc_native = n;
                    r.ovc_foreign = f;
                    p.update_router(&mut r, 0);
                    let once = r.dpa_native_high;
                    p.update_router(&mut r, 1);
                    assert_eq!(
                        r.dpa_native_high, once,
                        "DPA not idempotent at start={start} n={n} f={f}"
                    );
                }
            }
        }
    }

    #[test]
    fn check_invariant_flags_stale_priority_bit() {
        let p = RairPolicy::full();
        // After an update the bit is a fixed point → consistent.
        let mut r = router_with_priority(false);
        r.ovc_native = 10;
        r.ovc_foreign = 13;
        p.update_router(&mut r, 0);
        assert!(p.check_invariant(&r).is_none());
        // Flip the bit behind the policy's back → flagged.
        r.dpa_native_high = !r.dpa_native_high;
        let msg = p.check_invariant(&r).expect("stale bit must be flagged");
        assert!(msg.contains("fixed point"), "{msg}");
        // A fresh router with no traffic is trivially consistent.
        assert!(p.check_invariant(&router_with_priority(false)).is_none());
    }

    #[test]
    fn fixed_modes_pin_priority() {
        let p = RairPolicy::with(MspConfig::va_and_sa(), DpaMode::FixedNativeHigh);
        let mut r = router_with_priority(false);
        r.ovc_native = 100;
        r.ovc_foreign = 0;
        p.update_router(&mut r, 0);
        assert!(r.dpa_native_high);

        let p = RairPolicy::with(MspConfig::va_and_sa(), DpaMode::FixedForeignHigh);
        p.update_router(&mut r, 0);
        assert!(!r.dpa_native_high);
    }

    #[test]
    fn vc_preference_steers_by_origin() {
        let p = RairPolicy::full();
        let r = router_with_priority(false);
        assert_eq!(p.vc_tag_preference(&r, &native()), Some(VcTag::Regional));
        assert_eq!(p.vc_tag_preference(&r, &foreign()), Some(VcTag::Global));
    }
}
