//! Bench for Figure 14 (six-application RNoC, uniform-random global
//! traffic): regenerates the comparison, then times the scenario per scheme.

use bench::{bench_config, TIMED_CYCLES};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figs::fig14;
use experiments::sweep::build_network;
use noc_sim::config::SimConfig;
use rair::scheme::{Routing, Scheme};
use traffic::scenario::{six_app, InterDest};

fn regen_and_time(c: &mut Criterion) {
    let ec = bench_config();
    let result = fig14::run(&ec);
    eprintln!("{}", fig14::table(&result).render());

    let rates = [0.03, 0.3, 0.1, 0.07, 0.08, 0.3];
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    for (label, scheme, routing) in [
        ("ro_rr", Scheme::RoRr, Routing::Local),
        ("ra_dbar", Scheme::RoRr, Routing::Dbar),
        ("ro_rank", Scheme::ro_rank(rates.to_vec()), Routing::Local),
        ("ra_rair", Scheme::rair(), Routing::Local),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let cfg = SimConfig::table1();
                let (region, scenario) = six_app(&cfg, rates, InterDest::OutsideUniform);
                let mut net = build_network(&cfg, &region, &scheme, routing, Box::new(scenario), 1);
                net.run(TIMED_CYCLES);
                net.stats.recorder.delivered()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, regen_and_time);
criterion_main!(benches);
