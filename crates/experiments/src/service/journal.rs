//! Crash-safe job journal: a versioned, per-line-CRC'd write-ahead log.
//!
//! Every state transition of the experiment service (`queued`, `running`,
//! `done`, `failed`, `quarantine`, …) is one line:
//!
//! ```text
//! rair-wal-v1 \t <crc32 of payload, 8 hex digits> \t <payload>
//! ```
//!
//! The payload may itself contain tabs (a `done` row embeds a full
//! checkpoint-format result line); the frame is recovered with
//! `splitn(3, '\t')`, so only the first two tabs are structural.
//!
//! Recovery ([`Journal::replay`]) replays the longest valid prefix of the
//! file, with two deliberate asymmetries:
//!
//! - **Torn tail tolerated.** An invalid *final* line is what an
//!   interrupted append leaves behind ([`super::store::Store::append_durable`]
//!   fsyncs, so at most the last row can be torn). It is dropped with a
//!   warning and counted — losing the last transition only means the
//!   deterministic job it described reruns.
//! - **Corrupt interior row quarantined.** An invalid line *followed by
//!   valid lines* is bit rot, not a torn append. The row is copied to
//!   `<journal>.quarantine`, counted, warned about — and replay continues
//!   with the valid rows after it. Journal rows are keyed by job id, so
//!   skipping one row degrades to re-running that job, never to replaying
//!   the wrong state.
//!
//! A CRC mismatch and a truncated frame are treated identically: the row
//! is unusable, and which bytes went missing is not recoverable.

use super::store::{crc32, Store};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version tag opening every journal line; bump when the payload grammar
/// changes so old journals are quarantined, not misread.
pub const WAL_TAG: &str = "rair-wal-v1";

/// An append-only, CRC-framed journal over an injectable [`Store`].
pub struct Journal<'s> {
    path: PathBuf,
    store: &'s dyn Store,
    /// Appends that failed (EIO/ENOSPC/torn). The journal degrades to
    /// best-effort — the sweep still completes, resume coverage shrinks.
    write_errors: AtomicU64,
    warned: std::sync::atomic::AtomicBool,
}

/// Result of replaying a journal file.
#[derive(Debug, Default)]
pub struct Replay {
    /// Valid payloads, in file order.
    pub rows: Vec<String>,
    /// Whether an invalid final line was dropped (interrupted append).
    pub torn_tail: bool,
    /// `(1-based line number, raw line)` of interior rows that failed CRC
    /// or framing and were quarantined.
    pub quarantined: Vec<(usize, String)>,
}

impl<'s> Journal<'s> {
    pub fn new(path: impl Into<PathBuf>, store: &'s dyn Store) -> Self {
        Self {
            path: path.into(),
            store,
            write_errors: AtomicU64::new(0),
            warned: std::sync::atomic::AtomicBool::new(false),
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frame one payload as a journal line (without trailing newline).
    pub fn frame(payload: &str) -> String {
        format!("{WAL_TAG}\t{:08x}\t{payload}", crc32(payload.as_bytes()))
    }

    /// Parse one line back into its payload; `None` if the tag, framing or
    /// CRC does not hold.
    pub fn parse_line(line: &str) -> Option<&str> {
        let mut parts = line.splitn(3, '\t');
        if parts.next()? != WAL_TAG {
            return None;
        }
        let crc = u32::from_str_radix(parts.next()?, 16).ok()?;
        let payload = parts.next()?;
        (crc32(payload.as_bytes()) == crc).then_some(payload)
    }

    /// Append one payload durably. Failures are counted and warned about
    /// (once), never raised: a journal that cannot be written degrades the
    /// sweep to non-resumable, it does not abort it.
    pub fn append(&self, payload: &str) {
        let line = format!("{}\n", Self::frame(payload));
        if let Err(e) = self.store.append_durable(&self.path, line.as_bytes()) {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            if !self.warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "[serve] warning: journal append to {} failed ({e}); \
                     continuing without durability for affected rows",
                    self.path.display()
                );
            }
        }
    }

    /// Appends that failed so far.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Replay the journal: longest valid prefix semantics as described in
    /// the module docs. A missing or unreadable file is an empty journal
    /// (cold start / degraded read — both mean "re-run everything").
    pub fn replay(&self) -> Replay {
        let Ok(bytes) = self.store.read(&self.path) else {
            return Replay::default();
        };
        let text = String::from_utf8_lossy(&bytes);
        let mut out = Replay::default();
        let lines: Vec<&str> = text.lines().collect();
        let last_non_empty = lines.iter().rposition(|l| !l.trim().is_empty());
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Self::parse_line(line) {
                Some(payload) => out.rows.push(payload.to_string()),
                None if Some(i) == last_non_empty => {
                    // Interrupted append: at most one torn row, at the end.
                    out.torn_tail = true;
                    eprintln!(
                        "[serve] journal {}: dropping torn tail line {} \
                         (interrupted append; the job it recorded will re-run)",
                        self.path.display(),
                        i + 1
                    );
                }
                None => {
                    out.quarantined.push((i + 1, (*line).to_string()));
                    eprintln!(
                        "[serve] warning: journal {}: quarantining corrupt \
                         interior row at line {} (CRC/framing failure)",
                        self.path.display(),
                        i + 1
                    );
                }
            }
        }
        if !out.quarantined.is_empty() {
            let mut body = String::new();
            for (ln, raw) in &out.quarantined {
                body.push_str(&format!("line {ln}: {raw}\n"));
            }
            let qpath = self.quarantine_path();
            if let Err(e) = self.store.append_durable(&qpath, body.as_bytes()) {
                eprintln!(
                    "[serve] warning: could not record quarantined rows to {}: {e}",
                    qpath.display()
                );
            }
        }
        out
    }

    /// Where quarantined rows are preserved for post-mortems.
    pub fn quarantine_path(&self) -> PathBuf {
        let name = self
            .path
            .file_name()
            .map_or_else(|| "journal".into(), |s| s.to_string_lossy().into_owned());
        self.path.with_file_name(format!("{name}.quarantine"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::store::{ChaosStore, Fault, StdStore};
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rair-wal-{}-{tag}", std::process::id()));
        // lint: allow(swallowed-io-error)
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn frame_parse_roundtrip_and_crc_rejects_bitflips() {
        let payload = "done\t0123456789abcdef\trair-ckpt-v1\tlabel\t42";
        let line = Journal::frame(payload);
        assert_eq!(Journal::parse_line(&line), Some(payload));
        // Any single-character corruption of the payload fails the CRC.
        let mut bad = line.clone();
        let flip = bad.pop().unwrap();
        bad.push(if flip == 'x' { 'y' } else { 'x' });
        assert_eq!(Journal::parse_line(&bad), None);
        // Wrong tag, truncated frame, garbage: all rejected.
        assert_eq!(Journal::parse_line("rair-wal-v0\t00000000\tx"), None);
        assert_eq!(Journal::parse_line("rair-wal-v1\tzz\tx"), None);
        assert_eq!(Journal::parse_line("rair-wal-v1\t00000000"), None);
        assert_eq!(Journal::parse_line(""), None);
    }

    #[test]
    fn replay_returns_rows_in_order() {
        let dir = tmp("order");
        let store = StdStore;
        let j = Journal::new(dir.join("j.wal"), &store);
        for p in ["queued\t1", "running\t1\t1", "done\t1\tok"] {
            j.append(p);
        }
        assert_eq!(j.write_errors(), 0);
        let r = j.replay();
        assert_eq!(r.rows, vec!["queued\t1", "running\t1\t1", "done\t1\tok"]);
        assert!(!r.torn_tail);
        assert!(r.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_flagged() {
        let dir = tmp("torn");
        let store = StdStore;
        let path = dir.join("j.wal");
        let j = Journal::new(&path, &store);
        j.append("queued\tA");
        j.append("done\tA\tresult");
        // Simulate an interrupted append: a partial frame at EOF.
        let full = std::fs::read(&path).unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&Journal::frame("done\tB\tresult").as_bytes()[..17]);
        std::fs::write(&path, &torn).unwrap();
        let r = j.replay();
        assert_eq!(r.rows, vec!["queued\tA", "done\tA\tresult"]);
        assert!(r.torn_tail, "partial final line must be reported as torn");
        assert!(r.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_corruption_is_quarantined_and_replay_continues() {
        let dir = tmp("interior");
        let store = StdStore;
        let path = dir.join("j.wal");
        let j = Journal::new(&path, &store);
        j.append("queued\tA");
        j.append("done\tA\tresult-A");
        j.append("done\tB\tresult-B");
        // Flip one byte in the middle row.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[1] = lines[1].replace("result-A", "resulx-A");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let r = j.replay();
        // The corrupt row is gone; the rows before AND after it survive.
        assert_eq!(r.rows, vec!["queued\tA", "done\tB\tresult-B"]);
        assert!(!r.torn_tail);
        assert_eq!(r.quarantined.len(), 1);
        assert_eq!(r.quarantined[0].0, 2, "1-based line number");
        // The quarantine file preserves the damaged row for post-mortems.
        let q = std::fs::read_to_string(j.quarantine_path()).unwrap();
        assert!(q.contains("line 2:") && q.contains("resulx-A"), "{q}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_failures_degrade_with_a_counter_not_a_panic() {
        let dir = tmp("degrade");
        let store = ChaosStore::scripted(vec![(1, Fault::Enospc), (3, Fault::Torn)]);
        let path = dir.join("j.wal");
        let j = Journal::new(&path, &store);
        j.append("queued\tA"); // op 0: lands
        j.append("done\tA\tx"); // op 1: ENOSPC, dropped entirely
        j.append("done\tB\ty"); // op 2: lands
        j.append("done\tC\tz"); // op 3: torn prefix at EOF
        assert_eq!(j.write_errors(), 2);
        let r = j.replay();
        // The fully-written rows replay; the ENOSPC'd row is simply absent
        // and the torn final row is dropped as the torn tail.
        assert_eq!(
            r.rows,
            vec!["queued\tA".to_string(), "done\tB\ty".to_string()]
        );
        assert!(r.torn_tail, "torn final append must be flagged");
        assert!(!r.rows.iter().any(|p| p.contains("done\tA")));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
