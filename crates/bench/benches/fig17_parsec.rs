//! Bench for Figure 17 (PARSEC workloads under adversarial traffic):
//! regenerates the slowdown table, then times the PARSEC workload with and
//! without the adversary.

use bench::{bench_config, TIMED_CYCLES};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figs::fig17;
use experiments::sweep::build_network;
use noc_sim::config::SimConfig;
use noc_sim::region::RegionMap;
use rair::scheme::{Routing, Scheme};
use traffic::adversarial::Adversarial;
use traffic::workload::{AppModel, ParsecWorkload};

fn regen_and_time(c: &mut Criterion) {
    let ec = bench_config();
    let result = fig17::run(&ec);
    eprintln!("{}", fig17::table(&result).render());

    let mut g = c.benchmark_group("fig17");
    g.sample_size(10);
    for adversarial in [false, true] {
        let label = if adversarial { "parsec_adv" } else { "parsec" };
        g.bench_function(label, |b| {
            b.iter(|| {
                let cfg = SimConfig::table1_req_reply();
                let region = RegionMap::quadrants(&cfg);
                let w = ParsecWorkload::new(&cfg, &region, AppModel::parsec_four());
                let mut net = if adversarial {
                    let adv = Adversarial::new(w, fig17::ADVERSARIAL_RATE, 64, cfg.long_flits);
                    build_network(
                        &cfg,
                        &region,
                        &Scheme::rair(),
                        Routing::Local,
                        Box::new(adv),
                        1,
                    )
                } else {
                    build_network(
                        &cfg,
                        &region,
                        &Scheme::rair(),
                        Routing::Local,
                        Box::new(w),
                        1,
                    )
                };
                net.run(TIMED_CYCLES);
                net.stats.recorder.delivered()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, regen_and_time);
criterion_main!(benches);
