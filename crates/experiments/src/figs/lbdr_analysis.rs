//! §III.B — LBDR mapping-validity analysis ("only ≈14 % of configurations
//! are allowed").

use metrics::report::pct;
use metrics::Table;
use rair::lbdr::{exact_valid_fraction, max_regions, sampled_valid_fraction};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Compute the exact and sampled valid-mapping fractions for the paper's
/// 16-core / 4-MC / 4-app×4-thread setting plus nearby configurations.
pub fn table(samples: usize, seed: u64) -> Table {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = Table::new(
        "LBDR valid application-to-core mappings (paper: ~14% for 4 apps x 4 threads)",
        &["apps x threads", "exact", "sampled", "max regions"],
    );
    for (apps, threads) in [(2usize, 8usize), (4, 4), (8, 2)] {
        let exact = exact_valid_fraction(apps as u64, threads as u64);
        let sampled = sampled_valid_fraction(apps, threads, samples, &mut rng);
        t.row(vec![
            format!("{apps} x {threads}"),
            pct(exact),
            pct(sampled),
            format!("{}", max_regions(apps)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_contains_paper_case() {
        let t = super::table(20_000, 7);
        let s = t.render();
        assert!(s.contains("4 x 4"));
        // Exact fraction for the paper case renders as +14.1%.
        assert!(s.contains("+14.1%"), "{s}");
    }
}
