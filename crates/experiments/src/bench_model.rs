//! `repro bench-model` — cross-validation of the analytical surrogate
//! model against the simulator.
//!
//! Three measurements, written to `BENCH_model.json`:
//!
//! 1. **Saturation**: model-predicted vs simulator-measured saturation
//!    load across the scheme×routing×pattern matrix (plus the torus, ring
//!    and concentrated-mesh variants). Every row also runs the
//!    warm-started search against the cold one and asserts the loads are
//!    **bit-identical** — the bench doubles as an equality check — while
//!    recording the simulation counts and wall-clock of both, so the JSON
//!    captures the realized warm-start speedup on a cold cache.
//! 2. **Latency**: model-predicted vs simulated per-application latency on
//!    a halves configuration with cross-region interference, under
//!    round-robin and RAIR priority, at fractions of the measured
//!    saturation load.
//! 3. **Sweep pruning**: the UR load-latency curve with `--prune`
//!    semantics on vs off — wall-clock, pruned-point count, and the knee
//!    estimate of both (the knee must survive pruning).
//!
//! The Table-1 rows (halves and quadrants regionalizations, every routing)
//! are flagged; over that subset the bench asserts the warm-started
//! searches use at most half the stability probes of the cold ones, the
//! headline acceptance bar for the warm-start path.

use crate::figs::curve;
use crate::runner::{run_one, ExpConfig};
use crate::sweep::build_network;
use metrics::Table;
use model::{predict_app_saturation, predict_latencies, warm_hint, PriorityMode, RoutingKind};
use noc_sim::config::SimConfig;
use noc_sim::region::RegionMap;
use noc_sim::topology::TopologyKind;
use rair::scheme::{Routing, Scheme};
use std::time::Instant;
use traffic::pattern::Pattern;
use traffic::saturation::{app_saturation_traced, SaturationProbe, WarmOutcome};
use traffic::scenario::{AppSpec, InterDest, Scenario};

/// One saturation cross-validation row.
#[derive(Debug, Clone)]
pub struct SatRow {
    pub config: String,
    pub routing: &'static str,
    /// Model-predicted saturation load (`NaN` when the model declines).
    pub predicted: f64,
    /// Simulator-measured saturation load (cold search).
    pub measured: f64,
    /// `(predicted - measured) / measured`.
    pub rel_err: f64,
    /// How the warm-started search used the hint.
    pub warm_outcome: WarmOutcome,
    /// Full simulations of the warm-started search (incl. zero-load ref).
    pub warm_sims: u32,
    /// Full simulations of the cold search.
    pub cold_sims: u32,
    pub warm_secs: f64,
    pub cold_secs: f64,
    /// Whether the row belongs to the Table-1 matrix subset the ≤½-probe
    /// acceptance bar is measured over.
    pub table1: bool,
}

/// One latency cross-validation row.
#[derive(Debug, Clone)]
pub struct LatRow {
    pub mode: &'static str,
    /// Offered load as a fraction of the measured halves saturation.
    pub load_frac: f64,
    pub app: usize,
    pub predicted: f64,
    pub simulated: f64,
    pub rel_err: f64,
}

/// The full bench result.
#[derive(Debug, Clone)]
pub struct BenchModel {
    /// Whether the quick probe / short windows were used (smoke runs).
    pub quick: bool,
    pub sat: Vec<SatRow>,
    pub lat: Vec<LatRow>,
    pub sweep_full_secs: f64,
    pub sweep_pruned_secs: f64,
    pub sweep_pruned_points: usize,
    pub knee_full: Option<f64>,
    pub knee_pruned: Option<f64>,
}

impl BenchModel {
    /// Mean and max absolute relative saturation error, with the config
    /// name of the max.
    pub fn sat_error(&self) -> (f64, f64, &str) {
        let mut mean = 0.0;
        let mut max = (0.0, "");
        for r in &self.sat {
            let e = r.rel_err.abs();
            mean += e;
            if e > max.0 {
                max = (e, r.config.as_str());
            }
        }
        (mean / self.sat.len() as f64, max.0, max.1)
    }

    /// Total stability probes (simulations minus the shared zero-load
    /// reference) of the warm and cold searches over the Table-1 subset.
    pub fn table1_probes(&self) -> (u32, u32) {
        self.sat
            .iter()
            .filter(|r| r.table1)
            .fold((0, 0), |(w, c), r| {
                (
                    w + r.warm_sims.saturating_sub(1),
                    c + r.cold_sims.saturating_sub(1),
                )
            })
    }

    /// Aggregate wall-clock speedup of warm-started over cold searches on
    /// a cold cache, across the whole matrix.
    pub fn warm_speedup(&self) -> f64 {
        let warm: f64 = self.sat.iter().map(|r| r.warm_secs).sum();
        let cold: f64 = self.sat.iter().map(|r| r.cold_secs).sum();
        cold / warm.max(1e-9)
    }
}

/// The routing algorithms a saturation row is validated under.
fn routing_kind(r: Routing) -> RoutingKind {
    match r {
        Routing::Xy => RoutingKind::DimensionOrder,
        _ => RoutingKind::Adaptive,
    }
}

/// The cross-validation matrix: `(label, cfg, region, app, spec, routing,
/// table1)`.
#[allow(clippy::type_complexity)]
fn matrix() -> Vec<(String, SimConfig, RegionMap, u8, AppSpec, Routing, bool)> {
    let mesh = SimConfig::table1();
    let mut cases = Vec::new();
    // Table-1 subset: the paper's halves and quadrants regionalizations,
    // every routing / every app — the searches the figure sweeps rely on.
    let halves = RegionMap::halves(&mesh);
    for routing in [Routing::Local, Routing::Xy, Routing::Dbar] {
        for app in [0u8, 1] {
            cases.push((
                format!("halves/intra/app{app}/{routing:?}"),
                mesh.clone(),
                halves.clone(),
                app,
                AppSpec::intra_only(0.0),
                routing,
                true,
            ));
        }
    }
    let quads = RegionMap::quadrants(&mesh);
    for app in 0..4u8 {
        cases.push((
            format!("quadrants/intra/app{app}"),
            mesh.clone(),
            quads.clone(),
            app,
            AppSpec::intra_only(0.0),
            Routing::Local,
            true,
        ));
    }
    // Broader matrix: six-region mix, chip-wide patterns, other topologies.
    let mix = AppSpec {
        rate_flits: 0.0,
        intra: 0.75,
        inter: 0.20,
        inter_dest: InterDest::OutsideUniform,
        mc: 0.05,
    };
    let six = RegionMap::six_regions(&mesh);
    for app in [0u8, 2] {
        cases.push((
            format!("six/mix/app{app}"),
            mesh.clone(),
            six.clone(),
            app,
            mix.clone(),
            Routing::Local,
            false,
        ));
    }
    let single = RegionMap::single(&mesh);
    cases.push((
        "single/UR".into(),
        mesh.clone(),
        single.clone(),
        0,
        AppSpec::intra_only(0.0),
        Routing::Local,
        false,
    ));
    let hs = Pattern::Hotspot {
        spots: Pattern::center_hotspots(&mesh),
        bias: 0.3,
    };
    for p in [Pattern::Transpose, Pattern::BitComplement, hs] {
        cases.push((
            format!("single/{}", p.label()),
            mesh.clone(),
            single.clone(),
            0,
            AppSpec::with_inter(0.0, 1.0, InterDest::Pattern(p)),
            Routing::Local,
            false,
        ));
    }
    for kind in [
        TopologyKind::Torus,
        TopologyKind::Ring,
        TopologyKind::CMesh { concentration: 4 },
    ] {
        let cfg = SimConfig::table1_topology(kind);
        let region = RegionMap::halves(&cfg);
        cases.push((
            format!("{}/halves/intra", kind.label()),
            cfg,
            region,
            0,
            AppSpec::intra_only(0.0),
            Routing::Local,
            false,
        ));
    }
    cases
}

/// Run the bench. Panics when a warm-started search returns a load that is
/// not bit-identical to the cold one, or when the Table-1 subset misses
/// the ≤½-probe bar — both are hard invariants, not tunables.
pub fn run(ec: &ExpConfig) -> BenchModel {
    let probe = if ec.quick {
        SaturationProbe::quick()
    } else {
        SaturationProbe::default()
    };
    let mut sat = Vec::new();
    for (config, cfg, region, app, spec, routing, table1) in matrix() {
        let hint = warm_hint(&cfg, &region, app, &spec, routing_kind(routing));
        let t0 = Instant::now();
        let cold =
            app_saturation_traced(&probe, &cfg, &region, app, &spec, None, || routing.build());
        let cold_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let warm =
            app_saturation_traced(&probe, &cfg, &region, app, &spec, hint, || routing.build());
        let warm_secs = t1.elapsed().as_secs_f64();
        assert_eq!(
            warm.load.to_bits(),
            cold.load.to_bits(),
            "warm search diverged from cold on {config}: {} vs {}",
            warm.load,
            cold.load
        );
        let predicted = predict_app_saturation(&cfg, &region, app, &spec, routing_kind(routing))
            .map_or(f64::NAN, |p| p.load);
        sat.push(SatRow {
            config,
            routing: routing.label(),
            predicted,
            measured: cold.load,
            rel_err: (predicted - cold.load) / cold.load,
            warm_outcome: warm.warm,
            warm_sims: warm.simulations,
            cold_sims: cold.simulations,
            warm_secs,
            cold_secs,
            table1,
        });
    }

    let bm = |sat: &[SatRow]| {
        sat.iter()
            .find(|r| r.config.starts_with("halves/intra/app0/Local"))
            .expect("halves row present")
            .measured
    };
    let halves_sat = bm(&sat);
    let lat = latency_rows(ec, halves_sat);

    // Sweep pruning: the UR curve, full-length vs pruned windows.
    let steps = if ec.quick { 6 } else { 12 };
    let t0 = Instant::now();
    let full = curve::run(
        &ExpConfig {
            prune: false,
            ..*ec
        },
        Pattern::UniformRandom,
        0.6,
        steps,
    );
    let sweep_full_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let pruned = curve::run(
        &ExpConfig { prune: true, ..*ec },
        Pattern::UniformRandom,
        0.6,
        steps,
    );
    let sweep_pruned_secs = t1.elapsed().as_secs_f64();

    let out = BenchModel {
        quick: ec.quick,
        sat,
        lat,
        sweep_full_secs,
        sweep_pruned_secs,
        sweep_pruned_points: pruned.pruned,
        knee_full: curve::knee(&full),
        knee_pruned: curve::knee(&pruned),
    };
    // The ≤½-probe bar is defined over the default probe the sweeps use —
    // the model is calibrated against it, and the Table-1 rows all accept
    // there. The quick probe's shorter windows measure slightly higher
    // saturation loads, which pushes a few halves rows past the margin
    // into the (correct, bit-identical) cold fallback; smoke runs report
    // the ratio in the JSON without gating on it.
    if !ec.quick {
        let (w, c) = out.table1_probes();
        assert!(
            w * 2 <= c,
            "warm searches used {w} probes vs {c} cold on the Table-1 matrix (> half)"
        );
    }
    out
}

/// Simulate the halves interference scenario (app 0 sends 40% of its
/// traffic into app 1's region) at fractions of the measured saturation,
/// under round-robin and RAIR, and compare against the model.
fn latency_rows(ec: &ExpConfig, halves_sat: f64) -> Vec<LatRow> {
    let cfg = SimConfig::table1();
    let region = RegionMap::halves(&cfg);
    let mut rows = Vec::new();
    for frac in [0.2, 0.5, 0.8] {
        let rate = frac * halves_sat;
        let specs = vec![
            Some(AppSpec::with_inter(rate, 0.4, InterDest::Region(1))),
            Some(AppSpec::intra_only(rate)),
        ];
        for (mode_label, scheme, mode) in [
            ("RO_RR", Scheme::RoRr, PriorityMode::None),
            ("RA_RAIR", Scheme::rair(), PriorityMode::NativeHigh),
        ] {
            let scenario = Scenario::new(&cfg, &region, specs.clone());
            let net = build_network(
                &cfg,
                &region,
                &scheme,
                Routing::Local,
                Box::new(scenario),
                ec.seed,
            );
            let r = run_one(format!("lat/{mode_label}/{frac}"), net, ec);
            let pred = predict_latencies(&cfg, &region, &specs, RoutingKind::Adaptive, mode);
            for (app, &pa) in pred.iter().enumerate() {
                let (Some(p), Some(s)) = (pa, r.apl[app]) else {
                    continue;
                };
                rows.push(LatRow {
                    mode: mode_label,
                    load_frac: frac,
                    app,
                    predicted: p,
                    simulated: s,
                    rel_err: (p - s) / s,
                });
            }
        }
    }
    rows
}

/// Render the saturation cross-validation as a report table.
pub fn sat_table(b: &BenchModel) -> Table {
    let mut t = Table::new(
        "Model cross-validation — saturation (warm bit-identity checked)",
        &[
            "config",
            "routing",
            "predicted",
            "measured",
            "relerr",
            "warm",
            "sims w/c",
        ],
    );
    for r in &b.sat {
        t.row(vec![
            r.config.clone(),
            r.routing.to_string(),
            format!("{:.4}", r.predicted),
            format!("{:.4}", r.measured),
            format!("{:+.3}", r.rel_err),
            format!("{:?}", r.warm_outcome),
            format!("{}/{}", r.warm_sims, r.cold_sims),
        ]);
    }
    t
}

/// Render the latency cross-validation as a report table.
pub fn lat_table(b: &BenchModel) -> Table {
    let mut t = Table::new(
        "Model cross-validation — latency (halves interference scenario)",
        &["mode", "load", "app", "predicted", "simulated", "relerr"],
    );
    for r in &b.lat {
        t.row(vec![
            r.mode.to_string(),
            format!("{:.1}", r.load_frac),
            r.app.to_string(),
            format!("{:.1}", r.predicted),
            format!("{:.1}", r.simulated),
            format!("{:+.3}", r.rel_err),
        ]);
    }
    t
}

/// Serialize the bench as JSON (hand-rolled — the vendored serde is a
/// stub).
pub fn to_json(b: &BenchModel) -> String {
    let (mean, max, max_cfg) = b.sat_error();
    let (warm_probes, cold_probes) = b.table1_probes();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"quick\": {},\n", b.quick));
    out.push_str(&format!(
        "  \"efficiency\": {{\"mesh\": {}, \"torus\": {}, \"ring\": {}, \"io\": {}}},\n",
        model::SATURATION_EFFICIENCY,
        model::TORUS_EFFICIENCY,
        model::RING_EFFICIENCY,
        model::IO_EFFICIENCY,
    ));
    out.push_str("  \"saturation_rows\": [\n");
    for (i, r) in b.sat.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"routing\": \"{}\", \"predicted\": {:.6}, \
             \"measured\": {:.6}, \"rel_err\": {:.4}, \"warm\": \"{:?}\", \
             \"warm_sims\": {}, \"cold_sims\": {}, \"warm_secs\": {:.3}, \
             \"cold_secs\": {:.3}, \"table1\": {}}}{}\n",
            r.config,
            r.routing,
            r.predicted,
            r.measured,
            r.rel_err,
            r.warm_outcome,
            r.warm_sims,
            r.cold_sims,
            r.warm_secs,
            r.cold_secs,
            r.table1,
            if i + 1 < b.sat.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"saturation_error\": {{\"mean_abs_rel\": {mean:.4}, \"max_abs_rel\": {max:.4}, \
         \"max_config\": \"{max_cfg}\"}},\n"
    ));
    out.push_str(&format!(
        "  \"table1_matrix\": {{\"warm_probes\": {warm_probes}, \"cold_probes\": {cold_probes}, \
         \"probe_ratio\": {:.3}}},\n",
        f64::from(warm_probes) / f64::from(cold_probes).max(1.0),
    ));
    out.push_str(&format!(
        "  \"warm_wall_speedup\": {:.2},\n",
        b.warm_speedup()
    ));
    out.push_str("  \"latency_rows\": [\n");
    for (i, r) in b.lat.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"load_frac\": {:.2}, \"app\": {}, \"predicted\": {:.2}, \
             \"simulated\": {:.2}, \"rel_err\": {:.4}}}{}\n",
            r.mode,
            r.load_frac,
            r.app,
            r.predicted,
            r.simulated,
            r.rel_err,
            if i + 1 < b.lat.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"sweep\": {{\"full_secs\": {:.3}, \"pruned_secs\": {:.3}, \"speedup\": {:.2}, \
         \"pruned_points\": {}, \"knee_full\": {}, \"knee_pruned\": {}}}\n",
        b.sweep_full_secs,
        b.sweep_pruned_secs,
        b.sweep_full_secs / b.sweep_pruned_secs.max(1e-9),
        b.sweep_pruned_points,
        b.knee_full.map_or("null".into(), |k| format!("{k:.3}")),
        b.knee_pruned.map_or("null".into(), |k| format!("{k:.3}")),
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> BenchModel {
        BenchModel {
            quick: true,
            sat: vec![
                SatRow {
                    config: "halves/intra/app0/Local".into(),
                    routing: "Local",
                    predicted: 0.36,
                    measured: 0.39,
                    rel_err: -0.077,
                    warm_outcome: WarmOutcome::Accepted,
                    warm_sims: 5,
                    cold_sims: 9,
                    warm_secs: 1.0,
                    cold_secs: 2.0,
                    table1: true,
                },
                SatRow {
                    config: "single/TP".into(),
                    routing: "Local",
                    predicted: 0.30,
                    measured: 0.36,
                    rel_err: -0.167,
                    warm_outcome: WarmOutcome::Rejected,
                    warm_sims: 11,
                    cold_sims: 9,
                    warm_secs: 2.4,
                    cold_secs: 2.0,
                    table1: false,
                },
            ],
            lat: vec![LatRow {
                mode: "RO_RR",
                load_frac: 0.5,
                app: 0,
                predicted: 25.0,
                simulated: 28.0,
                rel_err: -0.107,
            }],
            sweep_full_secs: 10.0,
            sweep_pruned_secs: 6.0,
            sweep_pruned_points: 4,
            knee_full: Some(0.35),
            knee_pruned: Some(0.35),
        }
    }

    #[test]
    fn aggregates_are_computed_over_the_right_subsets() {
        let b = synthetic();
        let (mean, max, max_cfg) = b.sat_error();
        assert!((mean - 0.122).abs() < 1e-3, "{mean}");
        assert!((max - 0.167).abs() < 1e-9);
        assert_eq!(max_cfg, "single/TP");
        // Probe totals only cover table1 rows, minus the zero-load ref.
        assert_eq!(b.table1_probes(), (4, 8));
        // Wall speedup spans the whole matrix.
        assert!((b.warm_speedup() - 4.0 / 3.4).abs() < 1e-9);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = to_json(&synthetic());
        assert!(j.contains("\"max_config\": \"single/TP\""));
        assert!(j.contains("\"warm\": \"Accepted\""));
        assert!(j.contains("\"probe_ratio\": 0.500"));
        assert!(j.contains("\"knee_full\": 0.350"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn tables_have_one_row_per_entry() {
        let b = synthetic();
        assert_eq!(sat_table(&b).num_rows(), 2);
        assert_eq!(lat_table(&b).num_rows(), 1);
    }
}
