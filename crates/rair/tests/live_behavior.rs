//! Behavioral tests of the RAIR mechanisms inside a *live* network — the
//! unit tests in `src/` verify the policy math; these verify the emergent
//! router behavior the paper describes.

use noc_sim::network::Network;
use noc_sim::prelude::*;
use rair::prelude::*;

/// Heavy one-app load on the left half, light foreign stream crossing it.
fn asymmetric_net(scheme: &Scheme, seed: u64) -> Network {
    // App 0 native on the left half; app 1 on the right half sends its
    // traffic INTO the left half (pure foreign load there).
    let cfg = SimConfig::table1();
    let region = RegionMap::halves(&cfg);

    struct Src {
        left: Vec<NodeId>,
    }
    impl TrafficSource for Src {
        fn num_apps(&self) -> usize {
            2
        }
        fn generate(
            &mut self,
            node: NodeId,
            _cycle: u64,
            rng: &mut rand::rngs::SmallRng,
        ) -> Option<NewPacket> {
            use rand::Rng;
            if self.left.contains(&node) {
                // Heavy native load inside the left half.
                if rng.random_bool(0.1) {
                    let mut dst = self.left[rng.random_range(0..self.left.len())];
                    if dst == node {
                        dst =
                            self.left[(rng.random_range(0..self.left.len()) + 1) % self.left.len()];
                    }
                    if dst == node {
                        return None;
                    }
                    return Some(NewPacket {
                        dst,
                        app: 0,
                        class: 0,
                        size: 5,
                        reply: None,
                    });
                }
            } else if rng.random_bool(0.01) {
                // Light foreign stream from the right half into the left.
                let dst = self.left[rng.random_range(0..self.left.len())];
                return Some(NewPacket {
                    dst,
                    app: 1,
                    class: 0,
                    size: 1,
                    reply: None,
                });
            }
            None
        }
    }

    let left = region.nodes_of(0);
    Network::new(
        cfg,
        region,
        Box::new(DuatoLocalAdaptive),
        scheme.build(),
        Box::new(Src { left }),
        seed,
    )
}

#[test]
fn dpa_keeps_foreign_high_when_natives_dominate() {
    // Left-half routers see native occupancy >> foreign occupancy, so the
    // DPA bit must stay low (foreign-high) on virtually all of them.
    let mut net = asymmetric_net(&Scheme::rair(), 5);
    net.run(5_000);
    let region = net.region.clone();
    let left_native_high = net
        .routers
        .iter()
        .filter(|r| region.app_of(r.id) == 0)
        .filter(|r| r.dpa_native_high)
        .count();
    assert!(
        left_native_high <= 4,
        "{left_native_high} left-half routers flipped native-high without cause"
    );
}

#[test]
fn ovc_registers_track_traffic_split() {
    let mut net = asymmetric_net(&Scheme::rair(), 7);
    net.run(5_000);
    let region = net.region.clone();
    // Aggregate native vs foreign occupancy over the left half: native must
    // dominate (the heavy load is native there).
    let (mut n, mut f) = (0u64, 0u64);
    for r in net.routers.iter().filter(|r| region.app_of(r.id) == 0) {
        n += r.ovc_native as u64;
        f += r.ovc_foreign as u64;
    }
    assert!(n > f, "native occupancy {n} should dominate foreign {f}");
}

#[test]
fn foreign_stream_faster_under_rair_than_native_high() {
    // The crossing foreign stream must be faster under RAIR (foreign-high
    // by default where natives dominate) than under the NativeH ablation.
    let apl_foreign = |scheme: &Scheme| {
        let mut net = asymmetric_net(scheme, 11);
        net.run_warmup_measure(3_000, 15_000);
        net.stats
            .recorder
            .app(1)
            .mean(LatencyKind::Network)
            .expect("foreign stream delivered")
    };
    let rair = apl_foreign(&Scheme::rair());
    let native_h = apl_foreign(&Scheme::rair_native_high());
    assert!(
        rair < native_h,
        "RAIR ({rair:.1}) must serve foreign traffic faster than NativeH ({native_h:.1})"
    );
}

#[test]
fn rair_preserves_throughput() {
    // Prioritization must not waste bandwidth: total delivered flits under
    // RAIR within 2% of round-robin (work-conserving arbitration).
    let delivered = |scheme: &Scheme| {
        let mut net = asymmetric_net(scheme, 13);
        net.run_warmup_measure(3_000, 20_000);
        net.stats.recorder.flits_delivered()
    };
    let rr = delivered(&Scheme::RoRr) as f64;
    let rair = delivered(&Scheme::rair()) as f64;
    assert!(
        rair >= rr * 0.98,
        "RAIR lost throughput: RR {rr} vs RAIR {rair}"
    );
}

#[test]
fn all_schemes_drain_the_asymmetric_workload() {
    for scheme in [
        Scheme::RoRr,
        Scheme::RoAge,
        Scheme::ro_rank(vec![0.9, 0.01]),
        Scheme::ro_rank_online(2),
        Scheme::rair(),
        Scheme::rair_native_high(),
        Scheme::rair_foreign_high(),
    ] {
        let mut net = asymmetric_net(&scheme, 17);
        net.run(3_000);
        // After a long quiet period every scheme must have drained... but
        // the source never stops; instead check continuous progress.
        assert!(
            net.cycles_since_progress() < 50,
            "{}: stalled for {} cycles",
            scheme.label(),
            net.cycles_since_progress()
        );
    }
}
