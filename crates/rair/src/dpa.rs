//! Dynamic Priority Adaptation (DPA) — §IV.C of the paper.
//!
//! DPA decides, per router and per cycle, whether *native* or *foreign*
//! traffic has the higher priority. It estimates relative intensity from
//! the number of occupied VCs across the whole router (`OVC_n`, `OVC_f` —
//! all ports, to tolerate non-uniform per-port status) and applies a
//! hysteresis band of width ±Δ around the ratio `r = OVC_f / OVC_n` (Fig. 7):
//!
//! * native priority goes **high** only once `r > 1 + Δ`,
//! * native priority goes **low** only once `r < 1 − Δ`,
//! * in between, the previous priority is kept.
//!
//! Foreign-high is the default (case 3 of §IV.C: the global nature of
//! foreign traffic implies higher criticality until native intensity
//! evidence overrides it). The paper reports Δ between 0.1 and 0.3 works,
//! with ≈0.2 best — our [`DEFAULT_DELTA`].
//!
//! Starvation freedom (§IV.D) follows from the negative feedback: if native
//! traffic hoards VCs, `r` collapses and natives drop to low priority, and
//! symmetrically for foreign traffic.

use serde::{Deserialize, Serialize};

/// The paper's recommended hysteresis width.
pub const DEFAULT_DELTA: f64 = 0.2;

/// How the native/foreign priority is determined.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DpaMode {
    /// Full DPA: hysteresis ratio comparison (the paper's mechanism).
    Dynamic {
        /// Hysteresis width Δ.
        delta: f64,
    },
    /// Ablation `RAIR_NativeH`: native traffic always has high priority.
    FixedNativeHigh,
    /// Ablation `RAIR_ForeignH`: foreign traffic always has high priority.
    FixedForeignHigh,
}

impl Default for DpaMode {
    fn default() -> Self {
        DpaMode::Dynamic {
            delta: DEFAULT_DELTA,
        }
    }
}

impl DpaMode {
    /// Convenience constructor for the default dynamic mode.
    pub fn dynamic() -> Self {
        Self::default()
    }

    /// Next value of the `native_high` priority bit, given the occupancy
    /// registers of the current cycle.
    pub fn next_native_high(&self, prev_native_high: bool, ovc_n: u32, ovc_f: u32) -> bool {
        match *self {
            DpaMode::FixedNativeHigh => true,
            DpaMode::FixedForeignHigh => false,
            DpaMode::Dynamic { delta } => {
                if ovc_n == 0 && ovc_f == 0 {
                    return prev_native_high;
                }
                if ovc_n == 0 {
                    // r = ∞ > 1 + Δ: native goes (or stays) high. Harmless —
                    // there is no native traffic to prioritize anyway.
                    return true;
                }
                let r = ovc_f as f64 / ovc_n as f64;
                if r > 1.0 + delta {
                    true
                } else if r < 1.0 - delta {
                    false
                } else {
                    prev_native_high
                }
            }
        }
    }

    /// Short suffix for scheme names in reports.
    pub fn label(&self) -> &'static str {
        match self {
            DpaMode::Dynamic { .. } => "DPA",
            DpaMode::FixedNativeHigh => "NativeH",
            DpaMode::FixedForeignHigh => "ForeignH",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: DpaMode = DpaMode::Dynamic { delta: 0.2 };

    #[test]
    fn transitions_match_fig7() {
        // Starting low (foreign high), r must exceed 1+Δ to flip.
        assert!(!D.next_native_high(false, 10, 11)); // r = 1.1 < 1.2
        assert!(!D.next_native_high(false, 10, 12)); // r = 1.2, not >
        assert!(D.next_native_high(false, 10, 13)); // r = 1.3 > 1.2 → high

        // Starting high, r must drop below 1−Δ to flip back.
        assert!(D.next_native_high(true, 10, 9)); // r = 0.9 > 0.8
        assert!(D.next_native_high(true, 10, 8)); // r = 0.8, not <
        assert!(!D.next_native_high(true, 10, 7)); // r = 0.7 < 0.8 → low
    }

    #[test]
    fn hysteresis_band_keeps_state() {
        for (n, f) in [(10, 10), (10, 11), (10, 9)] {
            assert!(!D.next_native_high(false, n, f), "({n},{f}) from low");
            assert!(D.next_native_high(true, n, f), "({n},{f}) from high");
        }
    }

    #[test]
    fn empty_router_keeps_state() {
        assert!(!D.next_native_high(false, 0, 0));
        assert!(D.next_native_high(true, 0, 0));
    }

    #[test]
    fn no_native_occupancy_goes_high() {
        assert!(D.next_native_high(false, 0, 3));
    }

    #[test]
    fn fixed_modes_ignore_occupancy() {
        assert!(DpaMode::FixedNativeHigh.next_native_high(false, 0, 100));
        assert!(!DpaMode::FixedForeignHigh.next_native_high(true, 100, 0));
    }

    #[test]
    fn negative_feedback_self_throttles() {
        // Simulate natives flooding: foreign ratio collapses → natives lose
        // priority; then foreigners flooding → natives regain it. No state
        // is sticky forever (the starvation-freedom argument of §IV.D).
        let mut high = true;
        high = D.next_native_high(high, 20, 2); // natives hog: r = 0.1
        assert!(!high);
        high = D.next_native_high(high, 2, 20); // foreigners hog: r = 10
        assert!(high);
    }

    #[test]
    fn default_delta_in_papers_range() {
        assert!((0.1..=0.3).contains(&DEFAULT_DELTA));
        assert_eq!(DpaMode::default(), DpaMode::Dynamic { delta: 0.2 });
    }

    #[test]
    fn labels() {
        assert_eq!(DpaMode::dynamic().label(), "DPA");
        assert_eq!(DpaMode::FixedNativeHigh.label(), "NativeH");
        assert_eq!(DpaMode::FixedForeignHigh.label(), "ForeignH");
    }
}
