//! Kill-resume integration tests: SIGKILL the `repro serve` binary at
//! seeded random points mid-sweep, rerun to completion, and require the
//! final sweep digest to be bit-identical to an uninterrupted run.
//!
//! This is the end-to-end complement of the in-process chaos batteries in
//! `experiments::service::chaos`: a real child process, real SIGKILL (no
//! destructors, no flushes), real files on disk.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

/// Deterministic xorshift64 for kill delays, seeded per test.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed | 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rair-killres-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Small real sweep: a scheme/routing/region mix, one gated job, one
/// relabeled duplicate — same shape as the in-process battery jobs.
const JOBS: &str = "j0 ro_rr local single uniform 0.05 1\n\
                    j1 rair dbar halves uniform 0.05 2\n\
                    j2 ro_age xy single transpose 0.05 3\n\
                    inv rair_foreign_high local halves uniform 0.05 4\n\
                    j0-dup ro_rr local single uniform 0.05 1\n";

fn serve_cmd(jobs: &Path, dir: &Path) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_repro"));
    c.args([
        "--quick",
        "--windows",
        "200,600",
        "serve",
        jobs.to_str().unwrap(),
        "--dir",
        dir.to_str().unwrap(),
    ]);
    c
}

/// Run `repro serve` to completion and parse the sweep digest off stdout.
fn run_to_completion(jobs: &Path, dir: &Path) -> u64 {
    let out = serve_cmd(jobs, dir).output().unwrap();
    assert!(
        out.status.success(),
        "repro serve failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.contains("sweep digest"))
        .unwrap_or_else(|| panic!("no sweep digest line in:\n{stdout}"));
    let hex = line
        .split_whitespace()
        .nth(2)
        .expect("digest token after 'sweep digest'");
    u64::from_str_radix(hex, 16).expect("digest parses as hex")
}

/// SIGKILL the serve child after `delay_ms`, then rerun to completion in
/// the same directory and return the recovered digest.
fn kill_then_resume(jobs: &Path, dir: &Path, delay_ms: u64) -> u64 {
    let mut child = serve_cmd(jobs, dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(Duration::from_millis(delay_ms));
    // `Child::kill` is SIGKILL on Unix: no atexit, no Drop, no flush.
    let _ = child.kill();
    let _ = child.wait();
    run_to_completion(jobs, dir)
}

#[test]
fn sigkill_mid_sweep_resumes_bit_identically() {
    let ref_dir = fresh_dir("ref");
    let jobs = ref_dir.join("jobs.txt");
    std::fs::write(&jobs, JOBS).unwrap();
    let reference = run_to_completion(&jobs, &ref_dir);

    let mut rng = XorShift::new(0xD15EA5E);
    let kill_dir = fresh_dir("kill");
    let digest = kill_then_resume(&jobs, &kill_dir, 20 + rng.next() % 150);
    assert_eq!(
        digest, reference,
        "digest diverged after SIGKILL + resume (expected {reference:016x}, got {digest:016x})"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&kill_dir);
}

/// The slow battery: several seeded kill points, including repeated kills
/// against the SAME directory (crash during recovery of a crash).
#[test]
#[ignore = "multi-kill battery; run with --ignored or via the CI chaos job"]
fn sigkill_battery_across_kill_points() {
    let ref_dir = fresh_dir("bref");
    let jobs = ref_dir.join("jobs.txt");
    std::fs::write(&jobs, JOBS).unwrap();
    let reference = run_to_completion(&jobs, &ref_dir);

    let mut rng = XorShift::new(0xBEEFCAFE);
    for round in 0..4u32 {
        let dir = fresh_dir(&format!("bk{round}"));
        // Two kills against the same directory before letting it finish:
        // the second interrupts recovery itself.
        for _ in 0..2 {
            let mut child = serve_cmd(&jobs, &dir)
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .unwrap();
            std::thread::sleep(Duration::from_millis(10 + rng.next() % 200));
            let _ = child.kill();
            let _ = child.wait();
        }
        let digest = run_to_completion(&jobs, &dir);
        assert_eq!(
            digest, reference,
            "round {round}: digest diverged after double SIGKILL + resume"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}
