//! Bit-identity of the active-set fast path.
//!
//! The exhaustive-scan tick visits every router in every phase; the fast
//! path visits only routers with occupied input VCs and elides unchanged
//! state updates. These must produce *identical* simulations — same
//! injections, same arbitration outcomes, same latencies — across the full
//! scheme × routing matrix at several operating points.

use noc_sim::network::Network;
use noc_sim::prelude::*;
use rair::prelude::*;
use traffic::prelude::*;

fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::RoRr,
        Scheme::RoAge,
        Scheme::ro_rank(vec![0.1, 0.9]),
        Scheme::rair(),
        Scheme::rair_native_high(),
        Scheme::rair_foreign_high(),
        Scheme::rair_va_only(),
    ]
}

/// Everything a run observes, minus the skip counters themselves (those
/// legitimately differ between the two modes).
#[derive(Debug, PartialEq)]
struct Fingerprint {
    injected_packets: Vec<u64>,
    injected_flits: u64,
    ejected_flits: u64,
    delivered: u64,
    apl: Vec<Option<f64>>,
    overall_network: Option<f64>,
    overall_total: Option<f64>,
    congestion: Vec<u16>,
    last_progress: u64,
}

fn run(scheme: &Scheme, routing: Routing, p: f64, r1: f64, exhaustive: bool) -> Fingerprint {
    let cfg = SimConfig::table1();
    let (region, scenario) = two_app(&cfg, p, 0.05, r1);
    let mut net = Network::new(
        cfg,
        region,
        routing.build(),
        scheme.build(),
        Box::new(scenario),
        42,
    );
    net.set_force_exhaustive(exhaustive);
    net.run(1_200);
    Fingerprint {
        injected_packets: net.stats.injected_packets.clone(),
        injected_flits: net.stats.injected_flits,
        ejected_flits: net.stats.ejected_flits,
        delivered: net.stats.recorder.delivered(),
        apl: (0..2)
            .map(|a| net.stats.recorder.app(a).mean(LatencyKind::Network))
            .collect(),
        overall_network: net.stats.recorder.overall_mean(LatencyKind::Network),
        overall_total: net.stats.recorder.overall_mean(LatencyKind::Total),
        congestion: net.congestion_snapshot().to_vec(),
        last_progress: net.stats.last_progress,
    }
}

#[test]
fn fast_path_is_bit_identical_across_matrix() {
    // Light, moderate and near-saturating loads for the heavy app.
    let loads = [(0.2, 0.02), (0.8, 0.15), (1.0, 0.35)];
    for scheme in all_schemes() {
        for routing in [Routing::Xy, Routing::Local, Routing::Dbar] {
            for &(p, r1) in &loads {
                let fast = run(&scheme, routing, p, r1, false);
                let slow = run(&scheme, routing, p, r1, true);
                assert_eq!(
                    fast,
                    slow,
                    "fast/exhaustive divergence: {} {:?} p={} r1={}",
                    scheme.label(),
                    routing,
                    p,
                    r1
                );
            }
        }
    }
}

#[test]
fn fast_path_actually_skips_work() {
    let cfg = SimConfig::table1();
    let (region, scenario) = two_app(&cfg, 0.2, 0.01, 0.02);
    let mut net = Network::new(
        cfg,
        region,
        Routing::Local.build(),
        Scheme::rair().build(),
        Box::new(scenario),
        42,
    );
    net.run(1_200);
    assert!(
        net.stats.router_cycles_skipped > 0,
        "light load must elide router visits"
    );
    assert!(net.stats.state_updates_skipped > 0);

    // And the exhaustive mode really is exhaustive.
    let cfg = SimConfig::table1();
    let (region, scenario) = two_app(&cfg, 0.2, 0.01, 0.02);
    let mut net = Network::new(
        cfg,
        region,
        Routing::Local.build(),
        Scheme::rair().build(),
        Box::new(scenario),
        42,
    );
    net.set_force_exhaustive(true);
    net.run(1_200);
    assert_eq!(net.stats.router_cycles_skipped, 0);
    assert_eq!(net.stats.state_updates_skipped, 0);
}
