//! Figure 17 — APL slowdown of PARSEC workloads under adversarial traffic.
//!
//! Four PARSEC applications run in the quadrants (Fig. 16) while a
//! malicious/buggy agent injects chip-wide uniform traffic at 0.4
//! flits/cycle/node. Each scheme's per-application APL slowdown is measured
//! relative to its own no-adversary baseline. The paper reports average
//! slowdowns of 1.92 (RO_RR), 1.75 (RA_DBAR), 1.47 (RO_Rank — even with an
//! oracle ranking the adversary lowest, batching still lets it through) and
//! 1.18 (RA_RAIR — DPA identifies the adversary as low-criticality foreign
//! traffic in every region and deprioritizes it).

use crate::runner::{run_one, run_parallel, ExpConfig, Job};
use crate::sweep::build_network;
use metrics::report::f2;
use metrics::Table;
use noc_sim::config::SimConfig;
use noc_sim::region::RegionMap;
use rair::scheme::{Routing, Scheme};
use traffic::adversarial::Adversarial;
use traffic::workload::{AppModel, ParsecWorkload};

/// Adversarial load used by the paper (flits/cycle/node).
pub const ADVERSARIAL_RATE: f64 = 0.4;

/// Result: per-scheme slowdowns.
#[derive(Debug, Clone)]
pub struct Fig17Result {
    /// Application names in region order.
    pub apps: Vec<String>,
    /// `(scheme label, per-app slowdown, average slowdown)`.
    pub schemes: Vec<(String, Vec<f64>, f64)>,
}

impl Fig17Result {
    /// Average slowdown of `label`.
    pub fn avg_slowdown(&self, label: &str) -> f64 {
        self.schemes
            .iter()
            .find(|(l, _, _)| l == label)
            .unwrap_or_else(|| panic!("no scheme {label}"))
            .2
    }
}

fn schemes(models: &[AppModel]) -> Vec<(&'static str, Scheme, Routing)> {
    let intensities: Vec<f64> = models.iter().map(AppModel::mean_rate).collect();
    vec![
        ("RO_RR", Scheme::RoRr, Routing::Local),
        ("RA_DBAR", Scheme::RoRr, Routing::Dbar),
        ("RO_Rank", Scheme::ro_rank(intensities), Routing::Local),
        ("RA_RAIR", Scheme::rair(), Routing::Local),
    ]
}

/// Run Figure 17: for each scheme, one baseline run (no adversary) and one
/// adversarial run; slowdown = APL_adv / APL_base per application.
pub fn run(ec: &ExpConfig) -> Fig17Result {
    let models = AppModel::parsec_four();
    let mut jobs: Vec<Job> = Vec::new();
    for (label, scheme, routing) in schemes(&models) {
        for adversarial in [false, true] {
            let ec = *ec;
            let scheme = scheme.clone();
            let models = models.clone();
            let label = format!("{label}{}", if adversarial { "+adv" } else { "" });
            jobs.push(Job::new(label.clone(), move || {
                let cfg = SimConfig::table1_req_reply();
                let region = RegionMap::quadrants(&cfg);
                let workload = ParsecWorkload::new(&cfg, &region, models.clone());
                let net = if adversarial {
                    let adv = Adversarial::new(
                        workload,
                        ADVERSARIAL_RATE,
                        cfg.num_nodes() as u16,
                        cfg.long_flits,
                    );
                    build_network(&cfg, &region, &scheme, routing, Box::new(adv), ec.seed)
                } else {
                    build_network(&cfg, &region, &scheme, routing, Box::new(workload), ec.seed)
                };
                run_one(label.clone(), net, &ec)
            }));
        }
    }
    let results = run_parallel(jobs);
    let mut out = Vec::new();
    for pair in results.chunks(2) {
        let base = &pair[0];
        let adv = &pair[1];
        let slow: Vec<f64> = (0..4).map(|a| adv.app_apl(a) / base.app_apl(a)).collect();
        let avg = slow.iter().sum::<f64>() / slow.len() as f64;
        out.push((base.label.clone(), slow, avg));
    }
    Fig17Result {
        apps: AppModel::parsec_four()
            .into_iter()
            .map(|m| m.name)
            .collect(),
        schemes: out,
    }
}

/// Render the figure's table.
pub fn table(res: &Fig17Result) -> Table {
    let header: Vec<String> = std::iter::once("scheme".to_string())
        .chain(res.apps.iter().cloned())
        .chain(std::iter::once("avg".to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Fig.17 — APL slowdown under adversarial traffic (lower is better)",
        &header_refs,
    );
    for (label, slow, avg) in &res.schemes {
        let mut row = vec![label.clone()];
        row.extend(slow.iter().map(|&s| f2(s)));
        row.push(f2(*avg));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_slowdown_lookup() {
        let r = Fig17Result {
            apps: vec!["a".into(), "b".into()],
            schemes: vec![("RO_RR".into(), vec![2.0, 4.0], 3.0)],
        };
        assert_eq!(r.avg_slowdown("RO_RR"), 3.0);
        let t = table(&r);
        assert_eq!(t.num_rows(), 1);
        assert!(t.render().contains("3.00"));
    }

    #[test]
    #[should_panic(expected = "no scheme")]
    fn unknown_scheme_panics() {
        Fig17Result {
            apps: vec![],
            schemes: vec![],
        }
        .avg_slowdown("X");
    }

    #[test]
    fn adversarial_rate_matches_paper() {
        assert_eq!(ADVERSARIAL_RATE, 0.4);
    }
}
