//! Ablation studies for RAIR's design parameters (§IV.C and §VI of the
//! paper discuss both qualitatively; these benches quantify them on the
//! six-application scenario of Fig. 13/14).
//!
//! * **Hysteresis width Δ** — the paper observed Δ ∈ 0.1…0.3 works with
//!   the best case around 0.2.
//! * **Regional:global VC split** — §VI argues a roughly equal split
//!   supports generic traffic best.

use crate::figs::fig14::six_app_rates;
use crate::runner::{run_one, run_parallel, ExpConfig, Job, RunResult};
use crate::sweep::build_network;
use metrics::report::{f2, pct};
use metrics::Table;
use noc_sim::config::SimConfig;
use rair::dpa::DpaMode;
use rair::msp::MspConfig;
use rair::scheme::{Routing, Scheme};
use traffic::scenario::{six_app, InterDest};

/// `(parameter label, per-app APL)` rows, with RO_RR as row 0.
#[derive(Debug, Clone)]
pub struct AblationResult {
    pub title: String,
    pub rows: Vec<(String, Vec<f64>)>,
}

impl AblationResult {
    /// APL reduction of row `label` relative to the RO_RR baseline row,
    /// averaged per application (the paper's aggregation).
    pub fn reduction(&self, label: &str) -> f64 {
        let base = &self.rows[0].1;
        let v = &self
            .rows
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("no row {label}"))
            .1;
        let s: f64 = v.iter().zip(base).map(|(a, b)| 1.0 - a / b).sum();
        s / v.len() as f64
    }
}

fn run_rows(
    ec: &ExpConfig,
    title: &str,
    configs: Vec<(String, SimConfig, Scheme)>,
) -> AblationResult {
    let rates = six_app_rates(ec);
    let jobs: Vec<Job> = configs
        .into_iter()
        .map(|(label, cfg, scheme)| {
            let ec = *ec;

            Job::new(label.clone(), move || {
                let (region, scenario) = six_app(&cfg, rates, InterDest::OutsideUniform);
                let net = build_network(
                    &cfg,
                    &region,
                    &scheme,
                    Routing::Local,
                    Box::new(scenario),
                    ec.seed,
                );
                run_one(label.clone(), net, &ec)
            })
        })
        .collect();
    let results = run_parallel(jobs);
    AblationResult {
        title: title.to_string(),
        rows: results
            .into_iter()
            .map(|r: RunResult| {
                let apl: Vec<f64> = (0..6).map(|a| r.app_apl(a)).collect();
                (r.label, apl)
            })
            .collect(),
    }
}

/// Sweep the DPA hysteresis width Δ.
pub fn delta_sweep(ec: &ExpConfig) -> AblationResult {
    let cfg = SimConfig::table1();
    let mut configs = vec![("RO_RR".to_string(), cfg.clone(), Scheme::RoRr)];
    for delta in [0.0, 0.1, 0.2, 0.3, 0.5] {
        configs.push((
            format!("RAIR d={delta}"),
            cfg.clone(),
            Scheme::Rair {
                msp: MspConfig::va_and_sa(),
                dpa: DpaMode::Dynamic { delta },
            },
        ));
    }
    run_rows(
        ec,
        "Ablation — DPA hysteresis width (six-app UR scenario)",
        configs,
    )
}

/// Sweep the regional:global adaptive-VC split.
pub fn vc_split_sweep(ec: &ExpConfig) -> AblationResult {
    let base = SimConfig::table1();
    let mut configs = vec![("RO_RR".to_string(), base.clone(), Scheme::RoRr)];
    for regional in 0..=base.adaptive_vcs {
        let mut cfg = base.clone();
        cfg.regional_vcs = regional;
        configs.push((
            format!("RAIR {}R:{}G", regional, base.adaptive_vcs - regional),
            cfg,
            Scheme::rair(),
        ));
    }
    run_rows(
        ec,
        "Ablation — regional:global VC split (six-app UR scenario)",
        configs,
    )
}

/// All region-oblivious baselines side by side (round-robin, oldest-first,
/// oracle and online STC) against RAIR on the six-app scenario — extends
/// the paper's comparison with the age-based arbiter it cites as an early
/// region-oblivious proposal \[1\].
pub fn baselines(ec: &ExpConfig) -> AblationResult {
    let cfg = SimConfig::table1();
    let rates = six_app_rates(ec);
    let configs = vec![
        ("RO_RR".to_string(), cfg.clone(), Scheme::RoRr),
        ("RO_Age".to_string(), cfg.clone(), Scheme::RoAge),
        (
            "RO_Rank".to_string(),
            cfg.clone(),
            Scheme::ro_rank(rates.to_vec()),
        ),
        (
            "RO_RankOnline".to_string(),
            cfg.clone(),
            Scheme::ro_rank_online(6),
        ),
        ("RA_RAIR".to_string(), cfg, Scheme::rair()),
    ];
    run_rows(
        ec,
        "Extension — all baselines vs RAIR (six-app UR scenario)",
        configs,
    )
}

/// Oracle vs online STC ranking (extension beyond the paper, which grants
/// STC an optimal-ranking oracle): how much of RO_Rank's benefit survives
/// when intensities must be estimated at run time?
pub fn rank_estimation(ec: &ExpConfig) -> AblationResult {
    let cfg = SimConfig::table1();
    let rates = six_app_rates(ec);
    let configs = vec![
        ("RO_RR".to_string(), cfg.clone(), Scheme::RoRr),
        (
            "RO_Rank (oracle)".to_string(),
            cfg.clone(),
            Scheme::ro_rank(rates.to_vec()),
        ),
        (
            "RO_RankOnline".to_string(),
            cfg.clone(),
            Scheme::ro_rank_online(6),
        ),
        ("RA_RAIR".to_string(), cfg, Scheme::rair()),
    ];
    run_rows(
        ec,
        "Ablation — oracle vs online STC ranking (six-app UR scenario)",
        configs,
    )
}

/// Render an ablation result.
pub fn table(res: &AblationResult) -> Table {
    let mut t = Table::new(res.title.clone(), &["config", "mean APL", "vs RO_RR"]);
    for (label, apl) in &res.rows {
        let mean = apl.iter().sum::<f64>() / apl.len() as f64;
        t.row(vec![
            label.clone(),
            f2(mean),
            if label == "RO_RR" {
                "—".into()
            } else {
                pct(res.reduction(label))
            },
        ]);
    }
    t
}
