//! Server consolidation: four "virtual machines" (one per quadrant) run
//! PARSEC-like workloads while one of them goes rogue and floods the chip —
//! the motivating scenario of §II.B and §V.G of the paper ("if one VM goes
//! awry or is under malicious attack, the remaining VMs should be minimally
//! affected").
//!
//! The example measures each VM's packet-latency slowdown under the attack
//! for all four interference-reduction schemes and shows RAIR isolating the
//! healthy VMs best.
//!
//! ```text
//! cargo run --release --example server_consolidation
//! ```

use noc_sim::network::Network;
use noc_sim::prelude::*;
use rair::prelude::*;
use traffic::prelude::*;

const WARMUP: u64 = 5_000;
const MEASURE: u64 = 30_000;

fn run(scheme: &Scheme, routing: Routing, adversarial: bool) -> Vec<f64> {
    let cfg = SimConfig::table1_req_reply();
    let region = RegionMap::quadrants(&cfg);
    let models = AppModel::parsec_four();
    let workload = ParsecWorkload::new(&cfg, &region, models);
    let mut net = if adversarial {
        // A rogue agent injecting 0.4 flits/cycle/node chip-wide, tagged as
        // a fifth application that owns no region.
        let adv = Adversarial::new(workload, 0.4, cfg.num_nodes() as u16, cfg.long_flits);
        Network::new(
            cfg.clone(),
            region,
            routing.build(),
            scheme.build(),
            Box::new(adv),
            7,
        )
    } else {
        Network::new(
            cfg.clone(),
            region,
            routing.build(),
            scheme.build(),
            Box::new(workload),
            7,
        )
    };
    net.run_warmup_measure(WARMUP, MEASURE);
    (0..4)
        .map(|a| {
            net.stats
                .recorder
                .app(a)
                .mean(LatencyKind::Network)
                .expect("VM delivered packets")
        })
        .collect()
}

fn main() {
    let names = ["blackscholes", "swaptions", "fluidanimate", "raytrace"];
    let intensities: Vec<f64> = AppModel::parsec_four()
        .iter()
        .map(AppModel::mean_rate)
        .collect();
    println!("four VMs (one per quadrant): {names:?}");
    println!("rogue agent: chip-wide uniform traffic at 0.4 flits/cycle/node\n");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14} {:>8}",
        "scheme", names[0], names[1], names[2], names[3], "avg"
    );
    for (label, scheme, routing) in [
        ("RO_RR", Scheme::RoRr, Routing::Local),
        ("RA_DBAR", Scheme::RoRr, Routing::Dbar),
        (
            "RO_Rank",
            Scheme::ro_rank(intensities.clone()),
            Routing::Local,
        ),
        ("RA_RAIR", Scheme::rair(), Routing::Local),
    ] {
        let base = run(&scheme, routing, false);
        let under_attack = run(&scheme, routing, true);
        let slowdowns: Vec<f64> = base.iter().zip(&under_attack).map(|(b, a)| a / b).collect();
        let avg = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
        println!(
            "{label:<10} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x {avg:>7.2}x",
            slowdowns[0], slowdowns[1], slowdowns[2], slowdowns[3]
        );
    }
    println!("\nRAIR identifies the rogue traffic as foreign in every region and");
    println!("deprioritizes it dynamically — no central control, no batching.");
}
