//! `cargo run -p xtask -- lint` — the kernel determinism lint.
//!
//! Exits nonzero and prints one line per finding when any banned token
//! (hash collections, OS entropy, wall clock, unordered parallelism)
//! appears in a kernel crate outside a `// lint: allow(rule)` escape.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("--help" | "-h") => {
            print_usage();
            ExitCode::SUCCESS
        }
        other => {
            if let Some(cmd) = other {
                eprintln!("unknown task `{cmd}`");
            }
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo run -p xtask -- lint");
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  lint    ban nondeterministic std/rayon tokens from the kernel crates");
    eprintln!();
    eprintln!("rules:");
    for r in xtask::RULES {
        eprintln!("  {:<24} {}", r.name, r.why);
    }
    let p = &xtask::PANIC_RULE;
    eprintln!("  {:<24} {} (function-scoped)", p.name, p.why);
    let s = &xtask::SWALLOWED_IO_RULE;
    eprintln!("  {:<24} {} (durability modules)", s.name, s.why);
}

fn lint() -> ExitCode {
    let root = xtask::workspace_root();
    let findings = xtask::lint_workspace(&root);
    if findings.is_empty() {
        let files: usize = xtask::SCOPES.len();
        let hot: usize = xtask::HOT_PATHS.iter().map(|h| h.functions.len()).sum();
        let dur = xtask::DURABILITY_SCOPES.len();
        println!(
            "xtask lint: clean ({files} scopes, {hot} hot-path functions, \
             {dur} durability scopes, 0 findings)"
        );
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!("xtask lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
