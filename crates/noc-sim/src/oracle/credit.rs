//! Credit conservation: for every mesh link and VC, upstream credits plus
//! everything the credits are lent against must equal the buffer depth.

use super::{Checker, OracleViolation};
use crate::ids::{opposite, Port, NUM_PORTS, PORT_EAST, PORT_NORTH, PORT_SOUTH, PORT_WEST};
use crate::network::Network;

/// For the link `r --p--> d` (with `q = opposite(p)` the downstream input
/// port), the exact invariant between pipeline phases is
///
/// ```text
/// r.credits[p][v] + d.inputs[q][v].buf.len()
///   + #{in-flight flits destined to (d, q, v)}
///   + #{queued credit returns for (r, p, v)}   == vc_depth
/// ```
///
/// Every kernel transition preserves the sum (SA forwards: credit−1,
/// in-flight+1; delivery: in-flight−1, buffer+1; downstream SA: buffer−1,
/// credit-queue+1; credit delivery: credit-queue−1, credit+1). A lost or
/// conjured credit — or a conjured flit — breaks it immediately.
#[derive(Debug, Default)]
pub struct CreditConservation {
    in_flight: Vec<u32>,
    queued_credits: Vec<u32>,
}

impl Checker for CreditConservation {
    fn name(&self) -> &'static str {
        "credit-conservation"
    }

    fn end_of_cycle(&mut self, net: &Network, out: &mut Vec<OracleViolation>) {
        let cfg = &net.cfg;
        let v = cfg.vcs_per_port();
        let slots = cfg.num_routers() * NUM_PORTS * v;
        let idx = |router: usize, port: Port, vc: usize| (router * NUM_PORTS + port) * v + vc;
        self.in_flight.clear();
        self.in_flight.resize(slots, 0);
        for a in &net.in_flight {
            self.in_flight[idx(a.dst_router, a.in_port, a.vc)] += 1;
        }
        self.queued_credits.clear();
        self.queued_credits.resize(slots, 0);
        for &(router, port, vc) in &net.credit_q {
            self.queued_credits[idx(router, port, vc)] += 1;
        }
        for (i, r) in net.routers.iter().enumerate() {
            for p in [PORT_NORTH, PORT_EAST, PORT_SOUTH, PORT_WEST] {
                if !Network::port_in_bounds(cfg, r.coord, p) {
                    continue;
                }
                let d = Network::neighbor(cfg, i, p);
                let q = opposite(p);
                for vc in 0..v {
                    let sum = r.credits[p][vc]
                        + net.routers[d].inputs[q][vc].buf.len()
                        + self.in_flight[idx(d, q, vc)] as usize
                        + self.queued_credits[idx(i, p, vc)] as usize;
                    if sum != cfg.vc_depth {
                        out.push(OracleViolation {
                            cycle: net.cycle(),
                            checker: self.name(),
                            router: Some(r.id),
                            detail: format!(
                                "link ({i} --{p}--> {d}) vc {vc}: credits {} + downstream buf {} \
                                 + in-flight {} + queued credits {} = {sum} != depth {}",
                                r.credits[p][vc],
                                net.routers[d].inputs[q][vc].buf.len(),
                                self.in_flight[idx(d, q, vc)],
                                self.queued_credits[idx(i, p, vc)],
                                cfg.vc_depth
                            ),
                        });
                    }
                }
            }
        }
    }
}
