//! # traffic — workloads for the RAIR reproduction
//!
//! Everything that *offers* traffic to the `noc-sim` substrate:
//!
//! * [`pattern`] — the synthetic destination patterns of §V (uniform
//!   random, transpose, bit complement, hotspot) plus region-constrained
//!   variants;
//! * [`scenario`] — multi-application regionalized scenarios, including the
//!   exact layouts of the paper's Figures 8, 11 and 13;
//! * [`saturation`] — measurement of per-application saturation loads, so
//!   scenario rates can be expressed as "% of saturation" like the paper;
//! * [`workload`] — PARSEC-like closed-loop statistical application models
//!   (the documented substitution for the unavailable SIMICS/GEMS traces);
//! * [`adversarial`] — the chip-wide malicious-traffic injector of §V.G;
//! * [`trace`] — binary trace capture and deterministic replay.

#![forbid(unsafe_code)]

pub mod adversarial;
pub mod pattern;
pub mod saturation;
pub mod scenario;
pub mod trace;
pub mod workload;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::adversarial::Adversarial;
    pub use crate::pattern::Pattern;
    pub use crate::saturation::{app_saturation, find_saturation, SaturationProbe};
    pub use crate::scenario::{
        four_app_dpa_a, four_app_dpa_b, six_app, two_app, AppSpec, InterDest, Scenario,
        AVG_PACKET_FLITS,
    };
    pub use crate::trace::{Trace, TraceEvent, TraceReplay};
    pub use crate::workload::{AppModel, ParsecWorkload};
}
