//! Shared experiment plumbing: network construction from (scheme, routing)
//! and a process-wide saturation-load cache.
//!
//! The paper expresses all synthetic loads as a percentage of each
//! application's saturation load. Saturation measurement is itself a
//! binary-search of simulations, so results are cached — keyed by the
//! actual measurement parameters `(probe mode, cfg, region, app, spec)`,
//! never by the caller-supplied label, so two call sites can never share a
//! stale load by reusing a label string. The label is kept for diagnostics
//! only.

use crate::runner::ExpConfig;
use noc_sim::config::SimConfig;
use noc_sim::network::Network;
use noc_sim::region::RegionMap;
use noc_sim::source::TrafficSource;
use rair::scheme::{Routing, Scheme};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use traffic::saturation::{app_saturation, SaturationProbe};
use traffic::scenario::AppSpec;

/// Build a network from the scheme/routing matrix plus a traffic source.
pub fn build_network(
    cfg: &SimConfig,
    region: &RegionMap,
    scheme: &Scheme,
    routing: Routing,
    source: Box<dyn TrafficSource>,
    seed: u64,
) -> Network {
    Network::new(
        cfg.clone(),
        region.clone(),
        routing.build(),
        scheme.build(),
        source,
        seed,
    )
}

fn sat_cache() -> &'static Mutex<HashMap<String, f64>> {
    static CACHE: OnceLock<Mutex<HashMap<String, f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Canonical cache key derived from every parameter the measured saturation
/// load depends on. `Debug` formatting of `f64` is round-trip exact in
/// Rust, so distinct specs always produce distinct keys.
fn sat_key(quick: bool, cfg: &SimConfig, region: &RegionMap, app: u8, spec: &AppSpec) -> String {
    let assign: Vec<u8> = (0..cfg.num_nodes() as u16)
        .map(|n| region.app_of(n))
        .collect();
    format!("quick={quick}|cfg={cfg:?}|region={assign:?}|app={app}|spec={spec:?}")
}

/// Saturation load (flits/cycle/node) of application `app` running alone
/// with traffic mix `spec` on `region`, measured under round-robin
/// arbitration with local adaptive routing. `label` is used only in
/// diagnostics; the cache key is derived from the parameters themselves.
pub fn cached_saturation(
    label: &str,
    ec: &ExpConfig,
    cfg: &SimConfig,
    region: &RegionMap,
    app: u8,
    spec: &AppSpec,
) -> f64 {
    let key = sat_key(ec.quick, cfg, region, app, spec);
    if let Some(&v) = sat_cache().lock().unwrap().get(&key) {
        return v;
    }
    let probe = if ec.quick {
        SaturationProbe::quick()
    } else {
        SaturationProbe::default()
    };
    let sat = app_saturation(&probe, cfg, region, app, spec, || Routing::Local.build());
    assert!(sat > 0.0, "saturation search collapsed to zero for {label}");
    sat_cache().lock().unwrap().insert(key, sat);
    sat
}

/// Clear the saturation cache (tests).
pub fn clear_saturation_cache() {
    sat_cache().lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::source::NoTraffic;
    use traffic::scenario::InterDest;

    #[test]
    fn build_network_wires_scheme_and_routing() {
        let cfg = SimConfig::table1();
        let region = RegionMap::single(&cfg);
        let net = build_network(
            &cfg,
            &region,
            &Scheme::rair(),
            Routing::Dbar,
            Box::new(NoTraffic),
            1,
        );
        assert_eq!(net.policy_name(), "RA_RAIR");
        assert_eq!(net.routing_name(), "DBAR");
    }

    #[test]
    fn saturation_cache_hits_regardless_of_label() {
        clear_saturation_cache();
        let cfg = SimConfig::table1();
        let region = RegionMap::halves(&cfg);
        let ec = ExpConfig::quick();
        let spec = AppSpec::intra_only(0.0);
        let a = cached_saturation("test/halves0", &ec, &cfg, &region, 0, &spec);
        // Same parameters under a different label must hit the cache (and
        // therefore return the identical value instantly).
        let b = cached_saturation("other/label", &ec, &cfg, &region, 0, &spec);
        assert_eq!(a, b);
        assert!(a > 0.05 && a < 1.0, "saturation {a}");
    }

    #[test]
    fn distinct_parameters_never_collide() {
        let cfg = SimConfig::table1();
        let region = RegionMap::halves(&cfg);
        let base = AppSpec::intra_only(0.0);
        let k = |quick, cfg: &SimConfig, region: &RegionMap, app, spec: &AppSpec| {
            sat_key(quick, cfg, region, app, spec)
        };
        let reference = k(true, &cfg, &region, 0, &base);
        // Key is a pure function of the parameters…
        assert_eq!(reference, k(true, &cfg, &region, 0, &base));
        // …and every parameter perturbation changes it.
        assert_ne!(reference, k(false, &cfg, &region, 0, &base));
        assert_ne!(reference, k(true, &cfg, &region, 1, &base));
        let mut other_cfg = cfg.clone();
        other_cfg.vc_depth += 1;
        assert_ne!(reference, k(true, &other_cfg, &region, 0, &base));
        let quadrants = RegionMap::quadrants(&cfg);
        assert_ne!(reference, k(true, &cfg, &quadrants, 0, &base));
        let mut spec = base.clone();
        spec.mc += 0.05;
        spec.intra -= 0.05;
        assert_ne!(reference, k(true, &cfg, &region, 0, &spec));
        let mut dest = base.clone();
        dest.inter_dest = InterDest::Region(1);
        assert_ne!(reference, k(true, &cfg, &region, 0, &dest));
    }
}
