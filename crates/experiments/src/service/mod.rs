//! Crash-safe experiment job service (ROADMAP item 4's durability layer).
//!
//! The service turns the one-shot sweep runner into something a long-lived
//! design-space exploration can sit on: jobs are declared in a text file,
//! every state transition is journaled to a per-line-CRC'd WAL
//! ([`journal`]), results are deduplicated against a digest-keyed result
//! cache, and a supervisor retries transient failures with deterministic
//! backoff while quarantining poison jobs instead of aborting the sweep
//! ([`serve`]). All filesystem traffic goes through the injectable
//! [`store::Store`] trait, so the [`chaos`] battery can deterministically
//! inject EIO, ENOSPC, torn writes, crash-before-rename — and SIGKILL the
//! whole process — and prove, digest-for-digest, that every fault class
//! recovers. See DESIGN.md §14 for the architecture, journal grammar, and
//! the failure taxonomy / recovery matrix.

pub mod chaos;
pub mod journal;
pub mod serve;
pub mod store;

pub use chaos::{run as run_chaos, run_wrong_result, ChaosReport};
pub use journal::{Journal, Replay, WAL_TAG};
pub use serve::{serve, sim_exec, JobExec, JobSpec, JobStatus, ServeConfig, ServeReport};
pub use store::{crc32, std_store, ChaosConfig, ChaosStore, Fault, StdStore, Store};

/// Recursively copy a directory tree — enough for tests that snapshot a
/// service directory (journal + result cache) and resume from the copy.
#[cfg(test)]
pub(crate) fn copy_dir_for_tests(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap().flatten() {
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_dir_for_tests(&from, &to);
        } else {
            std::fs::copy(&from, &to).unwrap();
        }
    }
}
