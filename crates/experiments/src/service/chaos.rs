//! `repro chaos` — the fault-injection battery that proves every recovery
//! path of the durability layer.
//!
//! One reference sweep (tiny windows, real simulations) establishes the
//! golden sweep digest; every battery then injects one fault class and
//! asserts the service recovers to a **bit-identical** digest:
//!
//! | battery                  | fault                                     |
//! |--------------------------|-------------------------------------------|
//! | `journal-torn-tail`      | journal truncated mid-row (torn append)   |
//! | `journal-interior`       | byte flipped in an interior journal row   |
//! | `checkpoint-corrupt`     | corrupted `run_parallel_checkpointed` row |
//! | `cache-corrupt`          | corrupted saturation disk-cache entry     |
//! | `append-faults`          | seeded EIO/ENOSPC/torn/crash via chaos store |
//! | `sigkill-resume`         | child `repro serve` SIGKILLed mid-sweep   |
//!
//! The `--inject-wrong-result` negative tampers a journal `done` row with a
//! *recomputed* CRC — a valid-looking but wrong result. The digest
//! comparison must detect the divergence; the invocation always exits
//! nonzero (the store is corrupt by construction), and prints whether the
//! tamper was caught. A chaos harness whose negative control passes
//! silently is not testing anything.

use super::journal::Journal;
use super::serve::{serve, JobExec, JobSpec, ServeConfig};
use super::store::{ChaosConfig, ChaosStore, StdStore};
use crate::runner::{self, ExpConfig, Job, RunResult};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

/// Outcome of one battery.
#[derive(Debug, Clone)]
pub struct Battery {
    pub name: &'static str,
    /// Faults actually injected (a battery that injected nothing proves
    /// nothing and is reported as not recovered).
    pub faults: u64,
    pub recovered: bool,
    pub detail: String,
}

/// The full battery report.
#[derive(Debug)]
pub struct ChaosReport {
    pub reference_digest: u64,
    pub batteries: Vec<Battery>,
}

impl ChaosReport {
    pub fn all_green(&self) -> bool {
        self.batteries.iter().all(|b| b.recovered)
    }

    pub fn table(&self) -> metrics::Table {
        let mut t = metrics::Table::new(
            "Chaos battery — fault injection and recovery",
            &["battery", "faults", "recovered", "detail"],
        );
        for b in &self.batteries {
            t.row(vec![
                b.name.to_string(),
                b.faults.to_string(),
                if b.recovered { "yes" } else { "NO" }.to_string(),
                b.detail.clone(),
            ]);
        }
        t
    }

    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let rows: Vec<String> = self
            .batteries
            .iter()
            .map(|b| {
                format!(
                    "    {{\"battery\": \"{}\", \"faults\": {}, \"recovered\": {}, \
                     \"detail\": \"{}\"}}",
                    b.name,
                    b.faults,
                    b.recovered,
                    esc(&b.detail)
                )
            })
            .collect();
        format!(
            "{{\n  \"reference_digest\": \"{:016x}\",\n  \"all_green\": {},\n  \
             \"batteries\": [\n{}\n  ]\n}}\n",
            self.reference_digest,
            self.all_green(),
            rows.join(",\n")
        )
    }
}

/// The chaos sweep's windows: tiny but real simulations, so resume
/// verification exercises the actual kernel, not a stub.
pub fn chaos_ec() -> ExpConfig {
    ExpConfig {
        warmup: 200,
        measure: 600,
        seed: 0xC0FFEE,
        quick: true,
        cycle_budget: None,
        prune: false,
    }
}

/// The chaos jobs: a small scheme/routing/region mix at light load (fast),
/// including one statically rejected scheme (the gate path) and one
/// relabeled duplicate (the dedup path).
pub fn chaos_jobs_text() -> &'static str {
    "# chaos battery jobs\n\
     j0 ro_rr local single uniform 0.05 1\n\
     j1 rair dbar halves uniform 0.05 2\n\
     j2 ro_age xy single transpose 0.05 3\n\
     j3 rair_va local quadrants uniform 0.05 4\n\
     inv rair_foreign_high local halves uniform 0.05 5\n\
     j0-dup ro_rr local single uniform 0.05 1\n"
}

fn chaos_jobs() -> Vec<JobSpec> {
    JobSpec::parse_jobs(chaos_jobs_text()).expect("builtin chaos jobs parse")
}

fn scfg(dir: &Path) -> ServeConfig {
    ServeConfig {
        backoff_base_ms: 1,
        ..ServeConfig::new(dir, chaos_ec())
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rair-chaos-{}-{tag}", std::process::id()));
    // lint: allow(swallowed-io-error)
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create chaos dir");
    dir
}

/// Tiny deterministic PRNG for kill delays and cut points (`Date`-free,
/// seed-driven like everything else in the tree).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed | 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Run the reference sweep: untouched storage, real simulations.
fn reference(exec: &JobExec) -> (u64, Vec<u8>) {
    let dir = fresh_dir("reference");
    let jobs = chaos_jobs();
    let cfg = scfg(&dir);
    let store = StdStore;
    let report = serve(&store, &jobs, &cfg, exec);
    let journal = std::fs::read(dir.join("journal.wal")).expect("reference journal");
    // lint: allow(swallowed-io-error)
    let _ = std::fs::remove_dir_all(&dir);
    (report.sweep_digest, journal)
}

/// Serve against a pre-seeded journal and report the digest.
fn resume_with_journal(
    tag: &str,
    journal_bytes: &[u8],
    exec: &JobExec,
) -> (u64, super::serve::ServeReport) {
    let dir = fresh_dir(tag);
    std::fs::write(dir.join("journal.wal"), journal_bytes).expect("seed journal");
    let report = serve(&StdStore, &chaos_jobs(), &scfg(&dir), exec);
    let digest = report.sweep_digest;
    // lint: allow(swallowed-io-error)
    let _ = std::fs::remove_dir_all(&dir);
    (digest, report)
}

/// Battery: truncate the journal at several points (including mid-row) and
/// verify each resume reproduces the reference digest.
fn battery_torn_tail(
    refd: u64,
    journal: &[u8],
    exec: &JobExec,
    rng: &mut XorShift,
    smoke: bool,
) -> Battery {
    let cuts: Vec<usize> = {
        let n = journal.len();
        let mut c = vec![
            n - 1,                              // torn mid final line
            n - (rng.next() as usize % 30 + 2), // torn deeper into the tail
            n / 2,                              // half the history gone
        ];
        if smoke {
            c.truncate(2);
        }
        c
    };
    let mut failures = Vec::new();
    for &cut in &cuts {
        let (d, _) = resume_with_journal("torn", &journal[..cut], exec);
        if d != refd {
            failures.push(format!("cut@{cut}: {d:016x} != {refd:016x}"));
        }
    }
    Battery {
        name: "journal-torn-tail",
        faults: cuts.len() as u64,
        recovered: failures.is_empty(),
        detail: if failures.is_empty() {
            format!(
                "{} truncation points, all digests bit-identical",
                cuts.len()
            )
        } else {
            failures.join("; ")
        },
    }
}

/// Battery: flip a byte inside an interior `done` row; the row must be
/// quarantined, the job re-run, and the digest unchanged.
fn battery_interior(refd: u64, journal: &[u8], exec: &JobExec) -> Battery {
    let text = String::from_utf8_lossy(journal);
    let lines: Vec<&str> = text.lines().collect();
    let Some(target) = lines
        .iter()
        .position(|l| l.contains("\tdone\t") || l.contains("done\t"))
        .filter(|&i| i + 1 < lines.len())
    else {
        return Battery {
            name: "journal-interior",
            faults: 0,
            recovered: false,
            detail: "no interior done row found in reference journal".into(),
        };
    };
    let mutated: Vec<String> = lines
        .iter()
        .enumerate()
        .map(|(i, l)| {
            if i != target {
                return (*l).to_string();
            }
            let mut bytes = l.as_bytes().to_vec();
            let mid = bytes.len() * 3 / 4;
            bytes[mid] ^= 0x01;
            String::from_utf8_lossy(&bytes).into_owned()
        })
        .collect();
    let seeded = mutated.join("\n") + "\n";
    let (d, report) = resume_with_journal("interior", seeded.as_bytes(), exec);
    let quarantined = report.journal_quarantined_rows >= 1;
    Battery {
        name: "journal-interior",
        faults: 1,
        recovered: d == refd && quarantined,
        detail: format!(
            "corrupt row at line {} quarantined={} digest {}",
            target + 1,
            report.journal_quarantined_rows,
            if d == refd {
                "bit-identical"
            } else {
                "DIVERGED"
            }
        ),
    }
}

/// Battery: corrupt a `run_parallel_checkpointed` row between a failed
/// first pass and the resumed second pass; results must match a clean run.
fn battery_checkpoint(dirtag: &str) -> Battery {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let dir = fresh_dir(dirtag);
    let path = dir.join("sweep.ckpt");
    let stub = |label: &str| -> RunResult {
        RunResult {
            label: label.into(),
            apl: vec![Some(label.len() as f64 + 7.25)],
            total_latency: vec![Some(label.len() as f64 + 9.5)],
            delivered: label.len() as u64 * 3,
            throughput: 0.25,
            cycles: 800,
            routers: 64,
            router_cycles_skipped: 0,
            state_updates_skipped: 0,
            idle_cycles_skipped: 0,
            oracle_enabled: false,
            oracle_violations: 0,
            truncated: false,
            flits_retransmitted: 0,
            packets_retried: 0,
            packets_dropped: 0,
            reconfigurations: 0,
        }
    };
    let digest_of = |rs: &[Result<RunResult, runner::JobError>]| -> u64 {
        let mut d = metrics::Digest::new();
        for r in rs.iter().flatten() {
            r.digest_into(&mut d);
        }
        d.finish()
    };
    let mk = |label: &'static str, fail: Option<Arc<AtomicBool>>| -> Job {
        Job::new(label, move || {
            if let Some(f) = &fail {
                assert!(!f.load(Ordering::SeqCst), "injected first-pass failure");
            }
            stub(label)
        })
    };
    // Clean reference (no checkpoint involved).
    let clean = digest_of(&runner::run_parallel_results(vec![
        mk("a", None),
        mk("b", None),
        mk("c", None),
    ]));
    // Pass 1: "c" fails twice, checkpoint keeps a and b.
    let failing = Arc::new(AtomicBool::new(true));
    let r1 = runner::run_parallel_checkpointed_with(
        &StdStore,
        vec![
            mk("a", None),
            mk("b", None),
            mk("c", Some(Arc::clone(&failing))),
        ],
        &path,
    );
    let pass1_ok = r1[2].is_err() && path.exists();
    // Corrupt b's checkpoint row (flip one byte mid-line).
    let mut bytes = std::fs::read(&path).expect("checkpoint exists");
    let text = String::from_utf8_lossy(&bytes).to_string();
    let b_off = text.find("\tb\t").or_else(|| text.find('b')).unwrap_or(1);
    bytes[b_off] ^= 0x02;
    std::fs::write(&path, &bytes).expect("rewrite checkpoint");
    // Pass 2: failure fixed; the corrupt row is skipped (b re-runs).
    failing.store(false, Ordering::SeqCst);
    let r2 = runner::run_parallel_checkpointed_with(
        &StdStore,
        vec![mk("a", None), mk("b", None), mk("c", Some(failing))],
        &path,
    );
    let resumed = digest_of(&r2);
    let ok = pass1_ok && r2.iter().all(Result::is_ok) && resumed == clean && !path.exists();
    // lint: allow(swallowed-io-error)
    let _ = std::fs::remove_dir_all(&dir);
    Battery {
        name: "checkpoint-corrupt",
        faults: 1,
        recovered: ok,
        detail: if ok {
            "corrupt row skipped, re-run matched the clean sweep, file cleaned up".into()
        } else {
            format!(
                "pass1_ok={pass1_ok} resumed={resumed:016x} clean={clean:016x} \
                 removed={}",
                !path.exists()
            )
        },
    }
}

/// Battery: corrupt a live saturation disk-cache entry; the re-search must
/// produce the bit-identical value, the entry must be set aside as
/// `*.corrupt`, and the corruption counter must tick.
fn battery_cache_corrupt() -> Battery {
    use noc_sim::config::SimConfig;
    use noc_sim::region::RegionMap;
    use traffic::scenario::AppSpec;
    let dir = fresh_dir("satcache");
    // The env var is process-global; `repro chaos` runs batteries
    // sequentially on the main thread, so this scoped override is safe.
    std::env::set_var("RAIR_CACHE_DIR", &dir);
    crate::sweep::clear_saturation_cache();
    let cfg = SimConfig::table1();
    let region = RegionMap::halves(&cfg);
    let ec = chaos_ec();
    let spec = AppSpec::intra_only(0.0);
    let before = crate::sweep::saturation_cache_corrupt_count();
    let out = (|| -> Result<(bool, String), String> {
        let (v1, _) =
            crate::sweep::try_cached_saturation_traced("chaos/sat", &ec, &cfg, &region, 0, &spec)
                .map_err(|e| e.to_string())?;
        let entry = std::fs::read_dir(&dir)
            .map_err(|e| e.to_string())?
            .flatten()
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "txt"))
            .ok_or("no cache entry written")?;
        // Flip a bit in the stored value.
        let mut bytes = std::fs::read(&entry).map_err(|e| e.to_string())?;
        bytes[3] ^= 0x04;
        std::fs::write(&entry, &bytes).map_err(|e| e.to_string())?;
        crate::sweep::clear_saturation_cache();
        let (v2, how) =
            crate::sweep::try_cached_saturation_traced("chaos/sat2", &ec, &cfg, &region, 0, &spec)
                .map_err(|e| e.to_string())?;
        let corrupt_counted = crate::sweep::saturation_cache_corrupt_count() > before;
        let set_aside = std::fs::read_dir(&dir)
            .map_err(|e| e.to_string())?
            .flatten()
            .any(|e| e.path().extension().is_some_and(|x| x == "corrupt"));
        let identical = v1.to_bits() == v2.to_bits();
        let miss = how != crate::sweep::SatLookup::DiskHit;
        Ok((
            identical && miss && corrupt_counted && set_aside,
            format!(
                "re-search {} (via {how:?}), counter={} set_aside={set_aside}",
                if identical {
                    "bit-identical"
                } else {
                    "DIVERGED"
                },
                corrupt_counted
            ),
        ))
    })();
    std::env::remove_var("RAIR_CACHE_DIR");
    crate::sweep::clear_saturation_cache();
    // lint: allow(swallowed-io-error)
    let _ = std::fs::remove_dir_all(&dir);
    let (recovered, detail) = out.unwrap_or_else(|e| (false, e));
    Battery {
        name: "cache-corrupt",
        faults: 1,
        recovered,
        detail,
    }
}

/// Battery: run the whole service through a seeded [`ChaosStore`] injecting
/// EIO/ENOSPC/torn/crash-before-rename; the sweep must still complete with
/// the reference digest.
fn battery_append_faults(refd: u64, exec: &JobExec, seed: u64) -> Battery {
    let dir = fresh_dir("appendfaults");
    let store = ChaosStore::new(ChaosConfig::battery(seed));
    let report = serve(&store, &chaos_jobs(), &scfg(&dir), exec);
    let injected = store.injected();
    let classes: std::collections::BTreeSet<&str> =
        injected.iter().map(|i| i.fault.label()).collect();
    let ok = report.sweep_digest == refd && !injected.is_empty();
    // lint: allow(swallowed-io-error)
    let _ = std::fs::remove_dir_all(&dir);
    Battery {
        name: "append-faults",
        faults: injected.len() as u64,
        recovered: ok,
        detail: format!(
            "{} faults over {} store ops ({}); digest {}; {} journal append(s) degraded",
            injected.len(),
            store.ops(),
            classes.into_iter().collect::<Vec<_>>().join(", "),
            if report.sweep_digest == refd {
                "bit-identical"
            } else {
                "DIVERGED"
            },
            report.journal_write_errors,
        ),
    }
}

/// Battery: SIGKILL a child `repro serve` at seeded points mid-sweep, then
/// complete the sweep and verify the digest against the reference.
fn battery_sigkill(refd: u64, exec: &JobExec, rng: &mut XorShift, smoke: bool) -> Battery {
    let dir = fresh_dir("sigkill");
    let jobs_path = dir.join("jobs.txt");
    std::fs::write(&jobs_path, chaos_jobs_text()).expect("write chaos jobs");
    let Ok(exe) = std::env::current_exe() else {
        return Battery {
            name: "sigkill-resume",
            faults: 0,
            recovered: false,
            detail: "current_exe() unavailable".into(),
        };
    };
    let kills = if smoke { 1 } else { 3 };
    let mut interrupted = 0u64;
    for _ in 0..kills {
        let Ok(mut child) = Command::new(&exe)
            .args([
                "--quick",
                "--windows",
                "200,600",
                "serve",
                jobs_path.to_str().expect("utf8 path"),
                "--dir",
                dir.to_str().expect("utf8 path"),
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
        else {
            return Battery {
                name: "sigkill-resume",
                faults: 0,
                recovered: false,
                detail: "could not spawn child repro serve".into(),
            };
        };
        // Seeded kill point somewhere inside the sweep.
        std::thread::sleep(Duration::from_millis(15 + rng.next() % 120));
        // `Child::kill` delivers SIGKILL on Unix — no cleanup handlers run,
        // exactly the crash the journal must survive.
        if child.kill().is_ok() {
            interrupted += 1;
        }
        // lint: allow(swallowed-io-error)
        let _ = child.wait();
    }
    // Complete the sweep in-process from whatever the kills left behind.
    let report = serve(&StdStore, &chaos_jobs(), &scfg(&dir), exec);
    let ok = report.sweep_digest == refd && interrupted > 0;
    // lint: allow(swallowed-io-error)
    let _ = std::fs::remove_dir_all(&dir);
    Battery {
        name: "sigkill-resume",
        faults: interrupted,
        recovered: ok,
        detail: format!(
            "{interrupted} SIGKILL(s) mid-sweep; resumed {} row(s), re-ran {}, digest {}",
            report.resumed,
            report.executed,
            if report.sweep_digest == refd {
                "bit-identical"
            } else {
                "DIVERGED"
            }
        ),
    }
}

/// Run the full battery. `smoke` trims repetition counts for CI's quick
/// lane; `seed` drives every randomized choice (kill delays, cut points,
/// chaos-store draws).
pub fn run(smoke: bool, seed: u64) -> ChaosReport {
    let exec = super::serve::sim_exec();
    let mut rng = XorShift::new(seed);
    eprintln!("[chaos] measuring reference sweep (untouched storage)…");
    let (refd, journal) = reference(&exec);
    eprintln!("[chaos] reference digest {refd:016x}; injecting faults…");
    let batteries = vec![
        battery_torn_tail(refd, &journal, &exec, &mut rng, smoke),
        battery_interior(refd, &journal, &exec),
        battery_checkpoint("ckpt"),
        battery_cache_corrupt(),
        battery_append_faults(refd, &exec, seed ^ 0xC4A05),
        battery_sigkill(refd, &exec, &mut rng, smoke),
    ];
    ChaosReport {
        reference_digest: refd,
        batteries,
    }
}

/// The negative control: tamper a journal `done` row *with a recomputed
/// CRC* (structurally valid, semantically wrong) and verify the sweep
/// digest comparison detects the divergence. Returns `(detected, detail)`.
pub fn run_wrong_result(seed: u64) -> (bool, String) {
    let _ = seed;
    let exec = super::serve::sim_exec();
    let (refd, journal) = reference(&exec);
    let text = String::from_utf8_lossy(&journal);
    let mut tampered: Vec<String> = Vec::new();
    let mut hit = false;
    for line in text.lines() {
        let Some(payload) = Journal::parse_line(line) else {
            tampered.push(line.to_string());
            continue;
        };
        if hit || !payload.starts_with("done\t") {
            tampered.push(line.to_string());
            continue;
        }
        // Perturb the delivered-count field of the embedded checkpoint
        // line, then re-frame with a *valid* CRC.
        let fields: Vec<&str> = payload.split('\t').collect();
        // payload = done, id, rair-ckpt-v1, label, delivered, …
        let mut fields: Vec<String> = fields.into_iter().map(str::to_string).collect();
        if fields.len() > 4 {
            if let Ok(v) = fields[4].parse::<u64>() {
                fields[4] = (v + 1).to_string();
                hit = true;
            }
        }
        tampered.push(Journal::frame(&fields.join("\t")));
    }
    if !hit {
        return (false, "no done row found to tamper".into());
    }
    let seeded = tampered.join("\n") + "\n";
    let (d, report) = resume_with_journal("wrongresult", seeded.as_bytes(), &exec);
    let detected = d != refd;
    (
        detected,
        format!(
            "tampered digest {d:016x} vs reference {refd:016x}: {} \
             (journal rows quarantined: {} — CRC is valid, so none, by design)",
            if detected {
                "divergence DETECTED"
            } else {
                "NOT DETECTED — digest failed to catch a wrong result"
            },
            report.journal_quarantined_rows
        ),
    )
}
