//! Cross-crate integration tests asserting the *shape* of the paper's
//! headline results at reduced simulation windows: who wins, in which
//! direction, and by roughly what magnitude class. Exact percentages are
//! recorded by the full `repro` runs in EXPERIMENTS.md; these tests guard
//! the qualitative conclusions against regressions.

use experiments::runner::{run_one, ExpConfig};
use experiments::sweep::build_network;
use noc_sim::config::SimConfig;
use noc_sim::region::RegionMap;
use rair::prelude::*;
use traffic::prelude::*;

fn ec() -> ExpConfig {
    ExpConfig {
        warmup: 2_000,
        measure: 12_000,
        seed: 0xFEED,
        quick: true,
        cycle_budget: None,
        prune: false,
    }
}

/// Two-app scenario at fixed, pre-calibrated rates (≈10%/90% of the
/// measured half-mesh saturation) so tests do not re-run the saturation
/// search.
const RATE_LIGHT: f64 = 0.035;
const RATE_HEAVY: f64 = 0.33;

fn two_app_apl(scheme: &Scheme, routing: Routing, p: f64) -> [f64; 2] {
    let cfg = SimConfig::table1();
    let (region, scenario) = two_app(&cfg, p, RATE_LIGHT, RATE_HEAVY);
    let net = build_network(
        &cfg,
        &region,
        scheme,
        routing,
        Box::new(scenario),
        ec().seed,
    );
    let r = run_one("t", net, &ec());
    [r.app_apl(0), r.app_apl(1)]
}

#[test]
fn fig9_shape_rair_accelerates_interregion_traffic() {
    let base = two_app_apl(&Scheme::RoRr, Routing::Local, 1.0);
    let va = two_app_apl(&Scheme::rair_va_only(), Routing::Local, 1.0);
    let full = two_app_apl(&Scheme::rair(), Routing::Local, 1.0);
    // RAIR_VA+SA must cut the light app's APL substantially (paper: -18.9%).
    let gain_full = 1.0 - full[0] / base[0];
    let gain_va = 1.0 - va[0] / base[0];
    assert!(gain_full > 0.10, "full RAIR gain {gain_full}");
    // Enforcing prioritization at more stages must help more (Fig. 9).
    assert!(
        gain_full > gain_va,
        "VA+SA {gain_full} <= VA-only {gain_va}"
    );
    assert!(gain_va > 0.0, "VA-only should still help ({gain_va})");
    // The heavy app pays a bounded price (paper: <3%; we allow <20%).
    assert!(full[1] / base[1] < 1.20, "heavy app penalty too large");
}

#[test]
fn fig9_no_interference_no_effect_at_p0() {
    // With no inter-region traffic the schemes coincide (no foreign flows
    // anywhere → all priorities compare equal-class requests).
    let base = two_app_apl(&Scheme::RoRr, Routing::Local, 0.0);
    let full = two_app_apl(&Scheme::rair(), Routing::Local, 0.0);
    let diff = (full[0] / base[0] - 1.0).abs();
    assert!(diff < 0.02, "p=0 divergence {diff}");
}

#[test]
fn fig10_shape_dbar_composes_with_rair() {
    let ro_local = two_app_apl(&Scheme::RoRr, Routing::Local, 1.0);
    let rair_local = two_app_apl(&Scheme::rair(), Routing::Local, 1.0);
    let ro_dbar = two_app_apl(&Scheme::RoRr, Routing::Dbar, 1.0);
    let rair_dbar = two_app_apl(&Scheme::rair(), Routing::Dbar, 1.0);
    // RAIR+DBAR is the best configuration for the light app (paper §V.C).
    assert!(rair_dbar[0] < ro_local[0]);
    assert!(rair_dbar[0] < ro_dbar[0]);
    assert!(rair_dbar[0] < rair_local[0] * 1.02);
    // And DBAR restores the heavy app's slowdown (paper: RAIR_DBAR App1
    // even beats RO_RR_Local).
    assert!(
        rair_dbar[1] < ro_local[1] * 1.05,
        "RAIR_DBAR heavy-app APL {} vs RO_RR_Local {}",
        rair_dbar[1],
        ro_local[1]
    );
}

fn dpa_scenario_reduction(scheme: &Scheme, variant: char) -> f64 {
    let cfg = SimConfig::table1();
    let (low, high) = (0.033, 0.59); // 5% / 90% of measured quadrant saturation
    let build = |s: &Scheme| {
        let (region, scenario) = if variant == 'a' {
            four_app_dpa_a(&cfg, low, high)
        } else {
            four_app_dpa_b(&cfg, low, high)
        };
        build_network(
            &cfg,
            &region,
            s,
            Routing::Local,
            Box::new(scenario),
            ec().seed,
        )
    };
    let base = run_one("base", build(&Scheme::RoRr), &ec());
    let r = run_one("s", build(scheme), &ec());
    (0..4)
        .map(|a| 1.0 - r.app_apl(a) / base.app_apl(a))
        .sum::<f64>()
        / 4.0
}

#[test]
fn fig12_shape_neither_fixed_policy_wins_both() {
    let native_a = dpa_scenario_reduction(&Scheme::rair_native_high(), 'a');
    let foreign_a = dpa_scenario_reduction(&Scheme::rair_foreign_high(), 'a');
    let dpa_a = dpa_scenario_reduction(&Scheme::rair(), 'a');
    // (a): foreign-high wins, DPA matches it.
    assert!(
        foreign_a > native_a,
        "(a) foreign {foreign_a} vs native {native_a}"
    );
    assert!(dpa_a > native_a);
    assert!(
        dpa_a > foreign_a - 0.03,
        "(a) DPA {dpa_a} far below ForeignH {foreign_a}"
    );
    assert!(dpa_a > 0.03, "(a) DPA should give a real gain, got {dpa_a}");

    let native_b = dpa_scenario_reduction(&Scheme::rair_native_high(), 'b');
    let foreign_b = dpa_scenario_reduction(&Scheme::rair_foreign_high(), 'b');
    let dpa_b = dpa_scenario_reduction(&Scheme::rair(), 'b');
    // (b): native-high wins, DPA tracks the better policy.
    assert!(
        native_b > foreign_b,
        "(b) native {native_b} vs foreign {foreign_b}"
    );
    assert!(dpa_b > foreign_b, "(b) DPA {dpa_b} vs ForeignH {foreign_b}");
}

#[test]
fn fig17_shape_rair_protects_against_adversary() {
    // Longer window than the other shape tests: the closed-loop PARSEC
    // workload plus a saturating adversary needs more samples to settle.
    let ec = ExpConfig {
        warmup: 3_000,
        measure: 30_000,
        seed: 0xFEED,
        quick: true,
        cycle_budget: None,
        prune: false,
    };
    let cfg = SimConfig::table1_req_reply();
    let region = RegionMap::quadrants(&cfg);
    let models = AppModel::parsec_four();
    let intensities: Vec<f64> = models.iter().map(AppModel::mean_rate).collect();
    let slowdown = |scheme: &Scheme| -> f64 {
        let mk = |adv: bool| {
            let w = ParsecWorkload::new(&cfg, &region, models.clone());
            if adv {
                build_network(
                    &cfg,
                    &region,
                    scheme,
                    Routing::Local,
                    Box::new(Adversarial::new(w, 0.4, 64, cfg.long_flits)),
                    ec.seed,
                )
            } else {
                build_network(&cfg, &region, scheme, Routing::Local, Box::new(w), ec.seed)
            }
        };
        let base = run_one("b", mk(false), &ec);
        let adv = run_one("a", mk(true), &ec);
        (0..4)
            .map(|a| adv.app_apl(a) / base.app_apl(a))
            .sum::<f64>()
            / 4.0
    };
    let s_rr = slowdown(&Scheme::RoRr);
    let s_rank = slowdown(&Scheme::ro_rank(intensities));
    let s_rair = slowdown(&Scheme::rair());
    // Paper's ordering: RO_RR worst, RO_Rank better, RA_RAIR best (small
    // tolerance between the two prioritizing schemes for window noise).
    assert!(s_rair < s_rank * 1.05, "RAIR {s_rair} vs Rank {s_rank}");
    assert!(s_rank < s_rr, "Rank {s_rank} vs RR {s_rr}");
    assert!(
        s_rair < s_rr * 0.7,
        "RAIR should cut the slowdown substantially"
    );
    assert!(s_rair > 1.0, "an attack still costs something");
}

#[test]
fn lbdr_fraction_matches_papers_14_percent() {
    let f = rair::lbdr::exact_valid_fraction(4, 4);
    assert!((f - 0.14).abs() < 0.005, "paper says ~14%, got {f}");
}
