//! Shared helpers for the Criterion benches.
//!
//! Each bench (one per paper table/figure) does two things:
//! 1. regenerates the figure's rows/series once in ultra-quick mode and
//!    prints them to stderr, so `cargo bench` reproduces the evaluation
//!    artifacts end-to-end;
//! 2. times a representative simulation of that figure's workload, giving
//!    a performance regression signal for the simulator itself.

use experiments::runner::ExpConfig;

/// Ultra-quick experiment windows for the regeneration pass inside benches.
pub fn bench_config() -> ExpConfig {
    ExpConfig {
        warmup: 1_000,
        measure: 6_000,
        seed: 0xBE7C4,
        quick: true,
        cycle_budget: None,
        prune: false,
    }
}

/// Cycles simulated by the timed portion of each bench.
pub const TIMED_CYCLES: u64 = 2_000;
