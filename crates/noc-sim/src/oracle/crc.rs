//! Link-level CRC integrity: every buffered flit's payload must match its
//! CRC.
//!
//! The link layer resolves transient corruptions by retransmission *before*
//! a flit is committed to the downstream buffer, so in a correct kernel —
//! with or without an active fault timeline — no buffered flit ever carries
//! a bad CRC. A mismatch means corrupted data escaped the error-control
//! protocol (the `Fault::CorruptFlit` differential mutation, or a real
//! retransmission bug).

use super::{Checker, OracleViolation};
use crate::flit::crc16;
use crate::network::Network;

/// End-of-cycle scan over every input-VC buffer verifying
/// `crc16(payload) == crc`.
#[derive(Debug, Default)]
pub struct CrcIntegrity;

impl Checker for CrcIntegrity {
    fn name(&self) -> &'static str {
        "crc-integrity"
    }

    fn end_of_cycle(&mut self, net: &Network, out: &mut Vec<OracleViolation>) {
        for (r, router) in net.routers.iter().enumerate() {
            for (port, vcs) in router.inputs.iter().enumerate() {
                for (vc, ivc) in vcs.iter().enumerate() {
                    for f in &ivc.buf {
                        if crc16(f.payload) != f.crc {
                            out.push(OracleViolation {
                                cycle: net.cycle(),
                                checker: self.name(),
                                router: Some(r as crate::ids::NodeId),
                                detail: format!(
                                    "packet {} flit {} at input ({port}, {vc}): \
                                     payload {:#018x} fails CRC ({:#06x} != {:#06x})",
                                    f.info.id,
                                    f.seq,
                                    f.payload,
                                    crc16(f.payload),
                                    f.crc
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
}
