//! Simulator configuration, including the paper's Table 1 parameters.

use crate::fault::FaultTimeline;
use crate::ids::{Coord, MsgClass, NodeId, NUM_PORTS};
use crate::oracle::OracleConfig;
use crate::vc::{VcClass, VcTag};
use crate::verify::VerifyConfig;
use serde::{Deserialize, Serialize};

/// Network and router-microarchitecture configuration.
///
/// Defaults follow Table 1 of the paper: 64 nodes (8×8 mesh), 128-bit links
/// (16-byte flits), atomic 5-flit virtual channels, 6-cycle L2 bank service,
/// 128-cycle memory service, 64-byte cache blocks. Packets are either 1-flit
/// short packets (16 B control) or 5-flit long packets (head + 64 B data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Mesh width (columns).
    pub width: u8,
    /// Mesh height (rows).
    pub height: u8,
    /// Number of message classes (virtual networks). Each class gets one
    /// escape VC per port (deadlock freedom per Duato's theory); all classes
    /// share the adaptive VCs, as prescribed in §IV.D of the paper.
    pub num_classes: usize,
    /// Adaptive (fully-routable) VCs per port, shared by all classes.
    pub adaptive_vcs: usize,
    /// How many of the adaptive VCs are tagged *regional*; the remainder are
    /// tagged *global*. §VI recommends a roughly equal split.
    pub regional_vcs: usize,
    /// Buffer depth of each VC, in flits.
    pub vc_depth: usize,
    /// Flits in a short packet (16-byte control message).
    pub short_flits: u32,
    /// Flits in a long packet (head flit + 64-byte data).
    pub long_flits: u32,
    /// L2 bank service latency in cycles (closed-loop request/reply mode).
    pub l2_latency: u64,
    /// Memory service latency in cycles.
    pub mem_latency: u64,
    /// Cache block size in bytes (documentation only; implied by long_flits).
    pub block_bytes: usize,
    /// Invariant-oracle toggle and tuning (see [`OracleConfig`]).
    pub oracle: OracleConfig,
    /// Static deadlock-freedom/legality verifier toggle (see
    /// [`VerifyConfig`]); resolved at `Network::new`.
    pub verify: VerifyConfig,
    /// Fault timeline (transient BER + scheduled permanent faults). The
    /// default (empty) timeline keeps the resilience machinery fully
    /// off-path and out of the behavioral digest.
    pub fault: FaultTimeline,
    /// Spatial router shards the tick engine may split the mesh into
    /// (`0` = resolve from the `RAIR_SHARDS` environment variable,
    /// defaulting to 1 = scalar). Sharding is an execution strategy, not a
    /// model parameter: stat digests are bit-identical at every shard count,
    /// so the field is excluded from [`SimConfig::digest_into`] just like
    /// the oracle/verify observability toggles.
    pub shards: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::table1()
    }
}

impl SimConfig {
    /// The paper's Table 1 configuration (single message class, as used for
    /// the synthetic-traffic experiments).
    pub fn table1() -> Self {
        Self {
            width: 8,
            height: 8,
            num_classes: 1,
            adaptive_vcs: 4,
            regional_vcs: 2,
            vc_depth: 5,
            short_flits: 1,
            long_flits: 5,
            l2_latency: 6,
            mem_latency: 128,
            block_bytes: 64,
            oracle: OracleConfig::default(),
            verify: VerifyConfig::default(),
            fault: FaultTimeline::default(),
            shards: 0,
        }
    }

    /// Resolve the shard count the tick engine should use: an explicit
    /// [`SimConfig::shards`] wins; `0` defers to the `RAIR_SHARDS`
    /// environment variable (mirroring `RAIR_ORACLE`/`RAIR_VERIFY`), and an
    /// absent or unparseable variable means scalar (1).
    pub fn resolve_shards(&self) -> usize {
        if self.shards != 0 {
            return self.shards;
        }
        std::env::var("RAIR_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&s| s > 0)
            .unwrap_or(1)
    }

    /// Table 1 configuration with two message classes (request + reply) for
    /// the closed-loop PARSEC-style workloads.
    pub fn table1_req_reply() -> Self {
        Self {
            num_classes: 2,
            ..Self::table1()
        }
    }

    /// Number of nodes in the mesh.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Total VCs per port: one escape VC per message class + adaptive VCs.
    #[inline]
    pub fn vcs_per_port(&self) -> usize {
        self.num_classes + self.adaptive_vcs
    }

    /// Classify VC index `vc` within a port.
    ///
    /// Layout: indices `0..num_classes` are the per-class escape VCs
    /// (running dimension-order routing); the remaining indices are adaptive
    /// VCs, the first `regional_vcs` of which carry the *regional* tag and
    /// the rest the *global* tag (the 1-bit field of §IV.A).
    #[inline]
    pub fn vc_class(&self, vc: usize) -> VcClass {
        if vc < self.num_classes {
            VcClass::Escape {
                class: vc as MsgClass,
            }
        } else {
            let a = vc - self.num_classes;
            VcClass::Adaptive {
                tag: if a < self.regional_vcs {
                    VcTag::Regional
                } else {
                    VcTag::Global
                },
            }
        }
    }

    /// Index of the escape VC for message class `class`.
    #[inline]
    pub fn escape_vc(&self, class: MsgClass) -> usize {
        debug_assert!((class as usize) < self.num_classes);
        class as usize
    }

    /// Iterator over the adaptive VC indices.
    pub fn adaptive_vc_range(&self) -> std::ops::Range<usize> {
        self.num_classes..self.vcs_per_port()
    }

    /// Node id of coordinate `c` (row-major).
    #[inline]
    pub fn node_at(&self, c: Coord) -> NodeId {
        c.y as NodeId * self.width as NodeId + c.x as NodeId
    }

    /// Coordinate of node `id`.
    #[inline]
    pub fn coord_of(&self, id: NodeId) -> Coord {
        Coord {
            x: (id % self.width as NodeId) as u8,
            y: (id / self.width as NodeId) as u8,
        }
    }

    /// The four corner node ids (the memory-controller tiles of §V.E).
    pub fn corners(&self) -> [NodeId; 4] {
        let w = self.width as NodeId;
        let h = self.height as NodeId;
        [0, w - 1, (h - 1) * w, h * w - 1]
    }

    /// Validate internal consistency; called by `Network::new`.
    pub fn validate(&self) -> Result<(), String> {
        if self.width < 2 || self.height < 2 {
            return Err("mesh must be at least 2x2".into());
        }
        if self.num_classes == 0 || self.num_classes > 4 {
            return Err("num_classes must be 1..=4".into());
        }
        if self.adaptive_vcs == 0 {
            return Err("need at least one adaptive VC".into());
        }
        if self.regional_vcs > self.adaptive_vcs {
            return Err("regional_vcs exceeds adaptive_vcs".into());
        }
        if self.vc_depth == 0 {
            return Err("vc_depth must be nonzero".into());
        }
        if self.long_flits as usize > self.vc_depth {
            return Err("long packets must fit in one VC (atomic VCs)".into());
        }
        if self.num_nodes() > NodeId::MAX as usize {
            return Err("too many nodes for NodeId".into());
        }
        if NUM_PORTS * self.vcs_per_port() > 64 {
            return Err(
                "NUM_PORTS * vcs_per_port() must fit in a u64 bitset (<= 64 VC slots per router)"
                    .into(),
            );
        }
        self.oracle.validate()?;
        self.fault.validate(self)?;
        Ok(())
    }

    /// Fold every simulation-relevant parameter into `d`. Used to build
    /// collision-proof cache keys; deliberately excludes `block_bytes`
    /// (documentation only) and `oracle`/`verify` (observability, not
    /// behaviour). The fault timeline is folded in only when non-empty, so
    /// pre-fault digests (golden files, cache keys) are unchanged.
    pub fn digest_into(&self, d: &mut metrics::Digest) {
        d.write_u64(self.width as u64);
        d.write_u64(self.height as u64);
        d.write_u64(self.num_classes as u64);
        d.write_u64(self.adaptive_vcs as u64);
        d.write_u64(self.regional_vcs as u64);
        d.write_u64(self.vc_depth as u64);
        d.write_u64(self.short_flits as u64);
        d.write_u64(self.long_flits as u64);
        d.write_u64(self.l2_latency);
        d.write_u64(self.mem_latency);
        if !self.fault.is_empty() {
            self.fault.digest_into(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = SimConfig::table1();
        assert_eq!(c.num_nodes(), 64); // 64 cores
        assert_eq!(c.vc_depth, 5); // 5-flit/VC
        assert_eq!(c.l2_latency, 6); // 6-cycle L2
        assert_eq!(c.mem_latency, 128); // 128-cycle memory
        assert_eq!(c.block_bytes, 64); // 64-byte blocks
        assert_eq!(c.short_flits, 1); // 16B single-flit
        assert_eq!(c.long_flits, 5); // 64B + head flit
        assert!(c.validate().is_ok());
    }

    #[test]
    fn vc_layout() {
        let c = SimConfig::table1_req_reply();
        assert_eq!(c.num_classes, 2);
        assert_eq!(c.vcs_per_port(), 6);
        assert_eq!(c.vc_class(0), VcClass::Escape { class: 0 });
        assert_eq!(c.vc_class(1), VcClass::Escape { class: 1 });
        assert_eq!(
            c.vc_class(2),
            VcClass::Adaptive {
                tag: VcTag::Regional
            }
        );
        assert_eq!(
            c.vc_class(3),
            VcClass::Adaptive {
                tag: VcTag::Regional
            }
        );
        assert_eq!(c.vc_class(4), VcClass::Adaptive { tag: VcTag::Global });
        assert_eq!(c.vc_class(5), VcClass::Adaptive { tag: VcTag::Global });
        assert_eq!(c.escape_vc(1), 1);
        assert_eq!(c.adaptive_vc_range(), 2..6);
    }

    #[test]
    fn coord_roundtrip() {
        let c = SimConfig::table1();
        for id in 0..c.num_nodes() as NodeId {
            assert_eq!(c.node_at(c.coord_of(id)), id);
        }
        assert_eq!(c.coord_of(0), Coord { x: 0, y: 0 });
        assert_eq!(c.coord_of(63), Coord { x: 7, y: 7 });
    }

    #[test]
    fn corners_are_corners() {
        let c = SimConfig::table1();
        assert_eq!(c.corners(), [0, 7, 56, 63]);
    }

    #[test]
    fn empty_fault_timeline_keeps_digest_nonempty_changes_it() {
        let digest = |c: &SimConfig| {
            let mut d = metrics::Digest::new();
            c.digest_into(&mut d);
            d.finish()
        };
        let base = SimConfig::table1();
        let mut with_empty = SimConfig::table1();
        with_empty.fault = FaultTimeline::default();
        assert_eq!(digest(&base), digest(&with_empty));
        let mut with_ber = SimConfig::table1();
        with_ber.fault.transient_ber = 1e-3;
        assert_ne!(digest(&base), digest(&with_ber));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = SimConfig::table1();
        c.long_flits = 9;
        assert!(c.validate().is_err());

        let mut c = SimConfig::table1();
        c.regional_vcs = 5;
        assert!(c.validate().is_err());

        let mut c = SimConfig::table1();
        c.adaptive_vcs = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::table1();
        c.width = 1;
        assert!(c.validate().is_err());
    }
}
