//! Traffic-source abstraction.
//!
//! A [`TrafficSource`] is the workload driving a simulation: each cycle the
//! network offers every node the chance to generate one packet. Closed-loop
//! workloads (request/reply) additionally get a delivery callback so they
//! can track outstanding requests.

use crate::flit::{PacketInfo, ReplySpec};
use crate::ids::{AppId, MsgClass, NodeId};
use rand::rngs::SmallRng;

/// A packet a source wants to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewPacket {
    pub dst: NodeId,
    pub app: AppId,
    pub class: MsgClass,
    /// Size in flits.
    pub size: u32,
    /// If set, the destination generates a reply after servicing.
    pub reply: Option<ReplySpec>,
}

/// Workload generator for a whole network.
pub trait TrafficSource: Send {
    /// Number of applications this workload comprises (app ids are
    /// `0..num_apps`). Sizes the per-application statistics.
    fn num_apps(&self) -> usize;

    /// Offer node `node` the chance to generate one packet this cycle.
    /// Must never return `dst == node`.
    fn generate(&mut self, node: NodeId, cycle: u64, rng: &mut SmallRng) -> Option<NewPacket>;

    /// The earliest cycle `>= now` at which [`generate`](Self::generate)
    /// might return a packet for *any* node — the contract backing the
    /// network's idle fast-forward.
    ///
    /// Returning `Some(c)` is a promise that for every cycle in `[now, c)`
    /// and every node, `generate` would return `None` **with zero side
    /// effects** — in particular, without drawing from the node's RNG (an
    /// elided call must leave the RNG stream untouched). `Some(u64::MAX)`
    /// means the source will never inject again. The default `None` means
    /// "unknown — call me every cycle"; any source that consults the RNG
    /// each cycle (Bernoulli processes, ON/OFF chains) must keep it.
    fn next_injection_cycle(&self, _now: u64) -> Option<u64> {
        None
    }

    /// A packet was delivered (tail ejected) at `node`. Closed-loop sources
    /// use this to retire outstanding requests.
    fn on_delivered(&mut self, _node: NodeId, _info: &PacketInfo, _cycle: u64) {}
}

/// The silent workload (useful for drain phases and unit tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTraffic;

impl TrafficSource for NoTraffic {
    fn num_apps(&self) -> usize {
        1
    }

    fn generate(&mut self, _: NodeId, _: u64, _: &mut SmallRng) -> Option<NewPacket> {
        None
    }

    fn next_injection_cycle(&self, _now: u64) -> Option<u64> {
        Some(u64::MAX)
    }
}

/// A scripted source replaying an explicit list of `(cycle, src, NewPacket)`
/// events — the backbone of the deterministic pipeline unit tests.
#[derive(Debug, Clone)]
pub struct ScriptedSource {
    num_apps: usize,
    /// Sorted by cycle; consumed front to back per node.
    events: Vec<(u64, NodeId, NewPacket)>,
}

impl ScriptedSource {
    pub fn new(num_apps: usize, mut events: Vec<(u64, NodeId, NewPacket)>) -> Self {
        events.sort_by_key(|e| e.0);
        Self { num_apps, events }
    }

    /// Remaining (not yet emitted) events.
    pub fn remaining(&self) -> usize {
        self.events.len()
    }
}

impl TrafficSource for ScriptedSource {
    fn num_apps(&self) -> usize {
        self.num_apps
    }

    fn generate(&mut self, node: NodeId, cycle: u64, _rng: &mut SmallRng) -> Option<NewPacket> {
        let idx = self
            .events
            .iter()
            .position(|&(c, n, _)| c <= cycle && n == node)?;
        Some(self.events.remove(idx).2)
    }

    fn next_injection_cycle(&self, now: u64) -> Option<u64> {
        // Events are sorted by cycle and consumed without RNG; a past-due
        // event (possible when its node's VCs were all busy) clamps to now.
        Some(
            self.events
                .first()
                .map_or(u64::MAX, |&(c, _, _)| c.max(now)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn scripted_source_emits_in_order() {
        let pkt = NewPacket {
            dst: 5,
            app: 0,
            class: 0,
            size: 1,
            reply: None,
        };
        let mut s = ScriptedSource::new(1, vec![(10, 0, pkt), (5, 1, pkt)]);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(s.generate(0, 4, &mut rng).is_none());
        assert!(s.generate(1, 5, &mut rng).is_some());
        assert!(s.generate(1, 6, &mut rng).is_none());
        assert!(s.generate(0, 10, &mut rng).is_some());
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn no_traffic_is_silent() {
        let mut s = NoTraffic;
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(s.generate(0, 0, &mut rng).is_none());
    }
}
