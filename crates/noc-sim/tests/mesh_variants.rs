//! The simulator is not hard-wired to the 8×8 Table 1 mesh: rectangular
//! meshes, different VC budgets and multiple message classes must all work.

use noc_sim::network::Network;
use noc_sim::prelude::*;
use rand::Rng;

fn uniform_events(cfg: &SimConfig, n: usize, seed: u64) -> Vec<(u64, NodeId, NewPacket)> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let nodes = cfg.num_nodes() as NodeId;
    (0..n)
        .map(|i| {
            let src = rng.random_range(0..nodes);
            let mut dst = rng.random_range(0..nodes - 1);
            if dst >= src {
                dst += 1;
            }
            (
                (i as u64) * 2,
                src,
                NewPacket {
                    dst,
                    app: 0,
                    class: 0,
                    size: if i % 2 == 0 { 1 } else { 5 },
                    reply: None,
                },
            )
        })
        .collect()
}

fn run_all_delivered(cfg: SimConfig, seed: u64) {
    let events = uniform_events(&cfg, 60, seed);
    let count = events.len() as u64;
    let region = RegionMap::single(&cfg);
    let mut net = Network::new(
        cfg,
        region,
        Box::new(DuatoLocalAdaptive),
        Box::new(RoundRobin),
        Box::new(ScriptedSource::new(1, events)),
        seed,
    );
    net.run(6_000);
    assert!(net.is_drained(), "{} flits stuck", net.flits_in_network());
    assert_eq!(net.stats.recorder.delivered(), count);
}

#[test]
fn wide_rectangular_mesh() {
    let mut cfg = SimConfig::table1();
    cfg.width = 8;
    cfg.height = 4;
    run_all_delivered(cfg, 1);
}

#[test]
fn tall_rectangular_mesh() {
    let mut cfg = SimConfig::table1();
    cfg.width = 4;
    cfg.height = 8;
    run_all_delivered(cfg, 2);
}

#[test]
fn minimal_2x2_mesh() {
    let mut cfg = SimConfig::table1();
    cfg.width = 2;
    cfg.height = 2;
    run_all_delivered(cfg, 3);
}

#[test]
fn large_16x16_mesh() {
    let mut cfg = SimConfig::table1();
    cfg.width = 16;
    cfg.height = 16;
    run_all_delivered(cfg, 4);
}

#[test]
fn single_adaptive_vc() {
    let mut cfg = SimConfig::table1();
    cfg.adaptive_vcs = 1;
    cfg.regional_vcs = 0;
    run_all_delivered(cfg, 5);
}

#[test]
fn many_vcs_deep_buffers() {
    let mut cfg = SimConfig::table1();
    cfg.adaptive_vcs = 8;
    cfg.regional_vcs = 4;
    cfg.vc_depth = 9;
    run_all_delivered(cfg, 6);
}

#[test]
fn four_message_classes() {
    let mut cfg = SimConfig::table1();
    cfg.num_classes = 4;
    // Packets across all four classes, interleaved.
    let mut events = uniform_events(&cfg, 40, 7);
    for (i, ev) in events.iter_mut().enumerate() {
        ev.2.class = (i % 4) as u8;
    }
    let count = events.len() as u64;
    let region = RegionMap::single(&cfg);
    let mut net = Network::new(
        cfg,
        region,
        Box::new(DuatoLocalAdaptive),
        Box::new(RoundRobin),
        Box::new(ScriptedSource::new(1, events)),
        7,
    );
    net.run(6_000);
    assert!(net.is_drained());
    assert_eq!(net.stats.recorder.delivered(), count);
}

#[test]
fn rair_policy_on_nonstandard_mesh() {
    // RAIR on a 4x8 mesh with 2 regions and 6 adaptive VCs.
    let mut cfg = SimConfig::table1();
    cfg.width = 4;
    cfg.height = 8;
    cfg.adaptive_vcs = 6;
    cfg.regional_vcs = 3;
    let region = RegionMap::grid(&cfg, 1, 2);
    let mut events = uniform_events(&cfg, 50, 8);
    for (i, ev) in events.iter_mut().enumerate() {
        // Tag each packet with its source's app so classification works.
        ev.2.app = region.app_of(ev.1);
        let _ = i;
    }
    let count = events.len() as u64;
    let policy = rair_policy();
    let mut net = Network::new(
        cfg,
        region,
        Box::new(DuatoLocalAdaptive),
        policy,
        Box::new(ScriptedSource::new(2, events)),
        8,
    );
    net.run(6_000);
    assert!(net.is_drained());
    assert_eq!(net.stats.recorder.delivered(), count);
}

/// Build a RAIR-like policy without depending on the `rair` crate (which
/// would create a dev-dependency cycle): strict foreign-first at SA.
fn rair_policy() -> Box<dyn noc_sim::arbitration::PriorityPolicy> {
    use noc_sim::arbitration::{ArbReq, ArbStage, PriorityPolicy};
    use noc_sim::router::Router;
    use noc_sim::vc::VcClass;
    struct ForeignFirst;
    impl PriorityPolicy for ForeignFirst {
        fn name(&self) -> &'static str {
            "ForeignFirst"
        }
        fn priority(
            &self,
            _stage: ArbStage,
            _router: &Router,
            _out_vc: Option<VcClass>,
            req: &ArbReq,
        ) -> u64 {
            u64::from(!req.is_native)
        }
    }
    Box::new(ForeignFirst)
}
