//! Differential tests of the invariant oracle: seeded fault-injection
//! mutators corrupt one protocol rule each, and the test asserts the
//! corresponding checker — and only a relevant checker — catches it.
//! The final test runs the *unmutated* kernel across the scheme × routing
//! × load matrix with per-cycle checking and asserts zero violations, so
//! the mutators prove detection power and the matrix proves a clean kernel.

use noc_sim::ids::NUM_PORTS;
use noc_sim::network::Network;
use noc_sim::prelude::*;
use rair::prelude::*;
use std::collections::HashSet;
use traffic::prelude::*;

/// Table 1 config with the oracle force-enabled, recording (not panicking)
/// and checking every cycle.
fn oracle_cfg(stall_horizon: u64) -> SimConfig {
    let mut cfg = SimConfig::table1();
    cfg.oracle = OracleConfig {
        enabled: Some(true),
        panic_on_violation: Some(false),
        check_interval: 1,
        stall_horizon,
        ..OracleConfig::default()
    };
    cfg
}

/// A two-application network under moderate load (plenty of in-flight
/// state for the mutators to corrupt).
fn loaded_net(cfg: &SimConfig, seed: u64) -> Network {
    let (region, scenario) = two_app(cfg, 0.5, 0.05, 0.2);
    Network::new(
        cfg.clone(),
        region,
        Routing::Local.build(),
        Scheme::rair().build(),
        Box::new(scenario),
        seed,
    )
}

/// Try `mk(router, port, vc)` over every slot until one applies.
fn inject_anywhere(net: &mut Network, mk: impl Fn(usize, Port, usize) -> Fault) -> bool {
    let v = net.cfg.vcs_per_port();
    for router in 0..net.cfg.num_nodes() {
        for port in 0..NUM_PORTS {
            for vc in 0..v {
                if net.inject_fault(mk(router, port, vc)) {
                    return true;
                }
            }
        }
    }
    false
}

/// Names of the checkers that recorded at least one violation.
fn checkers_hit(net: &Network) -> HashSet<&'static str> {
    net.stats
        .oracle_violations
        .iter()
        .map(|v| v.checker)
        .collect()
}

#[test]
fn dropped_credit_caught_by_credit_conservation() {
    let mut net = loaded_net(&oracle_cfg(25_000), 7);
    net.run(300);
    assert_eq!(net.stats.oracle_violation_count, 0, "clean before fault");
    assert!(
        inject_anywhere(&mut net, |router, port, vc| Fault::DropCredit {
            router,
            port,
            vc
        }),
        "no slot with a credit to drop after 300 loaded cycles"
    );
    assert!(net.check_oracle_now() > 0);
    assert!(
        checkers_hit(&net).contains("credit-conservation"),
        "hit: {:?}",
        checkers_hit(&net)
    );
}

#[test]
fn duplicated_flit_caught_by_wormhole_or_conservation() {
    let mut net = loaded_net(&oracle_cfg(25_000), 11);
    let mut injected = false;
    for _ in 0..500 {
        net.tick();
        if inject_anywhere(&mut net, |router, port, vc| Fault::DuplicateFlit {
            router,
            port,
            vc,
        }) {
            injected = true;
            break;
        }
    }
    assert!(injected, "no buffered flit with room to duplicate");
    // Check without ticking: the phantom copy sits on the link (in-flight),
    // so the conservation scan already sees one more flit than was injected.
    assert!(net.check_oracle_now() > 0);
    let hit = checkers_hit(&net);
    assert!(
        hit.contains("wormhole-contiguity") || hit.contains("flit-conservation"),
        "hit: {hit:?}"
    );
    // The replay pays a real upstream credit, so credit accounting stays
    // coherent — the duplicate must be caught as a protocol-level phantom,
    // not as a credit-bookkeeping discrepancy.
    assert!(
        !hit.contains("credit-conservation"),
        "duplicate bypassed credit accounting: {hit:?}"
    );
}

#[test]
fn corrupted_payload_caught_by_crc_integrity() {
    let mut net = loaded_net(&oracle_cfg(25_000), 17);
    let mut injected = false;
    for _ in 0..500 {
        net.tick();
        if inject_anywhere(&mut net, |router, port, vc| Fault::CorruptFlit {
            router,
            port,
            vc,
        }) {
            injected = true;
            break;
        }
    }
    assert!(
        injected,
        "no buffered flit whose payload could be corrupted"
    );
    // A single payload bit-flip leaves every counter and state machine
    // intact; only the end-to-end CRC walk can see it.
    assert!(net.check_oracle_now() > 0);
    let hit = checkers_hit(&net);
    assert!(hit.contains("crc-integrity"), "hit: {hit:?}");
    assert!(
        !hit.contains("flit-conservation") && !hit.contains("credit-conservation"),
        "payload corruption perturbed accounting: {hit:?}"
    );
}

#[test]
fn misrouted_flit_caught_by_routing_legality() {
    let mut net = loaded_net(&oracle_cfg(25_000), 13);
    let mut injected = false;
    for _ in 0..800 {
        net.tick();
        if inject_anywhere(&mut net, |router, port, vc| Fault::MisrouteFlit {
            router,
            port,
            vc,
        }) {
            injected = true;
            break;
        }
    }
    assert!(injected, "no single-flit packet eligible for misrouting");
    assert_eq!(net.stats.oracle_violation_count, 0, "clean before arrival");
    // The misrouted flit lands next cycle; the arrival hook flags the
    // unproductive hop at end of that same tick.
    net.tick();
    assert!(
        checkers_hit(&net).contains("routing-legality"),
        "hit: {:?}",
        checkers_hit(&net)
    );
}

#[test]
fn frozen_arbiter_caught_by_deadlock_watchdog() {
    // One scripted packet whose router is frozen before it can ever win
    // switch allocation: the network makes no progress while the flits sit
    // in the injection VC, so the global no-progress watchdog fires.
    let cfg = oracle_cfg(400);
    let pkt = NewPacket {
        dst: 9,
        app: 0,
        class: 0,
        size: 4,
        reply: None,
    };
    let mut net = Network::new(
        cfg.clone(),
        RegionMap::single(&cfg),
        Routing::Local.build(),
        Scheme::RoRr.build(),
        Box::new(ScriptedSource::new(1, vec![(10, 0, pkt)])),
        3,
    );
    assert!(net.inject_fault(Fault::FreezeRouter { router: 0 }));
    net.run(1_500);
    assert!(net.flits_in_network() > 0, "flits should be stuck");
    assert!(
        checkers_hit(&net).contains("deadlock-livelock"),
        "hit: {:?}",
        checkers_hit(&net)
    );
}

#[test]
fn unmutated_kernel_is_violation_free_across_matrix() {
    let cfg = oracle_cfg(25_000);
    let schemes = [
        Scheme::RoRr,
        Scheme::RoAge,
        Scheme::ro_rank(vec![0.1, 0.3]),
        Scheme::rair(),
    ];
    let routings = [Routing::Xy, Routing::Local, Routing::Dbar];
    let loads = [(0.2, 0.02, 0.05), (1.0, 0.08, 0.3)];
    for scheme in &schemes {
        for routing in routings {
            for (p, r0, r1) in loads {
                let (region, scenario) = two_app(&cfg, p, r0, r1);
                let mut net = Network::new(
                    cfg.clone(),
                    region,
                    routing.build(),
                    scheme.build(),
                    Box::new(scenario),
                    0xC0FFEE,
                );
                net.run(1_200);
                net.check_oracle_now();
                assert_eq!(
                    net.stats.oracle_violation_count,
                    0,
                    "{}/{} p={p}: {:?}",
                    scheme.label(),
                    routing.label(),
                    net.stats.oracle_violations
                );
                assert!(net.stats.ejected_flits > 0, "matrix cell moved no traffic");
            }
        }
    }
}
