//! Offline vendored subset of the `bytes` crate: `Bytes`, `BytesMut` and
//! the big-endian `Buf`/`BufMut` accessors the trace codec uses. Backed by
//! plain `Vec<u8>`/`Arc<[u8]>` — no split/shared-tail tricks, which the
//! workspace does not need.

use std::sync::Arc;

/// Immutable byte buffer (cheaply cloneable view over shared storage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-view over `range` (indices relative to this view).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read-side cursor over a byte source. Big-endian accessors, as in the
/// real crate. Getters panic when the source has too few bytes remaining —
/// callers bounds-check with `remaining()` first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice: need {}, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Write-side sink. Big-endian, as in the real crate.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR");
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 3 + 1 + 2 + 4 + 8);
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_a_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&*s, &[2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(&*s2, &[3]);
    }

    #[test]
    #[should_panic]
    fn getter_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.get_u16();
    }
}
