//! Shared experiment plumbing: network construction from (scheme, routing)
//! and a process-wide saturation-load cache.
//!
//! The paper expresses all synthetic loads as a percentage of each
//! application's saturation load. Saturation measurement is itself a
//! binary-search of simulations, so results are cached per (layout, mix,
//! app) key — every figure driver then shares the same reference loads.

use crate::runner::ExpConfig;
use noc_sim::config::SimConfig;
use noc_sim::network::Network;
use noc_sim::region::RegionMap;
use noc_sim::source::TrafficSource;
use parking_lot::Mutex;
use rair::scheme::{Routing, Scheme};
use std::collections::HashMap;
use std::sync::OnceLock;
use traffic::saturation::{app_saturation, SaturationProbe};
use traffic::scenario::AppSpec;

/// Build a network from the scheme/routing matrix plus a traffic source.
pub fn build_network(
    cfg: &SimConfig,
    region: &RegionMap,
    scheme: &Scheme,
    routing: Routing,
    source: Box<dyn TrafficSource>,
    seed: u64,
) -> Network {
    Network::new(
        cfg.clone(),
        region.clone(),
        routing.build(),
        scheme.build(),
        source,
        seed,
    )
}

fn sat_cache() -> &'static Mutex<HashMap<String, f64>> {
    static CACHE: OnceLock<Mutex<HashMap<String, f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Saturation load (flits/cycle/node) of application `app` running alone
/// with traffic mix `spec` on `region`, measured under round-robin
/// arbitration with local adaptive routing, cached under `key`.
pub fn cached_saturation(
    key: &str,
    ec: &ExpConfig,
    cfg: &SimConfig,
    region: &RegionMap,
    app: u8,
    spec: &AppSpec,
) -> f64 {
    if let Some(&v) = sat_cache().lock().get(key) {
        return v;
    }
    let probe = if ec.quick {
        SaturationProbe::quick()
    } else {
        SaturationProbe::default()
    };
    let sat = app_saturation(&probe, cfg, region, app, spec, || {
        Routing::Local.build()
    });
    assert!(sat > 0.0, "saturation search collapsed to zero for {key}");
    sat_cache().lock().insert(key.to_string(), sat);
    sat
}

/// Clear the saturation cache (tests).
pub fn clear_saturation_cache() {
    sat_cache().lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::source::NoTraffic;

    #[test]
    fn build_network_wires_scheme_and_routing() {
        let cfg = SimConfig::table1();
        let region = RegionMap::single(&cfg);
        let net = build_network(
            &cfg,
            &region,
            &Scheme::rair(),
            Routing::Dbar,
            Box::new(NoTraffic),
            1,
        );
        assert_eq!(net.policy_name(), "RA_RAIR");
        assert_eq!(net.routing_name(), "DBAR");
    }

    #[test]
    fn saturation_cache_hits() {
        clear_saturation_cache();
        let cfg = SimConfig::table1();
        let region = RegionMap::halves(&cfg);
        let ec = ExpConfig::quick();
        let spec = AppSpec::intra_only(0.0);
        let a = cached_saturation("test/halves0", &ec, &cfg, &region, 0, &spec);
        let b = cached_saturation("test/halves0", &ec, &cfg, &region, 0, &spec);
        assert_eq!(a, b);
        assert!(a > 0.05 && a < 1.0, "saturation {a}");
    }
}
