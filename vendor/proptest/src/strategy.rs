//! Value-generation strategies.

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of a common type (`prop_oneof!`).
pub struct OneOf<S> {
    options: Vec<S>,
}

impl<S: Strategy> OneOf<S> {
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_oneof() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let (a, b, c) = (0u16..64, 0.25f64..=0.75, 3usize..4).generate(&mut rng);
            assert!(a < 64);
            assert!((0.25..=0.75).contains(&b));
            assert_eq!(c, 3);
            let j = OneOf::new(vec![Just(1), Just(2)]).generate(&mut rng);
            assert!(j == 1 || j == 2);
        }
    }
}
