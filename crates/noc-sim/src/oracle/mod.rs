//! Pluggable invariant oracle: protocol checkers that watch the cycle
//! kernel and report violations the moment they happen.
//!
//! The oracle is a correctness layer over the wormhole/VC/credit model, in
//! the spirit of the assertion-based checkers NoC evaluation frameworks use
//! as their ground truth. It observes the kernel at three kinds of points:
//!
//! * the **two occupancy-transition points** — a head flit written into an
//!   empty idle VC (arrival or injection) and a tail flit departing through
//!   the crossbar — via the cheap `on_*` hooks,
//! * every **link arrival** (for per-hop routing legality),
//! * **end of cycle**, where the expensive whole-network scans run, gated
//!   by [`OracleConfig::check_interval`].
//!
//! Violations are structured [`OracleViolation`] values carried in
//! [`SimStats`](crate::stats::SimStats) and rendered by `metrics::report`.
//! With the oracle disabled (`Network.oracle == None`) the per-cycle cost is
//! a single pointer null-check.
//!
//! The [`Fault`](crate::fault::Fault) enum drives the differential harness:
//! each variant is a seeded protocol mutation applied by
//! [`Network::inject_fault`](crate::network::Network::inject_fault) that at
//! least one checker must catch.

mod conservation;
mod crc;
mod credit;
mod deadlock;
mod policy;
mod routing_legal;
mod starvation;
mod wormhole;

pub use conservation::FlitConservation;
pub use crc::CrcIntegrity;
pub use credit::CreditConservation;
pub use deadlock::DeadlockWatch;
pub use policy::PolicyInvariant;
pub use routing_legal::RoutingLegality;
pub use starvation::StarvationWatch;
pub use wormhole::WormholeContiguity;

use crate::config::SimConfig;
use crate::flit::Flit;
use crate::ids::{AppId, NodeId, Port};
use crate::network::Network;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default no-progress horizon in cycles: comfortably above the longest
/// legitimate quiet period of any shipped configuration (the closed-loop
/// runs idle for at most `mem_latency` cycles between deliveries), yet small
/// enough to flag a genuine deadlock long before a run ends.
pub const DEFAULT_STALL_HORIZON: u64 = 25_000;

/// Default spacing of the expensive end-of-cycle scans. The cheap `on_*`
/// hook checks still run (and violations still flush) every cycle.
pub const DEFAULT_CHECK_INTERVAL: u64 = 16;

/// Default cap on violations kept in `SimStats` (the count is unbounded).
pub const DEFAULT_MAX_RECORDED: usize = 64;

/// Oracle toggle and tuning knobs, carried in [`SimConfig`].
///
/// `None` fields resolve at `Network::new` time: the oracle is **on in
/// debug builds** and in builds with the `oracle` cargo feature, off by
/// default in release; the `RAIR_ORACLE` environment variable overrides the
/// build-profile default (`"0"`/empty disables, anything else enables), and
/// an explicit `enabled` in the config beats both.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Explicit on/off; `None` = resolve from env/build profile.
    pub enabled: Option<bool>,
    /// Panic on the first violation; `None` = panic in debug builds only
    /// (turning every debug test into an oracle-enforced one), record-only
    /// in release.
    pub panic_on_violation: Option<bool>,
    /// Cycles a VC may stay occupied (or the whole network may go without
    /// crossbar progress) before the deadlock/livelock checker flags it.
    pub stall_horizon: u64,
    /// Run the end-of-cycle scans every this many cycles.
    pub check_interval: u64,
    /// At most this many `OracleViolation` values are kept in `SimStats`.
    pub max_recorded: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            enabled: None,
            panic_on_violation: None,
            stall_horizon: DEFAULT_STALL_HORIZON,
            check_interval: DEFAULT_CHECK_INTERVAL,
            max_recorded: DEFAULT_MAX_RECORDED,
        }
    }
}

impl OracleConfig {
    /// Force-enabled, record-only, checking every cycle — the configuration
    /// the differential harness and the `repro --oracle` matrix use.
    pub fn forced() -> Self {
        Self {
            enabled: Some(true),
            panic_on_violation: Some(false),
            check_interval: 1,
            ..Self::default()
        }
    }

    /// Resolve the effective on/off decision (see the type-level docs).
    pub fn resolve_enabled(&self) -> bool {
        if let Some(e) = self.enabled {
            return e;
        }
        match std::env::var("RAIR_ORACLE") {
            Ok(v) => !(v.is_empty() || v == "0"),
            Err(_) => cfg!(debug_assertions) || cfg!(feature = "oracle"),
        }
    }

    /// Resolve the effective panic-on-violation decision.
    pub fn resolve_panic(&self) -> bool {
        self.panic_on_violation.unwrap_or(cfg!(debug_assertions))
    }

    /// Internal consistency, folded into [`SimConfig::validate`].
    pub fn validate(&self) -> Result<(), String> {
        if self.stall_horizon == 0 {
            return Err("oracle.stall_horizon must be nonzero".into());
        }
        if self.check_interval == 0 {
            return Err("oracle.check_interval must be nonzero".into());
        }
        Ok(())
    }
}

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleViolation {
    /// Cycle the violation was detected (not necessarily introduced).
    pub cycle: u64,
    /// Name of the checker that flagged it.
    pub checker: &'static str,
    /// Offending router, when the violation is local to one.
    pub router: Option<NodeId>,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[cycle {}] {}: ", self.cycle, self.checker)?;
        if let Some(r) = self.router {
            write!(f, "router {r}: ")?;
        }
        write!(f, "{}", self.detail)
    }
}

/// A protocol invariant checker.
///
/// The `on_*` hooks are called at the kernel's occupancy-transition and
/// arrival points and must be cheap (they run per flit event); whole-network
/// scans belong in [`end_of_cycle`](Checker::end_of_cycle), which the oracle
/// calls every [`OracleConfig::check_interval`] cycles (and on demand).
pub trait Checker: Send {
    /// Name used in violation records and reports.
    fn name(&self) -> &'static str;

    /// A flit of `app` entered the network through a local port.
    fn on_inject(&mut self, _app: AppId, _cycle: u64) {}

    /// A flit of `app` was consumed by its destination NI.
    fn on_eject(&mut self, _app: AppId, _cycle: u64) {}

    /// A flit arrived over a link into `(router, in_port, vc)`.
    #[allow(clippy::too_many_arguments)]
    fn on_arrival(
        &mut self,
        _cfg: &SimConfig,
        _router: NodeId,
        _in_port: Port,
        _vc: usize,
        _flit: &Flit,
        _cycle: u64,
        _out: &mut Vec<OracleViolation>,
    ) {
    }

    /// Input VC `(router, port, vc)` transitioned to/from occupied.
    fn on_occupancy(
        &mut self,
        _router: NodeId,
        _port: Port,
        _vc: usize,
        _occupied: bool,
        _cycle: u64,
    ) {
    }

    /// Whole-network scan after the state-update phase of a cycle.
    fn end_of_cycle(&mut self, _net: &Network, _out: &mut Vec<OracleViolation>) {}

    /// The routing layer reconfigured around a permanent fault: checkers
    /// relying on the pristine routing function (minimality, escape
    /// dimension order) relax or re-derive their expectations here. The
    /// new degraded table is already installed in `net`.
    fn on_reconfigure(&mut self, _net: &Network) {}
}

/// The oracle: a set of checkers plus the violations they raised since the
/// last flush into `SimStats`.
pub struct Oracle {
    checkers: Vec<Box<dyn Checker>>,
    pending: Vec<OracleViolation>,
    panic_on_violation: bool,
    check_interval: u64,
    max_recorded: usize,
    /// End-of-cycle scans actually performed (the interval gate passed).
    /// Fast-forwarded runs must match plain ticking scan-for-scan.
    scans: u64,
}

impl Oracle {
    /// The full default checker set for a network of this configuration.
    pub fn from_config(cfg: &SimConfig, num_apps: usize) -> Self {
        Self::with_checkers(
            cfg,
            vec![
                Box::new(FlitConservation::new(num_apps)),
                Box::new(CreditConservation::default()),
                Box::new(WormholeContiguity),
                Box::new(RoutingLegality::default()),
                Box::new(CrcIntegrity),
                Box::new(DeadlockWatch::new(cfg)),
                Box::new(PolicyInvariant),
            ],
        )
    }

    /// An oracle with a custom checker set (tests of individual checkers).
    pub fn with_checkers(cfg: &SimConfig, checkers: Vec<Box<dyn Checker>>) -> Self {
        Self {
            checkers,
            pending: Vec::new(),
            panic_on_violation: cfg.oracle.resolve_panic(),
            check_interval: cfg.oracle.check_interval,
            max_recorded: cfg.oracle.max_recorded,
            scans: 0,
        }
    }

    /// Append a checker to an existing oracle (the differential suite
    /// attaches the starvation observer with an explicit bound).
    pub fn add_checker(&mut self, checker: Box<dyn Checker>) {
        self.checkers.push(checker);
    }

    pub(crate) fn note_inject(&mut self, app: AppId, cycle: u64) {
        for c in &mut self.checkers {
            c.on_inject(app, cycle);
        }
    }

    pub(crate) fn note_eject(&mut self, app: AppId, cycle: u64) {
        for c in &mut self.checkers {
            c.on_eject(app, cycle);
        }
    }

    pub(crate) fn note_arrival(
        &mut self,
        cfg: &SimConfig,
        router: NodeId,
        in_port: Port,
        vc: usize,
        flit: &Flit,
        cycle: u64,
    ) {
        let Self {
            checkers, pending, ..
        } = self;
        for c in checkers {
            c.on_arrival(cfg, router, in_port, vc, flit, cycle, pending);
        }
    }

    pub(crate) fn note_occupancy(
        &mut self,
        router: NodeId,
        port: Port,
        vc: usize,
        occupied: bool,
        cycle: u64,
    ) {
        for c in &mut self.checkers {
            c.on_occupancy(router, port, vc, occupied, cycle);
        }
    }

    /// Run the end-of-cycle scans if due (or `force`d), gathering violations
    /// into the pending list.
    pub(crate) fn run_end_of_cycle(&mut self, net: &Network, force: bool) {
        if !force && !net.cycle().is_multiple_of(self.check_interval) {
            return;
        }
        self.scans += 1;
        let Self {
            checkers, pending, ..
        } = self;
        for c in checkers {
            c.end_of_cycle(net, pending);
        }
    }

    pub(crate) fn note_reconfigure(&mut self, net: &Network) {
        for c in &mut self.checkers {
            c.on_reconfigure(net);
        }
    }

    pub(crate) fn take_pending(&mut self) -> Vec<OracleViolation> {
        std::mem::take(&mut self.pending)
    }

    pub(crate) fn panic_on_violation(&self) -> bool {
        self.panic_on_violation
    }

    pub(crate) fn max_recorded(&self) -> usize {
        self.max_recorded
    }

    pub(crate) fn check_interval(&self) -> u64 {
        self.check_interval
    }

    pub(crate) fn scans(&self) -> u64 {
        self.scans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_renders_with_context() {
        let v = OracleViolation {
            cycle: 42,
            checker: "credit-conservation",
            router: Some(7),
            detail: "sum 4 != depth 5".into(),
        };
        assert_eq!(
            v.to_string(),
            "[cycle 42] credit-conservation: router 7: sum 4 != depth 5"
        );
        let v = OracleViolation { router: None, ..v };
        assert_eq!(
            v.to_string(),
            "[cycle 42] credit-conservation: sum 4 != depth 5"
        );
    }

    #[test]
    fn forced_config_checks_every_cycle_without_panicking() {
        let c = OracleConfig::forced();
        assert!(c.resolve_enabled());
        assert!(!c.resolve_panic());
        assert_eq!(c.check_interval, 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn explicit_enable_beats_profile_default() {
        let mut c = OracleConfig {
            enabled: Some(false),
            ..OracleConfig::default()
        };
        assert!(!c.resolve_enabled());
        c.enabled = Some(true);
        assert!(c.resolve_enabled());
    }

    #[test]
    fn validation_rejects_zero_knobs() {
        let c = OracleConfig {
            stall_horizon: 0,
            ..OracleConfig::default()
        };
        assert!(c.validate().is_err());
        let c = OracleConfig {
            check_interval: 0,
            ..OracleConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
