//! Property-based invariants of the whole stack, checked with proptest:
//! flit conservation, minimal routing, drainage, determinism, starvation
//! freedom and trace-replay equivalence under randomized scenarios.

use noc_sim::network::Network;
use noc_sim::prelude::*;
use proptest::prelude::*;
use rair::prelude::*;
use traffic::prelude::*;

/// Random scheme choice for property tests.
fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::RoRr),
        Just(Scheme::RoAge),
        Just(Scheme::ro_rank(vec![0.1, 0.9])),
        Just(Scheme::rair()),
        Just(Scheme::rair_native_high()),
        Just(Scheme::rair_foreign_high()),
        Just(Scheme::rair_va_only()),
    ]
}

fn any_routing() -> impl Strategy<Value = Routing> {
    prop_oneof![Just(Routing::Xy), Just(Routing::Local), Just(Routing::Dbar)]
}

fn build(scheme: &Scheme, routing: Routing, p: f64, r0: f64, r1: f64, seed: u64) -> Network {
    let cfg = SimConfig::table1();
    let (region, scenario) = two_app(&cfg, p, r0, r1);
    Network::new(
        cfg,
        region,
        routing.build(),
        scheme.build(),
        Box::new(scenario),
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Flits are conserved and every delivered packet took a minimal route,
    /// for any scheme × routing × load combination.
    #[test]
    fn conservation_and_minimality(
        scheme in any_scheme(),
        routing in any_routing(),
        p in 0.0f64..=1.0,
        r0 in 0.005f64..0.15,
        r1 in 0.005f64..0.4,
        seed in 0u64..1000,
    ) {
        let mut net = build(&scheme, routing, p, r0, r1, seed);
        net.run(3_000);
        prop_assert_eq!(
            net.stats.injected_flits,
            net.stats.ejected_flits + net.flits_in_network()
        );
        // Minimal routing: mean hops of each app cannot exceed the mesh
        // diameter, and every packet's hops equals the src→dst distance —
        // checked in aggregate via the recorder's per-packet equality
        // (hops are recorded per packet; a non-minimal route would push the
        // mean above the expected Manhattan mean, bounded here by diameter).
        for app in 0..2 {
            if let Some(h) = net.stats.recorder.app(app).hops.max() {
                prop_assert!(h <= 14.0, "hop count {} exceeds mesh diameter", h);
            }
        }
    }

    /// After the source stops, every network drains completely — no flit is
    /// ever stranded (deadlock/livelock freedom under Duato escape VCs).
    #[test]
    fn always_drains(
        scheme in any_scheme(),
        routing in any_routing(),
        p in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        let cfg = SimConfig::table1();
        let (region, scenario) = two_app(&cfg, p, 0.1, 0.3);
        // Wrap the scenario so it stops generating after 1500 cycles.
        struct StopAfter<S> { inner: S, stop: u64 }
        impl<S: TrafficSource> TrafficSource for StopAfter<S> {
            fn num_apps(&self) -> usize { self.inner.num_apps() }
            fn generate(&mut self, n: NodeId, c: u64, rng: &mut rand::rngs::SmallRng)
                -> Option<NewPacket> {
                (c < self.stop).then(|| self.inner.generate(n, c, rng)).flatten()
            }
        }
        let mut net = Network::new(
            cfg,
            region,
            routing.build(),
            scheme.build(),
            Box::new(StopAfter { inner: scenario, stop: 1_500 }),
            seed,
        );
        net.run(1_500);
        // Generous drain window: MC replies add a 128-cycle service delay.
        net.run(8_000);
        prop_assert!(net.is_drained(), "{} flits stranded", net.flits_in_network());
    }

    /// Identical seeds reproduce identical statistics for every scheme.
    #[test]
    fn determinism(
        scheme in any_scheme(),
        routing in any_routing(),
        seed in 0u64..1000,
    ) {
        let run = || {
            let mut net = build(&scheme, routing, 0.5, 0.05, 0.3, seed);
            net.run(2_000);
            (
                net.stats.injected_flits,
                net.stats.ejected_flits,
                net.stats.recorder.delivered(),
                net.stats.recorder.overall_mean(LatencyKind::Network),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Trace capture → replay offers the identical packet stream.
    #[test]
    fn trace_replay_equivalence(p in 0.0f64..=1.0, seed in 0u64..500) {
        let cfg = SimConfig::table1();
        let (_region, scenario) = two_app(&cfg, p, 0.1, 0.2);
        let trace = Trace::capture(scenario, 64, 1_000, seed);
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(bytes).unwrap();
        prop_assert_eq!(&trace, &back);
        let mut replay = TraceReplay::new(&back, 64);
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0);
        let mut count = 0;
        for cycle in 0..1_100 {
            for node in 0..64u16 {
                if replay.generate(node, cycle, &mut rng).is_some() {
                    count += 1;
                }
            }
        }
        prop_assert_eq!(count, trace.events.len());
    }

    /// The active-set fast path is bit-identical to the exhaustive scan:
    /// for any scheme × routing × load, forcing the exhaustive tick yields
    /// the same traffic statistics (the skip counters legitimately differ,
    /// so they are excluded from the comparison).
    #[test]
    fn fast_path_matches_exhaustive(
        scheme in any_scheme(),
        routing in any_routing(),
        p in 0.0f64..=1.0,
        r0 in 0.005f64..0.15,
        r1 in 0.005f64..0.4,
        seed in 0u64..1000,
    ) {
        let run = |exhaustive: bool| {
            let mut net = build(&scheme, routing, p, r0, r1, seed);
            net.set_force_exhaustive(exhaustive);
            net.run(1_500);
            (
                net.stats.injected_flits,
                net.stats.ejected_flits,
                net.stats.recorder.delivered(),
                net.stats.recorder.overall_mean(LatencyKind::Network),
                net.stats.recorder.overall_mean(LatencyKind::Total),
                net.congestion_snapshot().to_vec(),
            )
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// DPA hysteresis is well-behaved for arbitrary occupancy sequences:
    /// the output only changes when the ratio leaves the hysteresis band,
    /// and flipping the flow roles flips the decision (symmetry).
    #[test]
    fn dpa_hysteresis_band(
        pairs in proptest::collection::vec((0u32..30, 0u32..30), 1..50),
        delta in 0.0f64..0.5,
    ) {
        let mode = DpaMode::Dynamic { delta };
        let mut state = false;
        for (n, f) in pairs {
            let next = mode.next_native_high(state, n, f);
            if next != state {
                // A transition requires leaving the band.
                if n > 0 {
                    let r = f as f64 / n as f64;
                    prop_assert!(
                        r > 1.0 + delta || r < 1.0 - delta,
                        "transition inside band: r={r}, delta={delta}"
                    );
                } else {
                    prop_assert!(next, "n=0 with traffic must favor native");
                }
            }
            state = next;
        }
    }
}

/// Once the network drains, the active set must be empty, and further
/// cycles must skip every router in every phase and every state update —
/// the quiescent network costs O(1) per tick, not O(routers).
#[test]
fn active_set_empties_on_drain() {
    struct StopAfter<S> {
        inner: S,
        stop: u64,
    }
    impl<S: TrafficSource> TrafficSource for StopAfter<S> {
        fn num_apps(&self) -> usize {
            self.inner.num_apps()
        }
        fn generate(
            &mut self,
            n: NodeId,
            c: u64,
            rng: &mut rand::rngs::SmallRng,
        ) -> Option<NewPacket> {
            (c < self.stop)
                .then(|| self.inner.generate(n, c, rng))
                .flatten()
        }
    }
    let cfg = SimConfig::table1();
    let (region, scenario) = two_app(&cfg, 0.5, 0.05, 0.2);
    let mut net = Network::new(
        cfg,
        region,
        Routing::Local.build(),
        Scheme::rair().build(),
        Box::new(StopAfter {
            inner: scenario,
            stop: 1_000,
        }),
        7,
    );
    net.run(9_000);
    assert!(
        net.is_drained(),
        "{} flits stranded",
        net.flits_in_network()
    );
    assert_eq!(net.active_routers(), 0, "drained net has active routers");

    // Every further tick elides all 64 routers in all three phases and
    // skips all 64 state updates.
    let phase_base = net.stats.router_cycles_skipped;
    let update_base = net.stats.state_updates_skipped;
    net.run(100);
    assert_eq!(net.stats.router_cycles_skipped - phase_base, 100 * 64 * 3);
    assert_eq!(net.stats.state_updates_skipped - update_base, 100 * 64);
}

/// Starvation freedom: under sustained heavy native load, a single foreign
/// packet stream still makes progress with every RAIR variant except the
/// (intentionally unfair) fixed-NativeH ablation.
#[test]
fn no_starvation_with_dpa() {
    for scheme in [Scheme::rair(), Scheme::rair_foreign_high()] {
        let cfg = SimConfig::table1();
        let (region, scenario) = two_app(&cfg, 1.0, 0.02, 0.35);
        let mut net = Network::new(
            cfg,
            region,
            Routing::Local.build(),
            scheme.build(),
            Box::new(scenario),
            99,
        );
        net.run_warmup_measure(2_000, 10_000);
        let delivered_light = net.stats.recorder.app(0).network.count();
        assert!(
            delivered_light > 100,
            "{}: light app starved ({} delivered)",
            scheme.label(),
            delivered_light
        );
        // And its latency is finite/sane, not a starvation artifact.
        let apl = net
            .stats
            .recorder
            .app(0)
            .mean(LatencyKind::Network)
            .unwrap();
        assert!(apl < 500.0, "{}: light app APL {}", scheme.label(), apl);
    }
}

/// The negative-feedback argument of §IV.D: even with *native-high* fixed
/// priority, foreign packets are not fully starved thanks to idle SA slots
/// — but DPA must do strictly better.
#[test]
fn dpa_beats_fixed_native_for_foreign_traffic() {
    let apl_light = |scheme: &Scheme| {
        let cfg = SimConfig::table1();
        let (region, scenario) = two_app(&cfg, 1.0, 0.02, 0.35);
        let mut net = Network::new(
            cfg,
            region,
            Routing::Local.build(),
            scheme.build(),
            Box::new(scenario),
            99,
        );
        net.run_warmup_measure(2_000, 10_000);
        net.stats
            .recorder
            .app(0)
            .mean(LatencyKind::Network)
            .unwrap()
    };
    let dpa = apl_light(&Scheme::rair());
    let native = apl_light(&Scheme::rair_native_high());
    assert!(
        dpa < native,
        "DPA ({dpa}) must beat fixed NativeH ({native}) for inter-region traffic"
    );
}
