//! Quickstart: build an 8×8 regionalized NoC with two applications, run
//! round-robin and RAIR arbitration on the identical workload, and compare
//! per-application packet latencies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use noc_sim::prelude::*;
use rair::prelude::*;
use traffic::prelude::*;

fn main() {
    // Table 1 network: 8×8 mesh, 5-flit atomic VCs, 16-byte flits.
    let cfg = SimConfig::table1();

    // Two applications, one per mesh half (the Fig. 8 layout). App 0 is a
    // light application sending 40% of its traffic into app 1's region;
    // app 1 is a heavy, purely intra-region application.
    let p_inter = 0.4;
    let (rate_light, rate_heavy) = (0.04, 0.30);

    println!(
        "workload: app0 light ({rate_light} flits/cycle/node, {:.0}% inter-region),",
        p_inter * 100.0
    );
    println!("          app1 heavy ({rate_heavy} flits/cycle/node, intra-region)\n");

    for scheme in [Scheme::RoRr, Scheme::rair()] {
        // The same seed gives both schemes the identical offered traffic.
        let (region, scenario) = two_app(&cfg, p_inter, rate_light, rate_heavy);
        let mut net = noc_sim::network::Network::new(
            cfg.clone(),
            region,
            Routing::Local.build(),
            scheme.build(),
            Box::new(scenario),
            42,
        );

        // 10K warmup + 50K measured cycles.
        net.run_warmup_measure(10_000, 50_000);

        let rec = &net.stats.recorder;
        println!("scheme {:>7}:", scheme.label());
        for app in 0..2 {
            println!(
                "  app{app}: APL {:6.2} cycles over {:6} packets (avg {:.2} hops)",
                rec.app(app).mean(LatencyKind::Network).unwrap(),
                rec.app(app).network.count(),
                rec.app(app).hops.mean().unwrap(),
            );
        }
        println!(
            "  throughput {:.3} flits/cycle/node\n",
            net.stats.throughput(net.cycle(), cfg.num_nodes())
        );
    }

    println!("RAIR accelerates the light application's inter-region packets");
    println!("(foreign traffic with high criticality) while costing the heavy");
    println!("application little — the paper's headline effect.");
}
