//! Small checked bit-manipulation helpers shared across the kernel.

/// Mask with the low `n` bits set.
///
/// The naive `(1u64 << n) - 1` is undefined at `n == 64` (it panics in
/// debug builds and wraps to `0` — the *opposite* of the intended all-ones
/// mask — in release builds). Every "all VC slots" / "last mask word"
/// computation in the kernel funnels through this helper so radix or VC
/// growth can never silently hit that shift overflow.
///
/// # Panics
/// When `n > 64` — a caller asking for more than a `u64` holds is a logic
/// error (configs are validated to fit, see `SimConfig::validate`).
#[inline]
#[must_use]
pub fn low_bits(n: usize) -> u64 {
    assert!(n <= 64, "low_bits({n}): mask wider than u64");
    if n == 64 {
        !0
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::low_bits;

    #[test]
    fn low_bits_edge_cases() {
        assert_eq!(low_bits(0), 0);
        assert_eq!(low_bits(1), 1);
        assert_eq!(low_bits(5), 0b1_1111);
        assert_eq!(low_bits(63), u64::MAX >> 1);
        assert_eq!(low_bits(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "mask wider than u64")]
    fn low_bits_rejects_overwide_masks() {
        let _ = low_bits(65);
    }
}
