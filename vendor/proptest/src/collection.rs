//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;

pub struct VecStrategy<S> {
    elem: S,
    len: std::ops::Range<usize>,
}

/// `Vec` of values from `elem`, with a length drawn uniformly from `len`.
/// Taking a concrete `Range<usize>` (rather than a generic length strategy)
/// lets integer literals like `1..40` infer `usize` at the call site.
pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = vec((0u16..64, 0u16..64), 1usize..40);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((1..40).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 64 && b < 64));
        }
    }
}
