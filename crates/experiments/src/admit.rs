//! `repro admit` — the static QoS admission pipeline over the
//! scheme × routing × region matrix of one topology.
//!
//! Each cell runs the kernel's admission pipeline
//! ([`noc_sim::admit::admit_network_cached`]: progress/starvation-freedom
//! of the priority machinery + region non-interference of the VC
//! steering) and appends the experiments-layer **bandwidth feasibility**
//! property built on the analytical model's per-flow link-load map
//! ([`model::link_load_map`]): a channel whose predicted utilization
//! exceeds 1.0 flit/cycle is physically over-subscribed (rejected); one
//! above its calibrated efficiency but below 1.0 is feasible only past
//! the saturation knee (admitted with a warning).
//!
//! Feasibility lives here rather than in `noc-sim` because it needs the
//! `model` crate (which depends on `noc-sim`) and the wall clock (the
//! kernel crates are under the wall-clock lint); per-cell analysis cost
//! is stamped into the row by this driver.

use metrics::Table;
use model::RoutingKind;
use noc_sim::admit::{
    admit_network_cached, Admission, AdmitVerdict, AdmitWitness, PropertyReport, PROP_FEASIBILITY,
};
use noc_sim::config::SimConfig;
use noc_sim::region::RegionMap;
use noc_sim::topology::TopologyKind;
use noc_sim::vc::VcTag;
use rair::scheme::{Routing, Scheme};
use std::time::Instant;
use traffic::scenario::AppSpec;

/// Canonical per-app offered load (flits/cycle/node) of the matrix's
/// feasibility check: well inside every topology's capacity, so the
/// shipped matrix is feasible everywhere and any warning or rejection is
/// a config defect, not a workload artifact.
pub const MATRIX_RATE: f64 = 0.05;

/// One admitted (or refuted) cell of the matrix.
pub struct AdmitRow {
    pub topology: &'static str,
    pub region: &'static str,
    pub routing: &'static str,
    pub scheme: String,
    /// Aggregate verdict label: `admit`, `warn` or `reject`.
    pub verdict: &'static str,
    /// Static native head-flit wait bound (cycles), when proven.
    pub wait_bound: Option<u64>,
    /// States explored / routers visited / links checked, summed over
    /// the properties.
    pub states: u64,
    /// Wall-clock analysis cost of the whole cell, stamped here (the
    /// kernel reports no wall time — it is under the wall-clock lint).
    pub micros: u64,
    /// First rejecting or warning property with its witness, if any.
    pub defect: Option<String>,
}

/// The seven shipped schemes (the golden/Table-1 matrix). The
/// `RAIR_ForeignH` priority inversion is deliberately absent — it is the
/// pinned negative of [`negative_battery`].
fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::RoRr,
        Scheme::RoAge,
        Scheme::ro_rank(vec![0.1, 0.9]),
        Scheme::ro_rank_online(6),
        Scheme::rair(),
        Scheme::rair_va_only(),
        Scheme::rair_native_high(),
    ]
}

const ROUTINGS: [Routing; 3] = [Routing::Xy, Routing::Local, Routing::Dbar];

/// The analytical routing abstraction matching a simulated routing choice.
fn routing_kind(routing: Routing) -> RoutingKind {
    match routing {
        Routing::Xy => RoutingKind::DimensionOrder,
        Routing::Local | Routing::Dbar => RoutingKind::Adaptive,
    }
}

/// Bandwidth feasibility of the operating point `specs` on
/// `cfg` × `region` × `routing`: flag the worst channel of the model's
/// link-load map. `rho > 1` ⇒ reject (physically over-subscribed);
/// `capacity < rho ≤ 1` ⇒ warn (past the calibrated saturation knee);
/// otherwise admit.
pub fn check_feasibility(
    cfg: &SimConfig,
    region: &RegionMap,
    specs: &[Option<AppSpec>],
    routing: Routing,
) -> PropertyReport {
    let t0 = Instant::now();
    let loads = model::link_load_map(cfg, region, specs, routing_kind(routing));
    let links = loads.len() as u64;
    let report = |verdict, detail, witness| PropertyReport {
        property: PROP_FEASIBILITY,
        verdict,
        detail,
        witness,
        states: links,
        micros: t0.elapsed().as_micros() as u64,
        wait_bound: None,
    };
    let worst = loads.iter().max_by(|a, b| {
        (a.rho_total() - a.capacity)
            .partial_cmp(&(b.rho_total() - b.capacity))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let Some(w) = worst else {
        return report(
            AdmitVerdict::Admit,
            "no offered traffic: feasibility is vacuous".to_string(),
            None,
        );
    };
    let (rho, link) = (w.rho_total(), w.link.to_string());
    let witness = AdmitWitness::Overload {
        link: link.clone(),
        offered: rho,
        capacity: w.capacity,
    };
    if rho > 1.0 {
        report(
            AdmitVerdict::Reject,
            format!(
                "channel {link} is over-subscribed: offered load {rho:.3} flits/cycle \
                 exceeds physical capacity 1.0 ({links} channels checked)"
            ),
            Some(witness),
        )
    } else if rho > w.capacity {
        report(
            AdmitVerdict::Warn,
            format!(
                "channel {link} is past its calibrated saturation knee: offered load \
                 {rho:.3} > efficiency {:.2} ({links} channels checked)",
                w.capacity
            ),
            Some(witness),
        )
    } else {
        report(
            AdmitVerdict::Admit,
            format!(
                "all {links} channels within calibrated capacity \
                 (worst: {link} at {rho:.3} of {:.2})",
                w.capacity
            ),
            None,
        )
    }
}

/// Full admission of one cell: kernel properties (cached) + feasibility.
pub fn admit_cell(
    cfg: &SimConfig,
    region: &RegionMap,
    scheme: &Scheme,
    routing: Routing,
    specs: &[Option<AppSpec>],
) -> Admission {
    let alg = routing.build();
    let mut adm = admit_network_cached(cfg, region, alg.as_ref(), &scheme.automaton());
    adm.properties
        .push(check_feasibility(cfg, region, specs, routing));
    adm
}

/// Run the shipped scheme × routing × region matrix on the canonical
/// config of `kind` ([`SimConfig::table1_topology`]).
pub fn run_matrix_for(kind: TopologyKind) -> Vec<AdmitRow> {
    let cfg = SimConfig::table1_topology(kind);
    let mut rows = Vec::new();
    for (rname, region) in crate::verify_config::regions(&cfg) {
        let specs: Vec<Option<AppSpec>> = (0..region.num_apps())
            .map(|_| Some(AppSpec::intra_only(MATRIX_RATE)))
            .collect();
        for routing in ROUTINGS {
            for scheme in schemes() {
                let t0 = Instant::now();
                let adm = admit_cell(&cfg, &region, &scheme, routing, &specs);
                rows.push(row(kind.label(), rname, routing.label(), &adm, t0));
            }
        }
    }
    rows
}

fn row(
    topology: &'static str,
    region: &'static str,
    routing: &'static str,
    adm: &Admission,
    t0: Instant,
) -> AdmitRow {
    let defect = adm
        .properties
        .iter()
        .find(|p| p.verdict != AdmitVerdict::Admit)
        .map(|p| match &p.witness {
            Some(w) => format!("{}: {} [{}]", p.property, p.detail, w),
            None => format!("{}: {}", p.property, p.detail),
        });
    AdmitRow {
        topology,
        region,
        routing,
        scheme: adm.scheme.clone(),
        verdict: adm.verdict().label(),
        wait_bound: adm.wait_bound(),
        states: adm.properties.iter().map(|p| p.states).sum(),
        micros: t0.elapsed().as_micros() as u64,
        defect,
    }
}

/// Render the matrix as a report table.
pub fn table(rows: &[AdmitRow]) -> Table {
    let mut t = Table::new(
        "Static admission — progress + non-interference + bandwidth feasibility",
        &[
            "topology",
            "region",
            "routing",
            "scheme",
            "verdict",
            "wait bound",
            "states",
            "µs",
        ],
    );
    for r in rows {
        t.row(vec![
            r.topology.to_string(),
            r.region.to_string(),
            r.routing.to_string(),
            r.scheme.clone(),
            r.verdict.to_string(),
            r.wait_bound
                .map_or_else(|| "-".to_string(), |b| b.to_string()),
            r.states.to_string(),
            r.micros.to_string(),
        ]);
    }
    t
}

/// Serialize the matrix as JSON (hand-rolled — the vendored serde is a
/// stub).
pub fn to_json(rows: &[AdmitRow]) -> String {
    let mut out = String::from("{\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"topology\": \"{}\", \"region\": \"{}\", \"routing\": \"{}\", \
             \"scheme\": \"{}\", \"verdict\": \"{}\", \"wait_bound\": {}, \
             \"states\": {}, \"micros\": {}, \"defect\": {}}}{}\n",
            r.topology,
            r.region,
            r.routing,
            r.scheme,
            r.verdict,
            r.wait_bound
                .map_or_else(|| "null".to_string(), |b| b.to_string()),
            r.states,
            r.micros,
            r.defect.as_ref().map_or_else(
                || "null".to_string(),
                |d| format!("\"{}\"", d.replace('\\', "\\\\").replace('"', "\\\""))
            ),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One deliberately broken configuration and the pipeline's verdict.
pub struct AdmitNegative {
    pub name: &'static str,
    /// Did the pipeline reject it (as it must)?
    pub rejected: bool,
    /// The property that refuted it.
    pub property: String,
    /// The concrete witness (lasso trace, taint path or overloaded link).
    pub witness: String,
}

/// A two-app region whose app-0 territory is non-convex, so app-0
/// minimal paths transit app-1 routers — the geometry that makes
/// non-interference falsifiable. Rectangles are vacuously safe on the
/// mesh (minimal paths stay in the bounding box), hence the L-shape; the
/// 1-D ring gets alternating quarters instead.
fn nonconvex_region(cfg: &SimConfig) -> RegionMap {
    if cfg.height == 1 {
        let seg = (cfg.width / 4).max(1);
        RegionMap::from_fn(cfg, 2, move |c| u8::from((c.x / seg) % 2 == 1))
    } else {
        let (hx, hy) = (cfg.width / 2, cfg.height / 2);
        RegionMap::from_fn(cfg, 2, move |c| u8::from(c.x >= hx && c.y >= hy))
    }
}

/// Run the injected-fault battery on the canonical config of `kind`.
/// Every case must come back `rejected` with the named property and a
/// concrete witness.
pub fn negative_battery(kind: TopologyKind) -> Vec<AdmitNegative> {
    let cfg = SimConfig::table1_topology(kind);
    let mut cases = Vec::new();

    // 1. The pinned priority inversion: foreign traffic permanently HIGH
    //    at every MSP stage — a native request at a contested point can
    //    lose every future arbitration (a lasso through ¬W).
    let halves = RegionMap::halves(&cfg);
    let specs = vec![Some(AppSpec::intra_only(MATRIX_RATE)); halves.num_apps()];
    let adm = admit_cell(
        &cfg,
        &halves,
        &Scheme::rair_foreign_high(),
        Routing::Local,
        &specs,
    );
    cases.push(negative("priority-inversion", &adm));

    // 2. Inverted VC steering: foreign traffic preferring the
    //    native-reserved *regional* VCs, on a non-convex region map whose
    //    app-0 minimal paths transit app-1 territory — the taint walk
    //    must extract a concrete foreign-into-regional channel path.
    let mut auto = Scheme::rair().automaton();
    auto.name = "RAIR_InvertedSteering".to_string();
    auto.foreign_pref = Some(VcTag::Regional);
    let region = nonconvex_region(&cfg);
    let alg = Routing::Xy.build();
    let adm = Admission {
        scheme: auto.name.clone(),
        properties: vec![
            noc_sim::admit::check_progress(&cfg, &auto),
            noc_sim::admit::check_non_interference(&cfg, &region, alg.as_ref(), &auto),
        ],
    };
    cases.push(negative("inverted-steering", &adm));

    // 3. An over-subscribed region: app 0 offers 1.5 flits/cycle/node —
    //    beyond the physical capacity of its own injection channels.
    let specs = vec![
        Some(AppSpec::intra_only(1.5)),
        Some(AppSpec::intra_only(MATRIX_RATE)),
    ];
    let adm = admit_cell(&cfg, &halves, &Scheme::rair(), Routing::Local, &specs);
    cases.push(negative("over-subscribed-region", &adm));

    cases
}

fn negative(name: &'static str, adm: &Admission) -> AdmitNegative {
    let rej = adm.rejection();
    AdmitNegative {
        name,
        rejected: adm.verdict() == AdmitVerdict::Reject && rej.is_some_and(|p| p.witness.is_some()),
        property: rej.map(|p| p.property.to_string()).unwrap_or_default(),
        witness: rej
            .and_then(|p| p.witness.as_ref())
            .map(std::string::ToString::to_string)
            .unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::admit::{PROP_NON_INTERFERENCE, PROP_PROGRESS};

    #[test]
    fn mesh_matrix_admits_every_shipped_cell() {
        let rows = run_matrix_for(TopologyKind::Mesh);
        assert_eq!(rows.len(), 4 * 3 * 7);
        for r in &rows {
            assert_eq!(
                r.verdict, "admit",
                "{}/{}/{}: {:?}",
                r.region, r.routing, r.scheme, r.defect
            );
            assert!(r.defect.is_none(), "{:?}", r.defect);
        }
        // Round-robin and RAIR schemes carry a proven wait bound.
        assert!(rows.iter().all(|r| r.wait_bound.is_some()));
    }

    #[test]
    fn per_topology_matrices_admit_everything() {
        for kind in [
            TopologyKind::Torus,
            TopologyKind::Ring,
            TopologyKind::CMesh { concentration: 4 },
        ] {
            for r in run_matrix_for(kind) {
                assert_eq!(
                    r.verdict,
                    "admit",
                    "{} {}/{}/{}: {:?}",
                    kind.label(),
                    r.region,
                    r.routing,
                    r.scheme,
                    r.defect
                );
            }
        }
    }

    #[test]
    fn negative_battery_rejects_each_case_with_named_property() {
        for kind in [
            TopologyKind::Mesh,
            TopologyKind::Torus,
            TopologyKind::Ring,
            TopologyKind::CMesh { concentration: 4 },
        ] {
            let cases = negative_battery(kind);
            assert_eq!(cases.len(), 3, "{}", kind.label());
            for c in &cases {
                assert!(c.rejected, "{} not rejected on {}", c.name, kind.label());
                assert!(!c.witness.is_empty(), "{} has no witness", c.name);
            }
            assert_eq!(cases[0].property, PROP_PROGRESS);
            assert_eq!(cases[1].property, PROP_NON_INTERFERENCE);
            assert_eq!(cases[2].property, PROP_FEASIBILITY);
        }
    }

    #[test]
    fn feasibility_warns_between_knee_and_capacity() {
        let cfg = SimConfig::table1();
        let region = RegionMap::halves(&cfg);
        // 0.35 flits/cycle/node aggregates to ~0.89 on the worst interior
        // hop channel: below physical capacity 1.0 but past the 0.75
        // calibrated saturation efficiency.
        let specs = vec![
            Some(AppSpec::intra_only(0.35)),
            Some(AppSpec::intra_only(MATRIX_RATE)),
        ];
        let rep = check_feasibility(&cfg, &region, &specs, Routing::Local);
        assert_eq!(rep.verdict, AdmitVerdict::Warn, "{}", rep.detail);
        assert!(matches!(
            rep.witness,
            Some(AdmitWitness::Overload { offered, capacity, .. })
                if offered <= 1.0 && offered > capacity
        ));
        // A warned cell is still admitted (not rejected).
        let adm = admit_cell(&cfg, &region, &Scheme::rair(), Routing::Local, &specs);
        assert!(adm.is_admitted());
        assert_eq!(adm.verdict(), AdmitVerdict::Warn);
    }

    #[test]
    fn json_is_balanced_and_labelled() {
        let j = to_json(&run_matrix_for(TopologyKind::Ring));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"topology\": \"ring\""));
        assert!(j.contains("\"verdict\": \"admit\""));
    }
}
