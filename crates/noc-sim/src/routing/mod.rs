//! Routing algorithms.
//!
//! All algorithms are *minimal* and deadlock-free per Duato's theory:
//! packets may adaptively use any productive direction on the adaptive
//! VCs, and can always fall back to the escape VCs that run
//! dimension-order routing — an acyclic sub-network on every supported
//! topology (with dateline escape lanes on torus/ring; see
//! [`crate::topology`]).
//!
//! The pieces:
//! * [`RoutingAlgorithm::adaptive_ports`] — the productive output ports a
//!   packet may take adaptively (route computation, RC stage), from
//!   [`crate::topology::productive_ports`].
//! * [`crate::topology::escape_hop`] — the dimension-order escape port
//!   and lane (shared by all algorithms; it is the escape path).
//!   [`escape_port`] remains as the mesh-specific XY function the fault
//!   subsystem's detour logic builds on.
//! * [`RoutingAlgorithm::select`] — the selection function choosing among
//!   candidate ports; this is where local-adaptive and DBAR differ, and
//!   where DBAR's region-aware truncation of congestion information lives.

mod dbar;
mod duato;
mod xy;

pub use dbar::DbarAdaptive;
pub use duato::DuatoLocalAdaptive;
pub use xy::XyRouting;

use crate::config::SimConfig;
use crate::ids::{Coord, Port, PORT_EAST, PORT_LOCAL, PORT_NORTH, PORT_SOUTH, PORT_WEST};
use crate::region::RegionMap;
use crate::router::Router;

/// Context handed to the selection function each time a head flit picks an
/// output port.
pub struct SelectCtx<'a> {
    pub cfg: &'a SimConfig,
    /// The router doing the selection (local credit/occupancy info).
    pub router: &'a Router,
    /// Packet destination.
    pub dst: Coord,
    /// Region layout (DBAR truncates congestion info at region boundaries).
    pub region: &'a RegionMap,
    /// Previous-cycle adaptive-VC occupancy of every router, indexed by
    /// router index — the idealized stand-in for DBAR's dedicated
    /// congestion wiring (one-cycle-old global view).
    pub congestion: &'a [u16],
}

/// A minimal routing algorithm.
pub trait RoutingAlgorithm: Send + Sync {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Productive output ports usable on adaptive VCs, up to one per
    /// dimension. Must be minimal under the topology's distance (every
    /// returned port reduces [`crate::topology::distance`]).
    /// `cur != dst` is guaranteed by the caller.
    fn adaptive_ports(&self, cfg: &SimConfig, cur: Coord, dst: Coord) -> [Option<Port>; 2];

    /// Choose among `cands` (a non-empty subset of the adaptive ports, each
    /// known to have an allocatable adaptive VC). Returns an index into
    /// `cands`.
    fn select(&self, ctx: &SelectCtx<'_>, cands: &[Port]) -> usize;

    /// Pure, state-independent enumeration of the routing function at
    /// `(cur, dst)`: every output port a packet may legally occupy a VC on,
    /// split by VC class. The static verifier ([`crate::verify`]) builds
    /// the channel dependency graph from this; it must describe exactly
    /// the port/VC-class pairs the RC/VA stages legalize at runtime. The
    /// default mirrors the kernel: the algorithm's adaptive ports on
    /// adaptive VCs plus the topology's dimension-order escape hop (port
    /// and lane) on the escape VCs.
    /// `cur != dst` is guaranteed by the caller.
    fn next_hops(&self, cfg: &SimConfig, cur: Coord, dst: Coord) -> NextHops {
        let (escape, escape_lane) = crate::topology::escape_hop(cfg, cur, dst);
        NextHops {
            adaptive: self.adaptive_ports(cfg, cur, dst),
            escape,
            escape_lane,
        }
    }
}

/// The statically-enumerated legal hops at one `(cur, dst)` point — see
/// [`RoutingAlgorithm::next_hops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextHops {
    /// Ports usable on adaptive VCs (up to one per dimension).
    pub adaptive: [Option<Port>; 2],
    /// The port usable on the per-class escape VCs.
    pub escape: Port,
    /// The escape lane a packet entering an escape VC here must ride
    /// (always 0 on non-wrapping topologies).
    pub escape_lane: u8,
}

/// Dimension-order (XY) port toward `dst` on a *non-wrapping* (mesh)
/// topology: exhaust X offset first, then Y. This is the mesh escape
/// path (the fault subsystem's detour functions are built on it);
/// topology-generic callers use [`crate::topology::escape_hop`].
/// Returns `PORT_LOCAL` when `cur == dst`.
#[inline]
pub fn escape_port(cur: Coord, dst: Coord) -> Port {
    if dst.x > cur.x {
        PORT_EAST
    } else if dst.x < cur.x {
        PORT_WEST
    } else if dst.y > cur.y {
        PORT_SOUTH
    } else if dst.y < cur.y {
        PORT_NORTH
    } else {
        PORT_LOCAL
    }
}

/// The (up to two) minimal productive directions from `cur` to `dst` on
/// a *non-wrapping* (mesh) topology; topology-generic callers use
/// [`crate::topology::productive_ports`].
#[inline]
pub fn productive_ports(cur: Coord, dst: Coord) -> [Option<Port>; 2] {
    let xp = if dst.x > cur.x {
        Some(PORT_EAST)
    } else if dst.x < cur.x {
        Some(PORT_WEST)
    } else {
        None
    };
    let yp = if dst.y > cur.y {
        Some(PORT_SOUTH)
    } else if dst.y < cur.y {
        Some(PORT_NORTH)
    } else {
        None
    };
    [xp, yp]
}

/// Sum of free credits over the adaptive VCs of output port `p` — the
/// canonical local congestion estimate ("# of free VCs" \[3\]).
pub fn free_adaptive_credits(cfg: &SimConfig, router: &Router, p: Port) -> usize {
    cfg.adaptive_vc_range()
        .map(|vc| {
            if router.out_alloc[p][vc].is_none() {
                router.credits[p][vc]
            } else {
                0
            }
        })
        .sum()
}

/// Step one hop from `c` through output port `p` on a *non-wrapping*
/// mesh (must be in-bounds; callers guarantee productivity).
/// Topology-generic callers use [`crate::topology::step`], which wraps.
#[inline]
pub fn step(c: Coord, p: Port) -> Coord {
    match p {
        PORT_NORTH => Coord { x: c.x, y: c.y - 1 },
        PORT_SOUTH => Coord { x: c.x, y: c.y + 1 },
        PORT_EAST => Coord { x: c.x + 1, y: c.y },
        PORT_WEST => Coord { x: c.x - 1, y: c.y },
        _ => panic!("step() through non-mesh port"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: u8, y: u8) -> Coord {
        Coord { x, y }
    }

    #[test]
    fn escape_is_x_first() {
        assert_eq!(escape_port(c(0, 0), c(3, 3)), PORT_EAST);
        assert_eq!(escape_port(c(3, 0), c(3, 3)), PORT_SOUTH);
        assert_eq!(escape_port(c(3, 3), c(0, 3)), PORT_WEST);
        assert_eq!(escape_port(c(3, 3), c(3, 0)), PORT_NORTH);
        assert_eq!(escape_port(c(2, 2), c(2, 2)), PORT_LOCAL);
    }

    #[test]
    fn productive_ports_cover_quadrants() {
        assert_eq!(
            productive_ports(c(2, 2), c(5, 7)),
            [Some(PORT_EAST), Some(PORT_SOUTH)]
        );
        assert_eq!(
            productive_ports(c(2, 2), c(0, 0)),
            [Some(PORT_WEST), Some(PORT_NORTH)]
        );
        assert_eq!(productive_ports(c(2, 2), c(2, 7)), [None, Some(PORT_SOUTH)]);
        assert_eq!(productive_ports(c(2, 2), c(7, 2)), [Some(PORT_EAST), None]);
    }

    #[test]
    fn every_productive_port_reduces_distance() {
        for sx in 0..8 {
            for sy in 0..8 {
                for dx in 0..8 {
                    for dy in 0..8 {
                        let (s, d) = (c(sx, sy), c(dx, dy));
                        if s == d {
                            continue;
                        }
                        for p in productive_ports(s, d).into_iter().flatten() {
                            assert_eq!(step(s, p).hops_to(d) + 1, s.hops_to(d));
                        }
                        let e = escape_port(s, d);
                        assert_eq!(step(s, e).hops_to(d) + 1, s.hops_to(d));
                    }
                }
            }
        }
    }
}
