//! Offline vendored subset of `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the API the `bench`
//! crate uses: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function(|b| b.iter(..))`, `criterion_group!`/`criterion_main!`
//! and `black_box`. No statistics beyond mean/min/max, no HTML reports —
//! results print as `group/name  mean ±(min..max)` per line.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run `f` for `sample_size` timed samples (one iteration per sample
    /// after one untimed warm-up) and print the timings.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            warmed: false,
        };
        for _ in 0..self.sample_size + 1 {
            f(&mut b);
        }
        let mean = b.samples.iter().sum::<Duration>() / b.samples.len().max(1) as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{:<28} mean {:>12?}  (min {:?} .. max {:?}, n={})",
            self.name,
            id,
            mean,
            min,
            max,
            b.samples.len()
        );
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    warmed: bool,
}

impl Bencher {
    /// Time one execution of `routine` (the first call per bench function
    /// is discarded as warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        let dt = start.elapsed();
        if self.warmed {
            self.samples.push(dt);
        } else {
            self.warmed = true;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_sample_size_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut runs = 0u32;
        g.sample_size(5).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // warm-up + 5 samples
        assert_eq!(runs, 6);
    }
}
