//! Microbenchmarks of the simulator substrate itself: per-cycle cost of an
//! idle mesh, a saturated mesh, and the Table 1 configuration check.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figs::table1;
use noc_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

struct Flood {
    rate: f64,
}

impl TrafficSource for Flood {
    fn num_apps(&self) -> usize {
        1
    }
    fn generate(&mut self, node: NodeId, _cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        if !rng.random_bool(self.rate) {
            return None;
        }
        let mut dst = rng.random_range(0..63u16);
        if dst >= node {
            dst += 1;
        }
        Some(NewPacket {
            dst,
            app: 0,
            class: 0,
            size: 5,
            reply: None,
        })
    }
}

fn micro(c: &mut Criterion) {
    eprintln!("{}", table1::table().render());

    let mut g = c.benchmark_group("router_micro");
    g.sample_size(20);
    g.bench_function("idle_1k_cycles", |b| {
        b.iter(|| {
            let cfg = SimConfig::table1();
            let mut net = Network::new(
                cfg,
                RegionMap::single(&SimConfig::table1()),
                Box::new(DuatoLocalAdaptive),
                Box::new(RoundRobin),
                Box::new(NoTraffic),
                1,
            );
            net.run(1_000);
            net.cycle()
        })
    });
    g.bench_function("saturated_1k_cycles", |b| {
        b.iter(|| {
            let cfg = SimConfig::table1();
            let mut net = Network::new(
                cfg,
                RegionMap::single(&SimConfig::table1()),
                Box::new(DuatoLocalAdaptive),
                Box::new(RoundRobin),
                Box::new(Flood { rate: 0.3 }),
                1,
            );
            net.run(1_000);
            net.stats.recorder.delivered()
        })
    });
    g.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
