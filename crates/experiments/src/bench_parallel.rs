//! `repro bench-parallel` — sharded tick-engine scaling benchmark.
//!
//! Times the sharded parallel engine at shard counts 1/2/4/8 on a 16×16
//! mesh (4× the Table 1 router count, where band parallelism has room to
//! pay off) under identical replayed traffic, asserts every shard count
//! produces the bit-identical [`SimStats::digest`], and writes the scaling
//! trajectory to `BENCH_parallel.json`.
//!
//! Speedups are reported honestly against the measured 1-shard run *on
//! this host*: the JSON records `host_parallelism` so a reader can tell a
//! single-core container (where the coordinator/worker hand-off is pure
//! overhead and speedup ≤ 1 is expected) from a real multi-core run.
//!
//! [`SimStats::digest`]: noc_sim::stats::SimStats::digest

use crate::bench_kernel::NOMINAL_SAT;
use crate::runner::ExpConfig;
use crate::sweep::build_network;
use metrics::Table;
use noc_sim::config::SimConfig;
use rair::scheme::{Routing, Scheme};
use std::time::Instant;
use traffic::scenario::two_app;
use traffic::trace::{Trace, TraceReplay};

/// Shard counts swept per cell; 1 is the scalar baseline.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One (scheme, routing, load, shards) timing cell.
#[derive(Debug, Clone)]
pub struct ParRow {
    pub scheme: String,
    pub routing: &'static str,
    /// Offered load as a percentage of [`NOMINAL_SAT`].
    pub load_pct: u32,
    /// Requested shard count.
    pub shards: usize,
    /// Simulated cycles (warmup + measurement).
    pub cycles: u64,
    /// Simulated cycles per wall second.
    pub ticks_per_sec: f64,
    /// `ticks_per_sec / (1-shard ticks_per_sec)` for the same cell.
    pub speedup_vs_scalar: f64,
    /// The (identical at every shard count) stats digest.
    pub digest: u64,
}

/// Worker threads the host can actually run in parallel.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Run the scaling matrix on a 16×16 mesh. Panics if any shard count's
/// digest diverges from the scalar baseline — the bench doubles as a
/// determinism check on real workloads.
pub fn run(ec: &ExpConfig) -> Vec<ParRow> {
    let mut cfg = SimConfig::table1();
    cfg.width = 16;
    cfg.height = 16;
    let cycles: u64 = if ec.quick { 4_000 } else { 20_000 };
    let warmup = cycles / 5;
    let measure = cycles - warmup;
    let cells = [(Scheme::RoRr, Routing::Xy), (Scheme::rair(), Routing::Dbar)];
    let mut rows = Vec::new();

    for load_pct in [5u32, 30] {
        let rate = NOMINAL_SAT * load_pct as f64 / 100.0;
        let (region, scenario) = two_app(&cfg, 0.3, rate, rate);
        // One trace per load point: every cell and shard count replays the
        // identical offered traffic.
        let trace = Trace::capture(scenario, cfg.num_nodes() as u16, cycles, ec.seed);
        for (scheme, routing) in &cells {
            let mut scalar_tps = 0.0;
            let mut scalar_digest = 0;
            for shards in SHARD_COUNTS {
                let mut shard_cfg = cfg.clone();
                shard_cfg.shards = shards;
                let replay = TraceReplay::new(&trace, cfg.num_nodes() as u16);
                let mut net = build_network(
                    &shard_cfg,
                    &region,
                    scheme,
                    *routing,
                    Box::new(replay),
                    ec.seed,
                );
                let t0 = Instant::now();
                net.run_warmup_measure(warmup, measure);
                let dt = t0.elapsed().as_secs_f64().max(1e-9);
                let tps = cycles as f64 / dt;
                let digest = net.stats.digest();
                if shards == 1 {
                    scalar_tps = tps;
                    scalar_digest = digest;
                } else {
                    assert_eq!(
                        digest,
                        scalar_digest,
                        "sharded digest diverged: {} / {} at {load_pct}% with {shards} shards",
                        scheme.label(),
                        routing.label(),
                    );
                }
                rows.push(ParRow {
                    scheme: scheme.label(),
                    routing: routing.label(),
                    load_pct,
                    shards,
                    cycles,
                    ticks_per_sec: tps,
                    speedup_vs_scalar: tps / scalar_tps,
                    digest,
                });
            }
        }
    }
    rows
}

/// Render the matrix as a report table.
pub fn table(rows: &[ParRow]) -> Table {
    let mut t = Table::new(
        format!(
            "Sharded engine scaling — 16x16 mesh, digest-checked \
             (host parallelism: {})",
            host_parallelism()
        ),
        &[
            "scheme", "routing", "load%", "shards", "cycles/s", "speedup", "digest",
        ],
    );
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            r.routing.to_string(),
            r.load_pct.to_string(),
            r.shards.to_string(),
            format!("{:.0}", r.ticks_per_sec),
            format!("{:.2}x", r.speedup_vs_scalar),
            format!("{:016x}", r.digest),
        ]);
    }
    t
}

/// Serialize the rows as JSON (hand-rolled — the vendored serde is a stub).
pub fn to_json(rows: &[ParRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        host_parallelism()
    ));
    out.push_str(&format!(
        "  \"nominal_sat_flits_per_cycle_node\": {NOMINAL_SAT},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"routing\": \"{}\", \"load_pct\": {}, \
             \"shards\": {}, \"cycles\": {}, \"ticks_per_sec\": {:.1}, \
             \"speedup_vs_scalar\": {:.3}, \"digest\": \"{:016x}\"}}{}\n",
            r.scheme,
            r.routing,
            r.load_pct,
            r.shards,
            r.cycles,
            r.ticks_per_sec,
            r.speedup_vs_scalar,
            r.digest,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> ParRow {
        ParRow {
            scheme: "RAIR".into(),
            routing: "DBAR",
            load_pct: 30,
            shards: 4,
            cycles: 4000,
            ticks_per_sec: 1234.5,
            speedup_vs_scalar: 0.876,
            digest: 0xfeed,
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = to_json(&[row()]);
        assert!(j.contains("\"host_parallelism\""));
        assert!(j.contains("\"shards\": 4"));
        assert!(j.contains("\"speedup_vs_scalar\": 0.876"));
        assert!(j.contains("\"digest\": \"000000000000feed\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn table_has_row_per_cell() {
        assert_eq!(table(&vec![row(); 5]).num_rows(), 5);
    }
}
