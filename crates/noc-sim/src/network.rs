//! The network: owns all routers and NIs and drives the router pipeline.
//!
//! ## Cycle model
//!
//! Each [`Network::tick`] executes the pipeline phases in reverse-dataflow
//! order so that every stage has exactly one cycle of latency:
//!
//! 1. **LT/BW** — flits sent last cycle are written into downstream input
//!    buffers; credits sent last cycle are returned; ejected flits are
//!    consumed by the NIs (latency recording, reply scheduling).
//! 2. **SA (+ST)** — switch allocation: SA_in picks one VC per input port,
//!    SA_out one input port per output port; winners traverse the crossbar
//!    into the output link registers.
//! 3. **VA** — VC allocation: VA_in (routing selection, no contention) then
//!    VA_out (one winner per output VC).
//! 4. **RC** — route computation for head flits at the front of idle VCs.
//! 5. **Injection** — NIs release ready replies, ask the traffic source for
//!    new packets and stream one flit per node into the local input port.
//! 6. **State update** — DPA occupancy registers and hysteresis priority
//!    (consumed starting next cycle — the paper's one-cycle delay), and the
//!    congestion view exported to adaptive routing.
//!
//! A head flit arriving at cycle *t* thus departs at *t+3* when uncontended
//! (RC at *t*, VA at *t+1*, SA/ST at *t+2*, LT lands it downstream at *t+3*),
//! a 3-stage router plus single-cycle links.
//!
//! ## Active-set fast path
//!
//! Every RC/VA/SA candidate lives in an *occupied* input VC, and occupancy
//! changes at exactly two points: a head flit written into an empty idle VC
//! (arrival or injection) and a tail flit departing through the crossbar.
//! The network maintains, incrementally at those points, a per-router
//! occupancy summary ([`Router::occ_port`]/[`Router::occ_vcs`]) and a
//! network-wide bitmask of non-empty routers; the SA, VA and RC phases then
//! visit only active routers (ascending, the exhaustive-scan order), and the
//! end-of-cycle state update skips routers whose inputs did not change
//! (unless analysis is on or the policy's update is not idempotent). A
//! skipped router contributes no candidates and mutates no arbiter pointer,
//! so the fast path is bit-identical to the exhaustive scan — enforced by a
//! debug-build self-check each cycle and the [`set_force_exhaustive`]
//! diagnostic switch ([`SimStats::router_cycles_skipped`] and
//! [`SimStats::state_updates_skipped`] count the elided work).
//!
//! ## Idle fast-forward
//!
//! When the active set is empty, nothing is in flight on links or in
//! ejection/credit registers, every NI queue is empty and the traffic source
//! can promise its next injection cycle ([`TrafficSource::next_injection_cycle`]),
//! a `tick()` is a provable no-op: no phase has a candidate, no state-update
//! runs (all routers clean) and the source draws no randomness. [`Network::run`]
//! then jumps the clock straight to the next event — the earliest of the
//! next injection, the next ready reply and the end of the run window —
//! replaying the oracle's end-of-cycle scans at every check-interval multiple
//! it jumps across, so the oracle observes the identical schedule.
//! [`SimStats::idle_cycles_skipped`] counts the elided cycles; results are
//! bit-identical to plain ticking (see `tests/fast_forward.rs`).
//!
//! [`set_force_exhaustive`]: Network::set_force_exhaustive
//! [`TrafficSource::next_injection_cycle`]: crate::source::TrafficSource::next_injection_cycle

use crate::analysis::{AnalysisState, JourneyEvent};
use crate::arbitration::{arbitrate_rr, ArbReq, ArbStage, PriorityPolicy};
use crate::bits::low_bits;
use crate::config::SimConfig;
use crate::fault::{
    DegradedMode, DegradedTable, Fault, FaultEvent, FaultState, MAX_SOURCE_RETRIES,
    RETRANSMIT_LATENCY, RETRY_BACKOFF_BASE, STRANDED_SCAN_INTERVAL,
};
use crate::flit::{Flit, FlitKind, PacketInfo};
use crate::ids::{
    opposite, AppId, Coord, MsgClass, NodeId, Port, NUM_PORTS, PORT_EAST, PORT_LOCAL, PORT_NORTH,
    PORT_SOUTH, PORT_WEST,
};
use crate::node::Node;
use crate::oracle::Oracle;
use crate::region::RegionMap;
use crate::router::Router;
use crate::routing::{RoutingAlgorithm, SelectCtx};
use crate::source::TrafficSource;
use crate::stats::SimStats;
use crate::vc::{VcState, VcTag};
use crate::verify::MAX_RECORDED_VIOLATIONS;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A flit in flight on a link, delivered at cycle `arrive` (the next cycle,
/// except under link-level retransmission delay — see `sa_phase`).
#[derive(Debug)]
pub(crate) struct InFlight {
    pub(crate) dst_router: usize,
    pub(crate) in_port: Port,
    pub(crate) vc: usize,
    pub(crate) arrive: u64,
    pub(crate) flit: Flit,
}

/// A VA_out request gathered during the shared (read-only) pass.
#[derive(Debug, Clone, Copy)]
pub(crate) struct VaReq {
    out_port: Port,
    out_vc: usize,
    in_port: Port,
    in_vc: usize,
    prio: u64,
}

/// An SA candidate gathered during the shared pass.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SaCand {
    in_port: Port,
    in_vc: usize,
    out_port: Port,
    out_vc: usize,
    prio_in: u64,
    prio_out: u64,
}

/// A buffered oracle event emitted by a band-scoped pipeline phase.
///
/// The oracle is a single sequential observer, so parallel workers cannot
/// call it directly. Instead the band phases record their events here in
/// kernel emission order; the scalar wrappers replay them immediately after
/// each phase (preserving the historical call order exactly) and the
/// sharded coordinator replays each cycle's buffers in shard-index order —
/// one deterministic event sequence either way.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OracleNote {
    Arrival {
        router: NodeId,
        port: Port,
        vc: usize,
        flit: Flit,
    },
    Occupancy {
        router: NodeId,
        port: Port,
        vc: usize,
        occupied: bool,
    },
    Inject {
        app: AppId,
    },
}

/// Replay buffered oracle events against the oracle, in buffer order.
pub(crate) fn replay_notes(o: &mut Oracle, cfg: &SimConfig, notes: &[OracleNote], cycle: u64) {
    for n in notes {
        match *n {
            OracleNote::Arrival {
                router,
                port,
                vc,
                flit,
            } => o.note_arrival(cfg, router, port, vc, &flit, cycle),
            OracleNote::Occupancy {
                router,
                port,
                vc,
                occupied,
            } => o.note_occupancy(router, port, vc, occupied, cycle),
            OracleNote::Inject { app } => o.note_inject(app, cycle),
        }
    }
}

/// A reply the NI at `node` must schedule — the cross-thread form of
/// [`Node::schedule_reply`], produced by the (coordinator-side) ejection
/// consumer and applied by whichever thread owns the node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplySchedule {
    pub(crate) node: usize,
    pub(crate) ready: u64,
    pub(crate) id: u64,
    pub(crate) dst: NodeId,
    pub(crate) app: AppId,
    pub(crate) class: MsgClass,
    pub(crate) size: u32,
}

/// Deterministic-merge sink for the band-scoped pipeline phases.
///
/// The phases that emit cross-router traffic (SA) or global stat/oracle
/// effects (SA, injection) write them here instead of into the network, so
/// the same phase code serves both engines: the scalar wrappers drain the
/// sink into the network right after each phase, and the sharded workers
/// ship one sink per cycle to the coordinator, which merges them in
/// shard-index order.
#[derive(Debug, Default)]
pub(crate) struct PhaseOut {
    pub(crate) in_flight: Vec<InFlight>,
    pub(crate) eject: Vec<(usize, Flit)>,
    pub(crate) credit: Vec<(usize, Port, usize)>,
    /// Oracle events in kernel emission order (empty unless `record_notes`).
    pub(crate) notes: Vec<OracleNote>,
    /// Global indices of routers whose input occupancy changed during the
    /// phase. The mask owner marks these dirty and re-derives the active
    /// bit from the router's end-of-phase occupancy (equivalent to the
    /// former transition-time marking: set bits are only consumed between
    /// phases/ticks, and a phase never revisits a router).
    pub(crate) dirtied: Vec<u32>,
    /// A flit traversed a crossbar (drives the deadlock watchdog).
    pub(crate) progress: bool,
    pub(crate) injected_flits: u64,
    /// Per-app injected-packet counts (length = source app count).
    pub(crate) injected_packets: Vec<u64>,
    pub(crate) retransmitted: u64,
    pub(crate) router_cycles_skipped: u64,
    pub(crate) state_updates_skipped: u64,
    /// Buffer oracle events? (False when the oracle is disabled, keeping
    /// the disabled-oracle cost at a branch per event.)
    pub(crate) record_notes: bool,
}

impl PhaseOut {
    pub(crate) fn new(num_apps: usize, record_notes: bool) -> Self {
        Self {
            injected_packets: vec![0; num_apps],
            record_notes,
            ..Self::default()
        }
    }

    /// Clear everything for the next cycle, keeping allocations.
    pub(crate) fn reset(&mut self) {
        self.in_flight.clear();
        self.eject.clear();
        self.credit.clear();
        self.notes.clear();
        self.dirtied.clear();
        self.progress = false;
        self.injected_flits = 0;
        self.injected_packets.iter_mut().for_each(|c| *c = 0);
        self.retransmitted = 0;
        self.router_cycles_skipped = 0;
        self.state_updates_skipped = 0;
    }

    #[inline]
    fn note(&mut self, n: OracleNote) {
        if self.record_notes {
            self.notes.push(n);
        }
    }
}

/// The simulated network-on-chip.
pub struct Network {
    pub cfg: SimConfig,
    pub region: RegionMap,
    pub(crate) routing: Box<dyn RoutingAlgorithm>,
    pub(crate) policy: Box<dyn PriorityPolicy>,
    pub(crate) source: Box<dyn TrafficSource>,
    pub routers: Vec<Router>,
    pub nodes: Vec<Node>,
    pub(crate) cycle: u64,
    pub(crate) next_pkt_id: u64,
    pub(crate) in_flight: Vec<InFlight>,
    pub(crate) eject_q: Vec<(usize, Flit)>,
    pub(crate) credit_q: Vec<(usize, Port, usize)>,
    /// Previous-cycle adaptive occupancy per router (congestion view).
    pub(crate) congestion: Vec<u16>,
    /// Per-node traffic RNG streams, drawn from in node-id order by the
    /// injection phase (owned by the network, not the NIs, so the sharded
    /// coordinator can pre-generate packets without touching worker-owned
    /// nodes).
    pub(crate) rngs: Vec<SmallRng>,
    pub stats: SimStats,
    /// Optional analysis instrumentation (None = zero-overhead fast path).
    analysis: Option<AnalysisState>,
    /// Invariant oracle (`None` = disabled; the per-cycle cost of the
    /// disabled oracle is one null-check).
    pub(crate) oracle: Option<Box<Oracle>>,
    /// Fault injection (differential harness): routers whose switch
    /// allocator is frozen. `None` in any un-mutated network.
    fault_frozen: Option<Box<[bool]>>,
    /// Runtime fault-resilience state (link ARQ draw, dead topology,
    /// degraded routing, drop ledger). `None` ⇔ the configured
    /// [`FaultTimeline`](crate::fault::FaultTimeline) is empty, and then
    /// every fault mechanism is off-path (digests match the fault-free
    /// build).
    fault: Option<Box<FaultState>>,
    // Reusable scratch (perf: avoid per-cycle allocation).
    va_scratch: Vec<VaReq>,
    sa_scratch: Vec<SaCand>,
    /// Reusable sink the scalar phase wrappers drain after each phase.
    phase_out: PhaseOut,
    /// Reusable buffer for the packets generated this cycle.
    gen_scratch: Vec<(u32, PacketInfo)>,
    /// Active-set bitmask: bit `i` set ⇔ router `i` has at least one
    /// occupied input VC. Maintained at the occupancy transition points
    /// (head arrival/injection, tail departure). The phases consult the
    /// routers' own occupancy summaries directly; the mask feeds the idle
    /// fast-forward precondition and the public queries.
    pub(crate) active_mask: Vec<u64>,
    /// Dirty bitmask: bit `i` set ⇔ router `i`'s occupancy changed since its
    /// last state update — the network-level mirror of [`Router::occ_dirty`].
    /// Zeroed by the state-update phase; all-zero between ticks is a
    /// fast-forward precondition.
    pub(crate) dirty_mask: Vec<u64>,
    /// Diagnostic switch: iterate every router in every phase and never
    /// skip state updates. Must be bit-identical to the fast path.
    pub(crate) force_exhaustive: bool,
    /// Idle fast-forward switch (on by default; `set_fast_forward(false)`
    /// forces one `tick()` per cycle so tests can prove bit-identity).
    pub(crate) fast_forward: bool,
    /// Cached `policy.update_is_idempotent()` (fast-forward precondition:
    /// a non-idempotent policy mutates router state even on idle cycles).
    pub(crate) policy_idempotent: bool,
    /// Resolved shard count ([`SimConfig::resolve_shards`] at construction);
    /// see [`Network::effective_shards`] for what `run` actually uses.
    shards: usize,
}

impl Network {
    /// Build a network. `region.num_apps()` may be smaller than
    /// `source.num_apps()` (e.g. adversarial traffic has no region).
    pub fn new(
        cfg: SimConfig,
        region: RegionMap,
        routing: Box<dyn RoutingAlgorithm>,
        policy: Box<dyn PriorityPolicy>,
        source: Box<dyn TrafficSource>,
        seed: u64,
    ) -> Self {
        cfg.validate().expect("invalid SimConfig");
        assert_eq!(
            region.len(),
            cfg.num_nodes(),
            "region map size must match topology"
        );
        assert!(
            region.num_apps() <= source.num_apps(),
            "source must define at least as many apps as the region map"
        );
        let n = cfg.num_routers();
        let routers = (0..n)
            .map(|i| {
                // A router's native app is its base node's (concentrated
                // nodes at one router share a coordinate, hence a region).
                let base_node = (i * cfg.concentration()) as NodeId;
                Router::new(
                    &cfg,
                    i as NodeId,
                    cfg.router_coord(i),
                    region.app_of(base_node),
                )
            })
            .collect();
        let nodes = (0..cfg.num_nodes())
            .map(|i| Node::new(&cfg, i as NodeId))
            .collect();
        // One deterministic traffic RNG stream per node, keyed by node id
        // (splitmix-style odd multiplier decorrelates the per-node seeds).
        let rngs = (0..cfg.num_nodes())
            .map(|i| {
                SmallRng::seed_from_u64(seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1)))
            })
            .collect();
        let num_apps = source.num_apps();
        let oracle = cfg
            .oracle
            .resolve_enabled()
            .then(|| Box::new(Oracle::from_config(&cfg, num_apps)));
        // Static deadlock-freedom/legality verification, resolved like the
        // oracle (debug-on / release-off / RAIR_VERIFY env): no illegal
        // configuration reaches the cycle kernel. Results are memoized
        // process-wide, so construction-heavy tests verify each distinct
        // configuration once.
        let mut stats = SimStats::new(num_apps);
        if cfg.verify.resolve_enabled() {
            let (violations, count) =
                crate::verify::verify_network_cached(&cfg, &region, routing.as_ref());
            if count > 0 && cfg.verify.resolve_panic() {
                panic!(
                    "static verifier: {} violation(s) for routing {}:\n{}",
                    count,
                    routing.name(),
                    violations
                        .iter()
                        .map(|v| format!("  {v}"))
                        .collect::<Vec<_>>()
                        .join("\n")
                );
            }
            stats.verify_violations = violations;
            stats.verify_violation_count = count;
        }
        // Routers are constructed dirty (occ_dirty = true) so the first
        // state update always runs; mirror that in the dirty mask. The last
        // word's construction goes through `low_bits` (not a raw shift) so
        // word-boundary router counts (64, 128, …) cannot overflow.
        let mut dirty_mask = vec![!0u64; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            *dirty_mask.last_mut().unwrap() = low_bits(n % 64);
        }
        let policy_idempotent = policy.update_is_idempotent();
        let fault = (!cfg.fault.is_empty()).then(|| Box::new(FaultState::new(&cfg, num_apps)));
        let shards = cfg.resolve_shards();
        Self {
            region,
            routing,
            policy,
            source,
            routers,
            nodes,
            cycle: 0,
            next_pkt_id: 0,
            in_flight: Vec::new(),
            eject_q: Vec::new(),
            credit_q: Vec::new(),
            congestion: vec![0; n],
            rngs,
            stats,
            analysis: None,
            oracle,
            fault_frozen: None,
            fault,
            va_scratch: Vec::new(),
            sa_scratch: Vec::new(),
            phase_out: PhaseOut::new(num_apps, false),
            gen_scratch: Vec::new(),
            active_mask: vec![0; n.div_ceil(64)],
            dirty_mask,
            force_exhaustive: false,
            fast_forward: true,
            policy_idempotent,
            shards,
            cfg,
        }
    }

    /// Enable (`true`, the default) or disable the idle fast-forward, which
    /// jumps the clock over provably-empty cycles in [`Network::run`].
    /// Results are bit-identical either way — this switch exists so tests
    /// and benches can prove it.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Disable (`true`) or re-enable (`false`) the active-set fast path.
    /// The exhaustive scan visits every router in every phase and performs
    /// every state update; results are bit-identical either way — this
    /// switch exists so tests and benches can prove it.
    pub fn set_force_exhaustive(&mut self, exhaustive: bool) {
        self.force_exhaustive = exhaustive;
    }

    /// Number of routers currently holding at least one occupied input VC —
    /// the size of the active set the per-cycle kernel iterates.
    pub fn active_routers(&self) -> usize {
        self.active_mask
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    #[inline]
    pub(crate) fn mark_active(mask: &mut [u64], idx: usize) {
        mask[idx >> 6] |= 1 << (idx & 63);
    }

    #[inline]
    pub(crate) fn mark_inactive(mask: &mut [u64], idx: usize) {
        mask[idx >> 6] &= !(1 << (idx & 63));
    }

    /// Rebuild both network-level bitmasks from the routers' own occupancy
    /// summaries — the sharded engine calls this after stitching worker
    /// bands back together (workers track occupancy only through
    /// `Router::occ_vcs`/`occ_dirty`, the masks' ground truth).
    pub(crate) fn rebuild_masks(&mut self) {
        self.active_mask.iter_mut().for_each(|w| *w = 0);
        self.dirty_mask.iter_mut().for_each(|w| *w = 0);
        for (i, r) in self.routers.iter().enumerate() {
            if r.occ_vcs > 0 {
                Self::mark_active(&mut self.active_mask, i);
            }
            if r.occ_dirty {
                Self::mark_active(&mut self.dirty_mask, i);
            }
        }
    }

    /// Shard count [`Network::run`] will actually use: the resolved
    /// [`SimConfig::shards`], clamped to the router count, and forced to 1
    /// (scalar) whenever a feature incompatible with worker-side ticking is
    /// active — analysis instrumentation, a fault timeline, an injected
    /// frozen-allocator fault, or a non-idempotent priority policy — since
    /// those thread per-cycle global state through the whole mesh. (A
    /// non-idempotent policy samples occupancy across routers in visit
    /// order, e.g. `StcRankOnline`; concurrent workers would interleave
    /// those observations nondeterministically.)
    pub fn effective_shards(&self) -> usize {
        if self.analysis.is_some()
            || self.fault.is_some()
            || self.fault_frozen.is_some()
            || !self.policy_idempotent
        {
            return 1;
        }
        self.shards.clamp(1, self.routers.len())
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Does port `p` of the router at `c` lead to a physical neighbor on
    /// the configured topology (for the mesh: is it not a mesh edge)?
    #[inline]
    pub(crate) fn port_in_bounds(cfg: &SimConfig, c: Coord, p: Port) -> bool {
        crate::topology::has_link(cfg, c, p)
    }

    /// Neighbor router index through output port `p` (wrap-aware on
    /// torus/ring; plain index arithmetic on the non-wrapping grids).
    #[inline]
    pub(crate) fn neighbor(cfg: &SimConfig, idx: usize, p: Port) -> usize {
        if cfg.topology.wraps() {
            return crate::topology::neighbor_router(cfg, idx, p);
        }
        let w = cfg.width as usize;
        match p {
            PORT_NORTH => idx - w,
            PORT_SOUTH => idx + w,
            PORT_EAST => idx + 1,
            PORT_WEST => idx - 1,
            _ => panic!("neighbor() through non-mesh port"),
        }
    }

    /// Advance one cycle.
    pub fn tick(&mut self) {
        if self.fault.is_some() {
            self.process_fault_events();
        }
        self.deliver_phase();
        #[cfg(debug_assertions)]
        self.debug_verify_active_set();
        self.sa_phase();
        self.va_phase();
        self.rc_phase();
        self.inject_phase();
        self.update_state_phase();
        if self.oracle.is_some() {
            self.flush_oracle(false);
        }
        if let Some(a) = &mut self.analysis {
            a.cycles += 1;
        }
        self.cycle += 1;
    }

    // ------------------------------------------------- fault resilience

    /// Apply permanent faults due this cycle (reconfiguring the routing and
    /// re-verifying it) and periodically sweep for stranded packets. Only
    /// called when `fault` is `Some`.
    fn process_fault_events(&mut self) {
        let due = match self.fault.as_deref_mut() {
            Some(fs) => fs.take_due_events(self.cycle),
            None => return,
        };
        if !due.is_empty() {
            if let Some(fs) = self.fault.as_deref_mut() {
                for &ev in &due {
                    fs.apply_event(&self.cfg, ev);
                }
            }
            self.reconfigure();
            for ev in due {
                if let FaultEvent::RouterDown { router } = ev {
                    self.kill_node(router as usize);
                }
            }
        }
        let has_dead = self.fault.as_deref().is_some_and(FaultState::has_dead);
        if has_dead && self.cycle.is_multiple_of(STRANDED_SCAN_INTERVAL) {
            self.sweep_stranded();
        }
    }

    /// Rebuild and statically re-verify the degraded routing table after
    /// the dead sets changed, reset every `Routed` (not yet `Active`) VC so
    /// RC re-routes with the new table, and notify the oracle's checkers.
    fn reconfigure(&mut self) {
        self.stats.reconfigurations += 1;
        let fs = self
            .fault
            .as_deref_mut()
            .expect("reconfigure requires fault state");
        let (table, report) = DegradedTable::rebuild(
            &self.cfg,
            &self.region,
            self.routing.as_ref(),
            &fs.dead_links,
            &fs.dead_routers,
        );
        fs.table = Some(table);
        if !report.ok() {
            // Even Strict failed (the surviving topology is partitioned in a
            // way no table fixes) — surface the witnesses, don't abort: the
            // unroutable pairs are parked and dropped with accounting.
            self.stats.verify_violation_count += report.violation_count;
            for v in report.violations {
                if self.stats.verify_violations.len() < MAX_RECORDED_VIOLATIONS {
                    self.stats.verify_violations.push(v);
                }
            }
        }
        for r in &mut self.routers {
            for vcs in &mut r.inputs {
                for ivc in vcs {
                    if matches!(ivc.state, VcState::Routed { .. }) {
                        ivc.state = VcState::Idle;
                    }
                }
            }
        }
        if let Some(mut o) = self.oracle.take() {
            o.note_reconfigure(self);
            self.oracle = Some(o);
        }
    }

    /// A router died: drop its NI's queued work with accounting. The
    /// in-progress injection (if any) is allowed to finish streaming so the
    /// packet becomes fully resident and the stranded sweep extracts it
    /// with coherent credit/flit accounting.
    fn kill_node(&mut self, idx: usize) {
        let dropped = self.nodes[idx].drop_backlog();
        self.stats.packets_dropped += dropped as u64;
    }

    /// Extract fully-resident parked packets that can no longer be routed
    /// (their VC state is not `Active`, the head is at the front and the
    /// tail at the back). The buffer is cleared, per-flit credits are
    /// returned upstream, the flits enter the drop ledger, and the packet
    /// is either re-queued at its source NI (bounded retries, exponential
    /// backoff) or dropped for good.
    fn sweep_stranded(&mut self) {
        let Some(fs) = self.fault.take() else { return };
        let mut fs = fs;
        let table = fs.table.as_ref();
        let mut extracted: Vec<(usize, Port, usize)> = Vec::new();
        for (r_idx, r) in self.routers.iter().enumerate() {
            if r.occ_vcs == 0 {
                continue;
            }
            for (port, vcs) in r.inputs.iter().enumerate() {
                for (vc, ivc) in vcs.iter().enumerate() {
                    if matches!(ivc.state, VcState::Active { .. }) {
                        continue;
                    }
                    let (Some(front), Some(back)) = (ivc.buf.front(), ivc.buf.back()) else {
                        continue;
                    };
                    if !front.kind.is_head() || !back.kind.is_tail() {
                        continue; // not fully resident yet
                    }
                    let routable = !fs.dead_routers.contains(&r_idx)
                        && table.is_none_or(|t| t.routable(r_idx, front.info.dst as usize));
                    if !routable {
                        extracted.push((r_idx, port, vc));
                    }
                }
            }
        }
        for (r_idx, port, vc) in extracted {
            let r = &mut self.routers[r_idx];
            let ivc = &mut r.inputs[port][vc];
            let info = ivc.buf.front().expect("checked above").info;
            let flits = ivc.buf.len();
            ivc.buf.clear();
            ivc.state = VcState::Idle;
            ivc.holder = None;
            r.note_vc_freed(port, vc);
            Self::mark_active(&mut self.dirty_mask, r_idx);
            if r.occ_vcs == 0 {
                Self::mark_inactive(&mut self.active_mask, r_idx);
            }
            if port != PORT_LOCAL {
                let up = Self::neighbor(&self.cfg, r_idx, port);
                for _ in 0..flits {
                    self.credit_q.push((up, opposite(port), vc));
                }
            }
            if let Some(o) = self.oracle.as_deref_mut() {
                o.note_occupancy(r_idx as NodeId, port, vc, false, self.cycle);
            }
            fs.note_dropped_flits(info.app as usize, flits as u64);
            let attempts = fs.bump_retry(info.id);
            let retry_ok = attempts <= MAX_SOURCE_RETRIES
                && !fs.dead_routers.contains(&(info.src as usize))
                && fs
                    .table
                    .as_ref()
                    .is_none_or(|t| t.routable(info.src as usize, info.dst as usize));
            if retry_ok {
                self.stats.packets_retried += 1;
                let ready = self.cycle + (RETRY_BACKOFF_BASE << (attempts - 1));
                self.nodes[info.src as usize].schedule_retry(ready, info);
            } else {
                self.stats.packets_dropped += 1;
            }
        }
        self.fault = Some(fs);
    }

    /// Flits of `app` recorded in the drop ledger (0 without fault state) —
    /// the conservation checkers' balance term.
    pub(crate) fn dropped_flits_of(&self, app: usize) -> u64 {
        self.fault
            .as_deref()
            .map_or(0, |f| f.dropped_flits.get(app).copied().unwrap_or(0))
    }

    /// Total flits in the drop ledger (0 without fault state).
    pub(crate) fn dropped_flits_total(&self) -> u64 {
        self.fault.as_deref().map_or(0, |f| f.dropped_flits_total)
    }

    /// The degraded routing mode in force, if a permanent fault has been
    /// applied (`None` = pristine topology or no fault timeline).
    pub fn degraded_mode(&self) -> Option<DegradedMode> {
        self.fault
            .as_deref()
            .and_then(|f| f.table.as_ref())
            .map(DegradedTable::mode)
    }

    /// Run the oracle's end-of-cycle checks (interval-gated unless
    /// `force`d), move any violations into `stats` and honor the
    /// panic-on-violation setting. Returns the number of new violations.
    pub(crate) fn flush_oracle(&mut self, force: bool) -> usize {
        let Some(mut oracle) = self.oracle.take() else {
            return 0;
        };
        oracle.run_end_of_cycle(self, force);
        let new = oracle.take_pending();
        let panic_on = oracle.panic_on_violation();
        let cap = oracle.max_recorded();
        self.oracle = Some(oracle);
        let n = new.len();
        if n > 0 {
            self.stats.oracle_violation_count += n as u64;
            for v in new {
                if self.stats.oracle_violations.len() < cap {
                    self.stats.oracle_violations.push(v);
                }
            }
            if panic_on {
                panic!(
                    "invariant oracle: {} violation(s) at cycle {}:\n{}",
                    self.stats.oracle_violation_count,
                    self.cycle,
                    self.stats
                        .oracle_violations
                        .iter()
                        .map(|v| format!("  {v}"))
                        .collect::<Vec<_>>()
                        .join("\n")
                );
            }
        }
        n
    }

    /// Force every oracle checker to run right now (ignoring the check
    /// interval) and flush the results into `stats`. Returns the number of
    /// violations found; 0 when the oracle is disabled.
    pub fn check_oracle_now(&mut self) -> usize {
        self.flush_oracle(true)
    }

    /// Whether the invariant oracle is active for this network.
    pub fn oracle_enabled(&self) -> bool {
        self.oracle.is_some()
    }

    /// Attach an extra checker to the invariant oracle (e.g. the
    /// starvation observer with a statically proven wait bound). Returns
    /// `false` — and attaches nothing — when the oracle is disabled for
    /// this network; enable it via `SimConfig::oracle` before
    /// construction.
    pub fn attach_checker(&mut self, checker: Box<dyn crate::oracle::Checker>) -> bool {
        match self.oracle.as_deref_mut() {
            Some(o) => {
                o.add_checker(checker);
                true
            }
            None => false,
        }
    }

    /// Corrupt the simulation state for the differential test harness.
    ///
    /// Each fault is a *single, surgical* violation of exactly one protocol
    /// rule, so the harness can assert which checker catches it. Returns
    /// `false` when the fault is not applicable to the current state (e.g.
    /// no flit in the named VC) — callers retry elsewhere.
    pub fn inject_fault(&mut self, fault: Fault) -> bool {
        match fault {
            // Lose one credit: upstream believes the downstream buffer is
            // fuller than it is. Breaks credit conservation only.
            Fault::DropCredit { router, port, vc } => {
                let r = &mut self.routers[router];
                if port == PORT_LOCAL
                    || !Self::port_in_bounds(&self.cfg, r.coord, port)
                    || r.credits[port][vc] == 0
                {
                    return false;
                }
                // take_credit keeps the bitmaps coherent with the (now
                // corrupted) counter — the checkers, not the bookkeeping
                // self-check, must catch this fault.
                r.take_credit(port, vc);
                true
            }
            // Spurious replay-buffer fire: the upstream link sends a copy of
            // the newest buffered body flit, *paying a real credit* for it.
            // Credit conservation therefore stays clean while the repeated
            // sequence number (wormhole contiguity) and the phantom flit
            // (flit conservation) must be caught. Restricted to body flits
            // with nothing in flight on the slot so the copy cannot land
            // behind a tail or masquerade as a head (which would trip the
            // kernel's atomic-VC debug assertions instead of a checker).
            Fault::DuplicateFlit { router, port, vc } => {
                if port == PORT_LOCAL {
                    return false;
                }
                let coord = self.routers[router].coord;
                if !Self::port_in_bounds(&self.cfg, coord, port) {
                    return false;
                }
                {
                    let ivc = &self.routers[router].inputs[port][vc];
                    let Some(back) = ivc.buf.back() else {
                        return false;
                    };
                    if back.kind.is_head() || back.kind.is_tail() {
                        return false;
                    }
                }
                if self
                    .in_flight
                    .iter()
                    .any(|a| a.dst_router == router && a.in_port == port && a.vc == vc)
                {
                    return false;
                }
                let up = Self::neighbor(&self.cfg, router, port);
                let out_port = opposite(port);
                if !self.routers[up].has_credit(out_port, vc) {
                    return false;
                }
                self.routers[up].take_credit(out_port, vc);
                let flit = *self.routers[router].inputs[port][vc].buf.back().unwrap();
                self.in_flight.push(InFlight {
                    dst_router: router,
                    in_port: port,
                    vc,
                    arrive: self.cycle + 1,
                    flit,
                });
                true
            }
            // Teleport a single-flit packet one unproductive hop, keeping
            // every counter consistent (the upstream credit is spent, the
            // flit stays in flight): only routing legality is broken.
            Fault::MisrouteFlit { router, port, vc } => {
                let cur = self.routers[router].coord;
                {
                    let ivc = &self.routers[router].inputs[port][vc];
                    if ivc.buf.len() != 1
                        || ivc.buf[0].kind != FlitKind::Single
                        || matches!(ivc.state, VcState::Active { .. })
                    {
                        return false;
                    }
                }
                let dst = self
                    .cfg
                    .coord_of(self.routers[router].inputs[port][vc].buf[0].info.dst);
                let Some(out) = [PORT_NORTH, PORT_EAST, PORT_SOUTH, PORT_WEST]
                    .into_iter()
                    .find(|&p| {
                        Self::port_in_bounds(&self.cfg, cur, p)
                            && crate::routing::step(cur, p).hops_to(dst) >= cur.hops_to(dst)
                            && self.routers[router].out_alloc[p][vc].is_none()
                            && self.routers[router].credits[p][vc] == self.cfg.vc_depth
                    })
                else {
                    return false;
                };
                let nb = Self::neighbor(&self.cfg, router, out);
                {
                    // Defensive: the credit precondition already implies the
                    // downstream VC is idle and no arrival is in flight.
                    let divc = &self.routers[nb].inputs[opposite(out)][vc];
                    if divc.occupied() {
                        return false;
                    }
                }
                let r = &mut self.routers[router];
                let mut flit = r.inputs[port][vc].buf.pop_front().unwrap();
                r.inputs[port][vc].state = VcState::Idle;
                r.inputs[port][vc].holder = None;
                r.note_vc_freed(port, vc);
                Self::mark_active(&mut self.dirty_mask, router);
                if r.occ_vcs == 0 {
                    Self::mark_inactive(&mut self.active_mask, router);
                }
                r.take_credit(out, vc);
                flit.hops += 1;
                self.in_flight.push(InFlight {
                    dst_router: nb,
                    in_port: opposite(out),
                    vc,
                    arrive: self.cycle + 1,
                    flit,
                });
                if let Some(o) = self.oracle.as_deref_mut() {
                    o.note_occupancy(router as NodeId, port, vc, false, self.cycle);
                }
                true
            }
            // Flip a payload bit without updating the CRC: data corruption
            // that escaped the link-level error control. Caught by the
            // CRC-integrity scan.
            Fault::CorruptFlit { router, port, vc } => {
                let ivc = &mut self.routers[router].inputs[port][vc];
                let Some(f) = ivc.buf.front_mut() else {
                    return false;
                };
                f.payload ^= 1;
                true
            }
            // Freeze the router's switch allocator: flits queue behind it
            // forever. Caught by the deadlock/livelock watchdog.
            Fault::FreezeRouter { router } => {
                let n = self.routers.len();
                self.fault_frozen
                    .get_or_insert_with(|| vec![false; n].into_boxed_slice())[router] = true;
                true
            }
        }
    }

    /// Run `cycles` cycles, fast-forwarding over provably-empty stretches
    /// (see the module docs; disable with [`Network::set_fast_forward`]).
    ///
    /// When [`Network::effective_shards`] exceeds 1, the cycles execute on
    /// the sharded parallel engine ([`crate::shard`]); stat digests are
    /// bit-identical to the scalar engine at every shard count.
    pub fn run(&mut self, cycles: u64) {
        if self.effective_shards() > 1 {
            crate::shard::run_sharded(self, cycles);
        } else {
            self.run_scalar(cycles);
        }
    }

    /// The scalar engine behind [`Network::run`] (also the fallback the
    /// sharded engine defers to for incompatible configurations).
    pub(crate) fn run_scalar(&mut self, cycles: u64) {
        let end = self.cycle + cycles;
        while self.cycle < end {
            if let Some(target) = self.fast_forward_target(end) {
                self.fast_forward_to(target);
            } else {
                self.tick();
            }
        }
    }

    /// If the network is provably idle, the cycle the clock may jump to
    /// (exclusive of any cycle that could see an event): the earliest of the
    /// run-window end, the source's next injection and the next ready reply.
    /// `None` ⇒ this cycle must be ticked normally.
    pub(crate) fn fast_forward_target(&self, end: u64) -> Option<u64> {
        if !self.fast_forward
            || self.force_exhaustive
            || self.analysis.is_some()
            || !self.policy_idempotent
            || self.fault.is_some()
        {
            // An active fault timeline disables fast-forward outright:
            // scheduled events, retransmission arrivals, sweeps and retry
            // backoffs are all cycle-addressed side channels the idle proof
            // does not cover.
            return None;
        }
        // Nothing buffered in any router, nothing in flight on links or in
        // the ejection/credit registers, and every router clean (so the
        // state-update phase would be a no-op).
        if self.active_mask.iter().any(|&w| w != 0) || self.dirty_mask.iter().any(|&w| w != 0) {
            return None;
        }
        if !self.in_flight.is_empty() || !self.eject_q.is_empty() || !self.credit_q.is_empty() {
            return None;
        }
        // The source must *promise* silence (and zero side effects — no RNG
        // draws) for every node up to the returned cycle.
        let next_src = self.source.next_injection_cycle(self.cycle)?;
        let mut target = end.min(next_src);
        for n in &self.nodes {
            if n.backlog() > 0 {
                return None;
            }
            if let Some(r) = n.next_reply_ready() {
                target = target.min(r);
            }
        }
        (target > self.cycle).then_some(target)
    }

    /// Jump the clock to `target`, replaying the oracle's end-of-cycle scan
    /// at every check-interval multiple crossed — the identical schedule
    /// plain ticking would have produced (`tick` flushes with the
    /// pre-increment cycle value, so multiples in `[cycle, target)` scan).
    pub(crate) fn fast_forward_to(&mut self, target: u64) {
        debug_assert!(target > self.cycle);
        let start = self.cycle;
        if self.oracle.is_some() {
            let k = self
                .oracle
                .as_ref()
                .map_or(1, |o| o.check_interval())
                .max(1);
            let mut c = start.next_multiple_of(k);
            while c < target {
                self.cycle = c;
                self.flush_oracle(false);
                c += k;
            }
        }
        self.cycle = target;
        self.stats.idle_cycles_skipped += target - start;
    }

    /// Number of end-of-cycle oracle scans performed so far (0 when the
    /// oracle is disabled). Fast-forwarded runs must report the same count
    /// as plain ticking — asserted by `tests/fast_forward.rs`.
    pub fn oracle_scans(&self) -> u64 {
        self.oracle.as_ref().map_or(0, |o| o.scans())
    }

    /// The oracle's end-of-cycle scan interval, `None` when disabled (the
    /// sharded engine sizes its segments around the scan schedule).
    pub(crate) fn oracle_check_interval(&self) -> Option<u64> {
        self.oracle.as_ref().map(|o| o.check_interval().max(1))
    }

    /// Run `warmup` cycles, clear the measurement window, then run
    /// `measure` cycles.
    pub fn run_warmup_measure(&mut self, warmup: u64, measure: u64) {
        self.run(warmup);
        self.stats.reset_window(self.cycle);
        self.run(measure);
    }

    /// Self-check of the incremental active-set bookkeeping against an
    /// exhaustive recount: the bitmask, the per-port/total occupancy
    /// counters and the holder tags must all match what a slow scan finds,
    /// so skipping a router can never change a candidate set.
    #[cfg(debug_assertions)]
    fn debug_verify_active_set(&self) {
        for (i, r) in self.routers.iter().enumerate() {
            let (per_port, total) = r.recount_occupancy_summary();
            assert_eq!(per_port, r.occ_port, "router {i}: occ_port drifted");
            assert_eq!(total, r.occ_vcs, "router {i}: occ_vcs drifted");
            let bit = self.active_mask[i >> 6] >> (i & 63) & 1 == 1;
            assert_eq!(
                total > 0,
                bit,
                "router {i}: active bit disagrees with occupancy {total}"
            );
            let (occ, free, full, avail) = r.recount_bitsets();
            assert_eq!(occ, r.occ_bits, "router {i}: occ_bits drifted");
            assert_eq!(free, r.out_free, "router {i}: out_free drifted");
            assert_eq!(full, r.credits_full, "router {i}: credits_full drifted");
            assert_eq!(avail, r.credits_avail, "router {i}: credits_avail drifted");
            let dirty_bit = self.dirty_mask[i >> 6] >> (i & 63) & 1 == 1;
            assert_eq!(
                dirty_bit, r.occ_dirty,
                "router {i}: dirty bit disagrees with occ_dirty"
            );
            for vcs in &r.inputs {
                for ivc in vcs {
                    assert_eq!(
                        ivc.occupied(),
                        ivc.holder_app().is_some(),
                        "router {i}: holder tag out of sync with occupancy"
                    );
                }
            }
        }
    }

    // ------------------------------------------------------- phase 1: LT/BW

    /// Write an arrived flit into its destination input VC, maintaining the
    /// router-local occupancy summary. Returns whether the VC was newly
    /// occupied (the caller owns any mask/oracle follow-up).
    #[inline]
    pub(crate) fn apply_arrival(cfg: &SimConfig, router: &mut Router, a: &InFlight) -> bool {
        let ivc = &mut router.inputs[a.in_port][a.vc];
        // Atomic VCs: exactly the head starts a new occupancy interval.
        debug_assert_eq!(a.flit.kind.is_head(), !ivc.occupied());
        debug_assert!(ivc.buf.len() < cfg.vc_depth, "input buffer overflow");
        let newly_occupied = !ivc.occupied();
        if a.flit.kind.is_head() {
            ivc.holder = Some(a.flit.info.app);
        }
        ivc.buf.push_back(a.flit);
        if newly_occupied {
            router.note_vc_occupied(a.in_port, a.vc);
        }
        newly_occupied
    }

    fn deliver_phase(&mut self) {
        // Credits first (they free space the SA stage may use this cycle).
        let credits = std::mem::take(&mut self.credit_q);
        for (r, port, vc) in credits {
            self.routers[r].return_credit(port, vc);
        }
        let arrivals = std::mem::take(&mut self.in_flight);
        let delayed_possible = self.fault.is_some();
        for a in arrivals {
            if delayed_possible && a.arrive > self.cycle {
                // Still in the link-level retransmission loop: the flit
                // (and its credit) stay accounted as in flight.
                self.in_flight.push(a);
                continue;
            }
            let newly_occupied =
                Self::apply_arrival(&self.cfg, &mut self.routers[a.dst_router], &a);
            if newly_occupied {
                Self::mark_active(&mut self.active_mask, a.dst_router);
                Self::mark_active(&mut self.dirty_mask, a.dst_router);
            }
            if let Some(o) = self.oracle.as_deref_mut() {
                let id = a.dst_router as NodeId;
                o.note_arrival(&self.cfg, id, a.in_port, a.vc, &a.flit, self.cycle);
                if newly_occupied {
                    o.note_occupancy(id, a.in_port, a.vc, true, self.cycle);
                }
            }
        }
        let ejected = std::mem::take(&mut self.eject_q);
        for (n, flit) in ejected {
            self.consume_ejected(n, flit);
        }
    }

    /// Consume one flit ejected at `node_idx`'s NI: eject accounting, the
    /// oracle's eject note, latency recording and closed-loop reply
    /// generation. The reply (if any) is returned for the node's owner to
    /// schedule, so the sharded coordinator can run this without touching
    /// worker-owned nodes.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn consume_ejected_core(
        cycle: u64,
        node_idx: usize,
        flit: Flit,
        stats: &mut SimStats,
        oracle: Option<&mut Oracle>,
        source: &mut dyn TrafficSource,
        next_pkt_id: &mut u64,
        analysis: Option<&mut AnalysisState>,
    ) -> Option<ReplySchedule> {
        stats.ejected_flits += 1;
        if let Some(o) = oracle {
            o.note_eject(flit.info.app, cycle);
        }
        if !flit.kind.is_tail() {
            return None;
        }
        let info = flit.info;
        debug_assert_eq!(info.dst as usize, node_idx, "flit ejected at wrong node");
        let now = cycle;
        if let Some(a) = analysis {
            if a.watch == Some(info.id) {
                a.journey.push((
                    now,
                    JourneyEvent::Delivered {
                        node: node_idx as NodeId,
                    },
                ));
            }
        }
        let network = now.saturating_sub(info.inject);
        let total = now.saturating_sub(info.birth);
        stats
            .recorder
            .record(info.app as usize, network, total, flit.hops, info.size);
        stats.last_progress = now;
        let mut reply = None;
        if let Some(spec) = info.reply {
            let id = *next_pkt_id;
            *next_pkt_id += 1;
            stats.generated[info.app as usize] += 1;
            reply = Some(ReplySchedule {
                node: node_idx,
                ready: now + spec.service_latency,
                id,
                dst: info.src,
                app: info.app,
                class: spec.class,
                size: spec.size,
            });
        }
        source.on_delivered(node_idx as NodeId, &info, now);
        reply
    }

    fn consume_ejected(&mut self, node_idx: usize, flit: Flit) {
        if let Some(rs) = Self::consume_ejected_core(
            self.cycle,
            node_idx,
            flit,
            &mut self.stats,
            self.oracle.as_deref_mut(),
            &mut *self.source,
            &mut self.next_pkt_id,
            self.analysis.as_mut(),
        ) {
            self.nodes[rs.node].schedule_reply(rs.ready, rs.id, rs.dst, rs.app, rs.class, rs.size);
        }
    }

    // --------------------------------------------------------- phase 2: SA

    /// SA (+ST) over `routers`, a contiguous band starting at global router
    /// index `base`. Cross-router effects (link flits, ejects, credits),
    /// occupancy transitions, oracle events and stat deltas go to `out`;
    /// the caller owns the merge order. `fault`/`fault_frozen`/`analysis`
    /// are `None` on worker threads (the sharded engine falls back to
    /// scalar whenever they are active).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn sa_band(
        cfg: &SimConfig,
        policy: &dyn PriorityPolicy,
        routers: &mut [Router],
        base: usize,
        cycle: u64,
        force_exhaustive: bool,
        fault_frozen: Option<&[bool]>,
        mut fault: Option<&mut FaultState>,
        mut analysis: Option<&mut AnalysisState>,
        sa_scratch: &mut Vec<SaCand>,
        out: &mut PhaseOut,
    ) {
        let v = cfg.vcs_per_port();
        let port_mask = low_bits(v);
        for (local, r) in routers.iter_mut().enumerate() {
            let r_idx = base + local;
            // Active-set fast path: an empty router contributes no SA
            // candidate and mutates no arbiter pointer (`occ_vcs` is the
            // ground truth behind the former active-mask iteration).
            if !force_exhaustive && r.occ_vcs == 0 {
                out.router_cycles_skipped += 1;
                continue;
            }
            // Fault injection: a frozen switch allocator grants nothing.
            if fault_frozen.is_some_and(|f| f[r_idx]) {
                continue;
            }
            // Shared pass: collect candidates. Every SA candidate lives in
            // an occupied VC, so iterating occ_bits (ascending, same order
            // as the nested scan) is exact; exhaustive mode widens the
            // iteration domain to every valid slot without changing any
            // predicate.
            sa_scratch.clear();
            let occ_snapshot = if force_exhaustive {
                r.valid_vc_mask()
            } else {
                r.occ_bits
            };
            for in_port in 0..NUM_PORTS {
                let mut pb = (occ_snapshot >> (in_port * v)) & port_mask;
                while pb != 0 {
                    let in_vc = pb.trailing_zeros() as usize;
                    pb &= pb - 1;
                    let ivc = &r.inputs[in_port][in_vc];
                    let VcState::Active { out_port, out_vc } = ivc.state else {
                        continue;
                    };
                    let Some(f) = ivc.buf.front() else { continue };
                    if !r.has_credit(out_port, out_vc) {
                        continue;
                    }
                    let req = arb_req(r, &f.info);
                    sa_scratch.push(SaCand {
                        in_port,
                        in_vc,
                        out_port,
                        out_vc,
                        prio_in: policy.priority(ArbStage::SaIn, r, None, &req),
                        prio_out: policy.priority(ArbStage::SaOut, r, None, &req),
                    });
                }
            }
            if sa_scratch.is_empty() {
                continue;
            }
            // SA_in: one winner per input port.
            let mut sa_in_winners: [Option<SaCand>; NUM_PORTS] = [None; NUM_PORTS];
            #[allow(clippy::needless_range_loop)] // in_port also keys sa_in_ptr
            for in_port in 0..NUM_PORTS {
                let reqs: Vec<(u64, usize)> = sa_scratch
                    .iter()
                    .filter(|c| c.in_port == in_port)
                    .map(|c| (c.prio_in, c.in_vc))
                    .collect();
                if reqs.is_empty() {
                    continue;
                }
                let Some(w) = arbitrate_rr(&reqs, v, &mut r.sa_in_ptr[in_port]) else {
                    debug_assert!(false, "non-empty request set yields an SA_in winner");
                    continue;
                };
                let win_vc = reqs[w].1;
                sa_in_winners[in_port] = sa_scratch
                    .iter()
                    .find(|c| c.in_port == in_port && c.in_vc == win_vc)
                    .copied();
            }
            // SA_out: one winner per output port among the SA_in winners.
            // `moved` collects the input-VC slots that won the crossbar
            // this cycle, feeding the starvation observer's wait counters.
            let mut moved: u64 = 0;
            for out_port in 0..NUM_PORTS {
                let reqs: Vec<(u64, usize)> = sa_in_winners
                    .iter()
                    .flatten()
                    .filter(|c| c.out_port == out_port)
                    .map(|c| (c.prio_out, c.in_port))
                    .collect();
                if reqs.is_empty() {
                    continue;
                }
                let Some(w) = arbitrate_rr(&reqs, NUM_PORTS, &mut r.sa_out_ptr[out_port]) else {
                    debug_assert!(false, "non-empty request set yields an SA_out winner");
                    continue;
                };
                let Some(win) = sa_in_winners[reqs[w].1] else {
                    debug_assert!(false, "SA_out request indexes a populated SA_in winner");
                    continue;
                };
                moved |= 1u64 << (win.in_port * v + win.in_vc);
                // ST: move the flit.
                let ivc = &mut r.inputs[win.in_port][win.in_vc];
                let Some(mut flit) = ivc.buf.pop_front() else {
                    debug_assert!(false, "SA winner holds a buffered flit");
                    continue;
                };
                let is_tail = flit.kind.is_tail();
                if let Some(a) = analysis.as_deref_mut() {
                    a.link_flits[r_idx][win.out_port] += 1;
                    if a.watch == Some(flit.info.id) && win.out_port != PORT_LOCAL {
                        a.journey.push((
                            cycle,
                            JourneyEvent::Forwarded {
                                router: r.id,
                                port: win.out_port,
                            },
                        ));
                    }
                }
                if win.out_port == PORT_LOCAL {
                    // Keyed by destination *node* (== router index except
                    // under concentration, where several NIs share a router).
                    out.eject.push((flit.info.dst as usize, flit));
                } else {
                    flit.hops += 1;
                    r.take_credit(win.out_port, win.out_vc);
                    let nb = Self::neighbor(cfg, r_idx, win.out_port);
                    let in_port = opposite(win.out_port);
                    let mut arrive = cycle + 1;
                    if let Some(fs) = fault.as_deref_mut() {
                        if fs.corrupts() {
                            // Link-level ARQ, resolved at send time: the
                            // deterministic draw says how many CRC-failed
                            // attempts precede the clean one; each failure
                            // costs one nack/replay round trip. The flit
                            // stays in `in_flight` (its credit held) for the
                            // whole exchange, and a per-slot FIFO floor
                            // keeps retransmitted flits from being overtaken
                            // within their link slot.
                            let k = fs.send_attempts(flit.info.id, flit.seq, r_idx, win.out_port);
                            if k > 1 {
                                out.retransmitted += u64::from(k - 1);
                                arrive += u64::from(k - 1) * RETRANSMIT_LATENCY;
                            }
                            let slot = FaultState::slot(cfg, nb, in_port, win.out_vc);
                            arrive = arrive.max(fs.last_arrival[slot] + 1);
                            fs.last_arrival[slot] = arrive;
                        }
                    }
                    out.in_flight.push(InFlight {
                        dst_router: nb,
                        in_port,
                        vc: win.out_vc,
                        arrive,
                        flit,
                    });
                }
                if win.in_port != PORT_LOCAL {
                    let up = Self::neighbor(cfg, r_idx, win.in_port);
                    out.credit.push((up, opposite(win.in_port), win.in_vc));
                }
                if is_tail {
                    r.release_out_vc(win.out_port, win.out_vc);
                    let ivc = &mut r.inputs[win.in_port][win.in_vc];
                    debug_assert!(
                        ivc.buf.is_empty(),
                        "atomic VC violated: flits behind a tail"
                    );
                    ivc.state = VcState::Idle;
                    ivc.holder = None;
                    r.note_vc_freed(win.in_port, win.in_vc);
                    out.dirtied.push(r_idx as u32);
                    out.note(OracleNote::Occupancy {
                        router: r.id,
                        port: win.in_port,
                        vc: win.in_vc,
                        occupied: false,
                    });
                }
                out.progress = true;
            }
            // Starvation observer: advance the per-VC head-of-line wait
            // counters. Any routed (Active) VC with a buffered head flit
            // that failed to move this cycle waited one more — whether it
            // lost arbitration or was credit-starved by a standing foreign
            // backlog; a crossbar winner starts fresh (its next head flit
            // begins a new wait). Gated on the oracle being attached so
            // the un-observed kernel stays untouched.
            if out.record_notes {
                for (port, vcs) in r.inputs.iter().enumerate() {
                    for (vc, ivc) in vcs.iter().enumerate() {
                        let slot = port * v + vc;
                        let waiting =
                            matches!(ivc.state, VcState::Active { .. }) && !ivc.buf.is_empty();
                        r.arb_wait[slot] = if moved & (1u64 << slot) != 0 || !waiting {
                            0
                        } else {
                            r.arb_wait[slot].saturating_add(1)
                        };
                    }
                }
            }
        }
    }

    fn sa_phase(&mut self) {
        let Network {
            cfg,
            policy,
            routers,
            in_flight,
            eject_q,
            credit_q,
            stats,
            sa_scratch,
            cycle,
            analysis,
            oracle,
            fault_frozen,
            fault,
            active_mask,
            dirty_mask,
            force_exhaustive,
            phase_out,
            ..
        } = self;
        phase_out.record_notes = oracle.is_some();
        Self::sa_band(
            cfg,
            &**policy,
            routers,
            0,
            *cycle,
            *force_exhaustive,
            fault_frozen.as_deref(),
            fault.as_deref_mut(),
            analysis.as_mut(),
            sa_scratch,
            phase_out,
        );
        in_flight.append(&mut phase_out.in_flight);
        eject_q.append(&mut phase_out.eject);
        credit_q.append(&mut phase_out.credit);
        stats.router_cycles_skipped += phase_out.router_cycles_skipped;
        stats.flits_retransmitted += phase_out.retransmitted;
        if phase_out.progress {
            stats.last_progress = *cycle;
        }
        for &g in &phase_out.dirtied {
            let i = g as usize;
            Self::mark_active(dirty_mask, i);
            if routers[i].occ_vcs == 0 {
                Self::mark_inactive(active_mask, i);
            }
        }
        if let Some(o) = oracle.as_deref_mut() {
            replay_notes(o, cfg, &phase_out.notes, *cycle);
        }
        phase_out.reset();
    }

    // --------------------------------------------------------- phase 3: VA

    /// VA over `routers` (router-local: VA touches no cross-router state).
    /// `congestion` is the full previous-cycle network view (adaptive
    /// routing reads remote entries).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn va_band(
        cfg: &SimConfig,
        region: &RegionMap,
        routing: &dyn RoutingAlgorithm,
        policy: &dyn PriorityPolicy,
        congestion: &[u16],
        routers: &mut [Router],
        force_exhaustive: bool,
        va_scratch: &mut Vec<VaReq>,
        skipped: &mut u64,
    ) {
        let v = cfg.vcs_per_port();
        let port_mask = low_bits(v);
        for r in routers.iter_mut() {
            if !force_exhaustive && r.occ_vcs == 0 {
                *skipped += 1;
                continue;
            }
            // Shared pass: VA_in — each routed input VC picks one request.
            // Routed ⇒ occupied, so occ_bits enumeration is exact.
            va_scratch.clear();
            let occ_snapshot = if force_exhaustive {
                r.valid_vc_mask()
            } else {
                r.occ_bits
            };
            for in_port in 0..NUM_PORTS {
                let mut pb = (occ_snapshot >> (in_port * v)) & port_mask;
                while pb != 0 {
                    let in_vc = pb.trailing_zeros() as usize;
                    pb &= pb - 1;
                    let ivc = &r.inputs[in_port][in_vc];
                    let VcState::Routed {
                        adaptive,
                        escape,
                        escape_lane,
                    } = ivc.state
                    else {
                        continue;
                    };
                    let Some(head) = ivc.buf.front() else {
                        debug_assert!(false, "routed VC holds its head flit");
                        continue;
                    };
                    debug_assert!(head.kind.is_head());
                    let info = head.info;
                    let req = arb_req(r, &info);
                    let request = Self::va_in_select(
                        cfg,
                        region,
                        routing,
                        policy,
                        congestion,
                        r,
                        &info,
                        &req,
                        adaptive,
                        escape,
                        escape_lane,
                    );
                    if let Some((out_port, out_vc)) = request {
                        let prio =
                            policy.priority(ArbStage::VaOut, r, Some(cfg.vc_class(out_vc)), &req);
                        va_scratch.push(VaReq {
                            out_port,
                            out_vc,
                            in_port,
                            in_vc,
                            prio,
                        });
                    }
                }
            }
            if va_scratch.is_empty() {
                continue;
            }
            // VA_out: arbitrate per contested output VC.
            va_scratch.sort_unstable_by_key(|q| (q.out_port, q.out_vc));
            let mut i = 0;
            while i < va_scratch.len() {
                let (op, ovc) = (va_scratch[i].out_port, va_scratch[i].out_vc);
                let mut j = i;
                while j < va_scratch.len()
                    && va_scratch[j].out_port == op
                    && va_scratch[j].out_vc == ovc
                {
                    j += 1;
                }
                let group = &va_scratch[i..j];
                let reqs: Vec<(u64, usize)> = group
                    .iter()
                    .map(|q| (q.prio, q.in_port * v + q.in_vc))
                    .collect();
                let ptr = &mut r.va_ptr[op * v + ovc];
                let Some(w) = arbitrate_rr(&reqs, NUM_PORTS * v, ptr) else {
                    debug_assert!(false, "non-empty request group yields a VA winner");
                    i = j;
                    continue;
                };
                let win = group[w];
                r.alloc_out_vc(op, ovc, (win.in_port, win.in_vc));
                r.inputs[win.in_port][win.in_vc].state = VcState::Active {
                    out_port: op,
                    out_vc: ovc,
                };
                i = j;
            }
        }
    }

    fn va_phase(&mut self) {
        let Network {
            cfg,
            region,
            routing,
            policy,
            routers,
            congestion,
            va_scratch,
            stats,
            force_exhaustive,
            ..
        } = self;
        Self::va_band(
            cfg,
            region,
            &**routing,
            &**policy,
            congestion,
            routers,
            *force_exhaustive,
            va_scratch,
            &mut stats.router_cycles_skipped,
        );
    }

    /// VA_in: pick the (output port, output VC) a routed input VC requests
    /// this cycle. Adaptive candidates first (routing selection function +
    /// the policy's VC-tag preference); the escape VC of the packet's
    /// dateline lane as fallback; `None` when nothing is allocatable.
    #[allow(clippy::too_many_arguments)]
    fn va_in_select(
        cfg: &SimConfig,
        region: &RegionMap,
        routing: &dyn RoutingAlgorithm,
        policy: &dyn PriorityPolicy,
        congestion: &[u16],
        r: &Router,
        info: &PacketInfo,
        req: &ArbReq,
        adaptive: [Option<Port>; 2],
        escape: Port,
        escape_lane: u8,
    ) -> Option<(Port, usize)> {
        let v = cfg.vcs_per_port();
        // Ejection at the destination: any free local "output VC". The
        // local port occupies the low `v` bits (PORT_LOCAL == 0); bit order
        // is ascending VC index, so trailing_zeros replicates the old
        // ascending `find` exactly.
        if escape == PORT_LOCAL {
            let free = r.out_free & low_bits(v);
            return (free != 0).then(|| (PORT_LOCAL, free.trailing_zeros() as usize));
        }
        // Allocatable = no holder AND downstream fully drained — one mask op
        // per candidate port instead of a scan over the adaptive range.
        let alloc = r.allocatable_mask();
        let adaptive_mask = low_bits(cfg.adaptive_vcs) << cfg.num_escape_vcs();
        let mut cands: [Port; 2] = [0; 2];
        let mut n = 0;
        for p in adaptive.into_iter().flatten() {
            if (alloc >> (p * v)) & adaptive_mask != 0 {
                cands[n] = p;
                n += 1;
            }
        }
        if n > 0 {
            let ctx = SelectCtx {
                cfg,
                router: r,
                dst: cfg.coord_of(info.dst),
                region,
                congestion,
            };
            let p = cands[routing.select(&ctx, &cands[..n])];
            let pa = (alloc >> (p * v)) & adaptive_mask;
            debug_assert_ne!(pa, 0);
            if let Some(tag) = policy.vc_tag_preference(r, req) {
                // Regional adaptive VCs are the contiguous indices right
                // after the escape block, global the remainder (see
                // SimConfig::vc_class), so each tag is one contiguous mask.
                let tag_mask = match tag {
                    VcTag::Regional => low_bits(cfg.regional_vcs) << cfg.num_escape_vcs(),
                    VcTag::Global => {
                        low_bits(cfg.adaptive_vcs - cfg.regional_vcs)
                            << (cfg.num_escape_vcs() + cfg.regional_vcs)
                    }
                };
                let m = pa & tag_mask;
                if m != 0 {
                    return Some((p, m.trailing_zeros() as usize));
                }
            }
            return Some((p, pa.trailing_zeros() as usize));
        }
        // Escape fallback (guarantees forward progress per Duato); on
        // wrapping topologies the requestable escape VC is pinned to the
        // packet's dateline lane.
        let esc = cfg.escape_vc_lane(info.class, escape_lane);
        (alloc & r.vc_bit(escape, esc) != 0).then_some((escape, esc))
    }

    // --------------------------------------------------------- phase 4: RC

    /// RC over `routers`, a contiguous band starting at global router index
    /// `base` (the degraded-table lookups are keyed by global index).
    /// `degraded` is `None` on worker threads.
    pub(crate) fn rc_band(
        cfg: &SimConfig,
        routing: &dyn RoutingAlgorithm,
        routers: &mut [Router],
        base: usize,
        force_exhaustive: bool,
        degraded: Option<&DegradedTable>,
        skipped: &mut u64,
    ) {
        let v = cfg.vcs_per_port();
        let port_mask = low_bits(v);
        for (local, r) in routers.iter_mut().enumerate() {
            let r_idx = base + local;
            if !force_exhaustive && r.occ_vcs == 0 {
                *skipped += 1;
                continue;
            }
            let cur = r.coord;
            // A head awaiting RC sits in an occupied idle VC, so occ_bits
            // enumeration is exact.
            let occ_snapshot = if force_exhaustive {
                r.valid_vc_mask()
            } else {
                r.occ_bits
            };
            for in_port in 0..NUM_PORTS {
                let mut pb = (occ_snapshot >> (in_port * v)) & port_mask;
                while pb != 0 {
                    let in_vc = pb.trailing_zeros() as usize;
                    pb &= pb - 1;
                    let ivc = &mut r.inputs[in_port][in_vc];
                    if ivc.state != VcState::Idle {
                        continue;
                    }
                    let Some(front) = ivc.buf.front() else {
                        continue;
                    };
                    debug_assert!(
                        front.kind.is_head(),
                        "idle VC front flit must be a head (atomic VCs)"
                    );
                    let dst = cfg.coord_of(front.info.dst);
                    if let Some(t) = degraded {
                        let (s, d) = (r_idx, front.info.dst as usize);
                        if !t.routable(s, d) {
                            continue; // parked (dead router / severed pair)
                        }
                        ivc.state = if dst == cur {
                            VcState::Routed {
                                adaptive: [Some(PORT_LOCAL), None],
                                escape: PORT_LOCAL,
                                escape_lane: 0,
                            }
                        } else {
                            let Some(escape) = t.esc_at(s, d) else {
                                continue;
                            };
                            VcState::Routed {
                                adaptive: t.adap_at(s, d),
                                escape,
                                escape_lane: 0,
                            }
                        };
                        continue;
                    }
                    ivc.state = if dst == cur {
                        VcState::Routed {
                            adaptive: [Some(PORT_LOCAL), None],
                            escape: PORT_LOCAL,
                            escape_lane: 0,
                        }
                    } else {
                        // The kernel legalizes exactly what the static
                        // verifier enumerated: the algorithm's next_hops.
                        let hops = routing.next_hops(cfg, cur, dst);
                        VcState::Routed {
                            adaptive: hops.adaptive,
                            escape: hops.escape,
                            escape_lane: hops.escape_lane,
                        }
                    };
                }
            }
        }
    }

    fn rc_phase(&mut self) {
        let Network {
            cfg,
            routing,
            routers,
            stats,
            force_exhaustive,
            fault,
            ..
        } = self;
        // After a permanent fault, route from the verified degraded table;
        // heads with no surviving path stay Idle (parked) until the
        // stranded sweep extracts them.
        let degraded = fault.as_deref().and_then(|f| f.table.as_ref());
        Self::rc_band(
            cfg,
            &**routing,
            routers,
            0,
            *force_exhaustive,
            degraded,
            &mut stats.router_cycles_skipped,
        );
    }

    // -------------------------------------------------- phase 5: injection

    /// Ask the traffic source for this cycle's new packets, in ascending
    /// node-id order (packet-id assignment and RNG stream consumption
    /// depend on it). Sequential in both engines — the sharded coordinator
    /// runs this itself, then routes each packet to its owner's band.
    /// `out` receives `(node index, packet)` pairs, ascending.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn generate_packets(
        cfg: &SimConfig,
        source: &mut dyn TrafficSource,
        rngs: &mut [SmallRng],
        stats: &mut SimStats,
        next_pkt_id: &mut u64,
        degraded: Option<&DegradedTable>,
        cycle: u64,
        out: &mut Vec<(u32, PacketInfo)>,
    ) {
        out.clear();
        for (i, rng) in rngs.iter_mut().enumerate() {
            let id = i as NodeId;
            if let Some(np) = source.generate(id, cycle, rng) {
                // The source is external code whose contract violations
                // must surface in release runs too — the one legitimate
                // abort in a pipeline band.
                // lint: allow(panic-in-hot-path)
                assert_ne!(np.dst, id, "source generated self-addressed packet");
                // lint: allow(panic-in-hot-path)
                assert!(
                    (np.app as usize) < stats.generated.len(),
                    "packet app {} out of range",
                    np.app
                );
                // lint: allow(panic-in-hot-path)
                assert!(np.size >= 1 && np.size as usize <= cfg.vc_depth);
                if degraded.is_some_and(|t| !t.routable(i, np.dst as usize)) {
                    // The destination (or this NI's own router) is
                    // unreachable on the degraded topology: count the
                    // generation but drop at the source — never injected,
                    // so the flit ledger is untouched.
                    stats.generated[np.app as usize] += 1;
                    stats.packets_dropped += 1;
                } else {
                    let info = PacketInfo {
                        id: *next_pkt_id,
                        src: id,
                        dst: np.dst,
                        app: np.app,
                        class: np.class,
                        size: np.size,
                        birth: cycle,
                        inject: 0,
                        reply: np.reply,
                    };
                    *next_pkt_id += 1;
                    stats.generated[np.app as usize] += 1;
                    out.push((i as u32, info));
                }
            }
        }
    }

    /// Injection over a contiguous band of NIs and their routers, starting
    /// at global *router* index `base` (the band's nodes are the routers'
    /// concentrated NIs, node indices `base*c..`). `enqueues` holds this
    /// cycle's freshly generated packets for this band, `(global node
    /// index, packet)` ascending (from [`Network::generate_packets`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn inject_band(
        cfg: &SimConfig,
        nodes: &mut [Node],
        routers: &mut [Router],
        base: usize,
        cycle: u64,
        enqueues: &[(u32, PacketInfo)],
        mut analysis: Option<&mut AnalysisState>,
        out: &mut PhaseOut,
    ) {
        let c = cfg.concentration();
        debug_assert_eq!(nodes.len(), routers.len() * c);
        let node_base = base * c;
        let mut e = 0usize;
        while e < enqueues.len() && (enqueues[e].0 as usize) < node_base {
            e += 1;
        }
        for (local, node) in nodes.iter_mut().enumerate() {
            let i = node_base + local;
            let router = &mut routers[local / c];
            node.release_replies(cycle);
            node.release_retries(cycle);
            while e < enqueues.len() && enqueues[e].0 as usize == i {
                node.enqueue(enqueues[e].1);
                e += 1;
            }
            if let Some(ev) = node.try_inject(cfg, router, cycle) {
                out.injected_flits += 1;
                out.note(OracleNote::Inject { app: ev.app });
                if ev.head {
                    out.note(OracleNote::Occupancy {
                        router: router.id,
                        port: PORT_LOCAL,
                        vc: ev.vc,
                        occupied: true,
                    });
                    // try_inject bumped the router's occupancy counters.
                    out.dirtied.push((base + local / c) as u32);
                    out.injected_packets[ev.app as usize] += 1;
                    if let Some(a) = analysis.as_deref_mut() {
                        if a.watch == Some(ev.packet_id) {
                            a.journey
                                .push((cycle, JourneyEvent::Injected { node: node.id }));
                        }
                    }
                }
            }
        }
    }

    fn inject_phase(&mut self) {
        let Network {
            cfg,
            routers,
            nodes,
            source,
            stats,
            next_pkt_id,
            cycle,
            analysis,
            oracle,
            active_mask,
            dirty_mask,
            fault,
            rngs,
            gen_scratch,
            phase_out,
            ..
        } = self;
        let degraded = fault.as_deref().and_then(|f| f.table.as_ref());
        Self::generate_packets(
            cfg,
            &mut **source,
            rngs,
            stats,
            next_pkt_id,
            degraded,
            *cycle,
            gen_scratch,
        );
        phase_out.record_notes = oracle.is_some();
        Self::inject_band(
            cfg,
            nodes,
            routers,
            0,
            *cycle,
            gen_scratch,
            analysis.as_mut(),
            phase_out,
        );
        stats.injected_flits += phase_out.injected_flits;
        for (a, n) in phase_out.injected_packets.iter().enumerate() {
            stats.injected_packets[a] += n;
        }
        for &g in &phase_out.dirtied {
            Self::mark_active(active_mask, g as usize);
            Self::mark_active(dirty_mask, g as usize);
        }
        if let Some(o) = oracle.as_deref_mut() {
            replay_notes(o, cfg, &phase_out.notes, *cycle);
        }
        phase_out.reset();
    }

    // ----------------------------------------------- phase 6: state update

    /// End-of-cycle state update over `routers`, writing the band's slice
    /// of the congestion view (`congestion.len() == routers.len()`, locally
    /// indexed). A router whose occupancy did not change this cycle would
    /// recompute the identical OVC registers and congestion export, and an
    /// idempotent policy update is a fixed point on unchanged registers —
    /// so with `may_skip` the whole update is elided for clean routers
    /// (`Router::occ_dirty` is the ground truth behind the former
    /// dirty-mask iteration). Analysis accumulates per-cycle occupancy
    /// sums, so it must come with `may_skip == false`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn update_band(
        cfg: &SimConfig,
        policy: &dyn PriorityPolicy,
        routers: &mut [Router],
        congestion: &mut [u16],
        may_skip: bool,
        cycle: u64,
        mut analysis: Option<&mut AnalysisState>,
        skipped: &mut u64,
    ) {
        debug_assert_eq!(routers.len(), congestion.len());
        for (local, r) in routers.iter_mut().enumerate() {
            if may_skip && !r.occ_dirty {
                *skipped += 1;
                continue;
            }
            r.occ_dirty = false;
            let (n, f) = r.count_occupancy();
            r.ovc_native = n;
            r.ovc_foreign = f;
            policy.update_router(r, cycle);
            congestion[local] = r.adaptive_occupancy(cfg);
            if let Some(a) = analysis.as_deref_mut() {
                a.occ_native += n as u64;
                a.occ_foreign += f as u64;
                let (reg, glob) = r.tag_occupancy(cfg);
                a.occ_regional += reg as u64;
                a.occ_global += glob as u64;
            }
        }
    }

    fn update_state_phase(&mut self) {
        let Network {
            cfg,
            policy,
            routers,
            congestion,
            cycle,
            analysis,
            stats,
            dirty_mask,
            force_exhaustive,
            policy_idempotent,
            ..
        } = self;
        let may_skip = !*force_exhaustive && analysis.is_none() && *policy_idempotent;
        Self::update_band(
            cfg,
            &**policy,
            routers,
            congestion,
            may_skip,
            *cycle,
            analysis.as_mut(),
            &mut stats.state_updates_skipped,
        );
        // Clean between ticks — the fast-forward precondition.
        dirty_mask.iter_mut().for_each(|w| *w = 0);
    }

    // ------------------------------------------------------------- queries

    /// Flits currently inside the network (buffers, links, ejection
    /// registers). `injected == ejected + in_network` always holds.
    pub fn flits_in_network(&self) -> u64 {
        let buffered: usize = self.routers.iter().map(Router::buffered_flits).sum();
        (buffered + self.in_flight.len() + self.eject_q.len()) as u64
    }

    /// Packets waiting in all source queues (open-loop backlog — grows
    /// without bound past saturation).
    pub fn total_backlog(&self) -> usize {
        self.nodes.iter().map(Node::backlog).sum()
    }

    /// Cycles since the last crossbar traversal or ejection (deadlock
    /// watchdog; meaningful only while traffic is offered).
    pub fn cycles_since_progress(&self) -> u64 {
        self.cycle.saturating_sub(self.stats.last_progress)
    }

    /// True when no flit is anywhere in the network or NIs.
    pub fn is_drained(&self) -> bool {
        self.flits_in_network() == 0
            && self.total_backlog() == 0
            && self.nodes.iter().all(|n| n.pending_replies() == 0)
    }

    /// Access the traffic source (e.g. to read scripted-source state).
    pub fn source(&self) -> &dyn TrafficSource {
        &*self.source
    }

    /// Enable run-time analysis instrumentation (link counts, occupancy
    /// breakdown, packet tracing). Counters start from zero.
    pub fn enable_analysis(&mut self) {
        self.analysis = Some(AnalysisState::new(self.cfg.num_routers()));
    }

    /// Trace one packet id's journey (requires analysis to be enabled).
    pub fn watch_packet(&mut self, id: u64) {
        self.analysis
            .as_mut()
            .expect("enable_analysis() first")
            .watch = Some(id);
    }

    /// Read the analysis state, if enabled.
    pub fn analysis(&self) -> Option<&AnalysisState> {
        self.analysis.as_ref()
    }

    /// Per-router adaptive-VC occupancy snapshot (previous cycle) — the
    /// same congestion view adaptive routing reads; useful for heatmaps and
    /// congestion analysis.
    pub fn congestion_snapshot(&self) -> &[u16] {
        &self.congestion
    }

    /// Name of the active priority policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The active priority policy (the oracle's policy-invariant checker
    /// consults it).
    pub fn policy(&self) -> &dyn PriorityPolicy {
        &*self.policy
    }

    /// Is router `idx` in the active set (has ≥ 1 occupied input VC)?
    pub fn router_is_active(&self, idx: usize) -> bool {
        self.active_mask[idx >> 6] >> (idx & 63) & 1 == 1
    }

    /// Name of the active routing algorithm.
    pub fn routing_name(&self) -> &'static str {
        self.routing.name()
    }
}

/// Build an arbitration request for a packet at a router.
#[inline]
fn arb_req(r: &Router, info: &PacketInfo) -> ArbReq {
    ArbReq {
        app: info.app,
        class: info.class,
        birth: info.birth,
        inject: info.inject,
        is_native: r.is_native(info.app),
    }
}
