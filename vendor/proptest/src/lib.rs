//! Offline vendored subset of `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the `proptest!` macro, `Strategy` over ranges / tuples /
//! `collection::vec` / `Just` / `prop_oneof!`, `ProptestConfig::with_cases`,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking — a failing case reports its generated inputs verbatim;
//! - case generation is seeded deterministically from the test name, so
//!   runs are reproducible by construction (no `PROPTEST_*` env handling);
//! - `prop_assume!` rejects by unwinding with a sentinel payload the runner
//!   recognizes, rather than a `TestCaseError::Reject` return.

pub mod collection;
pub mod strategy;

pub use strategy::{Just, Strategy};

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[doc(hidden)]
pub mod runner {
    use crate::ProptestConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Panic payload used by `prop_assume!` to signal a rejected case.
    pub const REJECT_SENTINEL: &str = "__proptest_stub_assume_reject__";

    pub fn is_reject(payload: &(dyn std::any::Any + Send)) -> bool {
        payload
            .downcast_ref::<&str>()
            .map(|s| *s == REJECT_SENTINEL)
            .or_else(|| {
                payload
                    .downcast_ref::<String>()
                    .map(|s| s == REJECT_SENTINEL)
            })
            .unwrap_or(false)
    }

    /// FNV-1a so each test gets a distinct but stable RNG stream.
    fn seed_of(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drive `case` until `cfg.cases` runs were accepted. Rejections
    /// (via `prop_assume!`) retry with fresh inputs, up to a global cap.
    pub fn run(name: &str, cfg: &ProptestConfig, case: impl Fn(&mut SmallRng)) {
        let mut rng = SmallRng::seed_from_u64(seed_of(name));
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let max_rejects = cfg.cases.saturating_mul(32).max(1024);
        while accepted < cfg.cases {
            match catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
                Ok(()) => accepted += 1,
                Err(payload) if is_reject(payload.as_ref()) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "{name}: prop_assume! rejected {rejected} cases \
                         (accepted only {accepted}/{})",
                        cfg.cases
                    );
                }
                Err(payload) => {
                    eprintln!("proptest: {name} failed after {accepted} passing case(s)");
                    resume_unwind(payload);
                }
            }
        }
    }
}

/// The proptest entry macro: each `fn` becomes a `#[test]` (the attribute is
/// written in the block, as real proptest expects) that runs its body over
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        @cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::runner::run(stringify!($name), &__cfg, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),*),
                        $(&$arg),*
                    );
                    let __res = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(__payload) = __res {
                        if !$crate::runner::is_reject(__payload.as_ref()) {
                            eprintln!("proptest inputs: {__inputs}");
                        }
                        ::std::panic::resume_unwind(__payload);
                    }
                });
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Uniform choice between strategies of one common type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($s:expr),+ $(,)? ) => {
        $crate::strategy::OneOf::new(vec![ $($s),+ ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Reject the current case (retry with new inputs) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            ::std::panic::panic_any($crate::runner::REJECT_SENTINEL);
        }
    };
}
