//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` expansions for
//! the offline serde facade: the facade blanket-implements both traits, so
//! the derives only need to exist, not generate impls.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
