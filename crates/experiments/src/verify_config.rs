//! `repro verify-config` — run the static deadlock-freedom and legality
//! verifier over the full shipped scheme × routing × region matrix, plus a
//! battery of deliberately broken configurations that must each be
//! rejected with a concrete witness.
//!
//! Every row of the positive matrix proves, for one `(region, routing)`
//! pair: escape-CDG acyclicity (Tarjan over the extended dependency
//! graph), escape connectedness, and all-pairs minimal-path legality; the
//! LBDR rows additionally apply the region-derived connectivity bits as a
//! link filter. Scheme parameters (STC rank totality, DPA hysteresis
//! bounds) are checked separately — they are routing-independent.

use metrics::Table;
use noc_sim::config::SimConfig;
use noc_sim::ids::{Coord, Port, PORT_EAST, PORT_WEST};
use noc_sim::region::RegionMap;
use noc_sim::routing::{escape_port, NextHops, RoutingAlgorithm, SelectCtx};
use noc_sim::topology::TopologyKind;
use noc_sim::verify::{Verifier, VerifyReport, Witness};
use rair::scheme::{Routing, Scheme};
use std::time::Instant;

/// One verified `(region, routing)` point of the positive matrix.
pub struct VerifyRow {
    pub region: &'static str,
    pub routing: &'static str,
    /// Whether LBDR connectivity bits confined the analysis to regions.
    pub lbdr: bool,
    pub channels: usize,
    pub dep_edges: usize,
    pub pairs: usize,
    pub violations: u64,
    pub millis: f64,
    pub first_witness: Option<String>,
}

/// The four shipped region maps for a topology's canonical config. Every
/// rectangular region spans at most half of each wrapping dimension, so
/// minimal paths between same-region routers never leave the rectangle —
/// LBDR confinement stays satisfiable on the torus and ring.
pub(crate) fn regions(cfg: &SimConfig) -> Vec<(&'static str, RegionMap)> {
    match cfg.topology {
        // 8×8 grids reuse the paper's exact layouts (Figs. 8/11/13).
        TopologyKind::Mesh | TopologyKind::Torus => vec![
            ("single", RegionMap::single(cfg)),
            ("halves", RegionMap::halves(cfg)),
            ("quadrants", RegionMap::quadrants(cfg)),
            ("six", RegionMap::six_regions(cfg)),
        ],
        TopologyKind::Ring => vec![
            ("single", RegionMap::single(cfg)),
            ("halves", RegionMap::halves(cfg)),
            ("quarters", RegionMap::grid(cfg, 4, 1)),
            ("eighths", RegionMap::grid(cfg, 8, 1)),
        ],
        TopologyKind::CMesh { .. } => vec![
            ("single", RegionMap::single(cfg)),
            ("halves", RegionMap::halves(cfg)),
            ("quadrants", RegionMap::quadrants(cfg)),
            ("columns", RegionMap::grid(cfg, cfg.width, 1)),
        ],
    }
}

/// The shipped schemes with representative parameters, each paired with
/// the application count it is configured for (the two-app figures use
/// two oracle intensities; the six-app workloads use online estimation).
fn schemes() -> Vec<(Scheme, usize)> {
    vec![
        (Scheme::RoRr, 6),
        (Scheme::RoAge, 6),
        (Scheme::ro_rank(vec![0.1, 0.9]), 2),
        (Scheme::ro_rank_online(6), 6),
        (Scheme::rair(), 6),
        (Scheme::rair_va_only(), 6),
        (Scheme::rair_native_high(), 6),
        (Scheme::rair_foreign_high(), 6),
    ]
}

const ROUTINGS: [Routing; 3] = [Routing::Xy, Routing::Local, Routing::Dbar];

/// Run the positive matrix: every shipped region × routing, bare and
/// LBDR-confined, on the Table 1 mesh.
pub fn run_matrix() -> Vec<VerifyRow> {
    run_matrix_for(TopologyKind::Mesh)
}

/// Run the 4-region × 3-routing × {bare, LBDR} matrix on the canonical
/// config of `kind` ([`SimConfig::table1_topology`]).
pub fn run_matrix_for(kind: TopologyKind) -> Vec<VerifyRow> {
    let cfg = SimConfig::table1_topology(kind);
    let mut rows = Vec::new();
    for (rname, region) in regions(&cfg) {
        for routing in ROUTINGS {
            let alg = routing.build();
            for lbdr in [false, true] {
                let t0 = Instant::now();
                let report = if lbdr {
                    rair::verify::verify_lbdr(&cfg, &region, alg.as_ref())
                } else {
                    Verifier::new(&cfg, alg.as_ref()).run()
                };
                rows.push(row(rname, routing.label(), lbdr, &report, t0));
            }
        }
    }
    rows
}

fn row(
    region: &'static str,
    routing: &'static str,
    lbdr: bool,
    r: &VerifyReport,
    t0: Instant,
) -> VerifyRow {
    VerifyRow {
        region,
        routing,
        lbdr,
        channels: r.channels,
        dep_edges: r.dep_edges,
        pairs: r.pairs_checked,
        violations: r.violation_count,
        millis: t0.elapsed().as_secs_f64() * 1e3,
        first_witness: r.violations.first().map(std::string::ToString::to_string),
    }
}

/// Check every shipped scheme's parameters; returns `(label, defects)`.
pub fn scheme_checks() -> Vec<(String, Vec<String>)> {
    schemes()
        .iter()
        .map(|(s, apps)| (s.label(), rair::verify::check_scheme(s, *apps)))
        .collect()
}

/// Render the matrix as a report table.
pub fn table(rows: &[VerifyRow]) -> Table {
    let mut t = Table::new(
        "Static verification — escape-CDG acyclicity + region legality",
        &[
            "region",
            "routing",
            "lbdr",
            "channels",
            "dep edges",
            "pairs",
            "violations",
            "ms",
        ],
    );
    for r in rows {
        t.row(vec![
            r.region.to_string(),
            r.routing.to_string(),
            if r.lbdr { "yes" } else { "no" }.to_string(),
            r.channels.to_string(),
            r.dep_edges.to_string(),
            r.pairs.to_string(),
            r.violations.to_string(),
            format!("{:.1}", r.millis),
        ]);
    }
    t
}

/// Serialize the matrix as JSON (hand-rolled — the vendored serde is a
/// stub).
pub fn to_json(rows: &[VerifyRow]) -> String {
    let mut out = String::from("{\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"region\": \"{}\", \"routing\": \"{}\", \"lbdr\": {}, \
             \"channels\": {}, \"dep_edges\": {}, \"pairs\": {}, \
             \"violations\": {}, \"millis\": {:.3}}}{}\n",
            r.region,
            r.routing,
            r.lbdr,
            r.channels,
            r.dep_edges,
            r.pairs,
            r.violations,
            r.millis,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One deliberately broken configuration and the verifier's verdict.
pub struct NegativeCase {
    pub name: &'static str,
    /// Did the verifier reject it (as it must)?
    pub rejected: bool,
    /// The first witness (cycle, unreachable pair, …) or defect message.
    pub witness: String,
}

/// Mixed dimension-order "escape": XY toward even-parity destinations, YX
/// toward odd — the union of both turn sets allows all eight turns, a
/// textbook cyclic CDG. Used only to prove the verifier finds the cycle.
struct MixedDorEscape;

impl MixedDorEscape {
    fn esc(cur: Coord, dst: Coord) -> Port {
        if (dst.x + dst.y).is_multiple_of(2) {
            escape_port(cur, dst) // XY
        } else if dst.y != cur.y {
            // YX: exhaust Y first.
            if dst.y > cur.y {
                noc_sim::ids::PORT_SOUTH
            } else {
                noc_sim::ids::PORT_NORTH
            }
        } else if dst.x > cur.x {
            PORT_EAST
        } else {
            PORT_WEST
        }
    }
}

impl RoutingAlgorithm for MixedDorEscape {
    fn name(&self) -> &'static str {
        "MixedDOR"
    }
    fn adaptive_ports(&self, _cfg: &SimConfig, cur: Coord, dst: Coord) -> [Option<Port>; 2] {
        [Some(Self::esc(cur, dst)), None]
    }
    fn select(&self, _ctx: &SelectCtx<'_>, _cands: &[Port]) -> usize {
        0
    }
    fn next_hops(&self, _cfg: &SimConfig, cur: Coord, dst: Coord) -> NextHops {
        NextHops {
            adaptive: [None, None],
            escape: Self::esc(cur, dst),
            escape_lane: 0,
        }
    }
}

/// A torus/ring "escape" that follows the correct minimal dimension-order
/// port but pins every packet to dateline lane 0: the wrap link closes the
/// lane-0 channel ring, a textbook cyclic escape CDG on any wrapping
/// topology. Only the verifier ever sees it — it exists to prove the CDG
/// pass extracts the wrap cycle when the dateline lane switch is missing.
pub struct NoDatelineEscape;

impl RoutingAlgorithm for NoDatelineEscape {
    fn name(&self) -> &'static str {
        "NoDateline"
    }
    fn adaptive_ports(&self, _cfg: &SimConfig, _cur: Coord, _dst: Coord) -> [Option<Port>; 2] {
        [None, None]
    }
    fn select(&self, _ctx: &SelectCtx<'_>, _cands: &[Port]) -> usize {
        0
    }
    fn next_hops(&self, cfg: &SimConfig, cur: Coord, dst: Coord) -> NextHops {
        let (escape, _lane) = noc_sim::topology::escape_hop(cfg, cur, dst);
        NextHops {
            adaptive: [None, None],
            escape,
            escape_lane: 0,
        }
    }
}

/// The torus negative case behind `verify-config --topology torus
/// --inject-cyclic`: without the dateline lane switch the verifier must
/// reject the escape network with a concrete wrap-cycle witness.
pub fn torus_no_dateline_case() -> NegativeCase {
    let cfg = SimConfig::table1_topology(TopologyKind::Torus);
    let r = Verifier::new(&cfg, &NoDatelineEscape).run();
    case("torus-no-dateline-escape", &r, |w| {
        matches!(w, Witness::Cycle(_))
    })
}

/// Run the injected-fault battery. Every case must come back `rejected`
/// with a printed witness.
pub fn negative_battery() -> Vec<NegativeCase> {
    let cfg = SimConfig::table1();
    let mut cases = Vec::new();

    // 1. Escape VCs disabled under fully-adaptive routing: the adaptive
    //    CDG alone must carry deadlock freedom, and it cannot.
    let r = Verifier::new(&cfg, &noc_sim::routing::DuatoLocalAdaptive)
        .without_escape()
        .run();
    cases.push(case("escape-vcs-disabled", &r, |w| {
        matches!(w, Witness::Cycle(_))
    }));

    // 2. A "routing scheme" whose escape function mixes XY and YX by
    //    destination parity: all eight turns allowed, cyclic escape CDG.
    let r = Verifier::new(&cfg, &MixedDorEscape).run();
    cases.push(case("mixed-dor-escape", &r, |w| {
        matches!(w, Witness::Cycle(_))
    }));

    // 3. A region map that severs a dimension: every east-west link
    //    between x=3 and x=4 removed.
    let r = Verifier::new(&cfg, &noc_sim::routing::DuatoLocalAdaptive)
        .with_link_filter(|router, port| {
            let c = SimConfig::table1().coord_of(router);
            !((c.x == 3 && port == PORT_EAST) || (c.x == 4 && port == PORT_WEST))
        })
        .run();
    cases.push(case("severed-dimension", &r, |w| {
        matches!(
            w,
            Witness::UnreachablePair { .. } | Witness::NoEscape { .. }
        )
    }));

    // 4. Inconsistent LBDR connectivity bits (asymmetric link).
    let mut bits = rair::lbdr::ConnectivityBits::full(&cfg);
    bits.sever(27, PORT_EAST);
    let errs = bits.check_consistency(&cfg);
    cases.push(NegativeCase {
        name: "inconsistent-lbdr-bits",
        rejected: !errs.is_empty(),
        witness: errs.first().cloned().unwrap_or_default(),
    });

    // 5. A NaN STC intensity: the rank comparison is not a total order.
    let errs = rair::verify::check_scheme(&Scheme::ro_rank(vec![0.1, f64::NAN]), 2);
    cases.push(NegativeCase {
        name: "nan-rank-intensity",
        rejected: !errs.is_empty(),
        witness: errs.first().cloned().unwrap_or_default(),
    });

    cases
}

fn case(name: &'static str, r: &VerifyReport, want: impl Fn(&Witness) -> bool) -> NegativeCase {
    let hit = r.violations.iter().find(|v| want(&v.witness));
    NegativeCase {
        name,
        rejected: !r.ok() && hit.is_some(),
        witness: hit
            .map(std::string::ToString::to_string)
            .or_else(|| r.violations.first().map(std::string::ToString::to_string))
            .unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_matrix_is_clean() {
        let rows = run_matrix();
        assert_eq!(rows.len(), 4 * 3 * 2);
        for r in &rows {
            assert_eq!(
                r.violations, 0,
                "{}/{} (lbdr {}): {:?}",
                r.region, r.routing, r.lbdr, r.first_witness
            );
        }
        for (label, errs) in scheme_checks() {
            assert!(errs.is_empty(), "{label}: {errs:?}");
        }
    }

    #[test]
    fn per_topology_matrices_are_clean() {
        for kind in [
            TopologyKind::Torus,
            TopologyKind::Ring,
            TopologyKind::CMesh { concentration: 4 },
        ] {
            let rows = run_matrix_for(kind);
            assert_eq!(rows.len(), 4 * 3 * 2, "{}", kind.label());
            for r in &rows {
                assert_eq!(
                    r.violations,
                    0,
                    "{} {}/{} (lbdr {}): {:?}",
                    kind.label(),
                    r.region,
                    r.routing,
                    r.lbdr,
                    r.first_witness
                );
            }
        }
    }

    #[test]
    fn torus_without_datelines_is_rejected() {
        let c = torus_no_dateline_case();
        assert!(c.rejected, "no-dateline torus escape was not rejected");
        assert!(!c.witness.is_empty());
    }

    #[test]
    fn every_injected_fault_is_rejected_with_witness() {
        for c in negative_battery() {
            assert!(c.rejected, "{} was not rejected", c.name);
            assert!(!c.witness.is_empty(), "{} has no witness", c.name);
        }
    }

    #[test]
    fn json_is_balanced() {
        let j = to_json(&run_matrix());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"routing\": \"DBAR\""));
    }
}
