//! Figure 9 — impact of multi-stage prioritization.
//!
//! Two applications on the mesh halves (Fig. 8): App 0 at 10 % of its
//! saturation load with a fraction `p` of inter-region traffic, App 1 at
//! 90 %, all intra-region. Sweeping `p` from 0 % to 100 % compares RO_RR
//! against RAIR with MSP at the VA stage only (`RAIR_VA`) and at both VA
//! and SA stages (`RAIR_VA+SA`). Paper claims at p = 100 %: RAIR_VA+SA
//! reduces App 0's APL by 18.9 % with < 3 % increase for App 1, and
//! RAIR_VA+SA > RAIR_VA across the whole range.

use crate::figs::two_app_rates;
use crate::runner::{run_one, run_parallel, ExpConfig, Job, RunResult};
use crate::sweep::build_network;
use metrics::report::f2;
use metrics::Table;
use noc_sim::config::SimConfig;
use rair::scheme::{Routing, Scheme};
use traffic::scenario::two_app;

/// One point of a two-application sweep.
#[derive(Debug, Clone)]
pub struct TwoAppPoint {
    /// Inter-region fraction of App 0's traffic.
    pub p: f64,
    /// APL of App 0 and App 1 (cycles).
    pub apl: [f64; 2],
}

/// A set of labelled series over the `p` sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    pub series: Vec<(String, Vec<TwoAppPoint>)>,
}

impl SweepResult {
    /// Point of `series_label` at inter-region fraction `p`.
    pub fn point(&self, series_label: &str, p: f64) -> &TwoAppPoint {
        self.series
            .iter()
            .find(|(l, _)| l == series_label)
            .unwrap_or_else(|| panic!("no series {series_label}"))
            .1
            .iter()
            .find(|pt| (pt.p - p).abs() < 1e-9)
            .unwrap_or_else(|| panic!("no point p={p}"))
    }
}

/// The swept inter-region fractions.
pub fn p_values(ec: &ExpConfig) -> Vec<f64> {
    if ec.quick {
        vec![0.0, 0.5, 1.0]
    } else {
        (0..=10).map(|i| i as f64 / 10.0).collect()
    }
}

/// Generic two-application sweep over (label, scheme, routing) series —
/// shared by Figures 9 and 10.
pub(crate) fn sweep(ec: &ExpConfig, series_defs: &[(&str, Scheme, Routing)]) -> SweepResult {
    let (rate0, rate1) = two_app_rates(ec);
    let ps = p_values(ec);
    let mut jobs: Vec<Job> = Vec::new();
    for (label, scheme, routing) in series_defs.iter().cloned() {
        for &p in &ps {
            let ec = *ec;
            let scheme = scheme.clone();
            let label = label.to_string();
            jobs.push(Job::new(format!("{label}/p={p}"), move || {
                let cfg = SimConfig::table1();
                let (region, scenario) = two_app(&cfg, p, rate0, rate1);
                let net =
                    build_network(&cfg, &region, &scheme, routing, Box::new(scenario), ec.seed);
                run_one(label.clone(), net, &ec)
            }));
        }
    }
    let results = run_parallel(jobs);
    let mut series = Vec::new();
    let mut it = results.into_iter();
    for (label, _, _) in series_defs {
        let pts: Vec<TwoAppPoint> = ps
            .iter()
            .map(|&p| {
                let r: RunResult = it.next().unwrap();
                TwoAppPoint {
                    p,
                    apl: [r.app_apl(0), r.app_apl(1)],
                }
            })
            .collect();
        series.push((label.to_string(), pts));
    }
    SweepResult { series }
}

/// Run the Figure 9 experiment.
pub fn run(ec: &ExpConfig) -> SweepResult {
    sweep(
        ec,
        &[
            ("RO_RR", Scheme::RoRr, Routing::Local),
            ("RAIR_VA", Scheme::rair_va_only(), Routing::Local),
            ("RAIR_VA+SA", Scheme::rair(), Routing::Local),
        ],
    )
}

/// Render the sweep as the figure's series table.
pub fn table(title: &str, res: &SweepResult) -> Table {
    let mut header: Vec<String> = vec!["p".into()];
    for (label, _) in &res.series {
        header.push(format!("{label}:App0"));
        header.push(format!("{label}:App1"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(title, &header_refs);
    let n = res.series[0].1.len();
    for i in 0..n {
        let mut row = vec![format!("{:.0}%", res.series[0].1[i].p * 100.0)];
        for (_, pts) in &res.series {
            row.push(f2(pts[i].apl[0]));
            row.push(f2(pts[i].apl[1]));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> SweepResult {
        SweepResult {
            series: vec![
                (
                    "RO_RR".into(),
                    vec![
                        TwoAppPoint {
                            p: 0.0,
                            apl: [18.0, 25.0],
                        },
                        TwoAppPoint {
                            p: 1.0,
                            apl: [37.0, 32.0],
                        },
                    ],
                ),
                (
                    "RAIR_VA+SA".into(),
                    vec![
                        TwoAppPoint {
                            p: 0.0,
                            apl: [18.0, 25.0],
                        },
                        TwoAppPoint {
                            p: 1.0,
                            apl: [28.0, 33.0],
                        },
                    ],
                ),
            ],
        }
    }

    #[test]
    fn point_lookup() {
        let r = synthetic();
        assert_eq!(r.point("RO_RR", 1.0).apl[0], 37.0);
        assert_eq!(r.point("RAIR_VA+SA", 0.0).apl[1], 25.0);
    }

    #[test]
    #[should_panic(expected = "no series")]
    fn missing_series_panics() {
        synthetic().point("NOPE", 0.0);
    }

    #[test]
    #[should_panic(expected = "no point")]
    fn missing_point_panics() {
        synthetic().point("RO_RR", 0.37);
    }

    #[test]
    fn table_has_row_per_p_and_column_per_series_app() {
        let r = synthetic();
        let t = table("t", &r);
        assert_eq!(t.num_rows(), 2);
        let s = t.render();
        assert!(s.contains("RO_RR:App0"));
        assert!(s.contains("RAIR_VA+SA:App1"));
        assert!(s.contains("100%"));
    }

    #[test]
    fn p_values_quick_vs_full() {
        let quick = ExpConfig::quick();
        let full = ExpConfig::full();
        assert_eq!(p_values(&quick).len(), 3);
        assert_eq!(p_values(&full).len(), 11);
        assert_eq!(*p_values(&full).last().unwrap(), 1.0);
    }
}
