//! Figure 10 — impact of the routing algorithm.
//!
//! The same two-application scenario as Figure 9, comparing
//! {RO_RR, RAIR} × {local adaptive routing, DBAR}. Paper claims at
//! p = 100 %: RAIR_DBAR reduces APL by 24.8 % (App 0) and 3.3 % (App 1)
//! versus RO_RR_Local, and by 12.8 % (App 0, with only 1.8 % degradation
//! on App 1) versus RO_RR_DBAR — i.e. most of the win comes from RAIR's
//! contention reduction, not from the better route selection.

use crate::figs::fig9::{sweep, table as series_table, SweepResult};
use crate::runner::ExpConfig;
use metrics::Table;
use rair::scheme::{Routing, Scheme};

/// Run the Figure 10 experiment.
pub fn run(ec: &ExpConfig) -> SweepResult {
    sweep(
        ec,
        &[
            ("RO_RR_Local", Scheme::RoRr, Routing::Local),
            ("RAIR_Local", Scheme::rair(), Routing::Local),
            ("RO_RR_DBAR", Scheme::RoRr, Routing::Dbar),
            ("RAIR_DBAR", Scheme::rair(), Routing::Dbar),
        ],
    )
}

/// Render the figure's table.
pub fn table(res: &SweepResult) -> Table {
    series_table(
        "Fig.10 — APL vs inter-region fraction p (routing algorithms)",
        res,
    )
}
