//! Multi-Stage Prioritization (MSP) — §IV.B of the paper.
//!
//! MSP enforces the region-aware priority at the arbitration steps where
//! traffic flows actually contend:
//!
//! * **VA_in** — untouched: each input VC arbitrates independently, flows
//!   do not contend, so MSP adds nothing (and costs nothing) there.
//! * **VA_out** — the VC-regionalization priority: global output VCs always
//!   favor foreign traffic; regional output VCs follow DPA.
//! * **SA_in / SA_out** — the DPA priority between native and foreign.
//!
//! The stages are individually switchable to reproduce the Fig. 9 ablation
//! (`RAIR_VA` vs `RAIR_VA+SA`).

use serde::{Deserialize, Serialize};

/// Which arbitration steps enforce the region-aware priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MspConfig {
    /// Apply VC regionalization + DPA priority at VA output arbitration.
    pub at_va_out: bool,
    /// Apply DPA priority at both switch-allocation steps (the paper uses
    /// the *same* DPA priority for VA_out, SA_in and SA_out at any given
    /// time, so the two SA steps toggle together).
    pub at_sa: bool,
}

impl MspConfig {
    /// Full MSP (`RAIR_VA+SA`) — the complete RAIR configuration.
    pub fn va_and_sa() -> Self {
        Self {
            at_va_out: true,
            at_sa: true,
        }
    }

    /// VA-stage only (`RAIR_VA` in Fig. 9).
    pub fn va_only() -> Self {
        Self {
            at_va_out: true,
            at_sa: false,
        }
    }

    /// No prioritization anywhere — degenerates to round-robin; useful as a
    /// sanity baseline in tests.
    pub fn none() -> Self {
        Self {
            at_va_out: false,
            at_sa: false,
        }
    }

    /// Short suffix for scheme names in reports.
    pub fn label(&self) -> &'static str {
        match (self.at_va_out, self.at_sa) {
            (true, true) => "VA+SA",
            (true, false) => "VA",
            (false, true) => "SA",
            (false, false) => "none",
        }
    }
}

impl Default for MspConfig {
    fn default() -> Self {
        Self::va_and_sa()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_labels() {
        assert_eq!(MspConfig::va_and_sa().label(), "VA+SA");
        assert_eq!(MspConfig::va_only().label(), "VA");
        assert_eq!(MspConfig::none().label(), "none");
        assert_eq!(MspConfig::default(), MspConfig::va_and_sa());
    }
}
