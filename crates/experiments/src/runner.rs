//! Simulation runner: executes configured networks (optionally in parallel
//! across a sweep) and extracts per-application results.
//!
//! The parallel runner is hardened against the three ways a long sweep
//! dies in practice:
//!
//! - **Panics**: each job runs under `catch_unwind` and is retried once
//!   (a panicking job usually reproduces — the retry distinguishes a
//!   deterministic kernel bug from a transient host hiccup). A job that
//!   panics twice is reported with its label and both messages; the
//!   remaining jobs still complete, and `run_parallel` re-raises an
//!   aggregate failure only after the whole sweep has finished.
//! - **Runaway configurations**: [`ExpConfig::cycle_budget`] caps the
//!   simulated cycles of one run. The cap lives in the cycle domain, not
//!   wall-clock (`Instant` is banned by the determinism lint): the kernel
//!   is deterministic, so "this config is too slow" is exactly "this
//!   config was asked to simulate too many cycles". A clamped run is
//!   marked [`RunResult::truncated`] instead of silently passing.
//! - **Interruption**: [`run_parallel_checkpointed`] appends every
//!   finished result to a checkpoint file and, on restart, resumes the
//!   sweep by replaying completed labels from it instead of re-running
//!   them. The file is deleted once every job has succeeded.

use metrics::LatencyKind;
use noc_sim::network::Network;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Warmup/measurement window and seed for one experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExpConfig {
    pub warmup: u64,
    pub measure: u64,
    pub seed: u64,
    /// Quick mode trades statistical tightness for speed (used by the
    /// Criterion benches and the test suite).
    pub quick: bool,
    /// Hard cap on simulated cycles per run (warmup + measurement are
    /// clamped to fit). The cycle-domain analogue of a per-config timeout;
    /// `None` means unbounded.
    pub cycle_budget: Option<u64>,
    /// Opt-in sweep pruning (`repro --prune`): curve points the analytical
    /// model classifies as deep-in-saturation or trivially stable run with
    /// shortened windows (a confirmation run) instead of full-length ones.
    /// Off by default so default digests are untouched.
    pub prune: bool,
}

impl ExpConfig {
    /// The paper's windows: 10K warmup + 100K measurement cycles (§V.A).
    pub fn full() -> Self {
        Self {
            warmup: 10_000,
            measure: 100_000,
            seed: 0xC0FFEE,
            quick: false,
            cycle_budget: None,
            prune: false,
        }
    }

    /// Reduced windows for benches/tests.
    pub fn quick() -> Self {
        Self {
            warmup: 2_000,
            measure: 15_000,
            seed: 0xC0FFEE,
            quick: true,
            cycle_budget: None,
            prune: false,
        }
    }

    /// Cap simulated cycles per run (see [`ExpConfig::cycle_budget`]).
    #[must_use]
    pub fn with_budget(mut self, cycles: u64) -> Self {
        self.cycle_budget = Some(cycles);
        self
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Label identifying the run (scheme, parameters…).
    pub label: String,
    /// Mean network latency (injection→ejection) per application; `None`
    /// when the application delivered no packets in the window.
    pub apl: Vec<Option<f64>>,
    /// Mean total latency (generation→ejection) per application.
    pub total_latency: Vec<Option<f64>>,
    /// Packets delivered in the measurement window.
    pub delivered: u64,
    /// Flit throughput in flits/cycle/node.
    pub throughput: f64,
    /// Cycles simulated (warmup + measurement).
    pub cycles: u64,
    /// Routers in the mesh.
    pub routers: usize,
    /// Router×phase visits elided by the active-set fast path.
    pub router_cycles_skipped: u64,
    /// End-of-cycle router state updates elided.
    pub state_updates_skipped: u64,
    /// Whole cycles jumped over by the idle fast-forward without ticking.
    pub idle_cycles_skipped: u64,
    /// Whether the invariant oracle was active during the run.
    pub oracle_enabled: bool,
    /// Invariant violations the oracle recorded (0 when disabled).
    pub oracle_violations: u64,
    /// Whether [`ExpConfig::cycle_budget`] clamped the warmup/measurement
    /// windows, i.e. the run timed out in the cycle domain.
    pub truncated: bool,
    /// Link-level retransmissions performed (0 without a fault timeline).
    pub flits_retransmitted: u64,
    /// Stranded packets re-injected by the source-side retry path.
    pub packets_retried: u64,
    /// Packets dropped as undeliverable (drop ledger total).
    pub packets_dropped: u64,
    /// Routing reconfigurations after permanent faults.
    pub reconfigurations: u64,
}

impl RunResult {
    /// Unweighted mean of the per-application APLs (how the paper averages
    /// "over all applications"), restricted to `apps` if given. Applications
    /// that delivered nothing in the window — routine at saturation — are
    /// skipped; `NaN` is returned when none delivered, so a starved sweep
    /// point shows up in tables instead of tearing down the run.
    pub fn mean_apl(&self, apps: Option<&[usize]>) -> f64 {
        let vals: Vec<f64> = match apps {
            Some(idx) => idx.iter().filter_map(|&a| self.apl[a]).collect(),
            None => self.apl.iter().flatten().copied().collect(),
        };
        if vals.is_empty() {
            return f64::NAN;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    /// APL of one application, or `None` if it delivered nothing.
    pub fn try_app_apl(&self, app: usize) -> Option<f64> {
        self.apl[app]
    }

    /// APL of one application; `NaN` when it delivered nothing (so ratios
    /// and tables degrade visibly instead of panicking at saturation).
    pub fn app_apl(&self, app: usize) -> f64 {
        self.apl[app].unwrap_or(f64::NAN)
    }

    /// Fold every numeric field (everything but the label, which is
    /// presentation) into a digest. Floats go in by bit pattern and
    /// `None` latencies get a distinct marker, so the fold distinguishes
    /// every state the checkpoint format can round-trip.
    pub fn digest_into(&self, d: &mut metrics::Digest) {
        for v in [&self.apl, &self.total_latency] {
            d.write_u64(v.len() as u64);
            for o in v {
                match o {
                    Some(x) => {
                        d.write_u64(1);
                        d.write_f64(*x);
                    }
                    None => d.write_u64(0),
                }
            }
        }
        d.write_u64(self.delivered);
        d.write_f64(self.throughput);
        d.write_u64(self.cycles);
        d.write_u64(self.routers as u64);
        d.write_u64(self.router_cycles_skipped);
        d.write_u64(self.state_updates_skipped);
        d.write_u64(self.idle_cycles_skipped);
        d.write_u64(u64::from(self.oracle_enabled));
        d.write_u64(self.oracle_violations);
        d.write_u64(u64::from(self.truncated));
        d.write_u64(self.flits_retransmitted);
        d.write_u64(self.packets_retried);
        d.write_u64(self.packets_dropped);
        d.write_u64(self.reconfigurations);
    }

    /// One-line report of how much per-cycle kernel work the active-set
    /// fast path and the idle fast-forward elided during this run.
    pub fn kernel_summary(&self) -> String {
        let visits = self.cycles * self.routers as u64;
        metrics::report::kernel_summary(
            visits * 3,
            self.router_cycles_skipped,
            visits,
            self.state_updates_skipped,
            self.cycles,
            self.idle_cycles_skipped,
        )
    }
}

/// Run one already-built network through warmup + measurement and collect
/// the result.
pub fn run_one(label: impl Into<String>, mut net: Network, cfg: &ExpConfig) -> RunResult {
    let budget = cfg.cycle_budget.unwrap_or(u64::MAX);
    let warmup = cfg.warmup.min(budget);
    let measure = cfg.measure.min(budget - warmup);
    let truncated = (warmup, measure) != (cfg.warmup, cfg.measure);
    net.run_warmup_measure(warmup, measure);
    let rec = &net.stats.recorder;
    let napps = rec.num_apps();
    RunResult {
        label: label.into(),
        apl: (0..napps)
            .map(|a| rec.app(a).mean(LatencyKind::Network))
            .collect(),
        total_latency: (0..napps)
            .map(|a| rec.app(a).mean(LatencyKind::Total))
            .collect(),
        delivered: rec.delivered(),
        throughput: net.stats.throughput(net.cycle(), net.cfg.num_nodes()),
        cycles: net.cycle(),
        routers: net.cfg.num_routers(),
        router_cycles_skipped: net.stats.router_cycles_skipped,
        state_updates_skipped: net.stats.state_updates_skipped,
        idle_cycles_skipped: net.stats.idle_cycles_skipped,
        oracle_enabled: net.oracle_enabled(),
        oracle_violations: net.stats.oracle_violation_count,
        truncated,
        flits_retransmitted: net.stats.flits_retransmitted,
        packets_retried: net.stats.packets_retried,
        packets_dropped: net.stats.packets_dropped,
        reconfigurations: net.stats.reconfigurations,
    }
}

/// A deferred, labeled simulation job for the parallel sweep runner. The
/// label travels with the job so a panic can be attributed even though the
/// closure never produced a `RunResult`; the closure is `Fn` (not
/// `FnOnce`) so a panicking job can be retried once.
pub struct Job {
    label: String,
    run: Box<dyn Fn() -> RunResult + Send>,
}

impl Job {
    pub fn new(label: impl Into<String>, run: impl Fn() -> RunResult + Send + 'static) -> Job {
        Job {
            label: label.into(),
            run: Box::new(run),
        }
    }

    pub fn label(&self) -> &str {
        &self.label
    }

    /// Run the job, retrying once on panic (simulation jobs are
    /// deterministic, so a reproduced panic is a real kernel/config bug;
    /// a one-off is a host-level hiccup the sweep should survive). A
    /// double panic becomes a labeled error carrying both messages.
    fn execute(&self) -> Result<RunResult, JobError> {
        let attempt = || catch_unwind(AssertUnwindSafe(|| (self.run)()));
        match attempt() {
            Ok(r) => Ok(r),
            Err(first) => {
                eprintln!("[sweep] job '{}' panicked; retrying once", self.label);
                attempt().map_err(|second| JobError {
                    label: self.label.clone(),
                    message: format!(
                        "panicked twice (first: {}; retry: {})",
                        panic_message(first.as_ref()),
                        panic_message(second.as_ref())
                    ),
                })
            }
        }
    }
}

/// Best-effort extraction of a human-readable panic message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(std::string::ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// A job that panicked instead of producing a result.
#[derive(Debug, Clone)]
pub struct JobError {
    pub label: String,
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job '{}' panicked: {}", self.label, self.message)
    }
}

/// Resolve the sweep worker count: a parseable `RAIR_THREADS` value wins
/// (clamped to at least 1), otherwise every available core is used; either
/// way no more workers than jobs are spawned. Parallelism never changes
/// results — runs are independent and deterministic — so the override is
/// purely about machine sharing.
pub(crate) fn worker_count_from(env_threads: Option<&str>, jobs: usize) -> usize {
    let (count, warning) = resolve_worker_count(env_threads, jobs);
    if let Some(w) = warning {
        eprintln!("{w}");
    }
    count
}

/// Pure core of [`worker_count_from`]: returns the worker count plus the
/// stderr warning to emit when `RAIR_THREADS` is set but unparseable, so
/// the warning path is unit-testable without capturing stderr. A silent
/// fallback here cost a debugging session once — `RAIR_THREADS=all` ran a
/// 1000-job sweep on every core of a shared box.
fn resolve_worker_count(env_threads: Option<&str>, jobs: usize) -> (usize, Option<String>) {
    let fallback = || std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let (count, warning) = match env_threads {
        None => (fallback(), None),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(t) => (t.max(1), None),
            Err(_) => {
                let f = fallback();
                (
                    f,
                    Some(format!(
                        "[sweep] warning: RAIR_THREADS={s:?} is not a thread count; \
                         falling back to {f} workers (available parallelism)"
                    )),
                )
            }
        },
    };
    (count.min(jobs), warning)
}

/// Worker-pool core shared by the plain and checkpointed runners: execute
/// `(original index, job)` pairs, invoking `on_success` for each completed
/// result (the checkpoint append hook). `total`/`already` shape the
/// progress messages when part of the sweep was pre-resolved from a
/// checkpoint.
fn run_indexed(
    jobs: Vec<(usize, Job)>,
    total: usize,
    already: usize,
    on_success: &(dyn Fn(&RunResult) + Sync),
) -> Vec<(usize, Result<RunResult, JobError>)> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let done = AtomicUsize::new(already);
    let handle = |(idx, job): (usize, Job)| {
        let r = job.execute();
        if let Ok(ok) = &r {
            on_success(ok);
        }
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        if total > 1 {
            eprintln!("[sweep] {d}/{total} done ({})", job.label());
        }
        (idx, r)
    };
    let workers = worker_count_from(std::env::var("RAIR_THREADS").ok().as_deref(), jobs.len());
    if workers <= 1 {
        return jobs.into_iter().map(handle).collect();
    }
    let queue: Mutex<Vec<(usize, Job)>> = Mutex::new(jobs.into_iter().rev().collect());
    let results: Mutex<Vec<(usize, Result<RunResult, JobError>)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = queue.lock().unwrap().pop();
                let Some(pair) = job else { break };
                let out = handle(pair);
                results.lock().unwrap().push(out);
            });
        }
    });
    results.into_inner().unwrap()
}

/// Execute jobs across worker threads (one simulation per thread; see
/// [`worker_count_from`] for the `RAIR_THREADS` override). Results are
/// returned in job order; a job that panics twice becomes an `Err` while
/// every other job still runs to completion. Progress is reported on
/// stderr as jobs finish.
pub fn run_parallel_results(jobs: Vec<Job>) -> Vec<Result<RunResult, JobError>> {
    let n = jobs.len();
    let mut out: Vec<Option<Result<RunResult, JobError>>> = (0..n).map(|_| None).collect();
    for (idx, r) in run_indexed(jobs.into_iter().enumerate().collect(), n, 0, &|_| {}) {
        out[idx] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect()
}

/// Version tag guarding checkpoint lines against stale formats; bump when
/// the [`RunResult`] line layout changes so old files are ignored, not
/// misparsed.
const CHECKPOINT_TAG: &str = "rair-ckpt-v1";

pub(crate) fn esc_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
}

pub(crate) fn unesc_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some(o) => {
                out.push('\\');
                out.push(o);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Exact (bit-level) float round-trip: decimal formatting would perturb
/// resumed results relative to a straight-through run.
fn f64_field(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_f64_field(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// `Vec<Option<f64>>` as one field: `-` for the empty vector, else a
/// comma list with `_` marking `None` (so `[]` and `[None]` stay distinct).
fn latency_field(v: &[Option<f64>]) -> String {
    if v.is_empty() {
        return "-".into();
    }
    v.iter()
        .map(|o| o.map_or_else(|| "_".into(), f64_field))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_latency_field(s: &str) -> Option<Vec<Option<f64>>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split(',')
        .map(|t| {
            if t == "_" {
                Some(None)
            } else {
                parse_f64_field(t).map(Some)
            }
        })
        .collect()
}

/// One completed result as a single checkpoint line (tab-separated,
/// version-tagged, floats bit-exact).
pub(crate) fn checkpoint_line(r: &RunResult) -> String {
    format!(
        "{CHECKPOINT_TAG}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        esc_label(&r.label),
        r.delivered,
        f64_field(r.throughput),
        r.cycles,
        r.routers,
        r.router_cycles_skipped,
        r.state_updates_skipped,
        r.idle_cycles_skipped,
        u8::from(r.oracle_enabled),
        r.oracle_violations,
        u8::from(r.truncated),
        r.flits_retransmitted,
        r.packets_retried,
        r.packets_dropped,
        r.reconfigurations,
        latency_field(&r.apl),
        latency_field(&r.total_latency),
    )
}

/// Parse one checkpoint line; any malformed, truncated (partial write at
/// interruption) or version-mismatched line is skipped, not fatal.
pub(crate) fn parse_checkpoint_line(line: &str) -> Option<RunResult> {
    let f: Vec<&str> = line.split('\t').collect();
    if f.len() != 18 || f[0] != CHECKPOINT_TAG {
        return None;
    }
    Some(RunResult {
        label: unesc_label(f[1]),
        delivered: f[2].parse().ok()?,
        throughput: parse_f64_field(f[3])?,
        cycles: f[4].parse().ok()?,
        routers: f[5].parse().ok()?,
        router_cycles_skipped: f[6].parse().ok()?,
        state_updates_skipped: f[7].parse().ok()?,
        idle_cycles_skipped: f[8].parse().ok()?,
        oracle_enabled: f[9] == "1",
        oracle_violations: f[10].parse().ok()?,
        truncated: f[11] == "1",
        flits_retransmitted: f[12].parse().ok()?,
        packets_retried: f[13].parse().ok()?,
        packets_dropped: f[14].parse().ok()?,
        reconfigurations: f[15].parse().ok()?,
        apl: parse_latency_field(f[16])?,
        total_latency: parse_latency_field(f[17])?,
    })
}

/// Like [`run_parallel_results`], but resumable: results already present
/// in the checkpoint file (matched by job label — labels must be unique
/// within a sweep) are replayed without re-running their jobs, every fresh
/// result is appended to the file as it completes, and the file is
/// removed once the whole sweep has succeeded. An interrupted or
/// partially-failed sweep therefore restarts from where it stopped.
pub fn run_parallel_checkpointed(
    jobs: Vec<Job>,
    checkpoint: &Path,
) -> Vec<Result<RunResult, JobError>> {
    run_parallel_checkpointed_with(crate::service::std_store(), jobs, checkpoint)
}

/// Checkpoint rows that failed to append (EIO/ENOSPC/torn) since process
/// start; surfaced in sweep summaries so degraded resume coverage is
/// visible instead of silent.
static CHECKPOINT_WRITE_ERRORS: AtomicU64 = AtomicU64::new(0);

/// Checkpoint rows that could not be made durable so far (process-wide).
pub fn checkpoint_write_errors() -> u64 {
    CHECKPOINT_WRITE_ERRORS.load(Ordering::Relaxed)
}

/// [`run_parallel_checkpointed`] over an injectable [`Store`] — the seam
/// the chaos battery drives disk faults through. Each fresh result is
/// appended *durably* (fsync'd) before the job counts as checkpointed; an
/// append failure is warned about and counted, never fatal: the sweep
/// still completes, only its resume coverage shrinks.
pub fn run_parallel_checkpointed_with(
    store: &dyn crate::service::Store,
    jobs: Vec<Job>,
    checkpoint: &Path,
) -> Vec<Result<RunResult, JobError>> {
    let n = jobs.len();
    let mut cached: BTreeMap<String, RunResult> = BTreeMap::new();
    if let Ok(bytes) = store.read(checkpoint) {
        for line in String::from_utf8_lossy(&bytes).lines() {
            if let Some(r) = parse_checkpoint_line(line) {
                cached.insert(r.label.clone(), r);
            }
        }
    }
    let mut out: Vec<Option<Result<RunResult, JobError>>> = (0..n).map(|_| None).collect();
    let mut pending = Vec::new();
    for (idx, job) in jobs.into_iter().enumerate() {
        match cached.get(job.label()) {
            Some(r) => out[idx] = Some(Ok(r.clone())),
            None => pending.push((idx, job)),
        }
    }
    let resumed = n - pending.len();
    if resumed > 0 {
        eprintln!(
            "[sweep] resumed {resumed}/{n} result(s) from {}",
            checkpoint.display()
        );
    }
    if !pending.is_empty() {
        if let Some(dir) = checkpoint.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = store.create_dir_all(dir) {
                    eprintln!(
                        "[sweep] warning: could not create checkpoint directory {}: {e}",
                        dir.display()
                    );
                }
            }
        }
        let warned = std::sync::atomic::AtomicBool::new(false);
        let append = |r: &RunResult| {
            let line = format!("{}\n", checkpoint_line(r));
            if let Err(e) = store.append_durable(checkpoint, line.as_bytes()) {
                CHECKPOINT_WRITE_ERRORS.fetch_add(1, Ordering::Relaxed);
                if !warned.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "[sweep] warning: checkpoint append to {} failed ({e}); \
                         affected rows will re-run on resume",
                        checkpoint.display()
                    );
                }
            }
        };
        for (idx, r) in run_indexed(pending, n, resumed, &append) {
            out[idx] = Some(r);
        }
    }
    let results: Vec<Result<RunResult, JobError>> = out
        .into_iter()
        .map(|r| r.expect("all jobs resolved"))
        .collect();
    if results.iter().all(Result::is_ok) && store.exists(checkpoint) {
        if let Err(e) = store.remove(checkpoint) {
            eprintln!(
                "[sweep] warning: could not remove completed checkpoint {}: {e}",
                checkpoint.display()
            );
        }
    }
    results
}

/// Like [`run_parallel_results`], but panics — after every job has finished
/// — if any job failed, listing the failed labels. Figure drivers need all
/// results, so a missing one is fatal, just not before the sweep completes.
pub fn run_parallel(jobs: Vec<Job>) -> Vec<RunResult> {
    let results = run_parallel_results(jobs);
    let failures: Vec<String> = results
        .iter()
        .filter_map(|r| r.as_ref().err().map(std::string::ToString::to_string))
        .collect();
    assert!(
        failures.is_empty(),
        "{} sweep job(s) failed:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::prelude::*;

    fn tiny_net(seed: u64) -> Network {
        let cfg = SimConfig::table1();
        let pkt = NewPacket {
            dst: 9,
            app: 0,
            class: 0,
            size: 1,
            reply: None,
        };
        Network::new(
            cfg,
            RegionMap::single(&SimConfig::table1()),
            Box::new(DuatoLocalAdaptive),
            Box::new(RoundRobin),
            Box::new(ScriptedSource::new(1, vec![(2100, 0, pkt)])),
            seed,
        )
    }

    #[test]
    fn run_one_collects_apl() {
        let cfg = ExpConfig {
            warmup: 2_000,
            measure: 3_000,
            seed: 0,
            quick: true,
            cycle_budget: None,
            prune: false,
        };
        let r = run_one("probe", tiny_net(1), &cfg);
        assert_eq!(r.delivered, 1);
        assert!(r.app_apl(0) > 0.0);
        assert!(r.mean_apl(None) > 0.0);
        // A single-packet run is almost entirely idle: between the idle
        // fast-forward (whole cycles jumped, 3 phase visits per router each)
        // and the active-set fast path (visits elided inside real ticks),
        // nearly all router work must have been skipped.
        assert_eq!(r.cycles, 5_000);
        assert_eq!(r.routers, 64);
        let elided = r.router_cycles_skipped + 3 * r.routers as u64 * r.idle_cycles_skipped;
        assert!(
            elided > r.cycles * r.routers as u64 * 3 / 2,
            "fast paths barely skipped: {elided}"
        );
        // The source injects exactly one packet at cycle 2100; everything
        // before and most of the drain after it fast-forwards.
        assert!(
            r.idle_cycles_skipped > 4_000,
            "idle fast-forward skipped only {} cycles",
            r.idle_cycles_skipped
        );
        assert!(r.state_updates_skipped > 0);
        assert!(r.kernel_summary().starts_with("kernel:"));
    }

    #[test]
    fn starved_app_yields_nan_not_panic() {
        let r = RunResult {
            label: "starved".into(),
            apl: vec![None, Some(12.0)],
            total_latency: vec![None, Some(14.0)],
            delivered: 3,
            throughput: 0.01,
            cycles: 1_000,
            routers: 64,
            router_cycles_skipped: 0,
            state_updates_skipped: 0,
            idle_cycles_skipped: 0,
            oracle_enabled: false,
            oracle_violations: 0,
            truncated: false,
            flits_retransmitted: 0,
            packets_retried: 0,
            packets_dropped: 0,
            reconfigurations: 0,
        };
        assert!(r.app_apl(0).is_nan());
        assert_eq!(r.try_app_apl(0), None);
        assert_eq!(r.app_apl(1), 12.0);
        // mean over delivered apps only; NaN when nothing delivered at all.
        assert_eq!(r.mean_apl(None), 12.0);
        assert!(r.mean_apl(Some(&[0])).is_nan());
    }

    #[test]
    fn parallel_matches_serial_and_preserves_order() {
        let cfg = ExpConfig {
            warmup: 1_000,
            measure: 2_500,
            seed: 0,
            quick: true,
            cycle_budget: None,
            prune: false,
        };
        let mk = |i: usize| -> Job {
            Job::new(format!("job{i}"), move || {
                run_one(format!("job{i}"), tiny_net(i as u64), &cfg)
            })
        };
        let serial: Vec<RunResult> = (0..6).map(|i| ((mk(i)).run)()).collect();
        let parallel = run_parallel((0..6).map(mk).collect());
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.delivered, p.delivered);
            assert_eq!(s.apl, p.apl, "parallelism changed results");
        }
    }

    #[test]
    fn panicking_job_does_not_kill_the_sweep() {
        let cfg = ExpConfig {
            warmup: 500,
            measure: 1_000,
            seed: 0,
            quick: true,
            cycle_budget: None,
            prune: false,
        };
        let mut jobs = Vec::new();
        for i in 0..4 {
            jobs.push(Job::new(format!("ok{i}"), move || {
                run_one(format!("ok{i}"), tiny_net(i as u64), &cfg)
            }));
        }
        jobs.insert(
            2,
            Job::new("boom", || panic!("synthetic failure for the test")),
        );
        let results = run_parallel_results(jobs);
        assert_eq!(results.len(), 5);
        // All non-panicking jobs completed, in order.
        for (i, idx) in [0usize, 1, 3, 4].iter().zip([0usize, 1, 2, 3]) {
            let r = results[*i].as_ref().unwrap();
            assert_eq!(r.label, format!("ok{idx}"));
        }
        let err = results[2].as_ref().unwrap_err();
        assert_eq!(err.label, "boom");
        assert!(err.message.contains("synthetic failure"));
    }

    #[test]
    fn run_parallel_reports_failed_labels() {
        let caught =
            std::panic::catch_unwind(|| run_parallel(vec![Job::new("doomed", || panic!("nope"))]));
        let payload = caught.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("doomed"), "missing label in: {msg}");
    }

    #[test]
    fn empty_jobs_ok() {
        assert!(run_parallel(vec![]).is_empty());
    }

    /// A plausible fabricated result for runner-plumbing tests that don't
    /// need a real simulation.
    fn stub_result(label: &str) -> RunResult {
        RunResult {
            label: label.into(),
            apl: vec![Some(10.0), None],
            total_latency: vec![Some(12.5), None],
            delivered: 42,
            throughput: 0.125,
            cycles: 5_000,
            routers: 64,
            router_cycles_skipped: 7,
            state_updates_skipped: 8,
            idle_cycles_skipped: 9,
            oracle_enabled: true,
            oracle_violations: 0,
            truncated: false,
            flits_retransmitted: 3,
            packets_retried: 2,
            packets_dropped: 1,
            reconfigurations: 1,
        }
    }

    #[test]
    fn panicking_job_is_retried_once() {
        use std::sync::Arc;
        let calls = Arc::new(AtomicUsize::new(0));
        let c = calls.clone();
        let job = Job::new("flaky", move || {
            if c.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient failure");
            }
            stub_result("flaky")
        });
        let r = run_parallel_results(vec![job]);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            2,
            "expected exactly one retry"
        );
        assert_eq!(r[0].as_ref().unwrap().label, "flaky");
    }

    #[test]
    fn cycle_budget_truncates_run() {
        let cfg = ExpConfig {
            warmup: 2_000,
            measure: 3_000,
            seed: 0,
            quick: true,
            cycle_budget: None,
            prune: false,
        };
        let bounded = run_one("bounded", tiny_net(1), &cfg.with_budget(2_500));
        assert_eq!(bounded.cycles, 2_500, "budget must clamp simulated cycles");
        assert!(bounded.truncated);
        let free = run_one("free", tiny_net(1), &cfg);
        assert_eq!(free.cycles, 5_000);
        assert!(!free.truncated);
        // A budget that already covers the windows changes nothing.
        let roomy = run_one("roomy", tiny_net(1), &cfg.with_budget(10_000));
        assert_eq!(roomy.cycles, 5_000);
        assert!(!roomy.truncated);
    }

    #[test]
    fn checkpoint_line_round_trips_bit_exactly() {
        let mut r = stub_result("weird\tlabel\\with\nescapes");
        r.apl = vec![Some(f64::NAN), None, Some(-0.0)];
        r.total_latency = Vec::new();
        r.truncated = true;
        let p = parse_checkpoint_line(&checkpoint_line(&r)).expect("round trip");
        assert_eq!(p.label, r.label);
        assert_eq!(p.delivered, r.delivered);
        assert_eq!(p.throughput.to_bits(), r.throughput.to_bits());
        assert_eq!(p.cycles, r.cycles);
        assert_eq!(p.oracle_enabled, r.oracle_enabled);
        assert!(p.truncated);
        assert_eq!(p.flits_retransmitted, r.flits_retransmitted);
        assert_eq!(p.packets_retried, r.packets_retried);
        assert_eq!(p.packets_dropped, r.packets_dropped);
        assert_eq!(p.reconfigurations, r.reconfigurations);
        let bits = |v: &[Option<f64>]| v.iter().map(|o| o.map(f64::to_bits)).collect::<Vec<_>>();
        assert_eq!(bits(&p.apl), bits(&r.apl));
        assert!(p.total_latency.is_empty());
        // Garbage, partial writes, and stale versions are skipped.
        assert!(parse_checkpoint_line("").is_none());
        assert!(parse_checkpoint_line("rair-ckpt-v0\tx").is_none());
        let line = checkpoint_line(&r);
        assert!(parse_checkpoint_line(&line[..line.len() / 2]).is_none());
    }

    #[test]
    fn checkpointed_sweep_resumes_and_cleans_up() {
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("rair-ckpt-test-{}", std::process::id()));
        let path = dir.join("sweep.ckpt");
        // lint: allow(swallowed-io-error)
        let _ = std::fs::remove_file(&path);
        let calls = Arc::new(AtomicUsize::new(0));
        let mk = |label: &str, fail: bool| -> Job {
            let calls = calls.clone();
            let label = label.to_string();
            Job::new(label.clone(), move || {
                calls.fetch_add(1, Ordering::SeqCst);
                assert!(!fail, "always failing");
                stub_result(&label)
            })
        };
        // First pass: two jobs succeed, one fails both attempts — the
        // checkpoint keeps the two successes.
        let r1 =
            run_parallel_checkpointed(vec![mk("a", false), mk("bad", true), mk("c", false)], &path);
        assert!(r1[0].is_ok() && r1[2].is_ok());
        assert!(r1[1].is_err());
        assert!(
            path.exists(),
            "partial checkpoint must survive a failed sweep"
        );
        let after_first = calls.load(Ordering::SeqCst);
        assert_eq!(
            after_first, 4,
            "2 successes + 2 attempts of the failing job"
        );
        // Second pass with the failing job fixed: only it runs; the other
        // two replay from the checkpoint.
        let r2 = run_parallel_checkpointed(
            vec![mk("a", false), mk("bad", false), mk("c", false)],
            &path,
        );
        assert!(r2.iter().all(Result::is_ok));
        assert_eq!(
            calls.load(Ordering::SeqCst),
            after_first + 1,
            "resumed jobs must not re-run"
        );
        assert_eq!(r2[0].as_ref().unwrap().label, "a");
        assert!(
            !path.exists(),
            "checkpoint removed after a fully green sweep"
        );
        // lint: allow(swallowed-io-error)
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_append_failure_is_counted_never_fatal() {
        use crate::service::{ChaosStore, Fault};
        let dir = std::env::temp_dir().join(format!("rair-ckpt-enospc-{}", std::process::id()));
        // lint: allow(swallowed-io-error)
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sweep.ckpt");
        // Ops: 0 = read (miss), 1 = create_dir_all, 2+ = appends. The first
        // append hits ENOSPC; the sweep must still complete green.
        let store = ChaosStore::scripted(vec![(2, Fault::Enospc)]);
        let before = checkpoint_write_errors();
        let jobs = vec![
            Job::new("a", || stub_result("a")),
            Job::new("b", || stub_result("b")),
        ];
        let r = run_parallel_checkpointed_with(&store, jobs, &path);
        assert!(
            r.iter().all(Result::is_ok),
            "append failure must not fail jobs"
        );
        assert_eq!(
            checkpoint_write_errors(),
            before + 1,
            "the failed append must be counted"
        );
        assert!(!path.exists(), "green sweep still cleans up");
        // lint: allow(swallowed-io-error)
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_count_honors_rair_threads() {
        // Explicit override wins, clamped to >= 1 and <= jobs.
        assert_eq!(worker_count_from(Some("3"), 10), 3);
        assert_eq!(worker_count_from(Some(" 2 "), 10), 2);
        assert_eq!(worker_count_from(Some("0"), 10), 1);
        assert_eq!(worker_count_from(Some("64"), 5), 5);
        // Garbage falls back to available parallelism (bounded by jobs).
        let fallback = worker_count_from(Some("not-a-number"), 1000);
        assert!(fallback >= 1);
        assert_eq!(worker_count_from(None, 1), 1);
    }

    #[test]
    fn unparseable_rair_threads_warns_with_value_and_fallback() {
        // Garbage values surface a warning naming both the bad value and
        // the worker count actually used...
        let (count, warning) = resolve_worker_count(Some("not-a-number"), 1000);
        let w = warning.expect("unparseable RAIR_THREADS must warn");
        assert!(
            w.contains("RAIR_THREADS"),
            "warning names the variable: {w}"
        );
        assert!(
            w.contains("not-a-number"),
            "warning names the bad value: {w}"
        );
        assert!(
            w.contains(&count.to_string()),
            "warning names the fallback: {w}"
        );
        // ...while the valid, absent, and clamped paths stay silent.
        assert_eq!(resolve_worker_count(Some("3"), 10), (3, None));
        assert_eq!(resolve_worker_count(Some("0"), 10), (1, None));
        assert!(resolve_worker_count(None, 8).1.is_none());
    }
}
