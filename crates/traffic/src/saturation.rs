//! Saturation-load measurement.
//!
//! The paper expresses every injection rate as a percentage of an
//! application's *saturation load* (e.g. "App 1 at 90 % of its saturation
//! load"). The saturation load depends on the traffic pattern, the region
//! layout and the routing algorithm, so we measure it the way network
//! architects do: binary-search the offered load for the knee where the
//! network stops admitting the offered traffic (source queues start growing
//! without bound).

use crate::scenario::{AppSpec, Scenario, AVG_PACKET_FLITS};
use noc_sim::arbitration::RoundRobin;
use noc_sim::config::SimConfig;
use noc_sim::ids::AppId;
use noc_sim::network::Network;
use noc_sim::region::RegionMap;
use noc_sim::routing::RoutingAlgorithm;
use std::collections::BTreeMap;

/// Parameters for a saturation search.
#[derive(Debug, Clone, Copy)]
pub struct SaturationProbe {
    /// Warmup cycles per trial.
    pub warmup: u64,
    /// Measurement cycles per trial.
    pub measure: u64,
    /// A trial is *stable* when the end-of-run source backlog is below this
    /// fraction of the packets offered during the whole trial.
    pub backlog_fraction: f64,
    /// A trial is also *unstable* once mean total packet latency exceeds
    /// this multiple of the zero-load latency. The default is a loose 8x
    /// guard: the primary criterion is admission (backlog), which matches
    /// the paper's near-knee "90% of saturation" operating points; tighten
    /// this for a conservative latency-knee definition instead.
    pub latency_blowup: f64,
    /// Binary-search iterations (each halves the interval).
    pub iters: u32,
    /// RNG seed for the trials.
    pub seed: u64,
}

impl Default for SaturationProbe {
    fn default() -> Self {
        Self {
            warmup: 2_000,
            measure: 8_000,
            backlog_fraction: 0.03,
            latency_blowup: 8.0,
            iters: 7,
            seed: 0xA11CE,
        }
    }
}

impl SaturationProbe {
    /// A faster, coarser probe for tests and quick mode.
    pub fn quick() -> Self {
        Self {
            warmup: 500,
            measure: 3_000,
            iters: 5,
            ..Self::default()
        }
    }

    /// Fold every parameter that affects the measured saturation value into
    /// `d` — part of the collision-proof persistent-cache key.
    pub fn digest_into(&self, d: &mut metrics::Digest) {
        d.write_u64(self.warmup);
        d.write_u64(self.measure);
        d.write_f64(self.backlog_fraction);
        d.write_f64(self.latency_blowup);
        d.write_u64(self.iters as u64);
        d.write_u64(self.seed);
    }
}

/// A model-derived hint for warm-starting a saturation search.
///
/// `predicted` is where an analytical model expects the saturation load;
/// `margin` is the half-width of its confidence band. The warm search
/// replays the cold bisection's exact decision path, letting the model
/// decide midpoints farther than `margin` from `predicted` and simulating
/// the rest, then verifies the final bracket endpoints against the
/// simulator — so an accepted warm search returns the bit-identical load
/// the cold search would, in a fraction of the simulations.
#[derive(Debug, Clone, Copy)]
pub struct WarmStart {
    /// Predicted saturation load (same units as the search domain).
    pub predicted: f64,
    /// Confidence half-width around `predicted`.
    pub margin: f64,
}

/// How a traced saturation search used its warm-start hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmOutcome {
    /// No hint was supplied; the search ran cold.
    NoHint,
    /// The warm bracket verified against the simulator and was returned.
    Accepted,
    /// Endpoint verification failed; the search fell back to the cold
    /// path (reusing every probe already simulated).
    Rejected,
}

/// Result of a traced saturation search.
#[derive(Debug, Clone, Copy)]
pub struct SearchOutcome {
    /// The measured saturation load.
    pub load: f64,
    /// Full simulations executed, including the zero-load latency
    /// reference (a cold full-probe search runs `iters + 2`).
    pub simulations: u32,
    /// Whether the warm-start hint was used.
    pub warm: WarmOutcome,
}

/// Memoizing wrapper around the stability oracle: every rate is simulated
/// at most once per search, so the warm phase, its endpoint verification
/// and a possible cold fallback never repeat a probe.
struct Prober<F> {
    stable: F,
    memo: BTreeMap<u64, bool>,
    count: u32,
}

impl<F: FnMut(f64) -> bool> Prober<F> {
    fn probe(&mut self, rate: f64) -> bool {
        let bits = rate.to_bits();
        if let Some(&v) = self.memo.get(&bits) {
            return v;
        }
        let v = (self.stable)(rate);
        self.count += 1;
        self.memo.insert(bits, v);
        v
    }

    /// Has any probe at or below `rate` already come back unstable?
    /// Under the monotone-stability premise of the bisection this proves
    /// `rate` itself unstable without another simulation.
    fn proven_unstable_below(&self, rate: f64) -> bool {
        self.memo
            .iter()
            .any(|(&bits, &stable)| !stable && f64::from_bits(bits) <= rate)
    }
}

/// Replay the cold bisection's decision path using the model for
/// out-of-margin midpoints, then verify the final bracket. Returns the
/// verified load, or `None` when verification fails (caller falls back to
/// the cold path, reusing `p`'s memo).
///
/// Bit-identity argument: the cold loop's midpoints are the exact dyadic
/// subdivisions of `[0, max_rate]`, so both searches walk the same
/// candidate grid. The warm loop's final `[lo, hi]` is one level-`iters`
/// cell of that grid; verifying `lo` stable and `hi` unstable proves (under
/// the same monotone-threshold premise the cold bisection rests on) that it
/// is *the* cell containing the stability threshold — the one the cold
/// search converges to — hence `lo` is the cold result, bit for bit.
fn warm_search<F: FnMut(f64) -> bool>(
    iters: u32,
    max_rate: f64,
    w: WarmStart,
    p: &mut Prober<F>,
) -> Option<f64> {
    if !(w.predicted.is_finite() && w.margin.is_finite()) || w.margin <= 0.0 || w.predicted <= 0.0 {
        return None;
    }
    let (mut lo, mut hi) = (0.0_f64, max_rate);
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        let go_up = if (mid - w.predicted).abs() <= w.margin {
            p.probe(mid)
        } else {
            mid <= w.predicted
        };
        if go_up {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Verify the upper edge. When the bracket never moved off max_rate the
    // cold search would have started with its max_rate probe — replicate
    // it, including the stable-at-max early return.
    if hi >= max_rate {
        if p.probe(max_rate) {
            return Some(max_rate);
        }
    } else if p.probe(hi) {
        return None;
    }
    // Verify the lower edge (0 needs no probe: the cold loop never probes
    // its initial lo either).
    if lo > 0.0 && !p.probe(lo) {
        return None;
    }
    Some(lo)
}

/// Memo-aware bisection core shared by the cold and warm-started searches.
/// `stable` must be a deterministic function of the rate. Returns the
/// measured load, the number of `stable` evaluations and the warm-start
/// outcome.
pub fn bisect_saturation(
    iters: u32,
    max_rate: f64,
    warm: Option<WarmStart>,
    stable: impl FnMut(f64) -> bool,
) -> (f64, u32, WarmOutcome) {
    let mut p = Prober {
        stable,
        memo: BTreeMap::new(),
        count: 0,
    };
    let outcome = match warm {
        Some(w) => {
            if let Some(load) = warm_search(iters, max_rate, w, &mut p) {
                return (load, p.count, WarmOutcome::Accepted);
            }
            WarmOutcome::Rejected
        }
        None => WarmOutcome::NoHint,
    };
    // Establish that max_rate is unstable; if even max_rate is stable,
    // return it. A rejected warm phase usually proved instability somewhere
    // already — then the probe is skipped instead of re-simulated.
    if !p.proven_unstable_below(max_rate) && p.probe(max_rate) {
        return (max_rate, p.count, outcome);
    }
    let (mut lo, mut hi) = (0.0_f64, max_rate);
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if p.probe(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo, p.count, outcome)
}

/// Generic saturation search: `build(rate)` constructs a fresh network
/// offering `rate` flits/cycle/node over `active_nodes` nodes. Returns the
/// highest stable rate found in `(0, max_rate]`.
pub fn find_saturation(
    probe: &SaturationProbe,
    active_nodes: usize,
    max_rate: f64,
    build: impl FnMut(f64) -> Network,
) -> f64 {
    find_saturation_traced(probe, active_nodes, max_rate, None, build).load
}

/// [`find_saturation`] with an optional model warm-start and full probe
/// accounting. With `warm: None` the search is exactly the classic cold
/// bisection; with a hint it returns the bit-identical load while
/// simulating only in-margin midpoints plus the bracket verification.
pub fn find_saturation_traced(
    probe: &SaturationProbe,
    active_nodes: usize,
    max_rate: f64,
    warm: Option<WarmStart>,
    mut build: impl FnMut(f64) -> Network,
) -> SearchOutcome {
    // Zero-load latency reference for the latency-knee criterion.
    let zero_load = {
        let mut net = build((0.02 * max_rate).max(1e-3));
        net.run_warmup_measure(probe.warmup, probe.measure);
        net.stats
            .recorder
            .overall_mean(metrics::LatencyKind::Total)
            .unwrap_or(20.0)
    };
    let stable_at = |rate: f64| -> bool {
        let mut net = build(rate);
        let total_cycles = probe.warmup + probe.measure;
        net.run_warmup_measure(probe.warmup, probe.measure.max(total_cycles - probe.warmup));
        let offered_packets = rate / AVG_PACKET_FLITS * active_nodes as f64 * total_cycles as f64;
        let backlog_ok = (net.total_backlog() as f64) < probe.backlog_fraction * offered_packets;
        let latency_ok = net
            .stats
            .recorder
            .overall_mean(metrics::LatencyKind::Total)
            .is_some_and(|l| l <= probe.latency_blowup * zero_load);
        backlog_ok && latency_ok
    };
    let (load, probes, warm) = bisect_saturation(probe.iters, max_rate, warm, stable_at);
    SearchOutcome {
        load,
        simulations: probes + 1,
        warm,
    }
}

/// Saturation load of one application running *alone* with its configured
/// traffic mix (all other applications silent), under round-robin
/// arbitration and the given routing algorithm — the per-application
/// reference the paper's "% of saturation load" figures are based on.
pub fn app_saturation(
    probe: &SaturationProbe,
    cfg: &SimConfig,
    region: &RegionMap,
    app: AppId,
    spec: &AppSpec,
    routing: impl Fn() -> Box<dyn RoutingAlgorithm>,
) -> f64 {
    app_saturation_traced(probe, cfg, region, app, spec, None, routing).load
}

/// [`app_saturation`] with an optional model warm-start and probe
/// accounting.
pub fn app_saturation_traced(
    probe: &SaturationProbe,
    cfg: &SimConfig,
    region: &RegionMap,
    app: AppId,
    spec: &AppSpec,
    warm: Option<WarmStart>,
    routing: impl Fn() -> Box<dyn RoutingAlgorithm>,
) -> SearchOutcome {
    let active = region.nodes_of(app).len();
    assert!(active > 0, "app {app} has no nodes");
    find_saturation_traced(probe, active, 1.0, warm, |rate| {
        let mut specs: Vec<Option<AppSpec>> = vec![None; region.num_apps()];
        specs[app as usize] = Some(AppSpec {
            rate_flits: rate,
            ..spec.clone()
        });
        let scenario = Scenario::new(cfg, region, specs);
        Network::new(
            cfg.clone(),
            region.clone(),
            routing(),
            Box::new(RoundRobin),
            Box::new(scenario),
            probe.seed,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::routing::DuatoLocalAdaptive;

    #[test]
    fn intra_region_saturation_in_plausible_range() {
        let cfg = SimConfig::table1();
        let region = RegionMap::halves(&cfg);
        let probe = SaturationProbe::quick();
        let sat = app_saturation(&probe, &cfg, &region, 0, &AppSpec::intra_only(0.0), || {
            Box::new(DuatoLocalAdaptive)
        });
        // Intra-half UR on a 4x8 region: saturation well inside (0.1, 1.0).
        assert!(
            (0.1..0.95).contains(&sat),
            "implausible saturation load {sat}"
        );
    }

    /// A recording threshold oracle: stable strictly below `t`.
    fn recording_oracle(
        t: f64,
        probed: &std::cell::RefCell<Vec<f64>>,
    ) -> impl FnMut(f64) -> bool + '_ {
        move |r: f64| {
            probed.borrow_mut().push(r);
            r < t
        }
    }

    #[test]
    fn warm_search_bit_identical_on_synthetic_thresholds() {
        for t in [0.0005, 0.0773, 0.31, 0.375, 0.5, 0.74, 0.991, 1.2] {
            for iters in [5u32, 7] {
                let cold_probes = std::cell::RefCell::new(Vec::new());
                let (cold, cold_n, oc) =
                    bisect_saturation(iters, 1.0, None, recording_oracle(t, &cold_probes));
                assert_eq!(oc, WarmOutcome::NoHint);
                for err in [-0.04, -0.01, 0.0, 0.02, 0.045] {
                    let warm = WarmStart {
                        predicted: t + err,
                        margin: 0.05,
                    };
                    if warm.predicted <= 0.0 {
                        // Nonsensical hint: ignored, search runs cold.
                        let (load, n, oc) = bisect_saturation(iters, 1.0, Some(warm), |r| r < t);
                        assert_eq!(load.to_bits(), cold.to_bits());
                        assert_eq!((n, oc), (cold_n, WarmOutcome::Rejected));
                        continue;
                    }
                    let probes = std::cell::RefCell::new(Vec::new());
                    let (load, n, oc) =
                        bisect_saturation(iters, 1.0, Some(warm), recording_oracle(t, &probes));
                    assert_eq!(load.to_bits(), cold.to_bits(), "t={t} err={err}");
                    assert_eq!(oc, WarmOutcome::Accepted, "t={t} err={err}");
                    // An in-band hint only ever simulates rates the cold
                    // search also simulated — never more work, usually
                    // far less.
                    assert!(n <= cold_n, "t={t} err={err}: {n} > {cold_n}");
                    for r in probes.borrow().iter() {
                        assert!(
                            cold_probes.borrow().contains(r),
                            "warm probed {r}, cold never did (t={t} err={err})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn warm_search_halves_probe_count_near_accurate_hints() {
        // The headline economics: with a full-depth probe (7 iters, 8 cold
        // stability sims) an accurate hint needs at most half of them.
        for t in [0.17, 0.375, 0.52, 0.81] {
            let (_, cold_n, _) = bisect_saturation(7, 1.0, None, |r| r < t);
            assert_eq!(cold_n, 8);
            let warm = WarmStart {
                predicted: t + 0.01,
                margin: 0.03,
            };
            let (_, warm_n, _) = bisect_saturation(7, 1.0, Some(warm), |r| r < t);
            assert!(
                warm_n * 2 <= cold_n,
                "t={t}: {warm_n} sims vs cold {cold_n}"
            );
        }
    }

    #[test]
    fn rejected_warm_hint_falls_back_to_identical_cold_result() {
        for (t, pred) in [(0.3, 0.85), (0.8, 0.15), (0.45, 0.95)] {
            let (cold, _, _) = bisect_saturation(7, 1.0, None, |r| r < t);
            let warm = WarmStart {
                predicted: pred,
                margin: 0.03,
            };
            let probes = std::cell::RefCell::new(Vec::new());
            let (load, _, oc) = bisect_saturation(7, 1.0, Some(warm), recording_oracle(t, &probes));
            assert_eq!(load.to_bits(), cold.to_bits(), "t={t} pred={pred}");
            assert_eq!(oc, WarmOutcome::Rejected);
            // No rate is ever simulated twice, even across the
            // warm-then-cold fallback.
            let list = probes.borrow();
            let mut bits: Vec<u64> = list.iter().map(|r| r.to_bits()).collect();
            bits.sort_unstable();
            bits.dedup();
            assert_eq!(bits.len(), list.len(), "duplicate probe for t={t}");
        }
    }

    #[test]
    fn fallback_skips_max_rate_probe_when_instability_already_proven() {
        // A hint far above the true threshold: the warm phase simulates
        // unstable in-band midpoints, verification rejects the bracket, and
        // the cold fallback must not re-establish what the memo already
        // proves — max_rate is never simulated.
        let t = 0.3;
        let probes = std::cell::RefCell::new(Vec::new());
        let warm = WarmStart {
            predicted: 0.9,
            margin: 0.05,
        };
        let (load, _, oc) = bisect_saturation(7, 1.0, Some(warm), recording_oracle(t, &probes));
        assert_eq!(oc, WarmOutcome::Rejected);
        let (cold, _, _) = bisect_saturation(7, 1.0, None, |r| r < t);
        assert_eq!(load.to_bits(), cold.to_bits());
        assert!(
            !probes.borrow().iter().any(|&r| r >= 1.0),
            "fallback re-probed max_rate: {:?}",
            probes.borrow()
        );
    }

    #[test]
    fn stable_at_max_rate_returns_max_under_warm_hint_too() {
        // Everything stable: cold returns max_rate; a high hint must agree.
        let (cold, _, _) = bisect_saturation(5, 1.0, None, |_r| true);
        assert_eq!(cold, 1.0);
        let warm = WarmStart {
            predicted: 1.3,
            margin: 0.05,
        };
        let (load, _, oc) = bisect_saturation(5, 1.0, Some(warm), |_r| true);
        assert_eq!(load, 1.0);
        assert_eq!(oc, WarmOutcome::Accepted);
    }

    #[test]
    fn degenerate_hints_are_ignored() {
        for warm in [
            WarmStart {
                predicted: f64::NAN,
                margin: 0.05,
            },
            WarmStart {
                predicted: 0.4,
                margin: 0.0,
            },
            WarmStart {
                predicted: -0.2,
                margin: 0.05,
            },
        ] {
            let (cold, cold_n, _) = bisect_saturation(5, 1.0, None, |r| r < 0.4);
            let (load, n, oc) = bisect_saturation(5, 1.0, Some(warm), |r| r < 0.4);
            assert_eq!(load.to_bits(), cold.to_bits());
            assert_eq!(n, cold_n);
            assert_eq!(oc, WarmOutcome::Rejected);
        }
    }

    #[test]
    fn monotone_binary_search_respects_bounds() {
        // A fake criterion via a real network that is always stable at tiny
        // rates: the search must return a rate within (0, max].
        let cfg = SimConfig::table1();
        let region = RegionMap::single(&cfg);
        let probe = SaturationProbe {
            warmup: 200,
            measure: 500,
            iters: 3,
            ..SaturationProbe::default()
        };
        let sat = app_saturation(&probe, &cfg, &region, 0, &AppSpec::intra_only(0.0), || {
            Box::new(DuatoLocalAdaptive)
        });
        assert!(sat > 0.0 && sat <= 1.0);
    }
}
