//! Virtual-channel state: classification tags and the per-input-VC state
//! machine driven by the router pipeline.

use crate::flit::Flit;
use crate::ids::Port;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The 1-bit regional/global tag of §IV.A (VC regionalization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VcTag {
    /// Regional VC: native-vs-foreign priority decided dynamically by DPA.
    Regional,
    /// Global VC: foreign traffic always has priority over native traffic.
    Global,
}

/// Functional class of a VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VcClass {
    /// Escape VC of one message class; restricted to dimension-order routing
    /// so the escape sub-network is deadlock-free (Duato's theory).
    Escape { class: crate::ids::MsgClass },
    /// Fully-adaptive VC carrying the regional/global tag.
    Adaptive { tag: VcTag },
}

impl VcClass {
    /// The regional/global tag if this is an adaptive VC.
    pub fn tag(&self) -> Option<VcTag> {
        match self {
            VcClass::Adaptive { tag } => Some(*tag),
            VcClass::Escape { .. } => None,
        }
    }
}

/// Pipeline state of an input VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcState {
    /// No packet allocated to this VC.
    Idle,
    /// Head flit arrived; route computation done, waiting for VC allocation.
    /// Holds the candidate adaptive output ports (up to two minimal
    /// productive directions), the escape (dimension-order) port, and the
    /// escape lane the packet must ride here (always 0 on non-wrapping
    /// topologies; the dateline lane on torus/ring).
    Routed {
        adaptive: [Option<Port>; 2],
        escape: Port,
        escape_lane: u8,
    },
    /// Output VC allocated; flits compete in switch allocation.
    Active { out_port: Port, out_vc: usize },
}

/// One input virtual channel: a flit FIFO plus pipeline state.
#[derive(Debug, Clone)]
pub struct InputVc {
    pub buf: VecDeque<Flit>,
    pub state: VcState,
    /// Application of the packet currently holding this VC. Set when the
    /// head flit is written into the (empty, idle) VC and cleared when the
    /// tail departs — so it stays valid while the VC is occupied even after
    /// every buffered flit has moved downstream.
    pub holder: Option<crate::ids::AppId>,
}

impl InputVc {
    pub fn new(depth: usize) -> Self {
        Self {
            buf: VecDeque::with_capacity(depth),
            state: VcState::Idle,
            holder: None,
        }
    }

    /// Occupied = holds at least one flit or is allocated to an in-flight
    /// packet (its flits may all have moved on while the tail hasn't been
    /// received yet).
    #[inline]
    pub fn occupied(&self) -> bool {
        !self.buf.is_empty() || self.state != VcState::Idle
    }

    /// Application of the packet currently holding this VC, if any.
    #[inline]
    pub fn holder_app(&self) -> Option<crate::ids::AppId> {
        self.holder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, PacketInfo};

    fn flit() -> Flit {
        Flit {
            kind: FlitKind::Single,
            seq: 0,
            hops: 0,
            payload: 0,
            crc: crate::flit::crc16(0),
            info: PacketInfo {
                id: 0,
                src: 0,
                dst: 1,
                app: 3,
                class: 0,
                size: 1,
                birth: 0,
                inject: 0,
                reply: None,
            },
        }
    }

    #[test]
    fn fresh_vc_is_idle_and_unoccupied() {
        let vc = InputVc::new(5);
        assert_eq!(vc.state, VcState::Idle);
        assert!(!vc.occupied());
        assert!(vc.holder_app().is_none());
    }

    #[test]
    fn buffered_flit_marks_occupied() {
        let mut vc = InputVc::new(5);
        vc.holder = Some(flit().info.app);
        vc.buf.push_back(flit());
        assert!(vc.occupied());
        assert_eq!(vc.holder_app(), Some(3));
    }

    #[test]
    fn active_empty_vc_still_occupied() {
        let mut vc = InputVc::new(5);
        vc.state = VcState::Active {
            out_port: 1,
            out_vc: 0,
        };
        assert!(vc.occupied());
    }

    /// Regression: a VC whose buffered flits have all moved downstream while
    /// the packet still owns it (tail not yet through) must keep reporting
    /// its holder — reading the front flit here returned `None` and made
    /// occupancy counting misclassify exactly the VCs that matter for DPA.
    #[test]
    fn holder_survives_buffer_drain() {
        let mut vc = InputVc::new(5);
        vc.holder = Some(3);
        vc.buf.push_back(flit());
        vc.state = VcState::Active {
            out_port: 2,
            out_vc: 1,
        };
        vc.buf.pop_front(); // flit forwarded; tail still upstream
        assert!(vc.buf.is_empty());
        assert!(vc.occupied());
        assert_eq!(vc.holder_app(), Some(3), "holder lost after drain");
    }

    #[test]
    fn tag_accessor() {
        assert_eq!(
            VcClass::Adaptive {
                tag: VcTag::Regional
            }
            .tag(),
            Some(VcTag::Regional)
        );
        assert_eq!(VcClass::Escape { class: 0 }.tag(), None);
    }
}
