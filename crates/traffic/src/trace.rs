//! Traffic-trace recording and replay.
//!
//! The paper's PARSEC experiments are trace-driven. Since the original
//! SIMICS/GEMS traces are unavailable, we record traces from our own
//! workload models into a compact binary format and replay them, giving the
//! experiments a deterministic trace-driven mode and making runs exactly
//! repeatable across schemes (every scheme sees the *identical* offered
//! traffic, which sharpens the comparisons).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use noc_sim::flit::ReplySpec;
use noc_sim::ids::NodeId;
use noc_sim::source::{NewPacket, TrafficSource};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

const MAGIC: &[u8; 8] = b"RAIRTRC1";

/// One recorded generation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    pub cycle: u64,
    pub node: NodeId,
    pub packet: NewPacket,
}

/// An in-memory traffic trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    pub num_apps: usize,
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Capture a trace by running `source` standalone for `cycles` cycles
    /// over `num_nodes` nodes (open-loop capture: replies are re-issued by
    /// the replay network, so only *generated* packets are recorded; for
    /// closed-loop sources this linearizes the feedback at capture time).
    pub fn capture<S: TrafficSource>(
        mut source: S,
        num_nodes: u16,
        cycles: u64,
        seed: u64,
    ) -> Trace {
        let mut rngs: Vec<SmallRng> = (0..num_nodes)
            .map(|i| {
                SmallRng::seed_from_u64(seed ^ (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15))
            })
            .collect();
        let mut events = Vec::new();
        for cycle in 0..cycles {
            for node in 0..num_nodes {
                if let Some(packet) = source.generate(node, cycle, &mut rngs[node as usize]) {
                    events.push(TraceEvent {
                        cycle,
                        node,
                        packet,
                    });
                }
            }
        }
        Trace {
            num_apps: source.num_apps(),
            events,
        }
    }

    /// Serialize to the compact binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(24 + self.events.len() * 20);
        buf.put_slice(MAGIC);
        buf.put_u16(self.num_apps as u16);
        buf.put_u64(self.events.len() as u64);
        for e in &self.events {
            buf.put_u64(e.cycle);
            buf.put_u16(e.node);
            buf.put_u16(e.packet.dst);
            buf.put_u8(e.packet.app);
            buf.put_u8(e.packet.class);
            buf.put_u8(e.packet.size as u8);
            match e.packet.reply {
                None => buf.put_u8(0),
                Some(r) => {
                    buf.put_u8(1);
                    buf.put_u32(r.service_latency as u32);
                    buf.put_u8(r.size as u8);
                    buf.put_u8(r.class);
                }
            }
        }
        buf.freeze()
    }

    /// Parse the binary format.
    pub fn from_bytes(mut buf: Bytes) -> Result<Trace, String> {
        if buf.remaining() < 18 {
            return Err("trace too short".into());
        }
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err("bad trace magic".into());
        }
        let num_apps = buf.get_u16() as usize;
        let count = buf.get_u64() as usize;
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 15 {
                return Err("truncated trace event".into());
            }
            let cycle = buf.get_u64();
            let node = buf.get_u16();
            let dst = buf.get_u16();
            let app = buf.get_u8();
            let class = buf.get_u8();
            let size = buf.get_u8() as u32;
            let reply = match buf.get_u8() {
                0 => None,
                1 => {
                    if buf.remaining() < 6 {
                        return Err("truncated reply spec".into());
                    }
                    Some(ReplySpec {
                        service_latency: buf.get_u32() as u64,
                        size: buf.get_u8() as u32,
                        class: buf.get_u8(),
                    })
                }
                x => return Err(format!("bad reply flag {x}")),
            };
            events.push(TraceEvent {
                cycle,
                node,
                packet: NewPacket {
                    dst,
                    app,
                    class,
                    size,
                    reply,
                },
            });
        }
        Ok(Trace { num_apps, events })
    }
}

/// Replays a [`Trace`] as a traffic source. Events fire at their recorded
/// cycle (or as soon after as the node is polled).
pub struct TraceReplay {
    num_apps: usize,
    per_node: Vec<VecDeque<(u64, NewPacket)>>,
}

impl TraceReplay {
    pub fn new(trace: &Trace, num_nodes: u16) -> Self {
        let mut per_node: Vec<VecDeque<(u64, NewPacket)>> =
            (0..num_nodes).map(|_| VecDeque::new()).collect();
        let mut sorted = trace.events.clone();
        sorted.sort_by_key(|e| e.cycle);
        for e in sorted {
            per_node[e.node as usize].push_back((e.cycle, e.packet));
        }
        Self {
            num_apps: trace.num_apps,
            per_node,
        }
    }

    /// Events not yet replayed.
    pub fn remaining(&self) -> usize {
        self.per_node
            .iter()
            .map(std::collections::VecDeque::len)
            .sum()
    }
}

impl TrafficSource for TraceReplay {
    fn num_apps(&self) -> usize {
        self.num_apps
    }

    fn generate(&mut self, node: NodeId, cycle: u64, _rng: &mut SmallRng) -> Option<NewPacket> {
        let q = &mut self.per_node[node as usize];
        match q.front() {
            Some(&(c, _)) if c <= cycle => Some(q.pop_front().unwrap().1),
            _ => None,
        }
    }

    fn next_injection_cycle(&self, now: u64) -> Option<u64> {
        // Per-node queues are cycle-sorted and consumed without RNG; a
        // past-due front event (node was polled while its VCs were busy)
        // clamps to now.
        Some(
            self.per_node
                .iter()
                .filter_map(|q| q.front().map(|&(c, _)| c.max(now)))
                .min()
                .unwrap_or(u64::MAX),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{two_app, InterDest};
    use noc_sim::config::SimConfig;

    #[test]
    fn roundtrip_preserves_events() {
        let cfg = SimConfig::table1();
        let (_r, scenario) = two_app(&cfg, 0.3, 0.2, 0.4);
        let trace = Trace::capture(scenario, 64, 500, 77);
        assert!(!trace.events.is_empty());
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(bytes).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn replay_preserves_offered_traffic() {
        let cfg = SimConfig::table1();
        let (_r, scenario) = two_app(&cfg, 0.2, 0.25, 0.0);
        let trace = Trace::capture(scenario, 64, 2000, 42);
        let total = trace.events.len();
        let mut replay = TraceReplay::new(&trace, 64);
        assert_eq!(replay.remaining(), total);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut replayed = 0;
        for cycle in 0..2100 {
            for node in 0..64u16 {
                if replay.generate(node, cycle, &mut rng).is_some() {
                    replayed += 1;
                }
            }
        }
        assert_eq!(replayed, total);
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn rejects_corrupt_bytes() {
        assert!(Trace::from_bytes(Bytes::from_static(b"notatrace")).is_err());
        let cfg = SimConfig::table1();
        let (_r, scenario) = two_app(&cfg, 0.0, 0.1, 0.0);
        let trace = Trace::capture(scenario, 64, 100, 1);
        let bytes = trace.to_bytes();
        let truncated = bytes.slice(0..bytes.len().saturating_sub(3));
        assert!(Trace::from_bytes(truncated).is_err());
    }

    #[test]
    fn mc_reply_specs_survive_roundtrip() {
        let cfg = SimConfig::table1();
        let (_r, scenario) = crate::scenario::six_app(&cfg, [0.3; 6], InterDest::OutsideUniform);
        let trace = Trace::capture(scenario, 64, 2000, 9);
        assert!(trace.events.iter().any(|e| e.packet.reply.is_some()));
        let back = Trace::from_bytes(trace.to_bytes()).unwrap();
        assert_eq!(trace, back);
    }
}
