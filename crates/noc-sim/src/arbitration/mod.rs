//! Arbitration: the four arbitration steps of the canonical router
//! (VA_in, VA_out, SA_in, SA_out — §IV.B of the paper) and the pluggable
//! priority policies that decide their winners.
//!
//! * VA_in needs no arbitration policy: each input VC independently selects
//!   which output VC to request (the routing selection function), so traffic
//!   flows do not contend there — exactly the observation the paper uses to
//!   leave VA_in unchanged in MSP.
//! * VA_out, SA_in and SA_out arbitrate among *competing flows*; a
//!   [`PriorityPolicy`] assigns each request a numeric priority and ties are
//!   broken round-robin (so every policy degrades to fair round-robin among
//!   equal-priority requestors — the paper's rule for traffic within the
//!   foreign aggregate).

mod age;
mod round_robin;
mod stc;
mod stc_online;

pub use age::AgeBased;
pub use round_robin::RoundRobin;
pub use stc::{StcRank, DEFAULT_BATCH_WINDOW};
pub use stc_online::{StcRankOnline, DEFAULT_RANK_INTERVAL};

use crate::ids::{AppId, MsgClass};
use crate::router::Router;
use crate::vc::{VcClass, VcTag};

/// Which arbitration step a priority is being computed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbStage {
    /// VC allocation, output side: one winner per output VC.
    VaOut,
    /// Switch allocation, input side: one winning VC per input port.
    SaIn,
    /// Switch allocation, output side: one winning input port per output port.
    SaOut,
}

/// A single arbitration request (one competing packet).
#[derive(Debug, Clone, Copy)]
pub struct ArbReq {
    /// Application the packet belongs to.
    pub app: AppId,
    /// Message class.
    pub class: MsgClass,
    /// Cycle the packet was generated (for age/batch policies).
    pub birth: u64,
    /// Cycle the packet entered the network.
    pub inject: u64,
    /// Native (`true`) or foreign (`false`) with respect to the router
    /// performing the arbitration.
    pub is_native: bool,
}

/// A priority policy: maps requests to numeric priorities (higher wins).
///
/// Implementations must be cheap — these run on every arbitration of every
/// router every cycle.
pub trait PriorityPolicy: Send + Sync {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Priority of `req` at `stage`. For `VaOut` the class of the contested
    /// output VC is supplied (this is where VC regionalization acts);
    /// `None` for the SA stages.
    fn priority(
        &self,
        stage: ArbStage,
        router: &Router,
        out_vc: Option<VcClass>,
        req: &ArbReq,
    ) -> u64;

    /// Per-router per-cycle state update (e.g. the DPA hysteresis
    /// transition). Runs after all pipeline stages of the cycle, so any
    /// state written here is consumed starting *next* cycle — the paper's
    /// one-cycle priority delay (§IV.E).
    fn update_router(&self, _router: &mut Router, _cycle: u64) {}

    /// `true` when [`update_router`](Self::update_router) is a pure function
    /// of the router's occupancy registers — re-applying it with unchanged
    /// inputs leaves all state unchanged. The network then elides the call
    /// on cycles where the router's occupancy did not change. Policies whose
    /// update accumulates per-cycle observations (time-dependent state) must
    /// return `false` or they will silently under-sample.
    ///
    /// The default `update_router` is a no-op, hence idempotent.
    fn update_is_idempotent(&self) -> bool {
        true
    }

    /// Preferred adaptive-VC tag when an input VC picks which free output VC
    /// to request (VA_in). `None` = no preference (lowest free index).
    fn vc_tag_preference(&self, _router: &Router, _req: &ArbReq) -> Option<VcTag> {
        None
    }

    /// Self-check of any policy-maintained router state, called by the
    /// invariant oracle after the state-update phase. Return a description
    /// of the inconsistency if the state violates the policy's own
    /// transition rule (e.g. a priority bit that is not a fixed point of
    /// its update on the current registers); `None` when consistent.
    fn check_invariant(&self, _router: &Router) -> Option<String> {
        None
    }
}

/// Round-robin arbitration among requests with priorities.
///
/// `reqs` holds `(priority, slot_key)` pairs where `slot_key < num_slots`
/// identifies the physical requestor (input VC index, input port index, …).
/// Among the maximum-priority requests, the one whose key comes first at or
/// after `*ptr` (cyclically) wins, and the pointer advances past it — a
/// standard rotating-priority arbiter.
///
/// Returns the index *into `reqs`* of the winner.
pub fn arbitrate_rr(reqs: &[(u64, usize)], num_slots: usize, ptr: &mut usize) -> Option<usize> {
    let (widx, next_ptr) = arbitrate_rr_at(reqs, num_slots, *ptr)?;
    *ptr = next_ptr;
    Some(widx)
}

/// Pure transition function of the rotating-priority arbiter: the same
/// decision as [`arbitrate_rr`] without mutating the pointer. Returns
/// `(winner index into reqs, next pointer)`. The static admission
/// pipeline ([`crate::admit`]) reasons about arbitration through this
/// function; the kernel wrapper above delegates here so the two can
/// never diverge.
pub fn arbitrate_rr_at(
    reqs: &[(u64, usize)],
    num_slots: usize,
    ptr: usize,
) -> Option<(usize, usize)> {
    let max_prio = reqs.iter().map(|r| r.0).max()?;
    let mut best: Option<(usize, usize)> = None; // (rotated distance, req index)
    for (i, &(p, key)) in reqs.iter().enumerate() {
        if p != max_prio {
            continue;
        }
        debug_assert!(key < num_slots, "slot key {key} out of range {num_slots}");
        let dist = (key + num_slots - ptr) % num_slots;
        if best.is_none_or(|(d, _)| dist < d) {
            best = Some((dist, i));
        }
    }
    let (_, widx) = best?;
    Some((widx, (reqs[widx].1 + 1) % num_slots))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        let mut ptr = 0;
        assert_eq!(arbitrate_rr(&[], 4, &mut ptr), None);
        assert_eq!(ptr, 0);
    }

    #[test]
    fn highest_priority_wins() {
        let mut ptr = 0;
        let reqs = [(1, 0), (5, 1), (3, 2)];
        let w = arbitrate_rr(&reqs, 4, &mut ptr).unwrap();
        assert_eq!(reqs[w].1, 1);
        assert_eq!(ptr, 2);
    }

    #[test]
    fn equal_priorities_rotate_fairly() {
        // Three requestors with equal priority should each win once in
        // three consecutive arbitrations.
        let mut ptr = 0;
        let reqs = [(7u64, 0usize), (7, 1), (7, 2)];
        let mut wins = vec![];
        for _ in 0..3 {
            let w = arbitrate_rr(&reqs, 3, &mut ptr).unwrap();
            wins.push(reqs[w].1);
        }
        wins.sort_unstable();
        assert_eq!(wins, vec![0, 1, 2]);
    }

    #[test]
    fn pointer_wraps() {
        let mut ptr = 3;
        let reqs = [(1u64, 0usize), (1, 3)];
        // ptr=3 → slot 3 is at distance 0, wins first.
        let w = arbitrate_rr(&reqs, 4, &mut ptr).unwrap();
        assert_eq!(reqs[w].1, 3);
        assert_eq!(ptr, 0);
        let w = arbitrate_rr(&reqs, 4, &mut ptr).unwrap();
        assert_eq!(reqs[w].1, 0);
    }

    #[test]
    fn starvation_free_under_contention() {
        // One high-priority and one low-priority requestor: low priority
        // never wins while high is present (strict priority)...
        let mut ptr = 0;
        for _ in 0..10 {
            let reqs = [(2u64, 0usize), (1, 1)];
            let w = arbitrate_rr(&reqs, 2, &mut ptr).unwrap();
            assert_eq!(reqs[w].1, 0);
        }
        // ...but wins as soon as the high-priority requestor leaves.
        let reqs = [(1u64, 1usize)];
        let w = arbitrate_rr(&reqs, 2, &mut ptr).unwrap();
        assert_eq!(reqs[w].1, 1);
    }
}
