//! Bench for Figure 15 (global-traffic patterns): regenerates the
//! per-pattern comparison, then times the six-application scenario under
//! each global traffic pattern.

use bench::{bench_config, TIMED_CYCLES};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figs::fig15;
use experiments::sweep::build_network;
use noc_sim::config::SimConfig;
use rair::scheme::{Routing, Scheme};
use traffic::scenario::six_app;

fn regen_and_time(c: &mut Criterion) {
    let ec = bench_config();
    let result = fig15::run(&ec);
    eprintln!("{}", fig15::table(&result).render());

    let rates = [0.03, 0.3, 0.1, 0.07, 0.08, 0.3];
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    for (label, global) in fig15::patterns() {
        g.bench_function(label, |b| {
            b.iter(|| {
                let cfg = SimConfig::table1();
                let (region, scenario) = six_app(&cfg, rates, global.clone());
                let mut net = build_network(
                    &cfg,
                    &region,
                    &Scheme::rair(),
                    Routing::Local,
                    Box::new(scenario),
                    1,
                );
                net.run(TIMED_CYCLES);
                net.stats.recorder.delivered()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, regen_and_time);
criterion_main!(benches);
