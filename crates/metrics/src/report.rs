//! Plain-text table rendering for experiment output.
//!
//! The `repro` binary prints one table per paper figure; these tables are the
//! "same rows/series the paper reports". Rendering is dependency-free,
//! fixed-width and CSV-exportable.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the arity doesn't match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:>w$}", w = *w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Render as CSV (comma-separated, header first).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|s| esc(s))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// One-line summary of the simulator's kernel fast paths: what fraction of
/// router×phase visits and end-of-cycle state updates were elided, and how
/// many whole cycles the idle fast-forward jumped over without ticking.
/// `phase_visits` / `state_updates` are the exhaustive-scan totals
/// (`cycles × routers × phases` and `cycles × routers`); `cycles` is the
/// total simulated span including fast-forwarded cycles.
pub fn kernel_summary(
    phase_visits: u64,
    phase_visits_skipped: u64,
    state_updates: u64,
    state_updates_skipped: u64,
    cycles: u64,
    idle_cycles_skipped: u64,
) -> String {
    let frac = |skipped: u64, total: u64| {
        if total == 0 {
            0.0
        } else {
            100.0 * skipped as f64 / total as f64
        }
    };
    format!(
        "kernel: skipped {:.1}% of router phase visits ({}/{}), \
         {:.1}% of state updates ({}/{}), \
         fast-forwarded {:.1}% of cycles ({}/{})",
        frac(phase_visits_skipped, phase_visits),
        phase_visits_skipped,
        phase_visits,
        frac(state_updates_skipped, state_updates),
        state_updates_skipped,
        state_updates,
        frac(idle_cycles_skipped, cycles),
        idle_cycles_skipped,
        cycles,
    )
}

/// One-line summary of the invariant-oracle verdict for a run (or a batch
/// of runs whose violation counts were summed).
pub fn oracle_summary(enabled: bool, violations: u64) -> String {
    if !enabled {
        "oracle: disabled".to_string()
    } else if violations == 0 {
        "oracle: enabled — no invariant violations".to_string()
    } else {
        format!("oracle: enabled — {violations} invariant violation(s) recorded")
    }
}

/// Format a float with 2 decimal places (latency cells).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a ratio as a signed percentage (reduction cells), e.g. `-18.9%`.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["p", "RO_RR", "RAIR"]);
        t.row(vec!["0".into(), "12.00".into(), "11.90".into()]);
        t.row(vec!["100".into(), "45.12".into(), "36.60".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("RO_RR"));
        let lines: Vec<&str> = s.lines().collect();
        // title + header + rule + 2 rows
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("", &["name", "v"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn kernel_summary_fractions() {
        let s = kernel_summary(1000, 930, 500, 250, 200, 40);
        assert!(s.contains("93.0%"), "{s}");
        assert!(s.contains("50.0%"), "{s}");
        assert!(s.contains("930/1000"), "{s}");
        assert!(s.contains("20.0%"), "{s}");
        assert!(s.contains("40/200"), "{s}");
        // Zero totals (e.g. a zero-cycle run) must not divide by zero.
        assert!(kernel_summary(0, 0, 0, 0, 0, 0).contains("0.0%"));
    }

    #[test]
    fn oracle_summary_states() {
        assert_eq!(oracle_summary(false, 0), "oracle: disabled");
        assert!(oracle_summary(true, 0).contains("no invariant violations"));
        assert!(oracle_summary(true, 3).contains("3 invariant violation(s)"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00"); // rounds-to-even at f64 repr
        assert_eq!(pct(-0.189), "-18.9%");
        assert_eq!(pct(0.03), "+3.0%");
    }
}
