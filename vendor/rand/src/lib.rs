//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the small slice of `rand` it actually uses: a deterministic `SmallRng`
//! (xoshiro256++ seeded via SplitMix64, the same generator family real
//! `rand` uses on 64-bit targets), `SeedableRng::seed_from_u64`, and the
//! `Rng` convenience methods `random`, `random_bool` and `random_range`.
//!
//! Determinism contract: the exact output stream is stable across builds of
//! this workspace (simulation results depend on it), but it is NOT the same
//! stream as crates.io `rand` — all in-repo calibration constants were
//! re-derived against this generator.

pub mod rngs;

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain (`[0,1)` for
/// floats, full range for integers).
pub trait StandardUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over `[start, end)` / `[start, end]`.
/// Mirrors real rand's `SampleUniform` so that `random_range(0..4)` used as
/// a slice index infers `usize` through the generic `SampleRange` impls.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                start: $t,
                end: $t,
                inclusive: bool,
            ) -> $t {
                assert!(
                    if inclusive { start <= end } else { start < end },
                    "cannot sample empty range"
                );
                // Widen through u64 so the span math can't overflow the
                // operand type (signed types wrap consistently).
                let span = (end as i128 - start as i128) as u64;
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if span == 0 {
                    // Inclusive range covering the full u64 domain.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        start: f64,
        end: f64,
        inclusive: bool,
    ) -> f64 {
        assert!(
            if inclusive { start <= end } else { start < end },
            "cannot sample empty range"
        );
        start + f64::sample(rng) * (end - start)
    }
}

/// A range samplable by `Rng::random_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        // f64::sample is in [0,1), so p = 1.0 is always true and p = 0.0
        // always false.
        f64::sample(self) < p
    }

    /// Uniform draw from `range` (half-open or inclusive).
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = r.random_range(0usize..=3);
            assert!(w <= 3);
            let f = r.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_edge_probabilities() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(!r.random_bool(0.0));
            assert!(r.random_bool(1.0));
        }
    }

    #[test]
    fn random_bool_rate_roughly_matches() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn unit_float_in_half_open_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniformity_rough_chi_square() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.random_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "skewed bucket: {buckets:?}");
        }
    }
}
