//! Bench for Figure 10 (routing algorithms): regenerates the series, then
//! times the two-application scenario under local adaptive vs DBAR routing.

use bench::{bench_config, TIMED_CYCLES};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figs::fig10;
use experiments::sweep::build_network;
use noc_sim::config::SimConfig;
use rair::scheme::{Routing, Scheme};
use traffic::scenario::two_app;

fn regen_and_time(c: &mut Criterion) {
    let ec = bench_config();
    let result = fig10::run(&ec);
    eprintln!("{}", fig10::table(&result).render());

    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    for (label, routing) in [("local", Routing::Local), ("dbar", Routing::Dbar)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let cfg = SimConfig::table1();
                let (region, scenario) = two_app(&cfg, 1.0, 0.035, 0.33);
                let mut net = build_network(
                    &cfg,
                    &region,
                    &Scheme::rair(),
                    routing,
                    Box::new(scenario),
                    1,
                );
                net.run(TIMED_CYCLES);
                net.stats.recorder.delivered()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, regen_and_time);
criterion_main!(benches);
