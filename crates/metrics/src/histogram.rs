//! Fixed-layout latency histogram with power-of-two bucket widths.

use serde::{Deserialize, Serialize};

/// Histogram over `u64` samples (packet latencies in cycles).
///
/// Buckets are exponential: bucket `i` covers `[2^i, 2^(i+1))`, with bucket 0
/// covering `[0, 2)`. This gives constant-time insertion, bounded memory and
/// good resolution at both the zero-load (~10 cycles) and congested
/// (thousands of cycles) ends of the latency distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
}

const NUM_BUCKETS: usize = 40;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
        }
    }

    #[inline]
    fn bucket_of(x: u64) -> usize {
        if x < 2 {
            0
        } else {
            ((64 - x.leading_zeros()) as usize - 1).min(NUM_BUCKETS - 1)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn push(&mut self, x: u64) {
        self.buckets[Self::bucket_of(x)] += 1;
        self.count += 1;
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate quantile (`q` in `[0,1]`): upper bound of the bucket in
    /// which the `q`-th sample falls. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i == 0 { 1 } else { 1u64 << (i + 1) });
            }
        }
        Some(u64::MAX)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Fold every bucket into `d` (determinism fingerprints).
    pub fn digest_into(&self, d: &mut crate::Digest) {
        d.write_u64(self.count);
        for &b in &self.buckets {
            d.write_u64(b);
        }
    }

    /// Reset to empty.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
    }

    /// Bucket counts (for rendering distribution sketches).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1023), 9);
        assert_eq!(Histogram::bucket_of(1024), 10);
    }

    #[test]
    fn quantile_of_uniform_block() {
        let mut h = Histogram::new();
        for x in 0..1000u64 {
            h.push(x);
        }
        assert_eq!(h.count(), 1000);
        // Median of 0..1000 is ~500, bucket upper bound 512 or 1024.
        let med = h.quantile(0.5).unwrap();
        assert!((512..=1024).contains(&med), "median bound {med}");
        // p0 lands in the lowest occupied bucket.
        assert!(h.quantile(0.0).unwrap() <= 2);
    }

    #[test]
    fn empty_quantile_none() {
        assert!(Histogram::new().quantile(0.5).is_none());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.push(10);
        b.push(20);
        b.push(30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn huge_sample_clamps_to_last_bucket() {
        let mut h = Histogram::new();
        h.push(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(*h.buckets().last().unwrap(), 1);
    }
}
