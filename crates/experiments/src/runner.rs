//! Simulation runner: executes configured networks (optionally in parallel
//! across a sweep) and extracts per-application results.

use metrics::LatencyKind;
use noc_sim::network::Network;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Warmup/measurement window and seed for one experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExpConfig {
    pub warmup: u64,
    pub measure: u64,
    pub seed: u64,
    /// Quick mode trades statistical tightness for speed (used by the
    /// Criterion benches and the test suite).
    pub quick: bool,
}

impl ExpConfig {
    /// The paper's windows: 10K warmup + 100K measurement cycles (§V.A).
    pub fn full() -> Self {
        Self {
            warmup: 10_000,
            measure: 100_000,
            seed: 0xC0FFEE,
            quick: false,
        }
    }

    /// Reduced windows for benches/tests.
    pub fn quick() -> Self {
        Self {
            warmup: 2_000,
            measure: 15_000,
            seed: 0xC0FFEE,
            quick: true,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Label identifying the run (scheme, parameters…).
    pub label: String,
    /// Mean network latency (injection→ejection) per application; `None`
    /// when the application delivered no packets in the window.
    pub apl: Vec<Option<f64>>,
    /// Mean total latency (generation→ejection) per application.
    pub total_latency: Vec<Option<f64>>,
    /// Packets delivered in the measurement window.
    pub delivered: u64,
    /// Flit throughput in flits/cycle/node.
    pub throughput: f64,
}

impl RunResult {
    /// Unweighted mean of the per-application APLs (how the paper averages
    /// "over all applications"), restricted to `apps` if given.
    pub fn mean_apl(&self, apps: Option<&[usize]>) -> f64 {
        let vals: Vec<f64> = match apps {
            Some(idx) => idx.iter().filter_map(|&a| self.apl[a]).collect(),
            None => self.apl.iter().flatten().copied().collect(),
        };
        assert!(!vals.is_empty(), "no delivered packets in {}", self.label);
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    /// APL of one application (panics if it delivered nothing).
    pub fn app_apl(&self, app: usize) -> f64 {
        self.apl[app]
            .unwrap_or_else(|| panic!("app {app} delivered no packets in {}", self.label))
    }
}

/// Run one already-built network through warmup + measurement and collect
/// the result.
pub fn run_one(label: impl Into<String>, mut net: Network, cfg: &ExpConfig) -> RunResult {
    net.run_warmup_measure(cfg.warmup, cfg.measure);
    let rec = &net.stats.recorder;
    let napps = rec.num_apps();
    RunResult {
        label: label.into(),
        apl: (0..napps)
            .map(|a| rec.app(a).mean(LatencyKind::Network))
            .collect(),
        total_latency: (0..napps)
            .map(|a| rec.app(a).mean(LatencyKind::Total))
            .collect(),
        delivered: rec.delivered(),
        throughput: net.stats.throughput(net.cycle(), net.cfg.num_nodes()),
    }
}

/// A deferred simulation job for the parallel sweep runner.
pub type Job = Box<dyn FnOnce() -> RunResult + Send>;

/// Execute jobs across all available cores (one simulation per thread —
/// runs are independent and deterministic, so parallelism never changes
/// results). Results are returned in job order.
pub fn run_parallel(jobs: Vec<Job>) -> Vec<RunResult> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if workers <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let queue: Mutex<Vec<(usize, Job)>> = Mutex::new(jobs.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<RunResult>>> = Mutex::new((0..n).map(|_| None).collect());
    let active = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let job = queue.lock().pop();
                let Some((idx, job)) = job else { break };
                active.fetch_add(1, Ordering::Relaxed);
                let r = job();
                results.lock()[idx] = Some(r);
                active.fetch_sub(1, Ordering::Relaxed);
            });
        }
    })
    .expect("sweep worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::prelude::*;

    fn tiny_net(seed: u64) -> Network {
        let cfg = SimConfig::table1();
        let pkt = NewPacket {
            dst: 9,
            app: 0,
            class: 0,
            size: 1,
            reply: None,
        };
        Network::new(
            cfg,
            RegionMap::single(&SimConfig::table1()),
            Box::new(DuatoLocalAdaptive),
            Box::new(RoundRobin),
            Box::new(ScriptedSource::new(1, vec![(2100, 0, pkt)])),
            seed,
        )
    }

    #[test]
    fn run_one_collects_apl() {
        let cfg = ExpConfig {
            warmup: 2_000,
            measure: 3_000,
            seed: 0,
            quick: true,
        };
        let r = run_one("probe", tiny_net(1), &cfg);
        assert_eq!(r.delivered, 1);
        assert!(r.app_apl(0) > 0.0);
        assert!(r.mean_apl(None) > 0.0);
    }

    #[test]
    fn parallel_matches_serial_and_preserves_order() {
        let cfg = ExpConfig {
            warmup: 1_000,
            measure: 2_500,
            seed: 0,
            quick: true,
        };
        let mk = |i: usize| -> Job {
            Box::new(move || run_one(format!("job{i}"), tiny_net(i as u64), &cfg))
        };
        let serial: Vec<RunResult> = (0..6).map(|i| (mk(i))()).collect();
        let parallel = run_parallel((0..6).map(mk).collect());
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.delivered, p.delivered);
            assert_eq!(s.apl, p.apl, "parallelism changed results");
        }
    }

    #[test]
    fn empty_jobs_ok() {
        assert!(run_parallel(vec![]).is_empty());
    }
}
