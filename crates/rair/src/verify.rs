//! Static checks for the RAIR-side configuration surface: scheme rank
//! totality (MSP/DPA/STC parameters) and LBDR-confined region legality.
//!
//! The `noc_sim::verify` module proves the routing substrate deadlock-free;
//! this module proves the *policy* layer well-formed — a `NaN` STC
//! intensity or a DPA hysteresis width outside `(0, 1)` silently breaks
//! the total order the arbitration stages rely on — and wires the LBDR
//! connectivity bits of [`crate::lbdr::ConnectivityBits`] into the
//! substrate verifier as link/pair filters so each confined region is
//! shown to retain minimal legal paths.

use crate::dpa::DpaMode;
use crate::lbdr::ConnectivityBits;
use crate::scheme::Scheme;
use noc_sim::config::SimConfig;
use noc_sim::region::RegionMap;
use noc_sim::routing::RoutingAlgorithm;
use noc_sim::verify::{Verifier, VerifyReport};

/// Check that a scheme's parameters define a *total* priority order for
/// `num_apps` applications. Returns one message per defect (empty = ok).
pub fn check_scheme(scheme: &Scheme, num_apps: usize) -> Vec<String> {
    let mut errs = Vec::new();
    match scheme {
        Scheme::RoRr | Scheme::RoAge => {}
        Scheme::RoRank {
            intensities,
            batch_window,
        } => {
            if *batch_window == 0 {
                errs.push("RO_Rank: batch_window must be nonzero".into());
            }
            if intensities.len() < num_apps {
                errs.push(format!(
                    "RO_Rank: {} intensities for {num_apps} applications — \
                     unranked applications break rank totality",
                    intensities.len()
                ));
            }
            for (i, x) in intensities.iter().enumerate() {
                if !x.is_finite() || *x < 0.0 {
                    errs.push(format!(
                        "RO_Rank: intensity[{i}] = {x} is not finite and \
                         non-negative — the rank comparison is not a total order"
                    ));
                }
            }
        }
        Scheme::RoRankOnline {
            num_apps: n,
            batch_window,
            rank_interval,
        } => {
            if *batch_window == 0 {
                errs.push("RO_RankOnline: batch_window must be nonzero".into());
            }
            if *rank_interval == 0 {
                errs.push("RO_RankOnline: rank_interval must be nonzero".into());
            }
            if *n < num_apps {
                errs.push(format!(
                    "RO_RankOnline: sized for {n} applications but the \
                     scenario has {num_apps}"
                ));
            }
        }
        // Every MSP stage combination is a legal ablation; only the DPA
        // hysteresis width can break the priority relation.
        Scheme::Rair { msp: _, dpa } => {
            if let DpaMode::Dynamic { delta } = dpa {
                if !delta.is_finite() || *delta <= 0.0 || *delta >= 1.0 {
                    errs.push(format!(
                        "RAIR: DPA hysteresis delta = {delta} must be a \
                         finite value in (0, 1) — outside it the native/foreign \
                         priority bit oscillates or never switches"
                    ));
                }
            }
        }
    }
    errs
}

/// Verify the LBDR-restricted variant of `routing` over `region`: the
/// connectivity bits derived from the region map are applied as a link
/// filter (packets cannot leave their region) and legality is required for
/// every intra-region pair. Deadlock-freedom of the escape subgraph is
/// re-proven under the restriction — a subgraph of an acyclic graph is
/// acyclic, but the verifier computes it rather than assuming it.
pub fn verify_lbdr(
    cfg: &SimConfig,
    region: &RegionMap,
    routing: &dyn RoutingAlgorithm,
) -> VerifyReport {
    let bits = ConnectivityBits::from_region(cfg, region);
    // The verifier hands the filters *router* indices; region membership is
    // per node, so map a router to its base node (region maps are constant
    // within a router on a concentrated mesh).
    let c = cfg.concentration() as u16;
    Verifier::new(cfg, routing)
        .with_link_filter(move |r, p| bits.usable(r, p))
        .with_pair_filter(move |r, d| region.app_of(r * c) == region.app_of(d * c))
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::ids::PORT_EAST;
    use noc_sim::routing::DuatoLocalAdaptive;
    use noc_sim::verify::Witness;

    #[test]
    fn shipped_schemes_are_total() {
        for s in [
            Scheme::RoRr,
            Scheme::RoAge,
            Scheme::ro_rank(vec![0.1, 0.9]),
            Scheme::ro_rank_online(6),
            Scheme::rair(),
            Scheme::rair_va_only(),
            Scheme::rair_native_high(),
            Scheme::rair_foreign_high(),
        ] {
            assert!(check_scheme(&s, 2).is_empty(), "{}", s.label());
        }
    }

    #[test]
    fn nan_intensity_breaks_rank_totality() {
        let s = Scheme::ro_rank(vec![0.1, f64::NAN]);
        let errs = check_scheme(&s, 2);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("total order"), "{}", errs[0]);
    }

    #[test]
    fn missing_rank_and_zero_windows_are_rejected() {
        // Fewer intensities than applications: the rank is partial.
        let errs = check_scheme(&Scheme::ro_rank(vec![0.5]), 3);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("rank totality"), "{}", errs[0]);
        // Zero batching/ranking windows can never re-rank.
        let s = Scheme::RoRank {
            intensities: vec![0.1, 0.9],
            batch_window: 0,
        };
        assert_eq!(check_scheme(&s, 2).len(), 1);
        let s = Scheme::RoRankOnline {
            num_apps: 1,
            batch_window: 0,
            rank_interval: 0,
        };
        assert_eq!(check_scheme(&s, 2).len(), 3);
    }

    #[test]
    fn bad_dpa_delta_is_rejected() {
        for delta in [0.0, 1.0, -0.2, f64::NAN, f64::INFINITY] {
            let s = Scheme::Rair {
                msp: crate::msp::MspConfig::va_and_sa(),
                dpa: DpaMode::Dynamic { delta },
            };
            assert_eq!(check_scheme(&s, 2).len(), 1, "delta {delta}");
        }
    }

    #[test]
    fn quadrant_regions_verify_under_lbdr() {
        let cfg = SimConfig::table1();
        for region in [
            RegionMap::single(&cfg),
            RegionMap::halves(&cfg),
            RegionMap::quadrants(&cfg),
        ] {
            let r = verify_lbdr(&cfg, &region, &DuatoLocalAdaptive);
            assert!(r.ok(), "{:?}", r.violations.first());
        }
    }

    #[test]
    fn disconnected_region_fails_lbdr_legality() {
        // App 0 owns the two opposite corners and nothing between them:
        // confined traffic can never cross app 1's territory.
        let cfg = SimConfig::table1();
        let region = RegionMap::from_fn(&cfg, 2, |c| {
            u8::from(!((c.x == 0 && c.y == 0) || (c.x == 7 && c.y == 7)))
        });
        let r = verify_lbdr(&cfg, &region, &DuatoLocalAdaptive);
        assert!(!r.ok());
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v.witness, Witness::UnreachablePair { .. })));
    }

    #[test]
    fn severed_bit_is_inconsistent() {
        let cfg = SimConfig::table1();
        let mut bits = ConnectivityBits::full(&cfg);
        assert!(bits.check_consistency(&cfg).is_empty());
        bits.sever(27, PORT_EAST);
        let errs = bits.check_consistency(&cfg);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("asymmetric"), "{}", errs[0]);
    }
}
