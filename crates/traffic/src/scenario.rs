//! Regionalized synthetic-traffic scenarios.
//!
//! A [`Scenario`] drives every node of a regionalized NoC with its
//! application's configured load and traffic mix (RB-1…RB-4): a fraction of
//! intra-region uniform-random traffic, a fraction of inter-region (global)
//! traffic with a configurable destination rule, and a fraction of
//! memory-controller round-trips to the chip corners. The concrete layouts
//! of the paper's Figures 8, 11, 13 and 16 are provided as constructors.

use crate::pattern::Pattern;
use noc_sim::config::SimConfig;
use noc_sim::flit::ReplySpec;
use noc_sim::ids::{AppId, NodeId, APP_NONE};
use noc_sim::region::RegionMap;
use noc_sim::source::{NewPacket, TrafficSource};
use rand::rngs::SmallRng;
use rand::Rng;

/// Average packet size under the paper's 50/50 short/long mix
/// (1-flit and 5-flit packets).
pub const AVG_PACKET_FLITS: f64 = 3.0;

/// How an application's inter-region (global) traffic picks destinations.
#[derive(Debug, Clone, PartialEq)]
pub enum InterDest {
    /// Uniform over all nodes outside the application's own region.
    OutsideUniform,
    /// Uniform within another application's region (Fig. 11(a): the low
    /// apps all target the hot region).
    Region(AppId),
    /// A chip-wide synthetic pattern (Fig. 15). Sources whose pattern
    /// destination is undefined or falls back on themselves use
    /// [`InterDest::OutsideUniform`] instead, preserving the offered load.
    Pattern(Pattern),
}

/// Per-application traffic specification.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Offered load in flits/cycle/node over the application's nodes.
    pub rate_flits: f64,
    /// Fraction of packets that are intra-region uniform random.
    pub intra: f64,
    /// Fraction of packets that are inter-region (global) traffic.
    pub inter: f64,
    /// Destination rule for the inter-region fraction.
    pub inter_dest: InterDest,
    /// Fraction of packets that are memory-controller requests to a random
    /// corner tile ("to and from the 4 corner nodes", §V.E): the request
    /// carries a reply spec so the corner answers with a long packet after
    /// the memory latency.
    pub mc: f64,
}

impl AppSpec {
    /// Purely intra-region uniform-random traffic at `rate_flits`.
    pub fn intra_only(rate_flits: f64) -> Self {
        Self {
            rate_flits,
            intra: 1.0,
            inter: 0.0,
            inter_dest: InterDest::OutsideUniform,
            mc: 0.0,
        }
    }

    /// Intra + inter mix without MC traffic.
    pub fn with_inter(rate_flits: f64, inter: f64, inter_dest: InterDest) -> Self {
        assert!((0.0..=1.0).contains(&inter));
        Self {
            rate_flits,
            intra: 1.0 - inter,
            inter,
            inter_dest,
            mc: 0.0,
        }
    }

    fn validate(&self) {
        assert!(self.rate_flits >= 0.0);
        let total = self.intra + self.inter + self.mc;
        assert!(
            (total - 1.0).abs() < 1e-9 || self.rate_flits == 0.0,
            "traffic mix fractions must sum to 1 (got {total})"
        );
    }

    /// Fold every load-determining parameter into `d` (collision-proof
    /// saturation-cache keys).
    pub fn digest_into(&self, d: &mut metrics::Digest) {
        d.write_f64(self.rate_flits);
        d.write_f64(self.intra);
        d.write_f64(self.inter);
        self.inter_dest.digest_into(d);
        d.write_f64(self.mc);
    }
}

impl InterDest {
    /// Variant discriminant plus payload, order-sensitive.
    pub fn digest_into(&self, d: &mut metrics::Digest) {
        match self {
            InterDest::OutsideUniform => d.write_u64(0),
            InterDest::Region(a) => {
                d.write_u64(1);
                d.write_u64(*a as u64);
            }
            InterDest::Pattern(p) => {
                d.write_u64(2);
                p.digest_into(d);
            }
        }
    }
}

/// Per-app precomputed state.
#[derive(Debug, Clone)]
struct AppState {
    spec: AppSpec,
    /// Packet-generation probability per node per cycle.
    pkt_prob: f64,
    own: Pattern,
    outside: Pattern,
}

/// A multi-application synthetic workload over a regionalized mesh.
#[derive(Debug, Clone)]
pub struct Scenario {
    cfg: SimConfig,
    region: RegionMap,
    apps: Vec<Option<AppState>>,
    corners: [NodeId; 4],
    mem_latency: u64,
    long_flits: u32,
    reply_class: u8,
}

impl Scenario {
    /// Build a scenario; `specs[app]` may be `None` for silent applications.
    pub fn new(cfg: &SimConfig, region: &RegionMap, specs: Vec<Option<AppSpec>>) -> Self {
        assert_eq!(specs.len(), region.num_apps());
        let apps = specs
            .into_iter()
            .enumerate()
            .map(|(a, spec)| {
                spec.map(|s| {
                    s.validate();
                    let own_nodes = region.nodes_of(a as AppId);
                    assert!(!own_nodes.is_empty(), "app {a} has no region");
                    AppState {
                        pkt_prob: (s.rate_flits / AVG_PACKET_FLITS).min(1.0),
                        own: Pattern::UniformWithin(own_nodes.clone()),
                        outside: Pattern::UniformOutside(own_nodes),
                        spec: s,
                    }
                })
            })
            .collect();
        Self {
            corners: cfg.corners(),
            mem_latency: cfg.mem_latency,
            long_flits: cfg.long_flits,
            reply_class: (cfg.num_classes - 1) as u8,
            cfg: cfg.clone(),
            region: region.clone(),
            apps,
        }
    }

    /// The configured offered load per application (flits/cycle/node),
    /// 0 for silent apps — the oracle intensity vector handed to RO_Rank.
    pub fn intensities(&self) -> Vec<f64> {
        self.apps
            .iter()
            .map(|a| a.as_ref().map_or(0.0, |s| s.spec.rate_flits))
            .collect()
    }

    /// Draw a packet size: 50/50 short/long (§V.A).
    fn draw_size(&self, rng: &mut SmallRng) -> u32 {
        if rng.random_bool(0.5) {
            1
        } else {
            self.long_flits
        }
    }

    fn draw_dest(
        &self,
        state: &AppState,
        src: NodeId,
        rng: &mut SmallRng,
    ) -> Option<(NodeId, bool)> {
        let u: f64 = rng.random();
        let s = &state.spec;
        if u < s.intra {
            state.own.dest(&self.cfg, src, rng).map(|d| (d, false))
        } else if u < s.intra + s.inter {
            let d = match &s.inter_dest {
                InterDest::OutsideUniform => state.outside.dest(&self.cfg, src, rng),
                InterDest::Region(target) => {
                    Pattern::UniformWithin(self.region.nodes_of(*target)).dest(&self.cfg, src, rng)
                }
                InterDest::Pattern(p) => p
                    .dest(&self.cfg, src, rng)
                    .or_else(|| state.outside.dest(&self.cfg, src, rng)),
            };
            d.map(|d| (d, false))
        } else {
            // Memory-controller round trip to a random corner.
            let mut c = self.corners[rng.random_range(0..4)];
            if c == src {
                c = self.corners[(self.corners.iter().position(|&x| x == src).unwrap() + 1) % 4];
            }
            Some((c, true))
        }
    }
}

impl TrafficSource for Scenario {
    fn num_apps(&self) -> usize {
        self.apps.len()
    }

    fn generate(&mut self, node: NodeId, _cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        let app = self.region.app_of(node);
        if app == APP_NONE {
            return None;
        }
        let state = self.apps[app as usize].as_ref()?;
        if state.pkt_prob == 0.0 || !rng.random_bool(state.pkt_prob) {
            return None;
        }
        let (dst, is_mc) = self.draw_dest(state, node, rng)?;
        debug_assert_ne!(dst, node);
        let size = self.draw_size(rng);
        Some(NewPacket {
            dst,
            app,
            class: 0,
            size,
            reply: is_mc.then_some(ReplySpec {
                service_latency: self.mem_latency,
                size: self.long_flits,
                class: self.reply_class,
            }),
        })
    }

    fn next_injection_cycle(&self, _now: u64) -> Option<u64> {
        // A Bernoulli source must be consulted (and must draw) every cycle;
        // only the all-silent scenario can promise anything — and then
        // `generate` short-circuits before touching the RNG, so "never
        // again" is side-effect-free.
        self.apps
            .iter()
            .all(|a| a.as_ref().is_none_or(|s| s.pkt_prob == 0.0))
            .then_some(u64::MAX)
    }
}

// ------------------------------------------------------------------------
// Paper scenario layouts
// ------------------------------------------------------------------------

/// Fig. 8: two applications on the mesh halves. App 0 (left) runs at
/// `rate0` flits/cycle/node with fraction `p` of its traffic inter-region
/// (uniform into the right half); App 1 (right) runs purely intra-region at
/// `rate1`.
pub fn two_app(cfg: &SimConfig, p: f64, rate0: f64, rate1: f64) -> (RegionMap, Scenario) {
    let region = RegionMap::halves(cfg);
    let scenario = Scenario::new(
        cfg,
        &region,
        vec![
            Some(AppSpec::with_inter(rate0, p, InterDest::Region(1))),
            Some(AppSpec::intra_only(rate1)),
        ],
    );
    (region, scenario)
}

/// Fig. 11(a): four quadrant regions; apps 0–2 low load with 30 % of their
/// traffic into app 3's region; app 3 high load, all intra-region.
pub fn four_app_dpa_a(cfg: &SimConfig, low: f64, high: f64) -> (RegionMap, Scenario) {
    let region = RegionMap::quadrants(cfg);
    let spec_low = AppSpec::with_inter(low, 0.3, InterDest::Region(3));
    let scenario = Scenario::new(
        cfg,
        &region,
        vec![
            Some(spec_low.clone()),
            Some(spec_low.clone()),
            Some(spec_low),
            Some(AppSpec::intra_only(high)),
        ],
    );
    (region, scenario)
}

/// Fig. 11(b): four quadrant regions; apps 0–2 low load, all intra-region;
/// app 3 high load with 30 % of its traffic uniformly into other regions.
pub fn four_app_dpa_b(cfg: &SimConfig, low: f64, high: f64) -> (RegionMap, Scenario) {
    let region = RegionMap::quadrants(cfg);
    let scenario = Scenario::new(
        cfg,
        &region,
        vec![
            Some(AppSpec::intra_only(low)),
            Some(AppSpec::intra_only(low)),
            Some(AppSpec::intra_only(low)),
            Some(AppSpec::with_inter(high, 0.3, InterDest::OutsideUniform)),
        ],
    );
    (region, scenario)
}

/// Fig. 13: six regions; every application generates 75 % intra-region UR,
/// 20 % inter-region traffic with `global` pattern and 5 % corner-MC
/// round trips. `rates[app]` gives each application's offered load.
pub fn six_app(cfg: &SimConfig, rates: [f64; 6], global: InterDest) -> (RegionMap, Scenario) {
    let region = RegionMap::six_regions(cfg);
    let specs = rates
        .iter()
        .map(|&r| {
            Some(AppSpec {
                rate_flits: r,
                intra: 0.75,
                inter: 0.20,
                inter_dest: global.clone(),
                mc: 0.05,
            })
        })
        .collect();
    let scenario = Scenario::new(cfg, &region, specs);
    (region, scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> SimConfig {
        SimConfig::table1()
    }

    #[test]
    fn two_app_respects_regions() {
        let c = cfg();
        let (region, mut s) = two_app(&c, 0.0, 0.3, 0.3);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut generated = 0;
        for cyc in 0..2000 {
            for node in 0..64u16 {
                if let Some(p) = s.generate(node, cyc, &mut rng) {
                    generated += 1;
                    assert_eq!(p.app, region.app_of(node));
                    // p = 0: all traffic intra-region.
                    assert_eq!(region.app_of(p.dst), p.app, "intra-only leaked");
                    assert_ne!(p.dst, node);
                }
            }
        }
        assert!(generated > 1000);
    }

    #[test]
    fn two_app_inter_fraction_matches_p() {
        let c = cfg();
        let (region, mut s) = two_app(&c, 0.4, 0.3, 0.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let (mut intra, mut inter) = (0u32, 0u32);
        for cyc in 0..4000 {
            for node in region.nodes_of(0) {
                if let Some(p) = s.generate(node, cyc, &mut rng) {
                    if region.app_of(p.dst) == 0 {
                        intra += 1;
                    } else {
                        inter += 1;
                    }
                }
            }
        }
        let frac = inter as f64 / (intra + inter) as f64;
        assert!((frac - 0.4).abs() < 0.03, "inter fraction {frac}");
    }

    #[test]
    fn offered_load_matches_rate() {
        let c = cfg();
        let (region, mut s) = two_app(&c, 0.0, 0.3, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut flits = 0u64;
        let cycles = 20_000;
        for cyc in 0..cycles {
            for node in region.nodes_of(0) {
                if let Some(p) = s.generate(node, cyc, &mut rng) {
                    flits += p.size as u64;
                }
            }
        }
        let rate = flits as f64 / cycles as f64 / 32.0;
        assert!((rate - 0.3).abs() < 0.02, "offered {rate} vs 0.3");
    }

    #[test]
    fn silent_app_generates_nothing() {
        let c = cfg();
        let region = RegionMap::halves(&c);
        let mut s = Scenario::new(&c, &region, vec![None, Some(AppSpec::intra_only(0.5))]);
        let mut rng = SmallRng::seed_from_u64(4);
        for cyc in 0..500 {
            for node in region.nodes_of(0) {
                assert!(s.generate(node, cyc, &mut rng).is_none());
            }
        }
    }

    #[test]
    fn six_app_mc_packets_carry_reply() {
        let c = cfg();
        let (_region, mut s) = six_app(&c, [0.2; 6], InterDest::OutsideUniform);
        let mut rng = SmallRng::seed_from_u64(5);
        let corners = c.corners();
        let mut mc = 0u32;
        let mut total = 0u32;
        for cyc in 0..3000 {
            for node in 0..64u16 {
                if let Some(p) = s.generate(node, cyc, &mut rng) {
                    total += 1;
                    if let Some(r) = p.reply {
                        mc += 1;
                        assert!(corners.contains(&p.dst));
                        assert_eq!(r.service_latency, c.mem_latency);
                    }
                }
            }
        }
        let frac = mc as f64 / total as f64;
        assert!((frac - 0.05).abs() < 0.01, "MC fraction {frac}");
    }

    #[test]
    fn intensities_match_specs() {
        let c = cfg();
        let (_r, s) = six_app(
            &c,
            [0.1, 0.9, 0.2, 0.3, 0.15, 0.9],
            InterDest::OutsideUniform,
        );
        assert_eq!(s.intensities(), vec![0.1, 0.9, 0.2, 0.3, 0.15, 0.9]);
    }

    #[test]
    fn dpa_scenarios_shape() {
        let c = cfg();
        let (region, mut s) = four_app_dpa_a(&c, 0.1, 0.8);
        let mut rng = SmallRng::seed_from_u64(6);
        // App 0's inter-region traffic must land in region 3.
        let mut saw_inter = false;
        for cyc in 0..5000 {
            for node in region.nodes_of(0) {
                if let Some(p) = s.generate(node, cyc, &mut rng) {
                    let dapp = region.app_of(p.dst);
                    assert!(dapp == 0 || dapp == 3);
                    saw_inter |= dapp == 3;
                }
            }
        }
        assert!(saw_inter);

        let (region, mut s) = four_app_dpa_b(&c, 0.1, 0.8);
        // Apps 0-2 are intra-only; app 3 sprays everywhere.
        let mut app3_inter = false;
        for cyc in 0..3000 {
            for node in region.nodes_of(3) {
                if let Some(p) = s.generate(node, cyc, &mut rng) {
                    app3_inter |= region.app_of(p.dst) != 3;
                }
            }
            for node in region.nodes_of(1) {
                if let Some(p) = s.generate(node, cyc, &mut rng) {
                    assert_eq!(region.app_of(p.dst), 1);
                }
            }
        }
        assert!(app3_inter);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mix_rejected() {
        let c = cfg();
        let region = RegionMap::halves(&c);
        Scenario::new(
            &c,
            &region,
            vec![
                Some(AppSpec {
                    rate_flits: 0.1,
                    intra: 0.5,
                    inter: 0.1,
                    inter_dest: InterDest::OutsideUniform,
                    mc: 0.0,
                }),
                None,
            ],
        );
    }
}
