//! Cross-topology differential suite: the same kernel, verifier, oracle
//! and sharded engine must agree on every supported topology.
//!
//! For random rectangular region maps × {mesh, torus, ring, cmesh} ×
//! radices that include the u64 word-boundary router counts (63/64/65 —
//! the active-set bitmaps straddle a word exactly there), the suite
//! asserts:
//!
//! (a) the static deadlock-freedom verifier passes for every shipped
//!     routing (and under LBDR confinement on the non-wrapping kinds),
//! (b) all-pairs routability — the legality pass actually visited every
//!     ordered router pair,
//! (c) end-state digests are deterministic: bit-identical across repeated
//!     runs of one seed and across shard counts {1, 2, 4}, and
//! (d) the full invariant oracle (credit conservation, routing legality,
//!     deadlock watchdog, …) stays clean at 5 % and 30 % offered load.

use noc_sim::network::Network;
use noc_sim::prelude::*;
use proptest::prelude::*;
use rair::prelude::*;
use traffic::scenario::{AppSpec, InterDest, Scenario};

/// Build a validated config of the given kind and router-grid radix.
fn cfg_kind(kind: TopologyKind, w: u8, h: u8) -> SimConfig {
    let cfg = SimConfig {
        topology: kind,
        width: w,
        height: h,
        ..SimConfig::table1()
    };
    cfg.validate().expect("test config must validate");
    cfg
}

/// The differential matrix: every topology kind, with radices chosen so
/// the router count lands on 63, 64 and 65 (word-boundary bitmap sizes)
/// plus the canonical per-kind shapes.
fn matrix() -> Vec<(TopologyKind, u8, u8)> {
    vec![
        (TopologyKind::Mesh, 8, 8),  // 64 routers — exactly one u64 word
        (TopologyKind::Mesh, 9, 7),  // 63
        (TopologyKind::Mesh, 13, 5), // 65
        (TopologyKind::Torus, 8, 8), // 64, wrap links + datelines
        (TopologyKind::Torus, 9, 7), // 63
        (TopologyKind::Ring, 63, 1), // word-boundary rings
        (TopologyKind::Ring, 64, 1),
        (TopologyKind::Ring, 65, 1),
        (TopologyKind::CMesh { concentration: 4 }, 4, 4), // 64 nodes
        (TopologyKind::CMesh { concentration: 2 }, 8, 4), // 32 routers, 64 nodes
    ]
}

fn routings() -> [Routing; 3] {
    [Routing::Xy, Routing::Local, Routing::Dbar]
}

/// A two-region map split at column `xcut` (1 ≤ xcut < width): region 0
/// west of the cut, region 1 east. Rectangular on every kind; on wrapping
/// kinds it only steers traffic (no LBDR confinement is applied there —
/// an arc wider than half the ring has intra-region minimal paths that
/// legitimately leave the arc).
fn split_region(cfg: &SimConfig, xcut: u8) -> RegionMap {
    RegionMap::from_fn(cfg, 2, |c| u8::from(c.x >= xcut))
}

fn two_app_scenario(cfg: &SimConfig, region: &RegionMap, p: f64, r0: f64, r1: f64) -> Scenario {
    Scenario::new(
        cfg,
        region,
        vec![
            Some(AppSpec::with_inter(r0, p, InterDest::Region(1))),
            Some(AppSpec::intra_only(r1)),
        ],
    )
}

/// Run one simulation to completion and return the end-state digest.
fn digest_of(
    cfg: &SimConfig,
    region: &RegionMap,
    routing: Routing,
    shards: usize,
    oracle: bool,
    load: f64,
    seed: u64,
) -> (u64, u64) {
    let mut cfg = cfg.clone();
    cfg.shards = shards;
    cfg.oracle = if oracle {
        OracleConfig {
            enabled: Some(true),
            panic_on_violation: Some(false),
            check_interval: 4,
            ..OracleConfig::default()
        }
    } else {
        OracleConfig {
            enabled: Some(false),
            ..OracleConfig::default()
        }
    };
    let scenario = two_app_scenario(&cfg, region, 0.5, load, load);
    let mut net = Network::new(
        cfg,
        region.clone(),
        routing.build(),
        Scheme::rair().build(),
        Box::new(scenario),
        seed,
    );
    net.run_warmup_measure(150, 350);
    net.check_oracle_now();
    (net.stats.digest(), net.stats.oracle_violation_count)
}

/// (a) + (b): the static verifier proves every matrix point deadlock-free
/// and legal for every shipped routing, and the legality pass visited
/// every ordered router pair.
#[test]
fn verifier_passes_on_every_topology_and_radix() {
    for (kind, w, h) in matrix() {
        let cfg = cfg_kind(kind, w, h);
        let n = cfg.num_routers();
        for routing in routings() {
            let alg = routing.build();
            let report = Verifier::new(&cfg, alg.as_ref()).run();
            assert!(
                report.ok(),
                "{} {w}x{h} {}: {:?}",
                kind.label(),
                routing.label(),
                report.violations.first()
            );
            assert_eq!(
                report.pairs_checked,
                n * (n - 1),
                "{} {w}x{h}: not all pairs checked",
                kind.label()
            );
        }
    }
}

/// The arbitrary-radix ceiling: 32×32 mesh and torus (1024 routers)
/// verify clean for every routing.
#[test]
fn verifier_passes_at_max_radix() {
    for kind in [TopologyKind::Mesh, TopologyKind::Torus] {
        let cfg = cfg_kind(kind, 32, 32);
        for routing in routings() {
            let alg = routing.build();
            let report = Verifier::new(&cfg, alg.as_ref()).run();
            assert!(
                report.ok(),
                "{} 32x32 {}: {:?}",
                kind.label(),
                routing.label(),
                report.violations.first()
            );
            assert_eq!(report.pairs_checked, 1024 * 1023);
        }
    }
}

/// Refresh tool for the per-topology table in EXPERIMENTS.md: verifier
/// wall time and kernel throughput at 16×16-equivalent node counts
/// (mesh/torus 16×16, ring 255 — the u8 width ceiling —, cmesh 8×8×4).
/// Ignored by default; run with
/// `cargo test --release --test topology -- --ignored bench_topology`.
#[test]
#[ignore]
fn bench_topology_table() {
    let cases = [
        (TopologyKind::Mesh, 16u8, 16u8),
        (TopologyKind::Torus, 16, 16),
        (TopologyKind::Ring, 255, 1),
        (TopologyKind::CMesh { concentration: 4 }, 8, 8),
    ];
    println!("| topology | routers | nodes | verifier ms | kernel Mrouter-cycles/s |");
    println!("|---|---|---|---|---|");
    for (kind, w, h) in cases {
        let cfg = cfg_kind(kind, w, h);
        let alg = Routing::Local.build();
        let t0 = std::time::Instant::now();
        let report = Verifier::new(&cfg, alg.as_ref()).run();
        let verifier_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            report.ok(),
            "{}: {:?}",
            kind.label(),
            report.violations.first()
        );

        let region = split_region(&cfg, w / 2);
        let (_, viol) = digest_of(&cfg, &region, Routing::Local, 1, false, 0.10, 7);
        assert_eq!(viol, 0);
        let cycles = 4_000u64;
        let mut run_cfg = cfg.clone();
        run_cfg.shards = 1;
        run_cfg.oracle = OracleConfig {
            enabled: Some(false),
            ..OracleConfig::default()
        };
        let scenario = two_app_scenario(&run_cfg, &region, 0.5, 0.10, 0.10);
        let mut net = Network::new(
            run_cfg,
            region.clone(),
            Routing::Local.build(),
            Scheme::rair().build(),
            Box::new(scenario),
            7,
        );
        let t1 = std::time::Instant::now();
        net.run(cycles);
        let wall = t1.elapsed().as_secs_f64();
        let mrcs = (cycles as f64 * cfg.num_routers() as f64) / wall / 1e6;
        println!(
            "| {} | {} | {} | {verifier_ms:.1} | {mrcs:.1} |",
            kind.label(),
            cfg.num_routers(),
            cfg.num_nodes()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random rectangular region maps over random matrix points: verifier
    /// (+ LBDR on non-wrapping kinds), shard-count digest identity, and a
    /// clean oracle at 5% and 30% load.
    #[test]
    fn differential_random_regions(
        case_idx in 0usize..10,
        xcut_raw in 1u32..1000,
        routing in prop_oneof![Just(Routing::Xy), Just(Routing::Local), Just(Routing::Dbar)],
        seed in 0u64..1_000,
    ) {
        let (kind, w, h) = matrix()[case_idx];
        let cfg = cfg_kind(kind, w, h);
        let xcut = 1 + (xcut_raw % (w as u32 - 1)) as u8;
        let region = split_region(&cfg, xcut);

        // (a) static verifier passes; LBDR-confined too where the region
        // rectangles are convex under minimal routing (non-wrapping kinds).
        let alg = routing.build();
        let report = Verifier::new(&cfg, alg.as_ref()).run();
        prop_assert!(report.ok(), "{} {w}x{h}: {:?}", kind.label(), report.violations.first());
        if !kind.wraps() {
            let confined = rair::verify::verify_lbdr(&cfg, &region, alg.as_ref());
            prop_assert!(
                confined.ok(),
                "{} {w}x{h} xcut {xcut} LBDR: {:?}",
                kind.label(),
                confined.violations.first()
            );
        }

        // (c) + (d): scalar runs with the oracle at 5% and 30% load must be
        // violation-free and reproducible; sharded runs (2 and 4 bands)
        // must produce the identical digest.
        for load in [0.05, 0.30] {
            let (d1, v1) = digest_of(&cfg, &region, routing, 1, true, load, seed);
            prop_assert_eq!(v1, 0, "{} {w}x{h} load {} oracle violations", kind.label(), load);
            let (d1b, _) = digest_of(&cfg, &region, routing, 1, true, load, seed);
            prop_assert_eq!(d1, d1b, "same-seed rerun digest drift");
            for shards in [2usize, 4] {
                let (ds, _) = digest_of(&cfg, &region, routing, shards, false, load, seed);
                prop_assert_eq!(
                    d1, ds,
                    "{} {w}x{h} {shards} shards ({}) digest mismatch at load {load}",
                    kind.label(), routing.label()
                );
            }
        }
    }
}
