//! End-to-end tests of the `repro` binary: argument handling and the fast
//! experiments (the slow figures are covered by the headline-claims
//! integration tests at library level).

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn no_args_fails_with_usage() {
    let out = repro().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_experiment_fails() {
    let out = repro().arg("fig99").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn unknown_flag_fails() {
    let out = repro().arg("--frob").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn help_succeeds() {
    let out = repro().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

#[test]
fn seed_requires_value() {
    let out = repro().args(["--seed"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seed needs an integer"));
}

#[test]
fn table1_prints_configuration() {
    let out = repro().arg("table1").output().unwrap();
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("Table 1"));
    assert!(s.contains("128 cycles"));
    assert!(s.contains("64 nodes"));
}

#[test]
fn table1_csv_mode() {
    let out = repro().args(["--csv", "table1"]).output().unwrap();
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.starts_with("parameter,paper,simulator"));
    assert!(!s.contains("=="), "CSV must not contain table borders");
}

#[test]
fn lbdr_reports_14_percent() {
    let out = repro().arg("lbdr").output().unwrap();
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("+14.1%"), "{s}");
}

#[test]
fn oracle_experiment_reports_zero_violations() {
    let out = repro()
        .args(["--quick", "--oracle", "oracle"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("Oracle verification matrix"), "{s}");
    assert!(
        s.contains("oracle: enabled — no invariant violations"),
        "{s}"
    );
    assert!(s.contains("oracle overhead"), "{s}");
    // Every matrix row (scheme/routing cells) reports zero violations.
    let rows: Vec<&str> = s
        .lines()
        .filter(|l| l.contains("RO_") || l.contains("RA_"))
        .collect();
    assert_eq!(rows.len(), 24, "expected 4 schemes x 3 routings x 2 loads");
    for line in rows {
        assert!(line.trim_end().ends_with(" 0"), "nonzero cell: {line}");
    }
}

#[test]
fn verify_config_proves_all_shipped_configs() {
    let dir = std::env::temp_dir().join("rair_verify_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let out = repro()
        .arg("verify-config")
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("Static verification"), "{s}");
    assert!(s.contains("proved deadlock-free and legal"), "{s}");
    assert!(dir.join("VERIFY_report.json").exists());
    std::fs::remove_file(dir.join("VERIFY_report.json")).ok();
}

#[test]
fn verify_config_inject_cyclic_exits_nonzero_with_witnesses() {
    let out = repro()
        .args(["verify-config", "--inject-cyclic"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "injected faults must exit nonzero");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("rejected with witness"), "{s}");
    // The cyclic configs print a concrete channel cycle.
    assert!(s.contains("cycle r"), "{s}");
    assert!(
        s.contains("unreachable pair") || s.contains("no escape channel"),
        "{s}"
    );
    assert!(!s.contains("NOT REJECTED"), "verifier missed a fault: {s}");
}

#[test]
fn trace_demo_roundtrips_through_file() {
    let dir = std::env::temp_dir().join("rair_repro_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.bin");
    let out = repro()
        .args([
            "--quick",
            "--trace-file",
            path.to_str().unwrap(),
            "trace-demo",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("Trace-driven comparison"));
    assert!(s.contains("RA_RAIR"));
    assert!(path.exists(), "trace file not written");
    assert!(std::fs::metadata(&path).unwrap().len() > 1000);
    std::fs::remove_file(&path).ok();
}

/// Tightened `--topology` parsing: unknown kinds and out-of-range cmesh
/// concentrations (`c < 2` collapses to a plain mesh, `c > 8` exceeds the
/// router model) must fail up front with the usage line instead of
/// panicking later inside config validation.
#[test]
fn topology_rejects_unknown_and_out_of_range_cmesh() {
    for bad in [
        "hypercube",
        "cmesh:0",
        "cmesh:1",
        "cmesh:9",
        "cmesh:255",
        "cmesh:x",
        "cmesh:",
    ] {
        let out = repro()
            .args(["--topology", bad, "table1"])
            .output()
            .unwrap();
        assert!(!out.status.success(), "`{bad}` must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("--topology needs mesh|torus|ring|cmesh[:N]"),
            "`{bad}`: {err}"
        );
    }
}

#[test]
fn topology_accepts_cmesh_bounds() {
    for good in ["cmesh:2", "cmesh:8", "cmesh"] {
        let out = repro()
            .args(["--topology", good, "table1"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "`{good}` rejected: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn serve_requires_a_jobs_file() {
    let out = repro().arg("serve").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("serve needs a jobs file"));

    let out = repro()
        .args(["serve", "/nonexistent/jobs.txt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn serve_demo_jobs_run_dedup_gate_and_resume() {
    let dir = std::env::temp_dir().join(format!("rair-cli-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/serve_demo.jobs"
    );
    let run = || {
        repro()
            .args([
                "--quick",
                "--windows",
                "200,600",
                "serve",
                jobs,
                "--dir",
                dir.to_str().unwrap(),
            ])
            .output()
            .unwrap()
    };
    let first = run();
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let s1 = String::from_utf8_lossy(&first.stdout);
    // The inverted scheme is gate-rejected; the relabeled duplicate dedups.
    assert!(s1.contains("rejected"), "{s1}");
    assert!(s1.contains("sweep digest"), "{s1}");

    // Second invocation resumes everything from the journal: 0 executed,
    // identical digest.
    let second = run();
    assert!(second.status.success());
    let s2 = String::from_utf8_lossy(&second.stdout);
    assert!(s2.contains("0 executed"), "{s2}");
    let digest = |s: &str| {
        s.lines()
            .find(|l| l.contains("sweep digest"))
            .and_then(|l| l.split_whitespace().nth(2).map(str::to_string))
            .unwrap()
    };
    assert_eq!(digest(&s1), digest(&s2), "resumed digest must match");
    let _ = std::fs::remove_dir_all(&dir);
}
