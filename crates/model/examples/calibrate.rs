//! Calibration sweep: measured vs predicted saturation across the
//! scheme/routing/pattern/topology matrix. Prints one row per config with
//! the implied efficiency (`measured × channel_load`) so the
//! [`model::SATURATION_EFFICIENCY`] constant can be re-fit after simulator
//! changes. Run with `cargo run -p model --release --example calibrate`
//! (add `quick` for the coarse probe).

use model::{predict_app_saturation, RoutingKind};
use noc_sim::config::SimConfig;
use noc_sim::region::RegionMap;
use noc_sim::topology::TopologyKind;
use rair::scheme::Routing;
use traffic::pattern::Pattern;
use traffic::saturation::{app_saturation, SaturationProbe};
use traffic::scenario::{AppSpec, InterDest};

fn spec_pattern(p: Pattern) -> AppSpec {
    AppSpec::with_inter(0.0, 1.0, InterDest::Pattern(p))
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let probe = if quick {
        SaturationProbe::quick()
    } else {
        SaturationProbe::default()
    };
    let mesh = SimConfig::table1();
    let mix = AppSpec {
        rate_flits: 0.0,
        intra: 0.75,
        inter: 0.20,
        inter_dest: InterDest::OutsideUniform,
        mc: 0.05,
    };
    let hs = Pattern::Hotspot {
        spots: Pattern::center_hotspots(&mesh),
        bias: 0.3,
    };
    let mut cases: Vec<(String, SimConfig, RegionMap, u8, AppSpec, Routing)> = vec![];
    let halves = RegionMap::halves(&mesh);
    for routing in [Routing::Local, Routing::Xy, Routing::Dbar] {
        cases.push((
            format!("halves/intra/{routing:?}"),
            mesh.clone(),
            halves.clone(),
            0,
            AppSpec::intra_only(0.0),
            routing,
        ));
    }
    let quads = RegionMap::quadrants(&mesh);
    cases.push((
        "quadrants/intra".into(),
        mesh.clone(),
        quads.clone(),
        0,
        AppSpec::intra_only(0.0),
        Routing::Local,
    ));
    let six = RegionMap::six_regions(&mesh);
    for app in [0u8, 2] {
        cases.push((
            format!("six/mix/app{app}"),
            mesh.clone(),
            six.clone(),
            app,
            mix.clone(),
            Routing::Local,
        ));
    }
    let single = RegionMap::single(&mesh);
    cases.push((
        "single/UR".into(),
        mesh.clone(),
        single.clone(),
        0,
        AppSpec::intra_only(0.0),
        Routing::Local,
    ));
    for p in [Pattern::Transpose, Pattern::BitComplement, hs] {
        cases.push((
            format!("single/{}", p.label()),
            mesh.clone(),
            single.clone(),
            0,
            spec_pattern(p),
            Routing::Local,
        ));
    }
    for kind in [
        TopologyKind::Torus,
        TopologyKind::Ring,
        TopologyKind::CMesh { concentration: 4 },
    ] {
        let cfg = SimConfig::table1_topology(kind);
        let region = RegionMap::halves(&cfg);
        cases.push((
            format!("{}/halves/intra", kind.label()),
            cfg,
            region,
            0,
            AppSpec::intra_only(0.0),
            Routing::Local,
        ));
    }

    println!(
        "{:<28} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "config", "measured", "predicted", "relerr", "chload", "impl_eff"
    );
    let mut errs = Vec::new();
    for (label, cfg, region, app, spec, routing) in cases {
        let kind = match routing {
            Routing::Xy => RoutingKind::DimensionOrder,
            _ => RoutingKind::Adaptive,
        };
        let measured = app_saturation(&probe, &cfg, &region, app, &spec, || routing.build());
        let pred = predict_app_saturation(&cfg, &region, app, &spec, kind);
        let (p_load, ch) = pred.map_or((f64::NAN, f64::NAN), |p| (p.load, p.channel_load));
        let rel = (p_load - measured) / measured;
        errs.push((label.clone(), rel, (p_load - measured).abs()));
        println!(
            "{label:<28} {measured:>9.4} {p_load:>9.4} {rel:>8.3} {ch:>8.3} {:>8.3}",
            measured * ch
        );
    }
    let mean = errs.iter().map(|e| e.1.abs()).sum::<f64>() / errs.len() as f64;
    let max = errs
        .iter()
        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
        .unwrap();
    println!(
        "mean |relerr| {mean:.3}  max |relerr| {:.3} ({})",
        max.1, max.0
    );
}
