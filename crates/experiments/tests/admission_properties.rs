//! Property-based coverage of the admission pipeline's witnesses.
//!
//! Positive side: random rectangular region maps over all four topology
//! kinds are admitted under the full RAIR scheme, and a short
//! oracle-watched simulation of each sampled configuration finishes with
//! zero checker violations (watchdog-clean) — the admitted region-map
//! space is safe in the kernel, not just in the abstraction.
//!
//! Negative side: the two pinned defect families reject with their exact
//! property name and a replayable witness trace, regardless of the
//! sampled region geometry.

use experiments::admit::{admit_cell, MATRIX_RATE};
use noc_sim::admit::{AdmitWitness, PROP_FEASIBILITY, PROP_PROGRESS};
use noc_sim::config::SimConfig;
use noc_sim::network::Network;
use noc_sim::oracle::OracleConfig;
use noc_sim::region::RegionMap;
use noc_sim::topology::TopologyKind;
use proptest::prelude::*;
use rair::scheme::{Routing, Scheme};
use traffic::scenario::{AppSpec, Scenario};

fn any_kind() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![
        Just(TopologyKind::Mesh),
        Just(TopologyKind::Torus),
        Just(TopologyKind::Ring),
        Just(TopologyKind::CMesh { concentration: 4 }),
    ]
}

fn any_routing() -> impl Strategy<Value = Routing> {
    prop_oneof![Just(Routing::Xy), Just(Routing::Local), Just(Routing::Dbar)]
}

/// A random rectangular partition of `cfg`'s grid: a vertical cut (and,
/// when the grid has height, a horizontal one) split the chip into 2 or 4
/// rectangular regions, every one non-empty. `fx`/`fy` in [0,1) pick the
/// cut positions.
fn rect_region(cfg: &SimConfig, fx: f64, fy: f64) -> RegionMap {
    let sx = 1 + (fx * (cfg.width - 1) as f64) as u8;
    if cfg.height == 1 {
        return RegionMap::from_fn(cfg, 2, |c| u8::from(c.x >= sx));
    }
    let sy = 1 + (fy * (cfg.height - 1) as f64) as u8;
    RegionMap::from_fn(cfg, 4, |c| u8::from(c.x >= sx) + 2 * u8::from(c.y >= sy))
}

fn low_specs(region: &RegionMap) -> Vec<Option<AppSpec>> {
    (0..region.num_apps())
        .map(|_| Some(AppSpec::intra_only(MATRIX_RATE)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every random rectangular region map on every topology kind is
    /// admitted under RAIR with a finite wait bound, and a short
    /// oracle-watched run of exactly that configuration stays clean.
    #[test]
    fn random_rect_regions_admit_and_run_watchdog_clean(
        kind in any_kind(),
        routing in any_routing(),
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let mut cfg = SimConfig::table1_topology(kind);
        let region = rect_region(&cfg, fx, fy);
        let specs = low_specs(&region);
        let adm = admit_cell(&cfg, &region, &Scheme::rair(), routing, &specs);
        prop_assert!(
            adm.is_admitted(),
            "rejected: {:?}",
            adm.rejection().map(|p| (p.property, p.detail.clone()))
        );
        prop_assert!(adm.wait_bound().is_some(), "admitted without a bound");

        // Watchdog-clean: the full oracle checker set observes a short
        // run of the admitted configuration.
        cfg.oracle = OracleConfig::forced();
        let scenario = Scenario::new(&cfg, &region, specs);
        let mut net = Network::new(
            cfg.clone(),
            region,
            routing.build(),
            Scheme::rair().build(),
            Box::new(scenario),
            seed,
        );
        net.run(256);
        prop_assert_eq!(
            net.stats.oracle_violation_count,
            0,
            "oracle violations: {:?}",
            net.stats.oracle_violations.first().map(|v| v.detail.clone())
        );
    }

    /// Pinned negative: the foreign-over-native priority inversion is
    /// rejected for *every* sampled rectangular region and topology, with
    /// the progress property named and a replayable lasso trace.
    #[test]
    fn priority_inversion_rejects_with_lasso_everywhere(
        kind in any_kind(),
        routing in any_routing(),
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
    ) {
        let cfg = SimConfig::table1_topology(kind);
        let region = rect_region(&cfg, fx, fy);
        let adm = admit_cell(&cfg, &region, &Scheme::rair_foreign_high(), routing, &low_specs(&region));
        prop_assert!(!adm.is_admitted());
        let rej = adm.rejection().expect("a rejecting property");
        prop_assert_eq!(rej.property, PROP_PROGRESS);
        let Some(AdmitWitness::Lasso { stem, cycle, .. }) = &rej.witness else {
            panic!("expected lasso, got {:?}", rej.witness);
        };
        // Replayable: the stem leads into a non-empty repeating cycle in
        // which the native class always holds the lower priority.
        prop_assert!(!cycle.is_empty());
        for s in stem.iter().chain(cycle.iter()) {
            prop_assert!(s.native_prio < s.foreign_prio);
        }
    }

    /// Pinned negative: over-subscribing one region's offered load is
    /// rejected for every sampled rectangle, with the feasibility
    /// property named and the overloaded channel in the witness.
    #[test]
    fn over_subscription_rejects_with_overload_everywhere(
        kind in any_kind(),
        routing in any_routing(),
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
        hot in 0usize..4,
    ) {
        let cfg = SimConfig::table1_topology(kind);
        let region = rect_region(&cfg, fx, fy);
        let hot = hot % region.num_apps();
        let specs: Vec<Option<AppSpec>> = (0..region.num_apps())
            .map(|a| {
                let rate = if a == hot { 1.5 } else { MATRIX_RATE };
                Some(AppSpec::intra_only(rate))
            })
            .collect();
        let adm = admit_cell(&cfg, &region, &Scheme::rair(), routing, &specs);
        prop_assert!(!adm.is_admitted(), "over-subscription admitted");
        let rej = adm.rejection().expect("a rejecting property");
        prop_assert_eq!(rej.property, PROP_FEASIBILITY);
        let Some(AdmitWitness::Overload { link, offered, capacity }) = &rej.witness else {
            panic!("expected overload, got {:?}", rej.witness);
        };
        prop_assert!(!link.is_empty());
        prop_assert!(offered > capacity);
    }
}
