//! Region maps: the application-to-core assignment that turns a mesh into a
//! regionalized NoC (RNoC).
//!
//! A region map tags every router with the application assigned to it
//! (regional behavior RB-1/RB-2 of the paper). A packet traversing a router
//! whose tag matches its own application id is *native* traffic there;
//! otherwise it is *foreign* traffic (§II.C).

use crate::config::SimConfig;
use crate::ids::{AppId, NodeId, APP_NONE};
use serde::{Deserialize, Serialize};

/// Application-to-core assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionMap {
    app_of: Vec<AppId>,
    num_apps: usize,
}

impl RegionMap {
    /// Build from an explicit per-node assignment. `num_apps` is the number
    /// of applications (ids `0..num_apps`); `APP_NONE` marks unassigned
    /// tiles.
    pub fn new(app_of: Vec<AppId>, num_apps: usize) -> Self {
        for &a in &app_of {
            assert!(
                a == APP_NONE || (a as usize) < num_apps,
                "node assigned to out-of-range app {a}"
            );
        }
        Self { app_of, num_apps }
    }

    /// Whole chip assigned to one application — the "conventional NoC as a
    /// special case of RNoC with one region" of §II.A.
    pub fn single(cfg: &SimConfig) -> Self {
        Self::new(vec![0; cfg.num_nodes()], 1)
    }

    /// Two regions: left half = app 0, right half = app 1 (Fig. 8 layout).
    pub fn halves(cfg: &SimConfig) -> Self {
        let mid = cfg.width / 2;
        Self::from_fn(cfg, 2, |c| if c.x < mid { 0 } else { 1 })
    }

    /// Four quadrant regions, apps 0..4 (Fig. 11 / Fig. 16 layout):
    /// app 0 = top-left, 1 = top-right, 2 = bottom-left, 3 = bottom-right.
    pub fn quadrants(cfg: &SimConfig) -> Self {
        let (mx, my) = (cfg.width / 2, cfg.height / 2);
        Self::from_fn(cfg, 4, |c| match (c.x < mx, c.y < my) {
            (true, true) => 0,
            (false, true) => 1,
            (true, false) => 2,
            (false, false) => 3,
        })
    }

    /// A grid of `cols × rows` rectangular regions (row-major app ids).
    /// `cols` must divide the width and `rows` the height.
    pub fn grid(cfg: &SimConfig, cols: u8, rows: u8) -> Self {
        assert!(cols > 0 && rows > 0);
        assert_eq!(cfg.width % cols, 0, "cols must divide mesh width");
        assert_eq!(cfg.height % rows, 0, "rows must divide mesh height");
        let (rw, rh) = (cfg.width / cols, cfg.height / rows);
        Self::from_fn(cfg, (cols * rows) as usize, |c| {
            (c.y / rh) * cols + (c.x / rw)
        })
    }

    /// Six regions on an 8×8 mesh: a 2 (columns) × 3 (rows) grid of 4×2-to-
    /// 4×3 rectangles, matching the six-application scenario of Fig. 13.
    /// Rows of regions: apps (0,1) on top, (2,3) in the middle, (4,5) at the
    /// bottom. Top and bottom bands are 3 rows tall, middle band 2 rows.
    pub fn six_regions(cfg: &SimConfig) -> Self {
        assert_eq!(cfg.width, 8, "six_regions expects an 8x8 mesh");
        assert_eq!(cfg.height, 8, "six_regions expects an 8x8 mesh");
        Self::from_fn(cfg, 6, |c| {
            let band = if c.y < 3 {
                0
            } else if c.y < 5 {
                1
            } else {
                2
            };
            band * 2 + if c.x < 4 { 0 } else { 1 }
        })
    }

    /// Build from a coordinate→app function.
    pub fn from_fn(cfg: &SimConfig, num_apps: usize, f: impl Fn(crate::ids::Coord) -> u8) -> Self {
        let app_of = (0..cfg.num_nodes() as NodeId)
            .map(|id| f(cfg.coord_of(id)))
            .collect();
        Self::new(app_of, num_apps)
    }

    /// Application assigned to `node` (`APP_NONE` if unassigned).
    #[inline]
    pub fn app_of(&self, node: NodeId) -> AppId {
        self.app_of[node as usize]
    }

    /// Number of applications.
    #[inline]
    pub fn num_apps(&self) -> usize {
        self.num_apps
    }

    /// Nodes assigned to application `app`.
    pub fn nodes_of(&self, app: AppId) -> Vec<NodeId> {
        self.app_of
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == app)
            .map(|(i, _)| i as NodeId)
            .collect()
    }

    /// Is a packet of application `app` native traffic at `node`?
    ///
    /// Unassigned routers (`APP_NONE`) treat everything as native, so no
    /// prioritization discriminates there.
    #[inline]
    pub fn is_native(&self, node: NodeId, app: AppId) -> bool {
        let tag = self.app_of[node as usize];
        tag == APP_NONE || tag == app
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.app_of.len()
    }

    /// True when the map covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.app_of.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::table1()
    }

    #[test]
    fn halves_split_correctly() {
        let m = RegionMap::halves(&cfg());
        assert_eq!(m.num_apps(), 2);
        assert_eq!(m.app_of(0), 0); // (0,0) left
        assert_eq!(m.app_of(7), 1); // (7,0) right
        assert_eq!(m.nodes_of(0).len(), 32);
        assert_eq!(m.nodes_of(1).len(), 32);
    }

    #[test]
    fn quadrants_cover_all() {
        let m = RegionMap::quadrants(&cfg());
        assert_eq!(m.num_apps(), 4);
        for app in 0..4 {
            assert_eq!(m.nodes_of(app).len(), 16, "app {app}");
        }
        let c = cfg();
        assert_eq!(m.app_of(c.node_at(crate::ids::Coord { x: 0, y: 0 })), 0);
        assert_eq!(m.app_of(c.node_at(crate::ids::Coord { x: 7, y: 0 })), 1);
        assert_eq!(m.app_of(c.node_at(crate::ids::Coord { x: 0, y: 7 })), 2);
        assert_eq!(m.app_of(c.node_at(crate::ids::Coord { x: 7, y: 7 })), 3);
    }

    #[test]
    fn six_regions_partition() {
        let m = RegionMap::six_regions(&cfg());
        assert_eq!(m.num_apps(), 6);
        let total: usize = (0..6).map(|a| m.nodes_of(a).len()).sum();
        assert_eq!(total, 64);
        // Top band is 3 rows of 4 columns = 12 nodes per region.
        assert_eq!(m.nodes_of(0).len(), 12);
        assert_eq!(m.nodes_of(1).len(), 12);
        // Middle band is 2 rows = 8 nodes.
        assert_eq!(m.nodes_of(2).len(), 8);
        assert_eq!(m.nodes_of(3).len(), 8);
        assert_eq!(m.nodes_of(4).len(), 12);
        assert_eq!(m.nodes_of(5).len(), 12);
    }

    #[test]
    fn grid_2x2_equals_quadrants() {
        let g = RegionMap::grid(&cfg(), 2, 2);
        let q = RegionMap::quadrants(&cfg());
        assert_eq!(g, q);
    }

    #[test]
    fn native_classification() {
        let m = RegionMap::halves(&cfg());
        assert!(m.is_native(0, 0));
        assert!(!m.is_native(0, 1));
        assert!(m.is_native(7, 1));
        assert!(!m.is_native(7, 0));
    }

    #[test]
    fn unassigned_treats_all_native() {
        let mut v = vec![0u8; 4];
        v[3] = APP_NONE;
        let m = RegionMap::new(v, 1);
        assert!(m.is_native(3, 0));
        assert!(m.is_native(3, 77));
    }

    #[test]
    #[should_panic(expected = "out-of-range app")]
    fn rejects_out_of_range() {
        RegionMap::new(vec![2], 2);
    }
}
