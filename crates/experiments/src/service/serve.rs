//! The crash-safe experiment job service (`repro serve <jobs>`).
//!
//! A jobs file (one whitespace-separated spec per line) is turned into a
//! supervised, journaled sweep:
//!
//! 1. **Journal replay** — the CRC'd WAL ([`super::journal`]) restores
//!    every transition a previous (possibly killed) invocation recorded.
//!    Jobs already `done` are not re-run; `running` rows without a
//!    matching `done`/`failed` count as consumed attempts, so a job that
//!    kills the process on every attempt is quarantined after
//!    `max_attempts` crash-resume cycles instead of crash-looping forever.
//! 2. **Result dedup** — finished results are also persisted under
//!    `<dir>/results/cache/job_<id>.txt`, keyed by the job's parameter
//!    digest (the label is excluded, so relabeled duplicates dedup). A
//!    valid cache entry satisfies a job without simulation; an entry that
//!    fails its CRC is renamed `*.corrupt`, counted, and treated as a miss.
//! 3. **Gates** — every pending job passes the static admission pipeline
//!    before any network is built (a rejected scheme is recorded and
//!    skipped), and with [`ServeConfig::screen`] the analytical surrogate
//!    screens out jobs offered far past their predicted saturation.
//! 4. **Supervision** — the worker pool wraps each attempt in
//!    `catch_unwind` plus an optional wall-clock timeout (a hung attempt
//!    is abandoned on a detached thread), retries with bounded
//!    deterministic exponential backoff, and quarantines a poison job
//!    after `max_attempts` failures — labeled in the report, never
//!    aborting the sweep.
//!
//! The sweep digest folds every job's id, terminal status, and (for done
//! jobs) the full bit pattern of its result, in jobs-file order — so "a
//! killed+resumed sweep equals an uninterrupted one" is checkable as a
//! single `u64` comparison.

use super::journal::Journal;
use super::store::{crc32, Store};
use crate::runner::{self, ExpConfig, RunResult};
use crate::sweep::build_network;
use noc_sim::config::SimConfig;
use noc_sim::region::RegionMap;
use rair::scheme::{Routing, Scheme};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use traffic::pattern::Pattern;
use traffic::scenario::{AppSpec, InterDest, Scenario};

/// One line of a jobs file: which configuration to simulate. The `label`
/// is for humans and reports only — the job identity ([`JobSpec::id`]) is
/// a digest of everything *but* the label, so two differently-labeled
/// lines with identical parameters dedup to one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub label: String,
    /// Scheme key: `ro_rr`, `ro_age`, `rair`, `rair_va`, `rair_native_high`
    /// or `rair_foreign_high`.
    pub scheme: String,
    /// Routing key: `xy`, `local` or `dbar`.
    pub routing: String,
    /// Region key: `single`, `halves` or `quadrants`.
    pub region: String,
    /// Pattern key: `uniform`, `transpose` or `bitcomp`.
    pub pattern: String,
    /// Offered load in flits/cycle/node (absolute, not %-of-saturation —
    /// the service must not depend on the saturation search).
    pub rate: f64,
    pub seed: u64,
}

const SCHEME_KEYS: &[&str] = &[
    "ro_rr",
    "ro_age",
    "rair",
    "rair_va",
    "rair_native_high",
    "rair_foreign_high",
];
const ROUTING_KEYS: &[&str] = &["xy", "local", "dbar"];
const REGION_KEYS: &[&str] = &["single", "halves", "quadrants"];
const PATTERN_KEYS: &[&str] = &["uniform", "transpose", "bitcomp"];

impl JobSpec {
    /// Parse one jobs-file line:
    /// `label scheme routing region pattern rate [seed]`.
    pub fn parse(line: &str) -> Result<JobSpec, String> {
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() != 6 && f.len() != 7 {
            return Err(format!(
                "expected `label scheme routing region pattern rate [seed]`, got {} field(s)",
                f.len()
            ));
        }
        let check = |kind: &str, v: &str, keys: &[&str]| -> Result<String, String> {
            if keys.contains(&v) {
                Ok(v.to_string())
            } else {
                Err(format!("unknown {kind} `{v}` (one of {})", keys.join("|")))
            }
        };
        let rate: f64 = f[5]
            .parse()
            .map_err(|_| format!("rate `{}` is not a number", f[5]))?;
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(format!("rate {rate} must be a positive finite load"));
        }
        let seed = match f.get(6) {
            None => 1,
            Some(s) => s
                .parse()
                .map_err(|_| format!("seed `{s}` is not an integer"))?,
        };
        Ok(JobSpec {
            label: f[0].to_string(),
            scheme: check("scheme", f[1], SCHEME_KEYS)?,
            routing: check("routing", f[2], ROUTING_KEYS)?,
            region: check("region", f[3], REGION_KEYS)?,
            pattern: check("pattern", f[4], PATTERN_KEYS)?,
            rate,
            seed,
        })
    }

    /// Parse a whole jobs file (`#` comments and blank lines skipped).
    /// Errors carry the 1-based line number.
    pub fn parse_jobs(text: &str) -> Result<Vec<JobSpec>, String> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            out.push(Self::parse(line).map_err(|e| format!("jobs file line {}: {e}", i + 1))?);
        }
        if out.is_empty() {
            return Err("jobs file contains no jobs".into());
        }
        Ok(out)
    }

    /// The job's identity: a digest of every result-determining parameter
    /// (spec fields + the windows/seed of `ec`), excluding the label.
    pub fn id(&self, ec: &ExpConfig) -> u64 {
        let mut d = metrics::Digest::new();
        // Domain tag ("RAIRJOB" + version): keys of this family can never
        // collide with the saturation-cache or sweep digests.
        d.write_u64(0x5241_4952_4A4F_4201);
        d.write_str(&self.scheme);
        d.write_str(&self.routing);
        d.write_str(&self.region);
        d.write_str(&self.pattern);
        d.write_f64(self.rate);
        d.write_u64(self.seed);
        d.write_u64(ec.warmup);
        d.write_u64(ec.measure);
        d.write_u64(ec.seed);
        d.write_u64(ec.cycle_budget.map_or(u64::MAX, |b| b));
        d.finish()
    }

    pub fn scheme_value(&self) -> Scheme {
        match self.scheme.as_str() {
            "ro_rr" => Scheme::RoRr,
            "ro_age" => Scheme::RoAge,
            "rair" => Scheme::rair(),
            "rair_va" => Scheme::rair_va_only(),
            "rair_native_high" => Scheme::rair_native_high(),
            _ => Scheme::rair_foreign_high(),
        }
    }

    pub fn routing_value(&self) -> Routing {
        match self.routing.as_str() {
            "xy" => Routing::Xy,
            "dbar" => Routing::Dbar,
            _ => Routing::Local,
        }
    }

    pub fn region_value(&self, cfg: &SimConfig) -> RegionMap {
        match self.region.as_str() {
            "halves" => RegionMap::halves(cfg),
            "quadrants" => RegionMap::quadrants(cfg),
            _ => RegionMap::single(cfg),
        }
    }

    pub fn pattern_value(&self) -> Pattern {
        match self.pattern.as_str() {
            "transpose" => Pattern::Transpose,
            "bitcomp" => Pattern::BitComplement,
            _ => Pattern::UniformRandom,
        }
    }

    /// The per-application traffic spec this job offers.
    fn app_spec(&self) -> AppSpec {
        AppSpec {
            rate_flits: self.rate,
            intra: 0.0,
            inter: 1.0,
            inter_dest: InterDest::Pattern(self.pattern_value()),
            mc: 0.0,
        }
    }
}

/// Executor: how a [`JobSpec`] becomes a [`RunResult`]. `Arc` so the
/// timeout path can hand a clone to a detached thread; tests inject stubs.
pub type JobExec = Arc<dyn Fn(&JobSpec, &ExpConfig) -> RunResult + Send + Sync + 'static>;

/// The real executor: build the network from the spec and simulate.
pub fn sim_exec() -> JobExec {
    Arc::new(|spec: &JobSpec, ec: &ExpConfig| {
        let cfg = SimConfig::table1();
        let region = spec.region_value(&cfg);
        let app = spec.app_spec();
        let specs = (0..region.num_apps()).map(|_| Some(app.clone())).collect();
        let scenario = Scenario::new(&cfg, &region, specs);
        let net = build_network(
            &cfg,
            &region,
            &spec.scheme_value(),
            spec.routing_value(),
            Box::new(scenario),
            spec.seed,
        );
        runner::run_one(spec.label.clone(), net, ec)
    })
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// State directory: holds `journal.wal`, `results/cache/` and the
    /// `SERVE_report.json`.
    pub dir: PathBuf,
    pub ec: ExpConfig,
    /// Attempts (including those consumed by earlier crashed invocations)
    /// before a job is quarantined as poison.
    pub max_attempts: u32,
    /// Base of the deterministic exponential backoff between retries
    /// (`base << (attempt-1)` ms, capped at [`BACKOFF_CAP_MS`]).
    pub backoff_base_ms: u64,
    /// Wall-clock cap per attempt; `None` means unbounded. (Wall-clock is
    /// legal here — the experiments scope is exempt from the determinism
    /// lint's wall-clock rule, and a timeout never feeds back into
    /// simulation state, it only abandons an attempt.)
    pub timeout_ms: Option<u64>,
    /// Screen jobs through the analytical surrogate before simulating.
    pub screen: bool,
}

/// Retry backoff cap.
pub const BACKOFF_CAP_MS: u64 = 2_000;

impl ServeConfig {
    pub fn new(dir: impl Into<PathBuf>, ec: ExpConfig) -> Self {
        Self {
            dir: dir.into(),
            ec,
            max_attempts: 3,
            backoff_base_ms: 50,
            timeout_ms: None,
            screen: false,
        }
    }

    fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.wal")
    }

    fn cache_dir(&self) -> PathBuf {
        self.dir.join("results").join("cache")
    }

    fn result_path(&self, id: u64) -> PathBuf {
        self.cache_dir().join(format!("job_{id:016x}.txt"))
    }
}

/// Terminal state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Simulated (or restored) successfully.
    Done,
    /// Statically rejected by the admission gate; never built.
    Rejected,
    /// Screened out by the analytical surrogate; never built.
    Screened,
    /// Failed `max_attempts` times (panic/timeout) — poison, labeled and
    /// skipped, never aborting the sweep.
    Quarantined,
}

impl JobStatus {
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Rejected => "rejected",
            JobStatus::Screened => "screened",
            JobStatus::Quarantined => "quarantined",
        }
    }
}

/// Outcome of one jobs-file line.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    pub spec: JobSpec,
    pub id: u64,
    pub status: JobStatus,
    /// Attempts consumed across all invocations (0 for gated/restored jobs).
    pub attempts: u32,
    pub result: Option<RunResult>,
    /// Why the job was rejected/screened/quarantined.
    pub reason: Option<String>,
    /// Satisfied without running a simulation in this invocation (journal
    /// replay, result-cache hit, or dedup against an identical job).
    pub restored: bool,
}

/// What one `serve` invocation did, plus the digest that proves resume
/// correctness.
#[derive(Debug)]
pub struct ServeReport {
    pub outcomes: Vec<JobOutcome>,
    /// Digest over (id, status, result bits) in jobs-file order.
    pub sweep_digest: u64,
    /// Jobs satisfied from the journal.
    pub resumed: usize,
    /// Jobs satisfied from the result cache (or by intra-run dedup).
    pub cache_hits: usize,
    /// Fresh simulations executed by this invocation.
    pub executed: usize,
    pub journal_write_errors: u64,
    pub journal_torn_tail: bool,
    pub journal_quarantined_rows: usize,
    /// Result-cache files that failed validation and were set aside.
    pub result_cache_corrupt: u64,
}

impl ServeReport {
    pub fn quarantined(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == JobStatus::Quarantined)
            .count()
    }

    /// Minimal JSON by hand (no serde_json in the offline build).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut rows = Vec::new();
        for o in &self.outcomes {
            rows.push(format!(
                "    {{\"label\": \"{}\", \"id\": \"{:016x}\", \"status\": \"{}\", \
                 \"attempts\": {}, \"restored\": {}, \"reason\": \"{}\"}}",
                esc(&o.spec.label),
                o.id,
                o.status.label(),
                o.attempts,
                o.restored,
                esc(o.reason.as_deref().unwrap_or(""))
            ));
        }
        format!(
            "{{\n  \"sweep_digest\": \"{:016x}\",\n  \"resumed\": {},\n  \"cache_hits\": {},\n  \
             \"executed\": {},\n  \"quarantined\": {},\n  \"journal_write_errors\": {},\n  \
             \"journal_torn_tail\": {},\n  \"journal_quarantined_rows\": {},\n  \
             \"result_cache_corrupt\": {},\n  \"jobs\": [\n{}\n  ]\n}}\n",
            self.sweep_digest,
            self.resumed,
            self.cache_hits,
            self.executed,
            self.quarantined(),
            self.journal_write_errors,
            self.journal_torn_tail,
            self.journal_quarantined_rows,
            self.result_cache_corrupt,
            rows.join(",\n")
        )
    }
}

/// Journal payload grammar (the part after the WAL frame).
mod rows {
    use super::runner;
    use super::RunResult;

    pub fn queued(id: u64, label: &str) -> String {
        format!("queued\t{id:016x}\t{}", runner::esc_label(label))
    }

    pub fn running(id: u64, attempt: u32) -> String {
        format!("running\t{id:016x}\t{attempt}")
    }

    pub fn done(id: u64, r: &RunResult) -> String {
        format!("done\t{id:016x}\t{}", runner::checkpoint_line(r))
    }

    pub fn failed(id: u64, attempt: u32, reason: &str) -> String {
        format!(
            "failed\t{id:016x}\t{attempt}\t{}",
            runner::esc_label(reason)
        )
    }

    pub fn terminal(kind: &str, id: u64, reason: &str) -> String {
        format!("{kind}\t{id:016x}\t{}", runner::esc_label(reason))
    }

    pub fn sweep_done(digest: u64, n: usize) -> String {
        format!("sweep-done\t{digest:016x}\t{n}")
    }
}

/// Per-job state reconstructed from the journal.
#[derive(Default)]
struct ReplayedJob {
    /// `running` rows observed (attempts consumed, across invocations).
    runs: u32,
    done: Option<RunResult>,
    terminal: Option<(JobStatus, String)>,
}

/// Fold journal payload rows into per-id state. Unknown row kinds are
/// ignored (forward compatibility within the same WAL version).
fn replay_jobs(payloads: &[String]) -> BTreeMap<u64, ReplayedJob> {
    let mut map: BTreeMap<u64, ReplayedJob> = BTreeMap::new();
    for p in payloads {
        let mut f = p.splitn(3, '\t');
        let (Some(kind), Some(id_hex)) = (f.next(), f.next()) else {
            continue;
        };
        let Ok(id) = u64::from_str_radix(id_hex, 16) else {
            continue;
        };
        let rest = f.next().unwrap_or("");
        let st = map.entry(id).or_default();
        match kind {
            "running" => {
                if let Ok(a) = rest.split('\t').next().unwrap_or("").parse::<u32>() {
                    st.runs = st.runs.max(a);
                }
            }
            "done" => {
                if let Some(r) = runner::parse_checkpoint_line(rest) {
                    st.done = Some(r);
                }
            }
            "rejected" => {
                st.terminal = Some((JobStatus::Rejected, runner::unesc_label(rest)));
            }
            "screened" => {
                st.terminal = Some((JobStatus::Screened, runner::unesc_label(rest)));
            }
            "quarantine" => {
                st.terminal = Some((
                    JobStatus::Quarantined,
                    runner::unesc_label(rest.split('\t').next_back().unwrap_or("")),
                ));
            }
            _ => {}
        }
    }
    map
}

/// Result-cache file format: `rair-res-v1 \t crc32(payload) \t payload`
/// where payload is a checkpoint-format result line.
const RESULT_TAG: &str = "rair-res-v1";

fn encode_result(r: &RunResult) -> String {
    let payload = runner::checkpoint_line(r);
    format!(
        "{RESULT_TAG}\t{:08x}\t{payload}\n",
        crc32(payload.as_bytes())
    )
}

fn decode_result(bytes: &[u8]) -> Option<RunResult> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut f = text.trim_end_matches('\n').splitn(3, '\t');
    if f.next()? != RESULT_TAG {
        return None;
    }
    let crc = u32::from_str_radix(f.next()?, 16).ok()?;
    let payload = f.next()?;
    if crc32(payload.as_bytes()) != crc {
        return None;
    }
    runner::parse_checkpoint_line(payload)
}

/// How one attempt failed.
fn attempt_error(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(std::string::ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Run one attempt under `catch_unwind`, optionally bounded by a
/// wall-clock timeout. A timed-out attempt keeps running on a detached
/// thread (a hung simulation cannot be cancelled cooperatively) — the
/// supervisor simply stops waiting for it; its late result is discarded.
fn run_attempt(
    exec: &JobExec,
    spec: &JobSpec,
    ec: &ExpConfig,
    timeout_ms: Option<u64>,
) -> Result<RunResult, String> {
    let Some(ms) = timeout_ms else {
        return catch_unwind(AssertUnwindSafe(|| exec(spec, ec)))
            .map_err(|p| format!("panicked: {}", attempt_error(p.as_ref())));
    };
    type Slot = (Mutex<Option<Result<RunResult, String>>>, Condvar);
    let slot: Arc<Slot> = Arc::new((Mutex::new(None), Condvar::new()));
    let worker_slot = Arc::clone(&slot);
    let exec = Arc::clone(exec);
    let spec = spec.clone();
    let ec = *ec;
    std::thread::spawn(move || {
        let r = catch_unwind(AssertUnwindSafe(|| exec(&spec, &ec)))
            .map_err(|p| format!("panicked: {}", attempt_error(p.as_ref())));
        let (m, cv) = &*worker_slot;
        *m.lock().unwrap() = Some(r);
        cv.notify_all();
    });
    let (m, cv) = &*slot;
    let deadline = Duration::from_millis(ms);
    let mut guard = m.lock().unwrap();
    while guard.is_none() {
        let (g, timeout) = cv.wait_timeout(guard, deadline).unwrap();
        guard = g;
        if timeout.timed_out() && guard.is_none() {
            return Err(format!("timed out after {ms} ms"));
        }
    }
    guard.take().unwrap()
}

/// Work item for the supervised pool.
struct Pending {
    /// Index into the deduped unique-job list.
    uidx: usize,
    spec: JobSpec,
    id: u64,
    /// Attempts already consumed by earlier (crashed) invocations.
    prior_runs: u32,
}

/// Execute a jobs list under the service. See the module docs for the
/// recovery semantics; the report's `sweep_digest` is the bit-identical
/// resume contract.
pub fn serve(
    store: &dyn Store,
    specs: &[JobSpec],
    scfg: &ServeConfig,
    exec: &JobExec,
) -> ServeReport {
    if let Err(e) = store.create_dir_all(&scfg.cache_dir()) {
        eprintln!(
            "[serve] warning: could not create {} ({e}); results will not be cached",
            scfg.cache_dir().display()
        );
    }
    let journal = Journal::new(scfg.journal_path(), store);
    let replay = journal.replay();
    let replayed = replay_jobs(&replay.rows);

    // Dedup the jobs list by id: only the first occurrence runs.
    let ids: Vec<u64> = specs.iter().map(|s| s.id(&scfg.ec)).collect();
    let mut primary_of: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, &id) in ids.iter().enumerate() {
        primary_of.entry(id).or_insert(i);
    }

    let result_cache_corrupt = std::sync::atomic::AtomicU64::new(0);
    let mut resumed = 0usize;
    let cache_hits = AtomicUsize::new(0);
    let mut pool = Vec::new();
    // Outcome slots for the primary occurrence of each id.
    let outcomes: Vec<Mutex<Option<JobOutcome>>> =
        (0..specs.len()).map(|_| Mutex::new(None)).collect();

    let resolve = |i: usize,
                   status: JobStatus,
                   attempts: u32,
                   result: Option<RunResult>,
                   reason: Option<String>,
                   restored: bool| {
        *outcomes[i].lock().unwrap() = Some(JobOutcome {
            spec: specs[i].clone(),
            id: ids[i],
            status,
            attempts,
            result,
            reason,
            restored,
        });
    };

    for (i, spec) in specs.iter().enumerate() {
        let id = ids[i];
        if primary_of[&id] != i {
            continue; // duplicate: filled in after the pool from the primary
        }
        let st = replayed.get(&id);
        journal.append(&rows::queued(id, &spec.label));
        // 1. Journal replay: a done row or a terminal verdict stands.
        if let Some(r) = st.and_then(|s| s.done.clone()) {
            resumed += 1;
            resolve(i, JobStatus::Done, 0, Some(r), None, true);
            continue;
        }
        if let Some((status, reason)) = st.and_then(|s| s.terminal.clone()) {
            resumed += 1;
            resolve(i, status, 0, None, Some(reason), true);
            continue;
        }
        let prior_runs = st.map_or(0, |s| s.runs);
        // 2. Result cache: an identical job finished in some earlier sweep.
        let rpath = scfg.result_path(id);
        if store.exists(&rpath) {
            match store.read(&rpath).ok().as_deref().and_then(decode_result) {
                Some(mut r) => {
                    r.label = spec.label.clone();
                    journal.append(&rows::done(id, &r));
                    cache_hits.fetch_add(1, Ordering::Relaxed);
                    resolve(i, JobStatus::Done, 0, Some(r), None, true);
                    continue;
                }
                None => {
                    result_cache_corrupt.fetch_add(1, Ordering::Relaxed);
                    let corrupt = rpath.with_extension("txt.corrupt");
                    eprintln!(
                        "[serve] warning: result cache entry {} failed validation; \
                         setting it aside as {}",
                        rpath.display(),
                        corrupt.display()
                    );
                    if let Err(e) = store.rename(&rpath, &corrupt) {
                        eprintln!("[serve] warning: could not set aside corrupt entry: {e}");
                    }
                }
            }
        }
        // 3. Admission gate — before any network build.
        let cfg = SimConfig::table1();
        let region = spec.region_value(&cfg);
        let alg = spec.routing_value().build();
        let adm = noc_sim::admit::admit_network_cached(
            &cfg,
            &region,
            alg.as_ref(),
            &spec.scheme_value().automaton(),
        );
        if !adm.is_admitted() {
            let reason = format!(
                "admission gate rejected {}: {}",
                adm.scheme,
                adm.rejection()
                    .map(|p| p.detail.clone())
                    .unwrap_or_default()
            );
            journal.append(&rows::terminal("rejected", id, &reason));
            resolve(i, JobStatus::Rejected, 0, None, Some(reason), false);
            continue;
        }
        // 4. Optional surrogate screening: offered load far past the
        // model-predicted saturation will only measure queue blow-up.
        if scfg.screen {
            let predicted = model::predict_app_saturation(
                &cfg,
                &region,
                0,
                &spec.app_spec(),
                model::RoutingKind::Adaptive,
            )
            .map(|p| p.load);
            if let Some(sat) = predicted {
                if spec.rate > 1.5 * sat {
                    let reason = format!(
                        "screened: offered {:.3} > 1.5x predicted saturation {sat:.3}",
                        spec.rate
                    );
                    journal.append(&rows::terminal("screened", id, &reason));
                    resolve(i, JobStatus::Screened, 0, None, Some(reason), false);
                    continue;
                }
            }
        }
        pool.push(Pending {
            uidx: i,
            spec: spec.clone(),
            id,
            prior_runs,
        });
    }

    // Supervised worker pool over the surviving jobs.
    let executed = AtomicUsize::new(0);
    let total = pool.len();
    let finished = AtomicUsize::new(0);
    if !pool.is_empty() {
        let queue: Mutex<Vec<Pending>> = Mutex::new(pool.into_iter().rev().collect());
        let workers =
            runner::worker_count_from(std::env::var("RAIR_THREADS").ok().as_deref(), total);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let job = queue.lock().unwrap().pop();
                    let Some(p) = job else { break };
                    let mut attempt = p.prior_runs;
                    let mut last_err: Option<String> = None;
                    let outcome = loop {
                        if attempt >= scfg.max_attempts {
                            // Poison: every granted attempt (including ones
                            // consumed by crashed invocations) failed.
                            let reason = match &last_err {
                                Some(e) => format!(
                                    "quarantined after {attempt} failed attempt(s); last: {e}"
                                ),
                                None => format!(
                                    "quarantined after {attempt} failed attempt(s) \
                                     (consumed by crashed invocations)"
                                ),
                            };
                            eprintln!("[serve] job '{}' {reason}", p.spec.label);
                            journal.append(&rows::terminal("quarantine", p.id, &reason));
                            break (JobStatus::Quarantined, attempt, None, Some(reason), false);
                        }
                        attempt += 1;
                        journal.append(&rows::running(p.id, attempt));
                        match run_attempt(exec, &p.spec, &scfg.ec, scfg.timeout_ms) {
                            Ok(r) => {
                                journal.append(&rows::done(p.id, &r));
                                if let Err(e) = store.write_atomic(
                                    &scfg.result_path(p.id),
                                    encode_result(&r).as_bytes(),
                                ) {
                                    eprintln!(
                                        "[serve] warning: could not cache result of '{}': {e}",
                                        p.spec.label
                                    );
                                }
                                executed.fetch_add(1, Ordering::Relaxed);
                                break (JobStatus::Done, attempt, Some(r), None, false);
                            }
                            Err(reason) => {
                                eprintln!(
                                    "[serve] job '{}' attempt {attempt}/{} failed: {reason}",
                                    p.spec.label, scfg.max_attempts
                                );
                                journal.append(&rows::failed(p.id, attempt, &reason));
                                last_err = Some(reason);
                                if attempt < scfg.max_attempts {
                                    // Deterministic exponential backoff.
                                    let ms =
                                        (scfg.backoff_base_ms << (attempt - 1)).min(BACKOFF_CAP_MS);
                                    std::thread::sleep(Duration::from_millis(ms));
                                }
                            }
                        }
                    };
                    let (status, attempts, result, reason, restored) = outcome;
                    *outcomes[p.uidx].lock().unwrap() = Some(JobOutcome {
                        spec: p.spec.clone(),
                        id: p.id,
                        status,
                        attempts,
                        result,
                        reason,
                        restored,
                    });
                    let d = finished.fetch_add(1, Ordering::Relaxed) + 1;
                    if total > 1 {
                        eprintln!("[serve] {d}/{total} jobs finished ({})", p.spec.label);
                    }
                });
            }
        });
    }

    // Assemble outcomes in jobs-file order; duplicates copy their primary.
    let mut final_outcomes: Vec<JobOutcome> = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let primary = primary_of[&ids[i]];
        if primary == i {
            let o = outcomes[i]
                .lock()
                .unwrap()
                .take()
                .expect("every primary job resolved");
            final_outcomes.push(o);
            continue;
        }
        // Duplicate line: identical parameters, so identical outcome; only
        // the label differs and labels are not part of the digest.
        let mut o = final_outcomes[primary].clone();
        o.spec = spec.clone();
        o.restored = true;
        if let Some(r) = o.result.as_mut() {
            r.label = spec.label.clone();
        }
        cache_hits.fetch_add(1, Ordering::Relaxed);
        final_outcomes.push(o);
    }

    let sweep_digest = digest_outcomes(&final_outcomes);
    journal.append(&rows::sweep_done(sweep_digest, final_outcomes.len()));

    let report = ServeReport {
        resumed,
        cache_hits: cache_hits.load(Ordering::Relaxed),
        executed: executed.load(Ordering::Relaxed),
        journal_write_errors: journal.write_errors(),
        journal_torn_tail: replay.torn_tail,
        journal_quarantined_rows: replay.quarantined.len(),
        result_cache_corrupt: result_cache_corrupt.load(Ordering::Relaxed),
        sweep_digest,
        outcomes: final_outcomes,
    };
    if let Err(e) = store.write_atomic(
        &scfg.dir.join("SERVE_report.json"),
        report.to_json().as_bytes(),
    ) {
        eprintln!("[serve] warning: could not write SERVE_report.json: {e}");
    }
    report
}

/// The resume contract: fold (id, status, result bits) in jobs-file order.
fn digest_outcomes(outcomes: &[JobOutcome]) -> u64 {
    let mut d = metrics::Digest::new();
    // Domain tag ("RAIRSERV").
    d.write_u64(0x5241_4952_5345_5256);
    for o in outcomes {
        d.write_u64(o.id);
        d.write_str(o.status.label());
        if let Some(r) = &o.result {
            r.digest_into(&mut d);
        }
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::store::StdStore;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rair-serve-{}-{tag}", std::process::id()));
        // lint: allow(swallowed-io-error)
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn stub_result(label: &str, seed: u64) -> RunResult {
        RunResult {
            label: label.into(),
            apl: vec![Some(10.0 + seed as f64)],
            total_latency: vec![Some(12.0 + seed as f64)],
            delivered: 100 + seed,
            throughput: 0.1,
            cycles: 5_000,
            routers: 64,
            router_cycles_skipped: 1,
            state_updates_skipped: 2,
            idle_cycles_skipped: 3,
            oracle_enabled: false,
            oracle_violations: 0,
            truncated: false,
            flits_retransmitted: 0,
            packets_retried: 0,
            packets_dropped: 0,
            reconfigurations: 0,
        }
    }

    /// A fast fake executor: deterministic fabricated results.
    fn stub_exec() -> JobExec {
        Arc::new(|spec: &JobSpec, _ec: &ExpConfig| stub_result(&spec.label, spec.seed))
    }

    fn spec(label: &str, seed: u64) -> JobSpec {
        JobSpec::parse(&format!("{label} ro_rr local single uniform 0.10 {seed}")).unwrap()
    }

    #[test]
    fn jobs_file_parses_and_validates() {
        let text = "# comment\n\
                    a rair dbar halves transpose 0.25 7\n\
                    \n\
                    b ro_rr xy single uniform 0.1\n";
        let jobs = JobSpec::parse_jobs(text).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].scheme, "rair");
        assert_eq!(jobs[0].rate, 0.25);
        assert_eq!(jobs[1].seed, 1, "seed defaults when omitted");
        for bad in [
            "a ro_rr local single uniform", // missing rate
            "a nope local single uniform 0.1",
            "a ro_rr nope single uniform 0.1",
            "a ro_rr local nope uniform 0.1",
            "a ro_rr local single nope 0.1",
            "a ro_rr local single uniform -0.1",
            "a ro_rr local single uniform NaN",
            "a ro_rr local single uniform 0.1 x",
        ] {
            assert!(JobSpec::parse(bad).is_err(), "`{bad}` must be rejected");
        }
        assert!(JobSpec::parse_jobs("# only comments\n").is_err());
    }

    #[test]
    fn job_id_ignores_label_but_nothing_else() {
        let ec = ExpConfig::quick();
        let a = spec("first", 7);
        let mut b = a.clone();
        b.label = "renamed".into();
        assert_eq!(a.id(&ec), b.id(&ec), "label must not affect identity");
        for perturb in [
            |s: &mut JobSpec| s.scheme = "rair".into(),
            |s: &mut JobSpec| s.routing = "dbar".into(),
            |s: &mut JobSpec| s.region = "halves".into(),
            |s: &mut JobSpec| s.pattern = "transpose".into(),
            |s: &mut JobSpec| s.rate += 0.01,
            |s: &mut JobSpec| s.seed += 1,
        ] {
            let mut c = a.clone();
            perturb(&mut c);
            assert_ne!(a.id(&ec), c.id(&ec), "{c:?} must change the id");
        }
        assert_ne!(a.id(&ec), a.id(&ExpConfig::full()), "windows are identity");
    }

    #[test]
    fn serve_runs_resumes_and_dedups() {
        let dir = tmp("basic");
        let store = StdStore;
        let specs = vec![spec("a", 1), spec("b", 2), spec("a-again", 1)];
        let scfg = ServeConfig::new(&dir, ExpConfig::quick());
        let exec = stub_exec();
        let r1 = serve(&store, &specs, &scfg, &exec);
        assert_eq!(r1.executed, 2, "third job dedups against the first");
        assert_eq!(r1.cache_hits, 1);
        assert_eq!(r1.quarantined(), 0);
        assert_eq!(r1.outcomes.len(), 3);
        assert_eq!(r1.outcomes[2].result.as_ref().unwrap().label, "a-again");
        assert!(dir.join("SERVE_report.json").exists());
        assert!(dir.join("journal.wal").exists());
        // Re-serving replays everything from the journal: zero executions,
        // bit-identical digest.
        let r2 = serve(&store, &specs, &scfg, &exec);
        assert_eq!(r2.executed, 0);
        assert_eq!(r2.resumed, 2);
        assert_eq!(
            r2.sweep_digest, r1.sweep_digest,
            "resume must be bit-identical"
        );
        // A fresh state dir with the same result cache also skips the sims.
        let dir2 = tmp("basic2");
        let scfg2 = ServeConfig {
            dir: dir2.clone(),
            ..scfg.clone()
        };
        std::fs::create_dir_all(dir2.join("results")).unwrap();
        crate::service::copy_dir_for_tests(
            &dir.join("results").join("cache"),
            &dir2.join("results").join("cache"),
        );
        let r3 = serve(&store, &specs, &scfg2, &exec);
        assert_eq!(r3.executed, 0, "result cache must satisfy identical jobs");
        assert_eq!(r3.sweep_digest, r1.sweep_digest);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn corrupt_result_cache_entry_is_set_aside_and_rerun() {
        let dir = tmp("corrupt-cache");
        let store = StdStore;
        let specs = vec![spec("x", 3)];
        let scfg = ServeConfig::new(&dir, ExpConfig::quick());
        let exec = stub_exec();
        let r1 = serve(&store, &specs, &scfg, &exec);
        assert_eq!(r1.executed, 1);
        // Corrupt the cached result and wipe the journal (so the cache is
        // the only shortcut) — the entry must be quarantined and re-run.
        let rpath = scfg.result_path(specs[0].id(&scfg.ec));
        let mut bytes = std::fs::read(&rpath).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&rpath, &bytes).unwrap();
        std::fs::remove_file(scfg.journal_path()).unwrap();
        let r2 = serve(&store, &specs, &scfg, &exec);
        assert_eq!(r2.result_cache_corrupt, 1);
        assert_eq!(r2.executed, 1, "corrupt entry must be a miss, not a hit");
        assert_eq!(r2.sweep_digest, r1.sweep_digest, "re-run value identical");
        assert!(
            rpath.with_extension("txt.corrupt").exists(),
            "corrupt entry preserved for post-mortems"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poison_job_is_quarantined_not_fatal_and_stays_quarantined() {
        let dir = tmp("poison");
        let store = StdStore;
        let specs = vec![spec("good", 1), spec("poison", 2)];
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let exec: JobExec = Arc::new(move |spec: &JobSpec, _ec: &ExpConfig| {
            if spec.label == "poison" {
                c.fetch_add(1, Ordering::SeqCst);
                panic!("synthetic poison job");
            }
            stub_result(&spec.label, spec.seed)
        });
        let scfg = ServeConfig {
            backoff_base_ms: 1,
            max_attempts: 3,
            ..ServeConfig::new(&dir, ExpConfig::quick())
        };
        let r1 = serve(&store, &specs, &scfg, &exec);
        assert_eq!(calls.load(Ordering::SeqCst), 3, "max_attempts tries");
        assert_eq!(r1.quarantined(), 1);
        let q = &r1.outcomes[1];
        assert_eq!(q.status, JobStatus::Quarantined);
        assert_eq!(q.attempts, 3);
        assert!(q.reason.as_deref().unwrap().contains("3 failed attempt"));
        assert!(
            r1.outcomes[0].status == JobStatus::Done,
            "sibling jobs unaffected"
        );
        assert!(r1.to_json().contains("\"status\": \"quarantined\""));
        // Resume: the quarantine verdict is replayed, not retried.
        let r2 = serve(&store, &specs, &scfg, &exec);
        assert_eq!(calls.load(Ordering::SeqCst), 3, "no retry after quarantine");
        assert_eq!(r2.sweep_digest, r1.sweep_digest);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_loop_attempts_accumulate_across_invocations() {
        let dir = tmp("crashloop");
        let store = StdStore;
        let scfg = ServeConfig {
            backoff_base_ms: 1,
            max_attempts: 3,
            ..ServeConfig::new(&dir, ExpConfig::quick())
        };
        let specs = vec![spec("killer", 9)];
        let id = specs[0].id(&scfg.ec);
        // Simulate two earlier invocations that each died mid-attempt:
        // `running` rows with no completion.
        let journal = Journal::new(scfg.journal_path(), &store);
        journal.append(&format!("running\t{id:016x}\t1"));
        journal.append(&format!("running\t{id:016x}\t2"));
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let exec: JobExec = Arc::new(move |_s: &JobSpec, _e: &ExpConfig| {
            c.fetch_add(1, Ordering::SeqCst);
            panic!("third strike");
        });
        let r = serve(&store, &specs, &scfg, &exec);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "only the one remaining attempt is granted"
        );
        assert_eq!(r.outcomes[0].status, JobStatus::Quarantined);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hung_job_times_out_and_is_quarantined() {
        let dir = tmp("hang");
        let store = StdStore;
        let exec: JobExec = Arc::new(|spec: &JobSpec, _e: &ExpConfig| {
            if spec.label == "hang" {
                std::thread::sleep(Duration::from_millis(5_000));
            }
            stub_result(&spec.label, spec.seed)
        });
        let scfg = ServeConfig {
            backoff_base_ms: 1,
            max_attempts: 2,
            timeout_ms: Some(50),
            ..ServeConfig::new(&dir, ExpConfig::quick())
        };
        let specs = vec![spec("hang", 1), spec("quick", 2)];
        let r = serve(&store, &specs, &scfg, &exec);
        assert_eq!(r.outcomes[0].status, JobStatus::Quarantined);
        assert!(
            r.outcomes[0]
                .reason
                .as_deref()
                .unwrap()
                .contains("timed out after 50 ms"),
            "{:?}",
            r.outcomes[0].reason
        );
        assert_eq!(r.outcomes[1].status, JobStatus::Done);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn statically_rejected_scheme_is_gated_before_any_build() {
        let dir = tmp("gate");
        let store = StdStore;
        // rair_foreign_high grants foreign traffic the high priority — the
        // admission pipeline rejects it statically.
        let bad = JobSpec::parse("inverted rair_foreign_high local halves uniform 0.05 1").unwrap();
        let built = Arc::new(AtomicUsize::new(0));
        let b = Arc::clone(&built);
        let exec: JobExec = Arc::new(move |spec: &JobSpec, _e: &ExpConfig| {
            b.fetch_add(1, Ordering::SeqCst);
            stub_result(&spec.label, spec.seed)
        });
        let scfg = ServeConfig::new(&dir, ExpConfig::quick());
        let r = serve(&store, &[bad], &scfg, &exec);
        assert_eq!(r.outcomes[0].status, JobStatus::Rejected);
        assert_eq!(built.load(Ordering::SeqCst), 0, "gate must precede build");
        assert!(r.outcomes[0]
            .reason
            .as_deref()
            .unwrap()
            .contains("admission gate rejected"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn screening_skips_deep_saturated_jobs() {
        let dir = tmp("screen");
        let store = StdStore;
        // 0.9 flits/cycle/node uniform on an 8x8 mesh is far past any
        // predicted saturation.
        let deep = JobSpec::parse("deep ro_rr local single uniform 0.90 1").unwrap();
        let exec = stub_exec();
        let scfg = ServeConfig {
            screen: true,
            ..ServeConfig::new(&dir, ExpConfig::quick())
        };
        let r = serve(&store, std::slice::from_ref(&deep), &scfg, &exec);
        assert_eq!(r.outcomes[0].status, JobStatus::Screened);
        assert_eq!(r.executed, 0);
        // Without screening the same job runs.
        let dir2 = tmp("screen-off");
        let scfg2 = ServeConfig::new(&dir2, ExpConfig::quick());
        let r2 = serve(&store, &[deep], &scfg2, &exec);
        assert_eq!(r2.outcomes[0].status, JobStatus::Done);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn result_roundtrip_is_crc_guarded() {
        let r = stub_result("weird\tlabel", 5);
        let enc = encode_result(&r);
        let dec = decode_result(enc.as_bytes()).expect("round trip");
        assert_eq!(dec.label, r.label);
        assert_eq!(dec.delivered, r.delivered);
        let mut bad = enc.clone().into_bytes();
        let n = bad.len() - 3;
        bad[n] ^= 1;
        assert!(decode_result(&bad).is_none(), "bit flip must fail the CRC");
        assert!(decode_result(b"garbage").is_none());
    }
}
