//! LBDR mapping-validity analysis (§III.B of the paper).
//!
//! LBDR confines every application's packets inside its region via routing
//! restrictions, so each region must contain at least one memory controller
//! (MC) — otherwise the application can never service a cache miss
//! (Fig. 3(b) is invalid). The paper quantifies how restrictive this is:
//! with 16 cores, 4 MCs and 4 applications of 4 threads each, only
//!
//! ```text
//! 4!·C(12,3)·C(9,3)·C(6,3)·C(3,3) / (C(16,4)·C(12,4)·C(8,4)·C(4,4)) ≈ 14%
//! ```
//!
//! of application-to-core mappings are usable, and the number of regions can
//! never exceed the number of MCs. This module reproduces both the exact
//! count and a sampling estimate, plus the validity predicate itself.
//!
//! [`ConnectivityBits`] models the per-router LBDR connectivity bits
//! (Cn/Ce/Cs/Cw) that implement the confinement in hardware: a cleared bit
//! disables the corresponding output link. [`ConnectivityBits::from_region`]
//! derives the bit pattern confining each application inside its region;
//! [`ConnectivityBits::check_consistency`] is the static sanity pass the
//! configuration verifier runs (bits cleared where the topology has no
//! link, link symmetry). Adjacency comes from [`noc_sim::topology`], so
//! the bits generalize to torus/ring wrap links and concentrated meshes
//! (one bit vector per *router*; concentrated nodes share their router's
//! bits, and region maps are constant within a router by construction).

use noc_sim::config::SimConfig;
use noc_sim::ids::{NodeId, Port, PORT_EAST, PORT_NORTH, PORT_SOUTH, PORT_WEST};
use noc_sim::region::RegionMap;
use noc_sim::topology;

/// Binomial coefficient C(n, k) in exact 128-bit arithmetic.
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    for i in 0..k {
        num = num * (n - i) as u128 / (i + 1) as u128;
    }
    num
}

/// Is a mapping valid under LBDR? `region_of_core[c]` assigns core `c` to
/// an application region (`0..num_apps`); `mc_cores` lists which cores host
/// memory controllers. Valid iff every region contains at least one MC.
pub fn is_valid_mapping(region_of_core: &[u8], mc_cores: &[usize], num_apps: usize) -> bool {
    let mut has_mc = vec![false; num_apps];
    for &c in mc_cores {
        let r = region_of_core[c] as usize;
        if r < num_apps {
            has_mc[r] = true;
        }
    }
    has_mc.iter().all(|&b| b)
}

/// Exact fraction of valid mappings for the paper's setting: `num_apps`
/// applications of `threads` threads each on `num_apps * threads` cores,
/// with `num_apps` MCs on distinct fixed cores (so "≥1 MC per region"
/// forces exactly one MC per region).
///
/// Numerator: assign MCs to distinct regions (`num_apps!`), then fill each
/// region's remaining `threads-1` slots from the non-MC cores. Denominator:
/// all ways to partition the cores into labeled regions of size `threads`.
pub fn exact_valid_fraction(num_apps: u64, threads: u64) -> f64 {
    let cores = num_apps * threads;
    let non_mc = cores - num_apps;
    let mut numer: u128 = (1..=num_apps as u128).product(); // num_apps!
    let mut remaining = non_mc;
    for _ in 0..num_apps {
        numer *= binomial(remaining, threads - 1);
        remaining -= threads - 1;
    }
    let mut denom: u128 = 1;
    let mut rem = cores;
    for _ in 0..num_apps {
        denom *= binomial(rem, threads);
        rem -= threads;
    }
    numer as f64 / denom as f64
}

/// Monte-Carlo estimate of the valid fraction, sampling uniformly random
/// partitions of `num_apps*threads` cores into labeled regions of size
/// `threads` with the MCs fixed on cores `0..num_apps`.
pub fn sampled_valid_fraction(
    num_apps: usize,
    threads: usize,
    samples: usize,
    rng: &mut impl rand::Rng,
) -> f64 {
    let cores = num_apps * threads;
    let mc_cores: Vec<usize> = (0..num_apps).collect();
    let mut perm: Vec<usize> = (0..cores).collect();
    let mut valid = 0usize;
    let mut region_of = vec![0u8; cores];
    for _ in 0..samples {
        // Fisher–Yates shuffle, then chunk into regions.
        for i in (1..cores).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        for (slot, &core) in perm.iter().enumerate() {
            region_of[core] = (slot / threads) as u8;
        }
        if is_valid_mapping(&region_of, &mc_cores, num_apps) {
            valid += 1;
        }
    }
    valid as f64 / samples as f64
}

/// LBDR's structural region limit: the number of regions can be at most the
/// number of memory controllers (e.g. at most 4 regions on Intel's 48-core
/// SCC with its 4 MCs).
pub fn max_regions(num_mcs: usize) -> usize {
    num_mcs
}

/// Per-router LBDR connectivity bits: `Cn/Ce/Cs/Cw` of router `r` say
/// whether the output link in that direction is usable. A missing link
/// (grid boundary on a non-wrapping topology) always clears the bit;
/// region confinement clears every cross-region link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectivityBits {
    width: u8,
    height: u8,
    /// `bits[router][port - 1]` for the grid ports N/E/S/W (1..=4).
    bits: Vec<[bool; 4]>,
}

impl ConnectivityBits {
    fn new_with(cfg: &SimConfig, f: impl Fn(NodeId, Port) -> bool) -> Self {
        let bits = (0..cfg.num_routers())
            .map(|r| {
                let here = cfg.router_coord(r);
                let mut b = [false; 4];
                for p in [PORT_NORTH, PORT_EAST, PORT_SOUTH, PORT_WEST] {
                    b[p - 1] = topology::has_link(cfg, here, p) && f(r as NodeId, p);
                }
                b
            })
            .collect();
        Self {
            width: cfg.width,
            height: cfg.height,
            bits,
        }
    }

    /// All existing links usable (an unconfined network).
    pub fn full(cfg: &SimConfig) -> Self {
        Self::new_with(cfg, |_, _| true)
    }

    /// The confinement pattern of a region map: the link out of router `r`
    /// is usable iff the neighbor router belongs to the same region. Region
    /// membership of a router is that of its base node (on a concentrated
    /// mesh, region maps are constant within a router).
    pub fn from_region(cfg: &SimConfig, region: &RegionMap) -> Self {
        Self::new_with(cfg, |r, p| {
            let here = cfg.router_coord(r as usize);
            region.app_of(cfg.node_at(here))
                == region.app_of(cfg.node_at(topology::step(cfg, here, p)))
        })
    }

    /// Is the output link of `router` through grid port `port` usable?
    pub fn usable(&self, router: NodeId, port: Port) -> bool {
        (1..=4).contains(&port) && self.bits[router as usize][port - 1]
    }

    /// Clear one directional bit — deliberately *without* touching the
    /// neighbor's opposite bit, producing the asymmetric (inconsistent)
    /// pattern the negative tests feed to [`Self::check_consistency`].
    pub fn sever(&mut self, router: NodeId, port: Port) {
        self.bits[router as usize][port - 1] = false;
    }

    /// Static consistency of the bit pattern:
    ///
    /// 1. bits must be cleared where the topology has no link (grid edges
    ///    on non-wrapping topologies — there is nothing to enable), and
    /// 2. bits must be symmetric — `Ce(r)` set iff `Cw(east(r))` set, and
    ///    likewise for every direction; an asymmetric pair describes a
    ///    half-duplex link no LBDR configuration can realize.
    ///
    /// Returns one message per offending bit (empty = consistent).
    pub fn check_consistency(&self, cfg: &SimConfig) -> Vec<String> {
        let mut errs = Vec::new();
        for r in 0..self.bits.len() {
            let here = cfg.router_coord(r);
            for p in [PORT_NORTH, PORT_EAST, PORT_SOUTH, PORT_WEST] {
                let set = self.bits[r][p - 1];
                if !topology::has_link(cfg, here, p) {
                    if set {
                        errs.push(format!(
                            "router {r}: connectivity bit for port {p} set where the \
                             topology has no link"
                        ));
                    }
                    continue;
                }
                // Each physical link is checked once from one endpoint:
                // every undirected X link is some router's EAST edge and
                // every Y link some router's SOUTH edge (also on wrapping
                // topologies), so one asymmetric pair yields one message.
                if p == PORT_NORTH || p == PORT_WEST {
                    continue;
                }
                let n = topology::neighbor_router(cfg, r, p);
                let back = self.bits[n][noc_sim::ids::opposite(p) - 1];
                if set != back {
                    errs.push(format!(
                        "asymmetric link r{r} <-> r{n}: bit {} vs reverse bit {}",
                        set, back
                    ));
                }
            }
        }
        errs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(16, 4), 1820);
        assert_eq!(binomial(12, 3), 220);
        assert_eq!(binomial(9, 3), 84);
        assert_eq!(binomial(6, 3), 20);
        assert_eq!(binomial(3, 3), 1);
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(0, 0), 1);
    }

    #[test]
    fn paper_fraction_is_about_14_percent() {
        let f = exact_valid_fraction(4, 4);
        // 8,870,400 / 63,063,000 ≈ 0.1407
        assert!((f - 0.1407).abs() < 0.001, "got {f}");
    }

    #[test]
    fn sampling_agrees_with_exact() {
        let mut rng = SmallRng::seed_from_u64(12345);
        let est = sampled_valid_fraction(4, 4, 200_000, &mut rng);
        let exact = exact_valid_fraction(4, 4);
        assert!(
            (est - exact).abs() < 0.005,
            "sampled {est} vs exact {exact}"
        );
    }

    #[test]
    fn validity_predicate() {
        // 4 cores, 2 apps of 2 threads, MCs on cores 0 and 1.
        let mcs = [0usize, 1];
        // Both MCs in app 0's region → app 1 starves: invalid.
        assert!(!is_valid_mapping(&[0, 0, 1, 1], &mcs, 2));
        // One MC per region: valid.
        assert!(is_valid_mapping(&[0, 1, 0, 1], &mcs, 2));
        assert!(is_valid_mapping(&[1, 0, 1, 0], &mcs, 2));
    }

    #[test]
    fn trivial_single_region_always_valid() {
        assert!((exact_valid_fraction(1, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scc_region_limit() {
        // Intel SCC: 4 MCs → at most 4 regions under LBDR.
        assert_eq!(max_regions(4), 4);
    }

    #[test]
    fn more_apps_more_restrictive() {
        // Keeping 16 threads total, more regions → smaller valid fraction.
        let f2 = exact_valid_fraction(2, 8);
        let f4 = exact_valid_fraction(4, 4);
        let f8 = exact_valid_fraction(8, 2);
        assert!(f2 > f4 && f4 > f8, "{f2} {f4} {f8}");
    }
}
