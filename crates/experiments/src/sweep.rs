//! Shared experiment plumbing: network construction from (scheme, routing)
//! and a two-level (memory + disk) saturation-load cache.
//!
//! The paper expresses all synthetic loads as a percentage of each
//! application's saturation load. Saturation measurement is itself a
//! binary-search of simulations, so results are cached — keyed by a
//! [`metrics::Digest`] folded over the actual measurement parameters
//! `(probe, cfg, region assignment, app, spec)`, never by the
//! caller-supplied label, so two call sites can never share a stale load by
//! reusing a label string. The label is kept for diagnostics only.
//!
//! The disk layer persists each measured load under `results/cache/` (one
//! tiny file per key; override the directory with `RAIR_CACHE_DIR`), so a
//! second `repro` invocation performs **zero** binary searches for loads it
//! has already measured. The in-memory layer is bounded (FIFO eviction) so
//! an unbounded sweep cannot grow the process without limit.

use crate::runner::ExpConfig;
use noc_sim::config::SimConfig;
use noc_sim::network::Network;
use noc_sim::region::RegionMap;
use noc_sim::source::TrafficSource;
use rair::scheme::{Routing, Scheme};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use traffic::saturation::{app_saturation_traced, SaturationProbe, WarmOutcome};
use traffic::scenario::AppSpec;

/// Build a network from the scheme/routing matrix plus a traffic source.
///
/// Every construction first consults the static admission pipeline's
/// process-wide cache ([`noc_sim::admit::admit_network_cached`]) — the
/// pre-simulation gate of the sweep runner. A statically rejected scheme
/// is still simulated (the paper deliberately measures the
/// `RAIR_ForeignH` priority inversion as an ablation) but the rejection
/// is logged once per scheme and counted; [`admission_gate_stats`]
/// exposes the counters so drivers and tests can assert the gate ran.
pub fn build_network(
    cfg: &SimConfig,
    region: &RegionMap,
    scheme: &Scheme,
    routing: Routing,
    source: Box<dyn TrafficSource>,
    seed: u64,
) -> Network {
    let alg = routing.build();
    let adm = noc_sim::admit::admit_network_cached(cfg, region, alg.as_ref(), &scheme.automaton());
    ADMIT_CONSULTS.fetch_add(1, Ordering::Relaxed);
    if !adm.is_admitted() {
        ADMIT_REJECTS.fetch_add(1, Ordering::Relaxed);
        let mut warned = admit_warned()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if warned.insert(adm.scheme.clone()) {
            eprintln!(
                "[admit] {} rejected statically — simulating anyway (measured ablation): {}",
                adm.scheme,
                adm.rejection()
                    .map(|p| p.detail.clone())
                    .unwrap_or_default()
            );
        }
    }
    Network::new(
        cfg.clone(),
        region.clone(),
        alg,
        scheme.build(),
        source,
        seed,
    )
}

/// Admission-gate counters.
static ADMIT_CONSULTS: AtomicU64 = AtomicU64::new(0);
static ADMIT_REJECTS: AtomicU64 = AtomicU64::new(0);

/// Schemes already warned about (one log line per scheme per process).
fn admit_warned() -> &'static Mutex<std::collections::BTreeSet<String>> {
    static WARNED: OnceLock<Mutex<std::collections::BTreeSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(std::collections::BTreeSet::new()))
}

/// Process-wide admission-gate counters: `(consultations, statically
/// rejected constructions)` since startup.
pub fn admission_gate_stats() -> (u64, u64) {
    (
        ADMIT_CONSULTS.load(Ordering::Relaxed),
        ADMIT_REJECTS.load(Ordering::Relaxed),
    )
}

/// In-memory cache capacity; evicted entries survive on disk.
const MEM_CACHE_CAP: usize = 256;

/// Bounded FIFO map: the in-memory layer of the saturation cache.
struct MemCache {
    map: BTreeMap<u64, f64>,
    order: VecDeque<u64>,
}

impl MemCache {
    fn insert(&mut self, key: u64, value: f64) {
        if self.map.insert(key, value).is_none() {
            self.order.push_back(key);
            while self.order.len() > MEM_CACHE_CAP {
                let evict = self.order.pop_front().unwrap();
                self.map.remove(&evict);
            }
        }
    }
}

fn sat_cache() -> &'static Mutex<MemCache> {
    static CACHE: OnceLock<Mutex<MemCache>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(MemCache {
            map: BTreeMap::new(),
            order: VecDeque::new(),
        })
    })
}

/// Where a saturation value came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatLookup {
    /// Served from the process-wide in-memory cache.
    MemHit,
    /// Loaded from the persistent disk cache.
    DiskHit,
    /// Measured by a model-warm-started binary search whose bracket
    /// verified against the simulator (bit-identical to a cold search,
    /// at a fraction of the simulations).
    Warmed,
    /// Measured by a cold binary search (no model hint, or the hint was
    /// rejected by bracket verification).
    Searched,
}

/// Cumulative lookup counters.
static MEM_HITS: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static WARMED_SEARCHES: AtomicU64 = AtomicU64::new(0);
static COLD_SEARCHES: AtomicU64 = AtomicU64::new(0);
/// Disk entries that failed to parse or failed their CRC and were set
/// aside as `*.corrupt` (each one degraded to a re-search, never a panic
/// or a wrong value).
static CACHE_CORRUPT: AtomicU64 = AtomicU64::new(0);

/// Corrupt disk-cache entries detected (and set aside) since startup.
pub fn saturation_cache_corrupt_count() -> u64 {
    CACHE_CORRUPT.load(Ordering::Relaxed)
}

/// Process-wide saturation-cache counters: `(mem_hits, disk_hits,
/// warmed_searches, cold_searches)` since startup.
pub fn saturation_cache_stats() -> (u64, u64, u64, u64) {
    (
        MEM_HITS.load(Ordering::Relaxed),
        DISK_HITS.load(Ordering::Relaxed),
        WARMED_SEARCHES.load(Ordering::Relaxed),
        COLD_SEARCHES.load(Ordering::Relaxed),
    )
}

/// A saturation search that produced no usable load (collapsed to zero or
/// a non-finite value). Raised as a structured error so the panic-safe
/// runner turns one degenerate configuration into a reported job failure
/// instead of aborting the whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationError {
    /// The caller-supplied diagnostic label of the search.
    pub label: String,
    /// The application whose saturation was being measured.
    pub app: u8,
    /// The degenerate measured value.
    pub load: f64,
}

impl std::fmt::Display for SaturationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "saturation search collapsed to {} for {} (app {})",
            self.load, self.label, self.app
        )
    }
}

impl std::error::Error for SaturationError {}

/// Canonical cache key: a collision-resistant digest folded over every
/// parameter the measured saturation load depends on. Unlike the earlier
/// `Debug`-string key, each component is written through the pinned
/// [`metrics::Digest`] with explicit discriminants and length prefixes, so
/// the key is stable across Rust versions and derive-order changes.
fn sat_digest(
    probe: &SaturationProbe,
    cfg: &SimConfig,
    region: &RegionMap,
    app: u8,
    spec: &AppSpec,
) -> u64 {
    let mut d = metrics::Digest::new();
    // Domain tag ("RAIRSAT" + version) so these keys can never collide
    // with another digest family reusing the same hash.
    d.write_u64(0x5241_4952_5341_5401);
    probe.digest_into(&mut d);
    cfg.digest_into(&mut d);
    d.write_u64(cfg.num_nodes() as u64);
    for n in 0..cfg.num_nodes() as u16 {
        d.write_u64(region.app_of(n) as u64);
    }
    d.write_u64(app as u64);
    spec.digest_into(&mut d);
    d.finish()
}

/// Directory of the persistent cache: `RAIR_CACHE_DIR` if set, else
/// `results/cache` relative to the working directory.
fn cache_dir() -> PathBuf {
    std::env::var_os("RAIR_CACHE_DIR")
        .map_or_else(|| PathBuf::from("results").join("cache"), PathBuf::from)
}

fn cache_path(key: u64) -> PathBuf {
    cache_dir().join(format!("sat_{key:016x}.txt"))
}

/// Parse a cache entry's text. Two on-disk generations:
///
/// - **v2** (written since the chaos PR): `v2 <bits:016x> <crc:08x>` where
///   the CRC covers the bit-pattern hex token, so silent bit rot in the
///   value is detected instead of returned as a wrong saturation load.
/// - **legacy**: a bare 16-digit bit pattern on the first line (kept
///   readable so committed caches survive the format bump).
fn parse_cache_entry(text: &str) -> Option<f64> {
    let first = text.lines().next()?.trim();
    let bits = if let Some(rest) = first.strip_prefix("v2 ") {
        let mut it = rest.split_whitespace();
        let hex = it.next()?;
        let crc = u32::from_str_radix(it.next()?, 16).ok()?;
        if crate::service::crc32(hex.as_bytes()) != crc {
            return None;
        }
        u64::from_str_radix(hex, 16).ok()?
    } else {
        u64::from_str_radix(first, 16).ok()?
    };
    let v = f64::from_bits(bits);
    v.is_finite().then_some(v)
}

/// Read a cached value from disk. An entry that fails to parse or fails
/// its CRC is a **miss**: it is counted, renamed to `*.corrupt` for
/// post-mortems, and the caller re-searches — a damaged cache can cost
/// simulations, never correctness.
fn disk_read(key: u64) -> Option<f64> {
    let path = cache_path(key);
    let text = std::fs::read_to_string(&path).ok()?;
    match parse_cache_entry(&text) {
        Some(v) => Some(v),
        None => {
            CACHE_CORRUPT.fetch_add(1, Ordering::Relaxed);
            let aside = path.with_extension("txt.corrupt");
            eprintln!(
                "[sweep] warning: corrupt saturation cache entry {} (CRC/parse \
                 failure); setting it aside and re-searching",
                path.display()
            );
            if let Err(e) = std::fs::rename(&path, &aside) {
                eprintln!("[sweep] warning: could not set aside corrupt cache entry: {e}");
            }
            None
        }
    }
}

/// Persist a value in the v2 (CRC-guarded) format: value line first, a
/// human-readable comment line second. Written via temp-file + rename so
/// concurrent sweeps (or an interrupted run) can never leave a torn entry;
/// failures are warned about but non-fatal — the cache is an optimization,
/// not a dependency.
fn disk_write(key: u64, value: f64, label: &str) {
    let dir = cache_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "[sweep] warning: could not create cache dir {}: {e}",
            dir.display()
        );
        return;
    }
    let tmp = dir.join(format!("sat_{key:016x}.tmp.{}", std::process::id()));
    let hex = format!("{:016x}", value.to_bits());
    let body = format!(
        "v2 {hex} {:08x}\n# {} = {:.6} flits/cycle/node\n",
        crate::service::crc32(hex.as_bytes()),
        label,
        value
    );
    let committed =
        std::fs::write(&tmp, body).and_then(|()| std::fs::rename(&tmp, cache_path(key)));
    if let Err(e) = committed {
        eprintln!(
            "[sweep] warning: could not persist saturation cache entry \
             sat_{key:016x}: {e}"
        );
    }
}

/// Is model warm-starting of saturation searches disabled? The
/// `RAIR_COLD_SAT` kill switch (any non-empty value but `0`) forces every
/// search cold — warm and cold return bit-identical loads, so this only
/// matters for probe-count comparisons and distrust of the model.
fn cold_searches_forced() -> bool {
    std::env::var("RAIR_COLD_SAT").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Saturation load of application `app` running alone with traffic mix
/// `spec` on `region` (round-robin arbitration, local adaptive routing),
/// plus where the value came from. `label` is used only in diagnostics and
/// the on-disk comment line; the cache key is derived from the parameters
/// themselves.
///
/// On a cache miss the binary search is warm-started from the analytical
/// model's prediction ([`model::warm_hint`]); the warm protocol verifies
/// its bracket against the simulator and falls back to the cold path when
/// rejected, so the returned load is bit-identical either way (cache
/// contents and golden digests do not depend on the model).
pub fn try_cached_saturation_traced(
    label: &str,
    ec: &ExpConfig,
    cfg: &SimConfig,
    region: &RegionMap,
    app: u8,
    spec: &AppSpec,
) -> Result<(f64, SatLookup), SaturationError> {
    let probe = if ec.quick {
        SaturationProbe::quick()
    } else {
        SaturationProbe::default()
    };
    let key = sat_digest(&probe, cfg, region, app, spec);
    if let Some(&v) = sat_cache().lock().unwrap().map.get(&key) {
        MEM_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok((v, SatLookup::MemHit));
    }
    if let Some(v) = disk_read(key) {
        DISK_HITS.fetch_add(1, Ordering::Relaxed);
        sat_cache().lock().unwrap().insert(key, v);
        return Ok((v, SatLookup::DiskHit));
    }
    let warm = if cold_searches_forced() {
        None
    } else {
        model::warm_hint(cfg, region, app, spec, model::RoutingKind::Adaptive)
    };
    let out = app_saturation_traced(&probe, cfg, region, app, spec, warm, || {
        Routing::Local.build()
    });
    let lookup = if out.warm == WarmOutcome::Accepted {
        WARMED_SEARCHES.fetch_add(1, Ordering::Relaxed);
        SatLookup::Warmed
    } else {
        COLD_SEARCHES.fetch_add(1, Ordering::Relaxed);
        SatLookup::Searched
    };
    let sat = validate_sat(label, app, out.load)?;
    sat_cache().lock().unwrap().insert(key, sat);
    disk_write(key, sat, label);
    Ok((sat, lookup))
}

/// Reject a degenerate measured load (zero, negative, NaN, ∞) with the
/// structured error; a search can collapse to zero when even the smallest
/// probed rate is unstable (e.g. a mis-specified region with no eject
/// capacity).
fn validate_sat(label: &str, app: u8, sat: f64) -> Result<f64, SaturationError> {
    if sat > 0.0 && sat.is_finite() {
        Ok(sat)
    } else {
        Err(SaturationError {
            label: label.to_string(),
            app,
            load: sat,
        })
    }
}

/// [`try_cached_saturation_traced`], panicking on a degenerate search with
/// the structured error's message. Figure drivers run inside the
/// panic-safe parallel runner, which downcasts string payloads — so a
/// degenerate configuration surfaces as one failed job with the label in
/// its message, not a sweep abort.
pub fn cached_saturation_traced(
    label: &str,
    ec: &ExpConfig,
    cfg: &SimConfig,
    region: &RegionMap,
    app: u8,
    spec: &AppSpec,
) -> (f64, SatLookup) {
    try_cached_saturation_traced(label, ec, cfg, region, app, spec)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`cached_saturation_traced`] without the provenance (the common case for
/// figure drivers).
pub fn cached_saturation(
    label: &str,
    ec: &ExpConfig,
    cfg: &SimConfig,
    region: &RegionMap,
    app: u8,
    spec: &AppSpec,
) -> f64 {
    cached_saturation_traced(label, ec, cfg, region, app, spec).0
}

/// Clear the in-memory saturation cache (tests). Disk entries persist; use
/// `RAIR_CACHE_DIR` pointed at a temp directory to isolate tests from the
/// repository-level cache.
pub fn clear_saturation_cache() {
    let mut c = sat_cache().lock().unwrap();
    c.map.clear();
    c.order.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Job;
    use noc_sim::source::NoTraffic;
    use traffic::scenario::InterDest;

    /// Serializes tests that touch the process-wide cache layers or the
    /// `RAIR_CACHE_DIR` environment variable.
    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Point the disk cache at a unique temp directory for one test.
    struct TempCacheDir {
        dir: PathBuf,
    }

    impl TempCacheDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("rair-satcache-{}-{tag}", std::process::id()));
            // lint: allow(swallowed-io-error)
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            std::env::set_var("RAIR_CACHE_DIR", &dir);
            Self { dir }
        }
    }

    impl Drop for TempCacheDir {
        fn drop(&mut self) {
            std::env::remove_var("RAIR_CACHE_DIR");
            // lint: allow(swallowed-io-error)
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    #[test]
    fn degenerate_loads_become_structured_errors() {
        assert_eq!(validate_sat("lbl", 0, 0.375).unwrap(), 0.375);
        for bad in [0.0, -0.1, f64::NAN, f64::INFINITY] {
            let e = validate_sat("fig9/halves", 1, bad).unwrap_err();
            assert_eq!(e.label, "fig9/halves");
            assert_eq!(e.app, 1);
            let msg = e.to_string();
            assert!(
                msg.contains("collapsed") && msg.contains("fig9/halves"),
                "{msg}"
            );
        }
    }

    /// A degenerate saturation search inside a sweep job surfaces as one
    /// labeled `JobError` carrying the structured message, while sibling
    /// jobs run to completion — the sweep does not abort. The failing job
    /// panics exactly the way [`cached_saturation_traced`] does on
    /// [`validate_sat`]'s error.
    #[test]
    fn saturation_error_is_survived_by_the_sweep_runner() {
        let healthy = || {
            let cfg = SimConfig::table1();
            let region = RegionMap::single(&cfg);
            let net = build_network(
                &cfg,
                &region,
                &Scheme::RoRr,
                Routing::Local,
                Box::new(NoTraffic),
                7,
            );
            let ec = ExpConfig {
                warmup: 50,
                measure: 100,
                ..ExpConfig::quick()
            };
            crate::runner::run_one("healthy", net, &ec)
        };
        let jobs = vec![
            Job::new("ok/before", healthy),
            Job::new("fig9/degenerate", || {
                let e = validate_sat("fig9/degenerate", 2, 0.0).unwrap_err();
                panic!("{e}")
            }),
            Job::new("ok/after", healthy),
        ];
        let results = crate::runner::run_parallel_results(jobs);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().label, "healthy");
        assert_eq!(results[2].as_ref().unwrap().label, "healthy");
        let err = results[1].as_ref().unwrap_err();
        assert_eq!(err.label, "fig9/degenerate");
        assert!(
            err.message.contains("saturation search collapsed to 0")
                && err.message.contains("app 2"),
            "structured message lost: {}",
            err.message
        );
    }

    #[test]
    fn build_network_wires_scheme_and_routing() {
        let cfg = SimConfig::table1();
        let region = RegionMap::single(&cfg);
        let (consults0, _) = admission_gate_stats();
        let net = build_network(
            &cfg,
            &region,
            &Scheme::rair(),
            Routing::Dbar,
            Box::new(NoTraffic),
            1,
        );
        assert_eq!(net.policy_name(), "RA_RAIR");
        assert_eq!(net.routing_name(), "DBAR");
        // The admission cache was consulted before construction.
        let (consults1, _) = admission_gate_stats();
        assert!(consults1 > consults0);
    }

    /// The pre-simulation gate flags a statically rejected scheme but
    /// still constructs the network — the `RAIR_ForeignH` inversion is a
    /// measured ablation, not an error.
    #[test]
    fn admission_gate_counts_static_rejections() {
        let cfg = SimConfig::table1();
        let region = RegionMap::single(&cfg);
        let (_, rejects0) = admission_gate_stats();
        let net = build_network(
            &cfg,
            &region,
            &Scheme::rair_foreign_high(),
            Routing::Local,
            Box::new(NoTraffic),
            3,
        );
        assert_eq!(net.policy_name(), "RA_RAIR");
        let (_, rejects1) = admission_gate_stats();
        assert!(rejects1 > rejects0, "static rejection not counted");
    }

    #[test]
    fn saturation_cache_layers_and_zero_searches_on_rerun() {
        let _guard = env_lock();
        let _tmp = TempCacheDir::new("layers");
        clear_saturation_cache();
        let cfg = SimConfig::table1();
        let region = RegionMap::halves(&cfg);
        let ec = ExpConfig::quick();
        let spec = AppSpec::intra_only(0.0);
        // Cold start: one real binary search (model-warmed or cold — warm
        // acceptance is bit-identical, so either outcome yields the same
        // load), persisted to disk.
        let (a, la) = cached_saturation_traced("test/halves0", &ec, &cfg, &region, 0, &spec);
        assert!(
            matches!(la, SatLookup::Warmed | SatLookup::Searched),
            "{la:?}"
        );
        assert!(a > 0.05 && a < 1.0, "saturation {a}");
        // Same parameters under a different label: in-memory hit, identical
        // value.
        let (b, lb) = cached_saturation_traced("other/label", &ec, &cfg, &region, 0, &spec);
        assert_eq!(lb, SatLookup::MemHit);
        assert_eq!(a, b);
        // Fresh process simulated by clearing the memory layer: the disk
        // entry answers — a second `repro` run performs zero searches.
        clear_saturation_cache();
        let (c, lc) = cached_saturation_traced("rerun", &ec, &cfg, &region, 0, &spec);
        assert_eq!(lc, SatLookup::DiskHit);
        assert_eq!(a.to_bits(), c.to_bits(), "disk roundtrip not bit-exact");
        // And it was promoted back into memory.
        let (_, ld) = cached_saturation_traced("rerun2", &ec, &cfg, &region, 0, &spec);
        assert_eq!(ld, SatLookup::MemHit);
    }

    #[test]
    fn disk_entries_are_atomic_and_readable() {
        let _guard = env_lock();
        let _tmp = TempCacheDir::new("atomic");
        disk_write(0xDEAD_BEEF, 0.314159, "demo/label");
        let v = disk_read(0xDEAD_BEEF).unwrap();
        assert_eq!(v.to_bits(), 0.314159f64.to_bits());
        // No stray temp files remain after a completed write.
        let leftovers: Vec<_> = std::fs::read_dir(cache_dir())
            .unwrap()
            .filter_map(std::result::Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "torn temp files: {leftovers:?}");
        // Corrupt entries are treated as misses, not errors.
        std::fs::write(cache_path(0xBAD), "not-hex\n").unwrap();
        assert_eq!(disk_read(0xBAD), None);
        // Legacy (pre-CRC) entries — a bare bit-pattern line — stay
        // readable, so committed caches survive the format bump.
        std::fs::write(
            cache_path(0x1E6),
            format!("{:016x}\n# legacy comment\n", 0.25f64.to_bits()),
        )
        .unwrap();
        assert_eq!(disk_read(0x1E6), Some(0.25));
    }

    /// Satellite requirement: corrupting a *live* cache entry must cost a
    /// re-search, never correctness — the re-searched value is bit-identical,
    /// the damaged file is set aside as `*.corrupt`, and the event counted.
    #[test]
    fn corrupt_live_cache_entry_is_set_aside_and_research_is_identical() {
        let _guard = env_lock();
        let _tmp = TempCacheDir::new("corrupt-live");
        clear_saturation_cache();
        let cfg = SimConfig::table1();
        let region = RegionMap::halves(&cfg);
        let ec = ExpConfig::quick();
        let spec = AppSpec::intra_only(0.0);
        let (v1, _) = cached_saturation_traced("corrupt/live", &ec, &cfg, &region, 0, &spec);
        // Flip one byte inside the stored bit pattern of the live entry.
        let key = sat_digest(&SaturationProbe::quick(), &cfg, &region, 0, &spec);
        let path = cache_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"v2 "), "new entries use the CRC format");
        bytes[4] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        clear_saturation_cache();
        let before = saturation_cache_corrupt_count();
        let (v2, how) = cached_saturation_traced("corrupt/again", &ec, &cfg, &region, 0, &spec);
        assert!(
            matches!(how, SatLookup::Warmed | SatLookup::Searched),
            "corrupt entry must be a miss, got {how:?}"
        );
        assert_eq!(
            v1.to_bits(),
            v2.to_bits(),
            "re-search must reproduce the identical value"
        );
        assert_eq!(saturation_cache_corrupt_count(), before + 1);
        assert!(
            path.with_extension("txt.corrupt").exists(),
            "damaged entry set aside for post-mortems"
        );
    }

    #[test]
    fn memory_layer_is_bounded() {
        let mut cache = MemCache {
            map: BTreeMap::new(),
            order: VecDeque::new(),
        };
        for k in 0..(MEM_CACHE_CAP as u64 + 50) {
            cache.insert(k, k as f64);
        }
        assert_eq!(cache.map.len(), MEM_CACHE_CAP);
        assert_eq!(cache.order.len(), MEM_CACHE_CAP);
        // FIFO: the oldest keys were evicted, the newest survive.
        assert!(!cache.map.contains_key(&0));
        assert!(cache.map.contains_key(&(MEM_CACHE_CAP as u64 + 49)));
        // Re-inserting an existing key must not duplicate its order slot.
        let before = cache.order.len();
        cache.insert(MEM_CACHE_CAP as u64 + 49, 1.0);
        assert_eq!(cache.order.len(), before);
    }

    #[test]
    fn distinct_parameters_never_collide() {
        let cfg = SimConfig::table1();
        let region = RegionMap::halves(&cfg);
        let base = AppSpec::intra_only(0.0);
        let quick = SaturationProbe::quick();
        let full = SaturationProbe::default();
        let reference = sat_digest(&quick, &cfg, &region, 0, &base);
        // Key is a pure function of the parameters…
        assert_eq!(reference, sat_digest(&quick, &cfg, &region, 0, &base));
        // …and every parameter perturbation changes it.
        assert_ne!(reference, sat_digest(&full, &cfg, &region, 0, &base));
        assert_ne!(reference, sat_digest(&quick, &cfg, &region, 1, &base));
        let mut other_cfg = cfg.clone();
        other_cfg.vc_depth += 1;
        assert_ne!(reference, sat_digest(&quick, &other_cfg, &region, 0, &base));
        let quadrants = RegionMap::quadrants(&cfg);
        assert_ne!(reference, sat_digest(&quick, &cfg, &quadrants, 0, &base));
        let mut spec = base.clone();
        spec.mc += 0.05;
        spec.intra -= 0.05;
        assert_ne!(reference, sat_digest(&quick, &cfg, &region, 0, &spec));
        let mut dest = base.clone();
        dest.inter_dest = InterDest::Region(1);
        assert_ne!(reference, sat_digest(&quick, &cfg, &region, 0, &dest));
        let mut seeded = quick;
        seeded.seed ^= 1;
        assert_ne!(reference, sat_digest(&seeded, &cfg, &region, 0, &base));
    }
}
