//! RO_Rank: STC-style application-aware prioritization [Das et al.,
//! MICRO'09], as configured in §V of the paper ("optimized STC").
//!
//! STC ranks applications by network intensity (lower intensity → higher
//! rank, because low-intensity applications' packets are stall-time
//! critical) and breaks starvation with time-based batching: packets are
//! grouped into batches by generation time, and older batches always beat
//! younger batches regardless of rank. Within one application, plain
//! round-robin applies (the tie-break of the rotating arbiter).
//!
//! The paper evaluates an *optimized* STC that always knows the optimal
//! ranking; we likewise let the experiment feed the true configured
//! intensity ordering (an oracle favourable to this baseline).

use super::{ArbReq, ArbStage, PriorityPolicy};
use crate::ids::AppId;
use crate::router::Router;
use crate::vc::VcClass;

/// Default batching window in cycles. STC batches by epochs long enough
/// that ranking (not batch turnover) is the primary prioritizer, while
/// still bounding starvation; 8000 cycles on a 64-node mesh gives several
/// batches per measurement window.
pub const DEFAULT_BATCH_WINDOW: u64 = 8000;

/// Application-aware ranked arbitration with batching.
#[derive(Debug, Clone)]
pub struct StcRank {
    /// `rank[app]`: 0 = highest rank (least network-intensive application).
    ranks: Vec<u16>,
    /// Batching epoch length in cycles.
    batch_window: u64,
}

impl StcRank {
    /// Create with explicit ranks (index = application id; 0 = best rank).
    pub fn new(ranks: Vec<u16>, batch_window: u64) -> Self {
        assert!(batch_window > 0, "batch window must be positive");
        Self {
            ranks,
            batch_window,
        }
    }

    /// Rank applications by intensity: the least intensive application gets
    /// rank 0 (highest priority), as STC prescribes.
    pub fn from_intensities(intensities: &[f64], batch_window: u64) -> Self {
        let mut order: Vec<usize> = (0..intensities.len()).collect();
        order.sort_by(|&a, &b| {
            intensities[a]
                .partial_cmp(&intensities[b])
                .expect("intensity must not be NaN")
        });
        let mut ranks = vec![0u16; intensities.len()];
        for (rank, &app) in order.iter().enumerate() {
            ranks[app] = rank as u16;
        }
        Self::new(ranks, batch_window)
    }

    fn rank_of(&self, app: AppId) -> u16 {
        // Unknown applications (e.g. injected adversarial traffic the OS
        // never ranked) get the worst rank.
        self.ranks.get(app as usize).copied().unwrap_or(u16::MAX)
    }
}

impl PriorityPolicy for StcRank {
    fn name(&self) -> &'static str {
        "RO_Rank"
    }

    fn priority(
        &self,
        _stage: ArbStage,
        _router: &Router,
        _out_vc: Option<VcClass>,
        req: &ArbReq,
    ) -> u64 {
        let batch = req.birth / self.batch_window;
        // Older batch dominates; within a batch, better (smaller) rank wins.
        // Batch ids are bounded by cycle/window; clamp into 40 bits so the
        // subtraction can't underflow in any realistic run.
        let batch_prio = (1u64 << 40) - batch.min((1 << 40) - 1);
        (batch_prio << 16) | (u16::MAX - self.rank_of(req.app)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn req(app: AppId, birth: u64) -> ArbReq {
        ArbReq {
            app,
            class: 0,
            birth,
            inject: birth,
            is_native: true,
        }
    }

    fn router() -> Router {
        let cfg = SimConfig::table1();
        Router::new(&cfg, 0, cfg.coord_of(0), 0)
    }

    #[test]
    fn ranks_from_intensities() {
        // App 1 least intensive → rank 0; app 0 most intensive → rank 2.
        let s = StcRank::from_intensities(&[0.9, 0.1, 0.5], 1000);
        assert_eq!(s.rank_of(1), 0);
        assert_eq!(s.rank_of(2), 1);
        assert_eq!(s.rank_of(0), 2);
    }

    #[test]
    fn lower_intensity_app_wins_within_batch() {
        let s = StcRank::from_intensities(&[0.9, 0.1], 1000);
        let r = router();
        let heavy = s.priority(ArbStage::SaIn, &r, None, &req(0, 100));
        let light = s.priority(ArbStage::SaIn, &r, None, &req(1, 100));
        assert!(light > heavy);
    }

    #[test]
    fn older_batch_beats_better_rank() {
        let s = StcRank::from_intensities(&[0.9, 0.1], 1000);
        let r = router();
        // Heavy app packet from batch 0 vs light app packet from batch 5.
        let heavy_old = s.priority(ArbStage::SaIn, &r, None, &req(0, 500));
        let light_new = s.priority(ArbStage::SaIn, &r, None, &req(1, 5500));
        assert!(heavy_old > light_new);
    }

    #[test]
    fn same_batch_same_app_ties() {
        let s = StcRank::from_intensities(&[0.5, 0.1], 1000);
        let r = router();
        let a = s.priority(ArbStage::SaIn, &r, None, &req(0, 100));
        let b = s.priority(ArbStage::SaIn, &r, None, &req(0, 900));
        assert_eq!(a, b, "within-app, within-batch must tie (round-robin)");
    }

    #[test]
    fn unranked_app_gets_worst_rank() {
        let s = StcRank::from_intensities(&[0.5, 0.1], 1000);
        let r = router();
        let adversary = s.priority(ArbStage::SaIn, &r, None, &req(200, 100));
        let ranked = s.priority(ArbStage::SaIn, &r, None, &req(0, 100));
        assert!(ranked > adversary);
    }

    #[test]
    #[should_panic(expected = "batch window")]
    fn zero_window_rejected() {
        StcRank::new(vec![0], 0);
    }
}
