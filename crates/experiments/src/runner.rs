//! Simulation runner: executes configured networks (optionally in parallel
//! across a sweep) and extracts per-application results.
//!
//! The parallel runner is panic-safe: each job runs under `catch_unwind`,
//! a panicking job is reported with its label, and the remaining jobs
//! still complete. `run_parallel` re-raises an aggregate failure only
//! after the whole sweep has finished, so one diverging configuration
//! cannot discard the others' completed work.

use metrics::LatencyKind;
use noc_sim::network::Network;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Warmup/measurement window and seed for one experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExpConfig {
    pub warmup: u64,
    pub measure: u64,
    pub seed: u64,
    /// Quick mode trades statistical tightness for speed (used by the
    /// Criterion benches and the test suite).
    pub quick: bool,
}

impl ExpConfig {
    /// The paper's windows: 10K warmup + 100K measurement cycles (§V.A).
    pub fn full() -> Self {
        Self {
            warmup: 10_000,
            measure: 100_000,
            seed: 0xC0FFEE,
            quick: false,
        }
    }

    /// Reduced windows for benches/tests.
    pub fn quick() -> Self {
        Self {
            warmup: 2_000,
            measure: 15_000,
            seed: 0xC0FFEE,
            quick: true,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Label identifying the run (scheme, parameters…).
    pub label: String,
    /// Mean network latency (injection→ejection) per application; `None`
    /// when the application delivered no packets in the window.
    pub apl: Vec<Option<f64>>,
    /// Mean total latency (generation→ejection) per application.
    pub total_latency: Vec<Option<f64>>,
    /// Packets delivered in the measurement window.
    pub delivered: u64,
    /// Flit throughput in flits/cycle/node.
    pub throughput: f64,
    /// Cycles simulated (warmup + measurement).
    pub cycles: u64,
    /// Routers in the mesh.
    pub routers: usize,
    /// Router×phase visits elided by the active-set fast path.
    pub router_cycles_skipped: u64,
    /// End-of-cycle router state updates elided.
    pub state_updates_skipped: u64,
    /// Whole cycles jumped over by the idle fast-forward without ticking.
    pub idle_cycles_skipped: u64,
    /// Whether the invariant oracle was active during the run.
    pub oracle_enabled: bool,
    /// Invariant violations the oracle recorded (0 when disabled).
    pub oracle_violations: u64,
}

impl RunResult {
    /// Unweighted mean of the per-application APLs (how the paper averages
    /// "over all applications"), restricted to `apps` if given. Applications
    /// that delivered nothing in the window — routine at saturation — are
    /// skipped; `NaN` is returned when none delivered, so a starved sweep
    /// point shows up in tables instead of tearing down the run.
    pub fn mean_apl(&self, apps: Option<&[usize]>) -> f64 {
        let vals: Vec<f64> = match apps {
            Some(idx) => idx.iter().filter_map(|&a| self.apl[a]).collect(),
            None => self.apl.iter().flatten().copied().collect(),
        };
        if vals.is_empty() {
            return f64::NAN;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    /// APL of one application, or `None` if it delivered nothing.
    pub fn try_app_apl(&self, app: usize) -> Option<f64> {
        self.apl[app]
    }

    /// APL of one application; `NaN` when it delivered nothing (so ratios
    /// and tables degrade visibly instead of panicking at saturation).
    pub fn app_apl(&self, app: usize) -> f64 {
        self.apl[app].unwrap_or(f64::NAN)
    }

    /// One-line report of how much per-cycle kernel work the active-set
    /// fast path and the idle fast-forward elided during this run.
    pub fn kernel_summary(&self) -> String {
        let visits = self.cycles * self.routers as u64;
        metrics::report::kernel_summary(
            visits * 3,
            self.router_cycles_skipped,
            visits,
            self.state_updates_skipped,
            self.cycles,
            self.idle_cycles_skipped,
        )
    }
}

/// Run one already-built network through warmup + measurement and collect
/// the result.
pub fn run_one(label: impl Into<String>, mut net: Network, cfg: &ExpConfig) -> RunResult {
    net.run_warmup_measure(cfg.warmup, cfg.measure);
    let rec = &net.stats.recorder;
    let napps = rec.num_apps();
    RunResult {
        label: label.into(),
        apl: (0..napps)
            .map(|a| rec.app(a).mean(LatencyKind::Network))
            .collect(),
        total_latency: (0..napps)
            .map(|a| rec.app(a).mean(LatencyKind::Total))
            .collect(),
        delivered: rec.delivered(),
        throughput: net.stats.throughput(net.cycle(), net.cfg.num_nodes()),
        cycles: net.cycle(),
        routers: net.cfg.num_nodes(),
        router_cycles_skipped: net.stats.router_cycles_skipped,
        state_updates_skipped: net.stats.state_updates_skipped,
        idle_cycles_skipped: net.stats.idle_cycles_skipped,
        oracle_enabled: net.oracle_enabled(),
        oracle_violations: net.stats.oracle_violation_count,
    }
}

/// A deferred, labeled simulation job for the parallel sweep runner. The
/// label travels with the job so a panic can be attributed even though the
/// closure never produced a `RunResult`.
pub struct Job {
    label: String,
    run: Box<dyn FnOnce() -> RunResult + Send>,
}

impl Job {
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> RunResult + Send + 'static) -> Job {
        Job {
            label: label.into(),
            run: Box::new(run),
        }
    }

    pub fn label(&self) -> &str {
        &self.label
    }

    /// Run the job, converting a panic into a labeled error.
    fn execute(self) -> Result<RunResult, JobError> {
        let Job { label, run } = self;
        catch_unwind(AssertUnwindSafe(run)).map_err(|payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(std::string::ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            JobError { label, message }
        })
    }
}

/// A job that panicked instead of producing a result.
#[derive(Debug, Clone)]
pub struct JobError {
    pub label: String,
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job '{}' panicked: {}", self.label, self.message)
    }
}

/// Resolve the sweep worker count: a parseable `RAIR_THREADS` value wins
/// (clamped to at least 1), otherwise every available core is used; either
/// way no more workers than jobs are spawned. Parallelism never changes
/// results — runs are independent and deterministic — so the override is
/// purely about machine sharing.
fn worker_count_from(env_threads: Option<&str>, jobs: usize) -> usize {
    env_threads
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map_or_else(
            || std::thread::available_parallelism().map_or(4, std::num::NonZero::get),
            |t| t.max(1),
        )
        .min(jobs)
}

/// Execute jobs across worker threads (one simulation per thread; see
/// [`worker_count_from`] for the `RAIR_THREADS` override). Results are
/// returned in job order; a panicking job becomes an `Err` while every
/// other job still runs to completion. Progress is reported on stderr as
/// jobs finish.
pub fn run_parallel_results(jobs: Vec<Job>) -> Vec<Result<RunResult, JobError>> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let done = AtomicUsize::new(0);
    let progress = |label: &str| {
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        if n > 1 {
            eprintln!("[sweep] {d}/{n} done ({label})");
        }
    };
    let workers = worker_count_from(std::env::var("RAIR_THREADS").ok().as_deref(), n);
    if workers <= 1 {
        return jobs
            .into_iter()
            .map(|j| {
                let label = j.label.clone();
                let r = j.execute();
                progress(&label);
                r
            })
            .collect();
    }
    let queue: Mutex<Vec<(usize, Job)>> = Mutex::new(jobs.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<Result<RunResult, JobError>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = queue.lock().unwrap().pop();
                let Some((idx, job)) = job else { break };
                let label = job.label.clone();
                let r = job.execute();
                results.lock().unwrap()[idx] = Some(r);
                progress(&label);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect()
}

/// Like [`run_parallel_results`], but panics — after every job has finished
/// — if any job failed, listing the failed labels. Figure drivers need all
/// results, so a missing one is fatal, just not before the sweep completes.
pub fn run_parallel(jobs: Vec<Job>) -> Vec<RunResult> {
    let results = run_parallel_results(jobs);
    let failures: Vec<String> = results
        .iter()
        .filter_map(|r| r.as_ref().err().map(std::string::ToString::to_string))
        .collect();
    assert!(
        failures.is_empty(),
        "{} sweep job(s) failed:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::prelude::*;

    fn tiny_net(seed: u64) -> Network {
        let cfg = SimConfig::table1();
        let pkt = NewPacket {
            dst: 9,
            app: 0,
            class: 0,
            size: 1,
            reply: None,
        };
        Network::new(
            cfg,
            RegionMap::single(&SimConfig::table1()),
            Box::new(DuatoLocalAdaptive),
            Box::new(RoundRobin),
            Box::new(ScriptedSource::new(1, vec![(2100, 0, pkt)])),
            seed,
        )
    }

    #[test]
    fn run_one_collects_apl() {
        let cfg = ExpConfig {
            warmup: 2_000,
            measure: 3_000,
            seed: 0,
            quick: true,
        };
        let r = run_one("probe", tiny_net(1), &cfg);
        assert_eq!(r.delivered, 1);
        assert!(r.app_apl(0) > 0.0);
        assert!(r.mean_apl(None) > 0.0);
        // A single-packet run is almost entirely idle: between the idle
        // fast-forward (whole cycles jumped, 3 phase visits per router each)
        // and the active-set fast path (visits elided inside real ticks),
        // nearly all router work must have been skipped.
        assert_eq!(r.cycles, 5_000);
        assert_eq!(r.routers, 64);
        let elided = r.router_cycles_skipped + 3 * r.routers as u64 * r.idle_cycles_skipped;
        assert!(
            elided > r.cycles * r.routers as u64 * 3 / 2,
            "fast paths barely skipped: {elided}"
        );
        // The source injects exactly one packet at cycle 2100; everything
        // before and most of the drain after it fast-forwards.
        assert!(
            r.idle_cycles_skipped > 4_000,
            "idle fast-forward skipped only {} cycles",
            r.idle_cycles_skipped
        );
        assert!(r.state_updates_skipped > 0);
        assert!(r.kernel_summary().starts_with("kernel:"));
    }

    #[test]
    fn starved_app_yields_nan_not_panic() {
        let r = RunResult {
            label: "starved".into(),
            apl: vec![None, Some(12.0)],
            total_latency: vec![None, Some(14.0)],
            delivered: 3,
            throughput: 0.01,
            cycles: 1_000,
            routers: 64,
            router_cycles_skipped: 0,
            state_updates_skipped: 0,
            idle_cycles_skipped: 0,
            oracle_enabled: false,
            oracle_violations: 0,
        };
        assert!(r.app_apl(0).is_nan());
        assert_eq!(r.try_app_apl(0), None);
        assert_eq!(r.app_apl(1), 12.0);
        // mean over delivered apps only; NaN when nothing delivered at all.
        assert_eq!(r.mean_apl(None), 12.0);
        assert!(r.mean_apl(Some(&[0])).is_nan());
    }

    #[test]
    fn parallel_matches_serial_and_preserves_order() {
        let cfg = ExpConfig {
            warmup: 1_000,
            measure: 2_500,
            seed: 0,
            quick: true,
        };
        let mk = |i: usize| -> Job {
            Job::new(format!("job{i}"), move || {
                run_one(format!("job{i}"), tiny_net(i as u64), &cfg)
            })
        };
        let serial: Vec<RunResult> = (0..6).map(|i| ((mk(i)).run)()).collect();
        let parallel = run_parallel((0..6).map(mk).collect());
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.delivered, p.delivered);
            assert_eq!(s.apl, p.apl, "parallelism changed results");
        }
    }

    #[test]
    fn panicking_job_does_not_kill_the_sweep() {
        let cfg = ExpConfig {
            warmup: 500,
            measure: 1_000,
            seed: 0,
            quick: true,
        };
        let mut jobs = Vec::new();
        for i in 0..4 {
            jobs.push(Job::new(format!("ok{i}"), move || {
                run_one(format!("ok{i}"), tiny_net(i as u64), &cfg)
            }));
        }
        jobs.insert(
            2,
            Job::new("boom", || panic!("synthetic failure for the test")),
        );
        let results = run_parallel_results(jobs);
        assert_eq!(results.len(), 5);
        // All non-panicking jobs completed, in order.
        for (i, idx) in [0usize, 1, 3, 4].iter().zip([0usize, 1, 2, 3]) {
            let r = results[*i].as_ref().unwrap();
            assert_eq!(r.label, format!("ok{idx}"));
        }
        let err = results[2].as_ref().unwrap_err();
        assert_eq!(err.label, "boom");
        assert!(err.message.contains("synthetic failure"));
    }

    #[test]
    fn run_parallel_reports_failed_labels() {
        let caught =
            std::panic::catch_unwind(|| run_parallel(vec![Job::new("doomed", || panic!("nope"))]));
        let payload = caught.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("doomed"), "missing label in: {msg}");
    }

    #[test]
    fn empty_jobs_ok() {
        assert!(run_parallel(vec![]).is_empty());
    }

    #[test]
    fn worker_count_honors_rair_threads() {
        // Explicit override wins, clamped to >= 1 and <= jobs.
        assert_eq!(worker_count_from(Some("3"), 10), 3);
        assert_eq!(worker_count_from(Some(" 2 "), 10), 2);
        assert_eq!(worker_count_from(Some("0"), 10), 1);
        assert_eq!(worker_count_from(Some("64"), 5), 5);
        // Garbage falls back to available parallelism (bounded by jobs).
        let fallback = worker_count_from(Some("not-a-number"), 1000);
        assert!(fallback >= 1);
        assert_eq!(worker_count_from(None, 1), 1);
    }
}
