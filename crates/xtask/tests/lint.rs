//! Tests of the determinism lint: scanner correctness (comments, strings,
//! lifetimes, raw strings), every rule firing on a minimal fixture, the
//! `lint: allow` escape hatch, the full workspace staying clean, and the
//! revert-one-satellite regression (putting `HashMap` back into `sweep.rs`
//! must make the lint fail).

use xtask::{lint_source, rule, Finding, RULES};

fn all_rules() -> Vec<&'static xtask::Rule> {
    RULES.iter().collect()
}

fn lint(src: &str) -> Vec<Finding> {
    lint_source("fixture.rs", src, &all_rules())
}

#[test]
fn every_rule_fires_on_a_minimal_fixture() {
    let cases = [
        ("hash-collections", "use std::collections::HashMap;\n"),
        (
            "hash-collections",
            "let s: HashSet<u32> = Default::default();\n",
        ),
        ("os-entropy", "let mut rng = rand::thread_rng();\n"),
        ("os-entropy", "let r = SmallRng::from_entropy();\n"),
        ("wall-clock", "let t0 = std::time::Instant::now();\n"),
        ("wall-clock", "let t = SystemTime::now();\n"),
        (
            "unordered-parallelism",
            "jobs.par_iter().map(run).collect()\n",
        ),
        ("unordered-parallelism", "v.into_par_iter().sum()\n"),
        (
            "unordered-parallelism",
            "for msg in rx.try_iter() { merge(msg); }\n",
        ),
        (
            "unordered-parallelism",
            "while let Ok(m) = rx.try_recv() { apply(m); }\n",
        ),
        (
            "unordered-parallelism",
            "let m = rx.recv_timeout(Duration::from_millis(1));\n",
        ),
        (
            "unordered-parallelism",
            "if handle.is_finished() { results.push(handle.join()); }\n",
        ),
    ];
    for (want, src) in cases {
        let f = lint(src);
        assert_eq!(f.len(), 1, "{src:?} -> {f:?}");
        assert_eq!(f[0].rule, want, "{src:?}");
        assert_eq!(f[0].line, 1);
    }
}

#[test]
fn strings_and_comments_never_fire() {
    let src = r##"
// HashMap in a line comment is fine.
/* HashMap in a /* nested */ block comment is fine. */
/// Doc mentioning thread_rng and Instant is fine.
let s = "HashMap inside a string";
let r = r#"SystemTime inside a raw "string" with quotes"#;
let c = '"'; // char literal holding a quote must not open a string
let esc = "escaped \" quote then HashMap";
"##;
    assert!(lint(src).is_empty(), "{:?}", lint(src));
}

#[test]
fn lifetimes_do_not_confuse_the_char_scanner() {
    // A naive char-literal scanner treats `'a` as an unterminated literal
    // and swallows the rest of the file, hiding the HashMap on line 2.
    let src =
        "fn f<'a>(x: &'a str, s: &'static str) -> &'a str { x }\nuse std::collections::HashMap;\n";
    let f = lint(src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!((f[0].rule, f[0].line), ("hash-collections", 2));
}

#[test]
fn allow_escape_hatch_same_line_and_preceding_line() {
    let trailing = "use std::time::Instant; // lint: allow(wall-clock)\n";
    assert!(lint(trailing).is_empty());

    let preceding = "// lint: allow(wall-clock)\nlet t0 = Instant::now();\n";
    assert!(lint(preceding).is_empty());

    // The allowance is per-rule: it must not silence other rules…
    let wrong_rule = "use std::collections::HashMap; // lint: allow(wall-clock)\n";
    assert_eq!(lint(wrong_rule).len(), 1);

    // …and per-line: line 3 is out of the directive's reach.
    let too_far = "// lint: allow(wall-clock)\n\nlet t0 = Instant::now();\n";
    assert_eq!(lint(too_far).len(), 1);
}

#[test]
fn token_match_is_whole_identifier_only() {
    // Substrings of longer identifiers must not fire.
    let src = "struct MyHashMapLike; fn instant_ish() {} let par_iteration = 3;\n";
    assert!(lint(src).is_empty(), "{:?}", lint(src));
}

#[test]
fn findings_render_with_path_line_and_reason() {
    let f = lint("use std::collections::HashMap;\n");
    let s = f[0].to_string();
    assert!(s.contains("fixture.rs:1"), "{s}");
    assert!(s.contains("hash-collections"), "{s}");
    assert!(s.contains("BTreeMap"), "{s}");
}

#[test]
fn rule_lookup() {
    assert!(rule("os-entropy").is_some());
    assert!(rule("no-such-rule").is_none());
}

#[test]
fn workspace_is_clean() {
    let findings = xtask::lint_workspace(&xtask::workspace_root());
    assert!(
        findings.is_empty(),
        "determinism lint found banned tokens:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Revert-one-satellite check: the PR converted `sweep.rs` from `HashMap`
/// to `BTreeMap`. Undo that conversion textually and the lint must fail —
/// proving the lint actually guards the conversion rather than both
/// changes passing vacuously.
#[test]
fn reverting_the_sweep_btreemap_conversion_fails_the_lint() {
    let path = xtask::workspace_root().join("crates/experiments/src/sweep.rs");
    let src = std::fs::read_to_string(&path).unwrap();
    assert!(src.contains("BTreeMap"), "sweep.rs no longer uses BTreeMap");
    let reverted = src.replace("BTreeMap", "HashMap");
    let findings = lint_source("crates/experiments/src/sweep.rs", &reverted, &all_rules());
    assert!(
        findings.iter().any(|f| f.rule == "hash-collections"),
        "lint missed the reverted HashMap: {findings:?}"
    );
    // And the shipped file, unreverted, is clean under the same rules.
    assert!(lint_source("sweep.rs", &src, &all_rules())
        .iter()
        .all(|f| f.rule != "hash-collections"));
}

/// The function-scoped panic rule: fires only inside listed bodies, stays
/// silent elsewhere in the same file, allows `debug_assert*`, and honors
/// the escape hatch.
#[test]
fn panic_rule_is_function_scoped() {
    let src = r#"
fn helper() {
    let x = opt.unwrap(); // outside the hot path: legal
}
pub(crate) fn sa_band(x: Option<u32>) -> u32 {
    debug_assert!(x.is_some());
    x.unwrap()
}
fn also_fine() {
    panic!("not a hot path");
}
"#;
    let f = xtask::lint_hot_source("fixture.rs", src, &["sa_band"]);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "panic-in-hot-path");
    assert_eq!(f[0].token, "unwrap");
    assert_eq!(f[0].line, 7);
}

#[test]
fn panic_rule_catches_each_family_member() {
    for tok in [
        "unwrap",
        "expect",
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
    ] {
        let src = format!("fn va_band() {{\n    {tok}!(maybe);\n}}\n");
        let f = xtask::lint_hot_source("fixture.rs", &src, &["va_band"]);
        assert_eq!(f.len(), 1, "{tok} missed: {f:?}");
        assert_eq!(f[0].token, tok);
    }
    // The debug_ variants stay legal.
    let src = "fn va_band() {\n    debug_assert!(ok);\n    debug_assert_eq!(a, b);\n}\n";
    assert!(xtask::lint_hot_source("fixture.rs", src, &["va_band"]).is_empty());
}

#[test]
fn panic_rule_escape_hatch_and_strings() {
    let hatched =
        "fn rc_band() {\n    // lint: allow(panic-in-hot-path)\n    assert!(contract);\n}\n";
    assert!(xtask::lint_hot_source("fixture.rs", hatched, &["rc_band"]).is_empty());
    // Tokens in strings and comments inside the body never fire, and
    // braces inside them must not derail the span tracker.
    let noisy = "fn rc_band() {\n    // unwrap in a comment {\n    let s = \"panic! } {\";\n}\nfn after() { x.unwrap(); }\n";
    assert!(xtask::lint_hot_source("fixture.rs", noisy, &["rc_band"]).is_empty());
}

/// Revert-one-satellite check for the panic rule: putting the `.unwrap()`
/// arbitration calls back into `sa_band`/`va_band` must fail the lint.
#[test]
fn reverting_the_band_unwrap_rewrite_fails_the_lint() {
    let path = xtask::workspace_root().join("crates/noc-sim/src/network.rs");
    let src = std::fs::read_to_string(&path).unwrap();
    let hot: Vec<&str> = xtask::HOT_PATHS
        .iter()
        .find(|h| h.file.ends_with("network.rs"))
        .unwrap()
        .functions
        .to_vec();
    // The shipped file is clean…
    assert!(xtask::lint_hot_source("network.rs", &src, &hot).is_empty());
    // …and reintroducing an unwrap inside sa_band is caught.
    let marker = "let Some(w) = arbitrate_rr(&reqs, v, &mut r.sa_in_ptr[in_port]) else {";
    assert!(src.contains(marker), "sa_band rewrite marker missing");
    let reverted = src.replace(
        marker,
        "let Some(w) = Some(arbitrate_rr(&reqs, v, &mut r.sa_in_ptr[in_port]).unwrap()) else {",
    );
    let findings = xtask::lint_hot_source("network.rs", &reverted, &hot);
    assert!(
        findings.iter().any(|f| f.token == "unwrap"),
        "lint missed the reverted unwrap: {findings:?}"
    );
}

#[test]
fn panic_rule_lookup_and_workspace_hot_paths_clean() {
    assert!(xtask::rule("panic-in-hot-path").is_some());
    let findings = xtask::lint_hot_paths(&xtask::workspace_root());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn swallowed_io_flags_discarded_fs_results() {
    let src = "fn cleanup(p: &std::path::Path) {\n    let _ = std::fs::remove_file(p);\n}\n";
    let f = xtask::lint_swallowed_io_source("fixture.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "swallowed-io-error");
    assert_eq!(f[0].line, 2);
    assert!(f[0].token.contains("remove_file"), "{f:?}");
}

#[test]
fn swallowed_io_flags_discarded_writes_and_syncs() {
    for call in [
        "writeln!(out, \"x\")",
        "write!(out, \"x\")",
        "file.write_all(b\"x\")",
        "file.sync_all()",
        "std::fs::rename(a, b)",
        "store.append_durable(p, b\"x\")",
    ] {
        let src = format!("fn f() {{\n    let _ = {call};\n}}\n");
        let f = xtask::lint_swallowed_io_source("fixture.rs", &src);
        assert_eq!(f.len(), 1, "{call} missed: {f:?}");
    }
}

#[test]
fn swallowed_io_allow_hatch_and_non_io_bindings_stay_legal() {
    // The escape hatch on the preceding line suppresses the finding.
    let hatched = "fn f(p: &std::path::Path) {\n    // lint: allow(swallowed-io-error)\n    let _ = std::fs::remove_file(p);\n}\n";
    assert!(xtask::lint_swallowed_io_source("fixture.rs", hatched).is_empty());
    // A named discard is visible in review; only the bare `_` is flagged.
    let named = "fn f(p: &std::path::Path) {\n    let _ignored = std::fs::remove_file(p);\n}\n";
    assert!(xtask::lint_swallowed_io_source("fixture.rs", named).is_empty());
    // Discarding a non-IO result is not this lint's business.
    let benign = "fn f() {\n    let _ = heap.pop();\n    let _ = send(msg);\n}\n";
    assert!(xtask::lint_swallowed_io_source("fixture.rs", benign).is_empty());
    // An IO call in a LATER statement must not attribute backwards.
    let later = "fn f(p: &std::path::Path) {\n    let _ = heap.pop();\n    let r = std::fs::remove_file(p);\n    r.unwrap();\n}\n";
    assert!(xtask::lint_swallowed_io_source("fixture.rs", later).is_empty());
}

#[test]
fn swallowed_io_rule_lookup_and_durability_scopes_clean() {
    assert!(xtask::rule("swallowed-io-error").is_some());
    let findings = xtask::lint_durability_scopes(&xtask::workspace_root());
    assert!(findings.is_empty(), "{findings:?}");
}
