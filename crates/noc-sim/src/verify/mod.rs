//! Static deadlock-freedom and legality verification (Duato's criterion).
//!
//! The runtime watchdog of [`crate::oracle`] detects a deadlock *after* the
//! network has wedged. This module proves, **before a single cycle is
//! simulated**, that a `(SimConfig, RegionMap, RoutingAlgorithm)` triple
//! cannot deadlock and cannot strand a packet:
//!
//! 1. **Escape-CDG acyclicity** — the channel dependency graph over
//!    `(router, port, VC-class)` nodes is built by symbolically enumerating
//!    the routing function via [`RoutingAlgorithm::next_hops`] for every
//!    destination, the *extended* dependencies between escape channels
//!    (escape → adaptive* → escape, Duato's indirect dependencies) are
//!    added, and Tarjan SCC proves the escape subgraph acyclic. A cycle is
//!    reported as a concrete [`Witness::Cycle`] of channels.
//! 2. **Escape connectedness** — every router that can hold a packet for a
//!    destination has a usable escape channel toward it (the escape
//!    subfunction is connected, the second half of Duato's criterion).
//! 3. **Region legality** — every src→dst pair retains a minimal legal
//!    path under any link restriction in force (LBDR connectivity bits,
//!    severed region maps), reported as [`Witness::UnreachablePair`].
//!
//! Message classes never change in flight and all classes share one escape
//! function, so the per-class escape graphs are edge-for-edge isomorphic;
//! the verifier checks the class-0 graph once and the verdict holds for
//! every class (witnesses render with class 0). Adaptive VCs within a port
//! are interchangeable for dependency purposes and collapse to one
//! `Adaptive` channel node per port.
//!
//! [`VerifyConfig`] wires the verifier into `Network::new` with the same
//! debug-on / release-off / environment-variable resolution the invariant
//! oracle uses (`RAIR_VERIFY` instead of `RAIR_ORACLE`); results are cached
//! process-wide so repeated constructions of the same configuration (e.g.
//! proptest loops) verify once.

mod cdg;
mod legality;

use crate::config::SimConfig;
use crate::ids::{MsgClass, NodeId, Port, PORT_EAST, PORT_NORTH, PORT_SOUTH, PORT_WEST};
use crate::region::RegionMap;
use crate::routing::RoutingAlgorithm;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

/// At most this many violations are carried in a report / `SimStats`
/// (the count is unbounded) — a severed mesh yields thousands of
/// unreachable pairs and the first few witnesses tell the whole story.
pub const MAX_RECORDED_VIOLATIONS: usize = 32;

/// Static-verifier toggle, carried in [`SimConfig`].
///
/// `None` fields resolve at `Network::new` time exactly like
/// [`crate::oracle::OracleConfig`]: on in debug builds, off by default in
/// release; the `RAIR_VERIFY` environment variable overrides the
/// build-profile default (`"0"`/empty disables, anything else enables) and
/// an explicit `enabled` beats both.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct VerifyConfig {
    /// Explicit on/off; `None` = resolve from env/build profile.
    pub enabled: Option<bool>,
    /// Panic on any violation; `None` = panic in debug builds only,
    /// record-only (surfaced through `SimStats`) in release.
    pub panic_on_violation: Option<bool>,
}

impl VerifyConfig {
    /// Force-enabled, record-only — what the `repro verify-config`
    /// negative battery uses to collect witnesses without aborting.
    pub fn forced() -> Self {
        Self {
            enabled: Some(true),
            panic_on_violation: Some(false),
        }
    }

    /// Resolve the effective on/off decision (see the type-level docs).
    pub fn resolve_enabled(&self) -> bool {
        if let Some(e) = self.enabled {
            return e;
        }
        match std::env::var("RAIR_VERIFY") {
            Ok(v) => !(v.is_empty() || v == "0"),
            Err(_) => cfg!(debug_assertions),
        }
    }

    /// Resolve the effective panic-on-violation decision.
    pub fn resolve_panic(&self) -> bool {
        self.panic_on_violation.unwrap_or(cfg!(debug_assertions))
    }
}

/// The dependency class of a channel node in the CDG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ChannelClass {
    /// The dimension-order escape VC of one message class.
    Escape(MsgClass),
    /// Any adaptive VC of the port (interchangeable for dependencies).
    Adaptive,
}

/// One channel node of the dependency graph: an output port's VC class at
/// a router — `(router, port, VC-class, dateline lane)`. The lane is
/// always 0 on non-wrapping topologies; on torus/ring each escape class
/// splits into the two dateline lanes (see [`crate::topology`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChannelId {
    pub router: NodeId,
    pub port: Port,
    pub class: ChannelClass,
    pub lane: u8,
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = match self.port {
            PORT_NORTH => "N",
            PORT_SOUTH => "S",
            PORT_EAST => "E",
            PORT_WEST => "W",
            _ => "?",
        };
        match self.class {
            ChannelClass::Escape(c) if self.lane > 0 => {
                write!(f, "r{}:{p}:esc{c}@{}", self.router, self.lane)
            }
            ChannelClass::Escape(c) => write!(f, "r{}:{p}:esc{c}", self.router),
            ChannelClass::Adaptive => write!(f, "r{}:{p}:adp", self.router),
        }
    }
}

/// The concrete evidence attached to a violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Witness {
    /// A dependency cycle among channels — a deadlock configuration.
    Cycle(Vec<ChannelId>),
    /// A source that cannot reach a destination over any legal path.
    UnreachablePair { src: NodeId, dst: NodeId },
    /// A router holding a packet for `dst` with no usable escape channel
    /// (the escape subfunction is disconnected there).
    NoEscape { router: NodeId, dst: NodeId },
    /// A router with no usable output channel at all toward `dst`.
    NoRoute { router: NodeId, dst: NodeId },
    /// The routing function emitted an out-of-mesh or non-minimal hop.
    BadHop {
        router: NodeId,
        dst: NodeId,
        port: Port,
    },
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Witness::Cycle(chs) => {
                write!(f, "cycle ")?;
                for (i, c) in chs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{c}")?;
                }
                if let Some(first) = chs.first() {
                    write!(f, " -> {first}")?;
                }
                Ok(())
            }
            Witness::UnreachablePair { src, dst } => {
                write!(f, "unreachable pair src r{src} -> dst r{dst}")
            }
            Witness::NoEscape { router, dst } => {
                write!(f, "no escape channel at r{router} toward r{dst}")
            }
            Witness::NoRoute { router, dst } => {
                write!(f, "no usable output at r{router} toward r{dst}")
            }
            Witness::BadHop { router, dst, port } => {
                write!(f, "illegal hop port {port} at r{router} toward r{dst}")
            }
        }
    }
}

/// One static-verification failure: which check tripped plus the witness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifyViolation {
    /// Name of the check: `escape-cdg-acyclic`, `escape-connected`,
    /// `region-legality` or `routing-function`.
    pub check: &'static str,
    /// The concrete evidence.
    pub witness: Witness,
}

impl fmt::Display for VerifyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.check, self.witness)
    }
}

/// Machine-readable outcome of one verification run.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Routing algorithm name.
    pub routing: &'static str,
    /// Escape channel nodes in the checked dependency graph.
    pub channels: usize,
    /// Extended escape dependency edges (after dedup across destinations).
    pub dep_edges: usize,
    /// src→dst legality pairs checked.
    pub pairs_checked: usize,
    /// Violations, capped at [`MAX_RECORDED_VIOLATIONS`].
    pub violations: Vec<VerifyViolation>,
    /// Uncapped violation count.
    pub violation_count: u64,
}

impl VerifyReport {
    /// Did every check pass?
    pub fn ok(&self) -> bool {
        self.violation_count == 0
    }
}

/// A configured verification run.
///
/// By default the full criterion is checked: escape-CDG acyclicity,
/// escape connectedness and all-pairs minimal-path legality. The builders
/// model restricted or broken configurations:
///
/// * [`with_link_filter`](Self::with_link_filter) removes physical links
///   (LBDR connectivity bits, severed region maps) — legality and
///   connectedness are then checked over the surviving links;
/// * [`without_escape`](Self::without_escape) disables the escape VCs, so
///   deadlock freedom must come from the adaptive channels alone and the
///   *full* adaptive CDG is required acyclic (the negative battery uses
///   this to force real witness cycles out of fully-adaptive routing).
pub struct Verifier<'a> {
    cfg: &'a SimConfig,
    routing: &'a dyn RoutingAlgorithm,
    link_ok: Option<Box<dyn Fn(NodeId, Port) -> bool + 'a>>,
    pair_ok: Option<Box<dyn Fn(NodeId, NodeId) -> bool + 'a>>,
    use_escape: bool,
    detour_escape: bool,
}

impl<'a> Verifier<'a> {
    pub fn new(cfg: &'a SimConfig, routing: &'a dyn RoutingAlgorithm) -> Self {
        Self {
            cfg,
            routing,
            link_ok: None,
            pair_ok: None,
            use_escape: true,
            detour_escape: false,
        }
    }

    /// Restrict the physical links: `f(router, out_port)` returns whether
    /// the link out of `router` through `out_port` is usable.
    pub fn with_link_filter(mut self, f: impl Fn(NodeId, Port) -> bool + 'a) -> Self {
        self.link_ok = Some(Box::new(f));
        self
    }

    /// Restrict which `(holder, dst)` pairs carry traffic: `f(r, dst)`
    /// returns whether a packet destined to `dst` can ever occupy a VC at
    /// router `r`. Escape-connectedness and legality are only required for
    /// admitted pairs, and only their channels enter the dependency graph.
    ///
    /// The filter must be closed under minimal-path intermediates (every
    /// router a legal packet can traverse is itself admitted) — true for
    /// LBDR-confined regions, where the link filter keeps packets inside
    /// the region and every region node is a legal holder.
    pub fn with_pair_filter(mut self, f: impl Fn(NodeId, NodeId) -> bool + 'a) -> Self {
        self.pair_ok = Some(Box::new(f));
        self
    }

    /// Disable the escape VCs (negative testing): the adaptive CDG itself
    /// must then be acyclic.
    pub fn without_escape(mut self) -> Self {
        self.use_escape = false;
        self
    }

    /// Allow a *non-minimal* escape function (fault-detour routing): the
    /// escape port may point away from the destination, so escape
    /// reachability is established by walking the escape chain (bounded)
    /// instead of the minimal-hop dynamic program. Adaptive hops must stay
    /// minimal — the extended-dependency closure relies on it.
    pub fn with_detour_escape(mut self) -> Self {
        self.detour_escape = true;
        self
    }

    fn link_usable(&self, router: NodeId, port: Port) -> bool {
        self.link_ok.as_ref().is_none_or(|f| f(router, port))
    }

    fn pair_usable(&self, holder: NodeId, dst: NodeId) -> bool {
        self.pair_ok.as_ref().is_none_or(|f| f(holder, dst))
    }

    /// Run every check and collect the report.
    pub fn run(&self) -> VerifyReport {
        cdg::run(self)
    }
}

/// Verify `(cfg, region, routing)` as `Network::new` does, memoizing the
/// result process-wide (keyed by the config digest, region layout and
/// routing name) so construction-heavy tests pay the analysis once.
///
/// Returns the capped violation list plus the uncapped count.
pub fn verify_network_cached(
    cfg: &SimConfig,
    region: &RegionMap,
    routing: &dyn RoutingAlgorithm,
) -> (Vec<VerifyViolation>, u64) {
    static CACHE: Mutex<BTreeMap<u64, (Vec<VerifyViolation>, u64)>> = Mutex::new(BTreeMap::new());
    let mut d = metrics::Digest::new();
    cfg.digest_into(&mut d);
    for b in routing.name().bytes() {
        d.write_u64(b as u64);
    }
    for n in 0..region.len() {
        d.write_u64(region.app_of(n as NodeId) as u64);
    }
    let key = d.finish();
    if let Some(hit) = CACHE.lock().unwrap().get(&key) {
        return hit.clone();
    }
    let report = Verifier::new(cfg, routing).run();
    let value = (report.violations, report.violation_count);
    CACHE.lock().unwrap().insert(key, value.clone());
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{DbarAdaptive, DuatoLocalAdaptive, XyRouting};

    #[test]
    fn shipped_routings_verify_clean() {
        let cfg = SimConfig::table1();
        for routing in [
            &XyRouting as &dyn RoutingAlgorithm,
            &DuatoLocalAdaptive,
            &DbarAdaptive,
        ] {
            let r = Verifier::new(&cfg, routing).run();
            assert!(
                r.ok(),
                "{} failed: {:?}",
                routing.name(),
                r.violations.first()
            );
            assert!(r.channels > 0 && r.dep_edges > 0);
            assert_eq!(r.pairs_checked, 64 * 63);
        }
    }

    #[test]
    fn rectangular_and_multiclass_meshes_verify_clean() {
        let mut cfg = SimConfig::table1_req_reply();
        cfg.width = 8;
        cfg.height = 4;
        let r = Verifier::new(&cfg, &DuatoLocalAdaptive).run();
        assert!(r.ok(), "{:?}", r.violations.first());
    }

    #[test]
    fn escape_disabled_fully_adaptive_is_cyclic() {
        let cfg = SimConfig::table1();
        let r = Verifier::new(&cfg, &DuatoLocalAdaptive)
            .without_escape()
            .run();
        assert!(!r.ok());
        let cyc = r
            .violations
            .iter()
            .find(|v| matches!(v.witness, Witness::Cycle(_)))
            .expect("expected a witness cycle");
        if let Witness::Cycle(chs) = &cyc.witness {
            assert!(chs.len() >= 2);
            // Each consecutive pair must be one mesh hop apart.
            for w in chs.windows(2) {
                let a = cfg.coord_of(w[0].router);
                let b = cfg.coord_of(w[1].router);
                assert_eq!(a.hops_to(b), 1, "witness not a channel chain");
            }
        }
    }

    #[test]
    fn escape_disabled_xy_stays_acyclic() {
        // XY's "adaptive" port is the dimension-order port, an acyclic CDG
        // on its own — escape VCs are not needed for deadlock freedom.
        let cfg = SimConfig::table1();
        let r = Verifier::new(&cfg, &XyRouting).without_escape().run();
        assert!(r.ok(), "{:?}", r.violations.first());
    }

    #[test]
    fn severed_column_yields_unreachable_pairs() {
        // Kill every east-west link crossing between x=3 and x=4.
        let cfg = SimConfig::table1();
        let r = Verifier::new(&cfg, &DuatoLocalAdaptive)
            .with_link_filter(|router, port| {
                let c = cfg.coord_of(router);
                !((c.x == 3 && port == PORT_EAST) || (c.x == 4 && port == PORT_WEST))
            })
            .run();
        assert!(!r.ok());
        assert!(r.violations.iter().any(|v| matches!(
            v.witness,
            Witness::UnreachablePair { .. } | Witness::NoEscape { .. }
        )));
        // 32 sources on each side of the cut can't reach the 32 dsts on
        // the other: the uncapped count sees them all, the report is capped.
        assert!(r.violation_count as usize > MAX_RECORDED_VIOLATIONS);
        assert_eq!(r.violations.len(), MAX_RECORDED_VIOLATIONS);
    }

    #[test]
    fn resolution_mirrors_oracle_semantics() {
        let mut v = VerifyConfig {
            enabled: Some(false),
            ..VerifyConfig::default()
        };
        assert!(!v.resolve_enabled());
        v.enabled = Some(true);
        assert!(v.resolve_enabled());
        assert!(VerifyConfig::forced().resolve_enabled());
        assert!(!VerifyConfig::forced().resolve_panic());
    }

    #[test]
    fn cached_network_entrypoint_is_clean_for_table1() {
        let cfg = SimConfig::table1();
        let region = RegionMap::quadrants(&cfg);
        let (v, count) = verify_network_cached(&cfg, &region, &DbarAdaptive);
        assert!(v.is_empty() && count == 0);
        // Second lookup hits the cache (same result either way).
        let (v2, c2) = verify_network_cached(&cfg, &region, &DbarAdaptive);
        assert!(v2.is_empty() && c2 == 0);
    }
}
