//! Bit-identity of the sharded parallel tick engine.
//!
//! The sharded engine is an execution strategy, not a model change: for any
//! shard count the behavioral digest ([`SimStats::digest`]), the drain
//! state, and the oracle scan count must match the scalar kernel exactly.
//! These tests sweep shard counts over a scheme × routing matrix (scripted
//! open-loop and closed-loop request/reply traffic), pin the word-boundary
//! bitmask regressions at router counts 63/64/65 via non-square meshes, and
//! check the scalar fallbacks (fault timeline, non-idempotent policy).

use noc_sim::arbitration::{StcRankOnline, DEFAULT_RANK_INTERVAL};
use noc_sim::network::Network;
use noc_sim::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Routing {
    Xy,
    Local,
    Dbar,
}

fn any_routing() -> impl Strategy<Value = Routing> {
    prop_oneof![Just(Routing::Xy), Just(Routing::Local), Just(Routing::Dbar)]
}

#[derive(Debug, Clone, Copy)]
enum Policy {
    RoundRobin,
    Age,
}

fn any_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![Just(Policy::RoundRobin), Just(Policy::Age)]
}

fn build_net(
    cfg: &SimConfig,
    events: Vec<(u64, NodeId, NewPacket)>,
    routing: Routing,
    policy: Policy,
    shards: usize,
    seed: u64,
) -> Network {
    let mut cfg = cfg.clone();
    cfg.shards = shards;
    let r: Box<dyn RoutingAlgorithm> = match routing {
        Routing::Xy => Box::new(XyRouting),
        Routing::Local => Box::new(DuatoLocalAdaptive),
        Routing::Dbar => Box::new(DbarAdaptive),
    };
    let p: Box<dyn PriorityPolicy> = match policy {
        Policy::RoundRobin => Box::new(RoundRobin),
        Policy::Age => Box::new(AgeBased),
    };
    let region = RegionMap::single(&cfg);
    Network::new(
        cfg.clone(),
        region,
        r,
        p,
        Box::new(ScriptedSource::new(1, events)),
        seed,
    )
}

/// Run the same scripted workload at every shard count and collect the
/// observables that must be bit-identical to the scalar baseline.
fn digests_across_shards(
    cfg: &SimConfig,
    events: &[(u64, NodeId, NewPacket)],
    routing: Routing,
    policy: Policy,
    seed: u64,
    cycles: u64,
    shard_counts: &[usize],
) -> Vec<(u64, bool, u64, u64)> {
    shard_counts
        .iter()
        .map(|&s| {
            let mut net = build_net(cfg, events.to_vec(), routing, policy, s, seed);
            net.run(cycles);
            (
                net.stats.digest(),
                net.is_drained(),
                net.oracle_scans(),
                net.cycle(),
            )
        })
        .collect()
}

/// Deterministic all-to-all-ish workload: every node sends one long and one
/// short packet to a stride-offset peer, staggered over the warmup cycles.
fn stride_events(cfg: &SimConfig, stride: usize) -> Vec<(u64, NodeId, NewPacket)> {
    let n = cfg.num_nodes();
    let mut events = Vec::new();
    for i in 0..n {
        let dst = ((i + stride) % n) as NodeId;
        if dst == i as NodeId {
            continue;
        }
        events.push((
            (i as u64) % 7,
            i as NodeId,
            NewPacket {
                dst,
                app: 0,
                class: 0,
                size: cfg.long_flits,
                reply: None,
            },
        ));
        events.push((
            3 + (i as u64) % 11,
            i as NodeId,
            NewPacket {
                dst: ((i + 2 * stride + 1) % n) as NodeId,
                app: 0,
                class: 0,
                size: cfg.short_flits,
                reply: None,
            },
        ));
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Tentpole invariant: digests are bit-identical across
    /// `shards ∈ {1, 2, 4, 8}` for random scripted traffic over the
    /// routing × policy matrix, with the invariant oracle segmenting the
    /// run every `check_interval` cycles in debug builds.
    #[test]
    fn digest_identical_across_shard_counts(
        routing in any_routing(),
        policy in any_policy(),
        pairs in proptest::collection::vec((0u16..64, 0u16..64, 1u32..=5u32), 1..32),
        seed in 0u64..64,
    ) {
        let cfg = SimConfig::table1();
        let mut events = Vec::new();
        for (i, &(src, dst, size)) in pairs.iter().enumerate() {
            if src == dst {
                continue;
            }
            events.push((
                (i as u64) * 2,
                src,
                NewPacket { dst, app: 0, class: 0, size, reply: None },
            ));
        }
        prop_assume!(!events.is_empty());
        let got =
            digests_across_shards(&cfg, &events, routing, policy, seed, 3_000, &[1, 2, 4, 8]);
        for (s, g) in [1usize, 2, 4, 8].iter().zip(&got) {
            prop_assert_eq!(g, &got[0], "shards={} diverges from scalar", s);
        }
        prop_assert!(got[0].1, "scalar baseline failed to drain");
    }

    /// Closed-loop request/reply traffic (the L2/memory service model)
    /// exercises the reply-schedule hand-off between the coordinator and
    /// the shard workers; digests must still match at every shard count.
    #[test]
    fn closed_loop_replies_identical_across_shards(
        routing in any_routing(),
        pairs in proptest::collection::vec((0u16..64, 0u16..64), 1..16),
        seed in 0u64..64,
    ) {
        let cfg = SimConfig::table1_req_reply();
        let mut events = Vec::new();
        for (i, &(src, dst)) in pairs.iter().enumerate() {
            if src == dst {
                continue;
            }
            events.push((
                (i as u64) * 3,
                src,
                NewPacket {
                    dst,
                    app: 0,
                    class: 0,
                    size: cfg.short_flits,
                    reply: Some(ReplySpec {
                        service_latency: cfg.l2_latency,
                        size: cfg.long_flits,
                        class: 1,
                    }),
                },
            ));
        }
        prop_assume!(!events.is_empty());
        let got = digests_across_shards(
            &cfg, &events, routing, Policy::RoundRobin, seed, 4_000, &[1, 2, 4, 8],
        );
        for (s, g) in [1usize, 2, 4, 8].iter().zip(&got) {
            prop_assert_eq!(g, &got[0], "shards={} diverges from scalar", s);
        }
        prop_assert!(got[0].1, "scalar baseline failed to drain");
    }
}

/// Word-boundary regressions for the u64 activity bitmasks: router counts
/// 63 (9×7), 64 (8×8, exactly one full word), and 65 (13×5, one bit into
/// the second word) via non-square meshes, compared scalar vs 4 shards.
/// Shard bands straddle the word boundary in each case.
#[test]
fn mask_word_boundaries_63_64_65() {
    for (w, h) in [(9u8, 7u8), (8, 8), (13, 5)] {
        let mut cfg = SimConfig::table1();
        cfg.width = w;
        cfg.height = h;
        cfg.validate().expect("non-square config must validate");
        let events = stride_events(&cfg, cfg.width as usize + 1);
        for routing in [Routing::Xy, Routing::Local, Routing::Dbar] {
            let got = digests_across_shards(
                &cfg,
                &events,
                routing,
                Policy::RoundRobin,
                7,
                3_000,
                &[1, 2, 4, 8],
            );
            for (s, g) in [1usize, 2, 4, 8].iter().zip(&got) {
                assert_eq!(
                    g,
                    &got[0],
                    "{w}x{h} ({} routers) shards={s} diverges from scalar",
                    cfg.num_nodes()
                );
            }
            assert!(got[0].1, "{w}x{h} scalar baseline failed to drain");
        }
    }
}

/// `force_exhaustive` (the skip-elision audit mode) must compose with
/// sharding: every router ticks every cycle in every worker, and the digest
/// still matches the scalar exhaustive run.
#[test]
fn force_exhaustive_identical_across_shards() {
    let cfg = SimConfig::table1();
    let events = stride_events(&cfg, 9);
    let run = |shards: usize| {
        let mut net = build_net(&cfg, events.clone(), Routing::Dbar, Policy::Age, shards, 11);
        net.set_force_exhaustive(true);
        net.run(2_000);
        (net.stats.digest(), net.is_drained(), net.oracle_scans())
    };
    let base = run(1);
    for s in [2, 4, 8] {
        assert_eq!(run(s), base, "exhaustive shards={s} diverges");
    }
    assert!(base.1, "exhaustive scalar baseline failed to drain");
}

/// A fault timeline threads per-cycle global state (link ARQ, reroute)
/// through the whole mesh, so the engine must fall back to scalar: the
/// digest with `shards = 4` equals the `shards = 1` run exactly.
#[test]
fn fault_timeline_forces_scalar_fallback() {
    let mut cfg = SimConfig::table1();
    cfg.fault.transient_ber = 1e-3;
    cfg.fault.seed = 42;
    let events = stride_events(&cfg, 5);
    let run = |shards: usize| {
        let mut net = build_net(
            &cfg,
            events.clone(),
            Routing::Xy,
            Policy::RoundRobin,
            shards,
            3,
        );
        assert_eq!(
            net.effective_shards(),
            1,
            "fault timeline must force the scalar engine"
        );
        net.run(4_000);
        (net.stats.digest(), net.is_drained())
    };
    assert_eq!(run(4), run(1));
}

/// A non-idempotent priority policy (here `StcRankOnline`, which samples
/// occupancy across routers in visit order behind a lock) must also force
/// the scalar fallback — concurrent workers would interleave its
/// observations nondeterministically.
#[test]
fn non_idempotent_policy_forces_scalar_fallback() {
    let cfg = SimConfig::table1();
    let events = stride_events(&cfg, 3);
    let run = |shards: usize| {
        let mut cfg = cfg.clone();
        cfg.shards = shards;
        let mut net = Network::new(
            cfg.clone(),
            RegionMap::single(&cfg),
            Box::new(XyRouting),
            Box::new(StcRankOnline::new(1, 64, DEFAULT_RANK_INTERVAL)),
            Box::new(ScriptedSource::new(1, events.clone())),
            17,
        );
        assert_eq!(
            net.effective_shards(),
            1,
            "non-idempotent policy must force the scalar engine"
        );
        net.run(3_000);
        (net.stats.digest(), net.is_drained())
    };
    assert_eq!(run(8), run(1));
}

/// Shard counts clamp to the router count; absurd values still run and
/// still match the scalar digest.
#[test]
fn shard_count_clamps_to_router_count() {
    let cfg = SimConfig::table1();
    let events = stride_events(&cfg, 13);
    let net = build_net(
        &cfg,
        events.clone(),
        Routing::Xy,
        Policy::RoundRobin,
        1_000,
        5,
    );
    assert_eq!(net.effective_shards(), cfg.num_nodes());
    let got = digests_across_shards(
        &cfg,
        &events,
        Routing::Xy,
        Policy::RoundRobin,
        5,
        2_000,
        &[1, 1_000],
    );
    assert_eq!(got[1], got[0], "clamped shard count diverges from scalar");
}
