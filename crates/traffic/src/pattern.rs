//! Synthetic destination patterns (Dally & Towles \[5\]): uniform random,
//! transpose, bit complement and hotspot, plus the region-constrained
//! variants used by the paper's RNoC scenarios.

use noc_sim::config::SimConfig;
use noc_sim::ids::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A destination-selection pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// Uniform over all nodes except the source.
    UniformRandom,
    /// Uniform over the given node set (minus the source) — intra-region
    /// uniform random traffic.
    UniformWithin(Vec<NodeId>),
    /// Uniform over the complement of the given node set — inter-region
    /// uniform random traffic from a region's point of view.
    UniformOutside(Vec<NodeId>),
    /// Transpose: (x, y) → (y, x). Diagonal nodes have no destination.
    Transpose,
    /// Bit complement: node *i* → node *N−1−i*.
    BitComplement,
    /// Hotspot: with probability `bias` the destination is drawn uniformly
    /// from the hotspot node set, otherwise uniformly from the whole chip.
    /// (A pure hotspot with `bias = 1` saturates the hotspot tiles'
    /// ejection ports at any interesting offered load, so hotspot traffic
    /// is conventionally defined as a biased overlay on uniform random.)
    Hotspot { spots: Vec<NodeId>, bias: f64 },
}

impl Pattern {
    /// The four chip-center hotspot nodes used as the default HS target set
    /// on an even-sized mesh.
    pub fn center_hotspots(cfg: &SimConfig) -> Vec<NodeId> {
        let (mx, my) = (cfg.width / 2, cfg.height / 2);
        [(mx - 1, my - 1), (mx, my - 1), (mx - 1, my), (mx, my)]
            .into_iter()
            .map(|(x, y)| cfg.node_at(noc_sim::ids::Coord { x, y }))
            .collect()
    }

    /// Draw a destination for a packet sourced at `src`. Returns `None`
    /// when the pattern defines no destination for this source (transpose
    /// diagonal, or a singleton set containing only `src`).
    pub fn dest(&self, cfg: &SimConfig, src: NodeId, rng: &mut SmallRng) -> Option<NodeId> {
        match self {
            Pattern::UniformRandom => {
                let n = cfg.num_nodes() as NodeId;
                if n < 2 {
                    return None;
                }
                let d = rng.random_range(0..n - 1);
                Some(if d >= src { d + 1 } else { d })
            }
            Pattern::UniformWithin(set) => pick_excluding(set, src, rng),
            Pattern::UniformOutside(set) => {
                // Uniform over all nodes not in `set` and != src. The
                // excluded set is a region; build the complement on the fly
                // by rejection (regions are large fractions, so bound the
                // attempts and fall back to a scan).
                let n = cfg.num_nodes() as NodeId;
                for _ in 0..16 {
                    let d = rng.random_range(0..n);
                    if d != src && !set.contains(&d) {
                        return Some(d);
                    }
                }
                let outside: Vec<NodeId> =
                    (0..n).filter(|d| *d != src && !set.contains(d)).collect();
                pick_excluding(&outside, src, rng)
            }
            Pattern::Transpose => {
                let c = cfg.coord_of(src);
                if c.x == c.y || cfg.width != cfg.height {
                    return None;
                }
                Some(cfg.node_at(noc_sim::ids::Coord { x: c.y, y: c.x }))
            }
            Pattern::BitComplement => {
                let n = cfg.num_nodes() as NodeId;
                let d = n - 1 - src;
                (d != src).then_some(d)
            }
            Pattern::Hotspot { spots, bias } => {
                if rng.random_bool(*bias) {
                    pick_excluding(spots, src, rng)
                } else {
                    Pattern::UniformRandom.dest(cfg, src, rng)
                }
            }
        }
    }

    /// Fold the pattern (variant discriminant plus full payload) into `d` —
    /// collision-proof cache keys, unlike a `Debug` rendering.
    pub fn digest_into(&self, d: &mut metrics::Digest) {
        let write_set = |d: &mut metrics::Digest, set: &[NodeId]| {
            d.write_u64(set.len() as u64);
            for &n in set {
                d.write_u64(n as u64);
            }
        };
        match self {
            Pattern::UniformRandom => d.write_u64(0),
            Pattern::UniformWithin(set) => {
                d.write_u64(1);
                write_set(d, set);
            }
            Pattern::UniformOutside(set) => {
                d.write_u64(2);
                write_set(d, set);
            }
            Pattern::Transpose => d.write_u64(3),
            Pattern::BitComplement => d.write_u64(4),
            Pattern::Hotspot { spots, bias } => {
                d.write_u64(5);
                write_set(d, spots);
                d.write_f64(*bias);
            }
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Pattern::UniformRandom => "UR",
            Pattern::UniformWithin(_) => "UR-intra",
            Pattern::UniformOutside(_) => "UR-inter",
            Pattern::Transpose => "TP",
            Pattern::BitComplement => "BC",
            Pattern::Hotspot { .. } => "HS",
        }
    }
}

/// Uniform pick from `set`, excluding `src`; `None` if empty after exclusion.
fn pick_excluding(set: &[NodeId], src: NodeId, rng: &mut SmallRng) -> Option<NodeId> {
    let has_src = set.contains(&src);
    let n = set.len() - usize::from(has_src);
    if n == 0 {
        return None;
    }
    let mut idx = rng.random_range(0..n);
    if has_src {
        // Skip over the source's position.
        let src_pos = set.iter().position(|&x| x == src).unwrap();
        if idx >= src_pos {
            idx += 1;
        }
    }
    Some(set[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> SimConfig {
        SimConfig::table1()
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_never_self() {
        let c = cfg();
        let mut r = rng();
        for src in [0u16, 17, 63] {
            for _ in 0..200 {
                let d = Pattern::UniformRandom.dest(&c, src, &mut r).unwrap();
                assert_ne!(d, src);
                assert!((d as usize) < c.num_nodes());
            }
        }
    }

    #[test]
    fn uniform_covers_all_destinations() {
        let c = cfg();
        let mut r = rng();
        let mut seen = [false; 64];
        for _ in 0..5000 {
            seen[Pattern::UniformRandom.dest(&c, 0, &mut r).unwrap() as usize] = true;
        }
        assert!(seen[1..].iter().all(|&b| b), "some destination never drawn");
        assert!(!seen[0]);
    }

    #[test]
    fn transpose_mirrors_coordinates() {
        let c = cfg();
        let mut r = rng();
        // (1,2) = node 17 → (2,1) = node 10.
        assert_eq!(Pattern::Transpose.dest(&c, 17, &mut r), Some(10));
        // Diagonal (3,3) = 27 has no transpose destination.
        assert_eq!(Pattern::Transpose.dest(&c, 27, &mut r), None);
    }

    #[test]
    fn bit_complement_is_involution() {
        let c = cfg();
        let mut r = rng();
        for src in 0..64u16 {
            let d = Pattern::BitComplement.dest(&c, src, &mut r).unwrap();
            assert_eq!(Pattern::BitComplement.dest(&c, d, &mut r), Some(src));
            assert_eq!(d, 63 - src);
        }
    }

    #[test]
    fn within_stays_inside_set() {
        let c = cfg();
        let mut r = rng();
        let set: Vec<NodeId> = vec![3, 4, 5, 6];
        for _ in 0..100 {
            let d = Pattern::UniformWithin(set.clone())
                .dest(&c, 4, &mut r)
                .unwrap();
            assert!(set.contains(&d));
            assert_ne!(d, 4);
        }
        // Source outside the set: all four members reachable.
        let d = Pattern::UniformWithin(set.clone())
            .dest(&c, 60, &mut r)
            .unwrap();
        assert!(set.contains(&d));
    }

    #[test]
    fn singleton_set_with_self_is_empty() {
        let c = cfg();
        let mut r = rng();
        assert_eq!(Pattern::UniformWithin(vec![9]).dest(&c, 9, &mut r), None);
    }

    #[test]
    fn outside_avoids_set() {
        let c = cfg();
        let mut r = rng();
        let region: Vec<NodeId> = (0..32).collect();
        for _ in 0..200 {
            let d = Pattern::UniformOutside(region.clone())
                .dest(&c, 5, &mut r)
                .unwrap();
            assert!(d >= 32, "dest {d} inside excluded region");
        }
    }

    #[test]
    fn pure_hotspot_targets_only_hotspots() {
        let c = cfg();
        let mut r = rng();
        let spots = Pattern::center_hotspots(&c);
        assert_eq!(spots.len(), 4);
        let hs = Pattern::Hotspot {
            spots: spots.clone(),
            bias: 1.0,
        };
        for _ in 0..100 {
            let d = hs.dest(&c, 0, &mut r).unwrap();
            assert!(spots.contains(&d));
        }
        // A hotspot node itself never targets itself.
        for _ in 0..50 {
            let d = hs.dest(&c, spots[0], &mut r).unwrap();
            assert_ne!(d, spots[0]);
        }
    }

    #[test]
    fn biased_hotspot_mixes_with_uniform() {
        let c = cfg();
        let mut r = rng();
        let spots = Pattern::center_hotspots(&c);
        let hs = Pattern::Hotspot {
            spots: spots.clone(),
            bias: 0.5,
        };
        let mut hits = 0u32;
        let n = 4000;
        for _ in 0..n {
            if spots.contains(&hs.dest(&c, 0, &mut r).unwrap()) {
                hits += 1;
            }
        }
        // 50% biased, plus ~6% of the uniform remainder also lands on the spots.
        let frac = hits as f64 / n as f64;
        assert!((0.48..0.62).contains(&frac), "hotspot fraction {frac}");
    }

    #[test]
    fn labels() {
        assert_eq!(Pattern::UniformRandom.label(), "UR");
        assert_eq!(Pattern::Transpose.label(), "TP");
        assert_eq!(Pattern::BitComplement.label(), "BC");
        assert_eq!(
            Pattern::Hotspot {
                spots: vec![0],
                bias: 0.5
            }
            .label(),
            "HS"
        );
    }
}
