//! Saturation-load measurement.
//!
//! The paper expresses every injection rate as a percentage of an
//! application's *saturation load* (e.g. "App 1 at 90 % of its saturation
//! load"). The saturation load depends on the traffic pattern, the region
//! layout and the routing algorithm, so we measure it the way network
//! architects do: binary-search the offered load for the knee where the
//! network stops admitting the offered traffic (source queues start growing
//! without bound).

use crate::scenario::{AppSpec, Scenario, AVG_PACKET_FLITS};
use noc_sim::arbitration::RoundRobin;
use noc_sim::config::SimConfig;
use noc_sim::ids::AppId;
use noc_sim::network::Network;
use noc_sim::region::RegionMap;
use noc_sim::routing::RoutingAlgorithm;

/// Parameters for a saturation search.
#[derive(Debug, Clone, Copy)]
pub struct SaturationProbe {
    /// Warmup cycles per trial.
    pub warmup: u64,
    /// Measurement cycles per trial.
    pub measure: u64,
    /// A trial is *stable* when the end-of-run source backlog is below this
    /// fraction of the packets offered during the whole trial.
    pub backlog_fraction: f64,
    /// A trial is also *unstable* once mean total packet latency exceeds
    /// this multiple of the zero-load latency. The default is a loose 8x
    /// guard: the primary criterion is admission (backlog), which matches
    /// the paper's near-knee "90% of saturation" operating points; tighten
    /// this for a conservative latency-knee definition instead.
    pub latency_blowup: f64,
    /// Binary-search iterations (each halves the interval).
    pub iters: u32,
    /// RNG seed for the trials.
    pub seed: u64,
}

impl Default for SaturationProbe {
    fn default() -> Self {
        Self {
            warmup: 2_000,
            measure: 8_000,
            backlog_fraction: 0.03,
            latency_blowup: 8.0,
            iters: 7,
            seed: 0xA11CE,
        }
    }
}

impl SaturationProbe {
    /// A faster, coarser probe for tests and quick mode.
    pub fn quick() -> Self {
        Self {
            warmup: 500,
            measure: 3_000,
            iters: 5,
            ..Self::default()
        }
    }

    /// Fold every parameter that affects the measured saturation value into
    /// `d` — part of the collision-proof persistent-cache key.
    pub fn digest_into(&self, d: &mut metrics::Digest) {
        d.write_u64(self.warmup);
        d.write_u64(self.measure);
        d.write_f64(self.backlog_fraction);
        d.write_f64(self.latency_blowup);
        d.write_u64(self.iters as u64);
        d.write_u64(self.seed);
    }
}

/// Generic saturation search: `build(rate)` constructs a fresh network
/// offering `rate` flits/cycle/node over `active_nodes` nodes. Returns the
/// highest stable rate found in `(0, max_rate]`.
pub fn find_saturation(
    probe: &SaturationProbe,
    active_nodes: usize,
    max_rate: f64,
    mut build: impl FnMut(f64) -> Network,
) -> f64 {
    // Zero-load latency reference for the latency-knee criterion.
    let zero_load = {
        let mut net = build((0.02 * max_rate).max(1e-3));
        net.run_warmup_measure(probe.warmup, probe.measure);
        net.stats
            .recorder
            .overall_mean(metrics::LatencyKind::Total)
            .unwrap_or(20.0)
    };
    let stable = |net: &mut Network, rate: f64| -> bool {
        let total_cycles = probe.warmup + probe.measure;
        net.run_warmup_measure(probe.warmup, probe.measure.max(total_cycles - probe.warmup));
        let offered_packets = rate / AVG_PACKET_FLITS * active_nodes as f64 * total_cycles as f64;
        let backlog_ok = (net.total_backlog() as f64) < probe.backlog_fraction * offered_packets;
        let latency_ok = net
            .stats
            .recorder
            .overall_mean(metrics::LatencyKind::Total)
            .is_some_and(|l| l <= probe.latency_blowup * zero_load);
        backlog_ok && latency_ok
    };
    let mut lo = 0.0_f64;
    let mut hi = max_rate;
    // Establish that hi is unstable; if even max_rate is stable, return it.
    {
        let mut net = build(hi);
        if stable(&mut net, hi) {
            return hi;
        }
    }
    for _ in 0..probe.iters {
        let mid = 0.5 * (lo + hi);
        let mut net = build(mid);
        if stable(&mut net, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Saturation load of one application running *alone* with its configured
/// traffic mix (all other applications silent), under round-robin
/// arbitration and the given routing algorithm — the per-application
/// reference the paper's "% of saturation load" figures are based on.
pub fn app_saturation(
    probe: &SaturationProbe,
    cfg: &SimConfig,
    region: &RegionMap,
    app: AppId,
    spec: &AppSpec,
    routing: impl Fn() -> Box<dyn RoutingAlgorithm>,
) -> f64 {
    let active = region.nodes_of(app).len();
    assert!(active > 0, "app {app} has no nodes");
    find_saturation(probe, active, 1.0, |rate| {
        let mut specs: Vec<Option<AppSpec>> = vec![None; region.num_apps()];
        specs[app as usize] = Some(AppSpec {
            rate_flits: rate,
            ..spec.clone()
        });
        let scenario = Scenario::new(cfg, region, specs);
        Network::new(
            cfg.clone(),
            region.clone(),
            routing(),
            Box::new(RoundRobin),
            Box::new(scenario),
            probe.seed,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::routing::DuatoLocalAdaptive;

    #[test]
    fn intra_region_saturation_in_plausible_range() {
        let cfg = SimConfig::table1();
        let region = RegionMap::halves(&cfg);
        let probe = SaturationProbe::quick();
        let sat = app_saturation(&probe, &cfg, &region, 0, &AppSpec::intra_only(0.0), || {
            Box::new(DuatoLocalAdaptive)
        });
        // Intra-half UR on a 4x8 region: saturation well inside (0.1, 1.0).
        assert!(
            (0.1..0.95).contains(&sat),
            "implausible saturation load {sat}"
        );
    }

    #[test]
    fn monotone_binary_search_respects_bounds() {
        // A fake criterion via a real network that is always stable at tiny
        // rates: the search must return a rate within (0, max].
        let cfg = SimConfig::table1();
        let region = RegionMap::single(&cfg);
        let probe = SaturationProbe {
            warmup: 200,
            measure: 500,
            iters: 3,
            ..SaturationProbe::default()
        };
        let sat = app_saturation(&probe, &cfg, &region, 0, &AppSpec::intra_only(0.0), || {
            Box::new(DuatoLocalAdaptive)
        });
        assert!(sat > 0.0 && sat <= 1.0);
    }
}
