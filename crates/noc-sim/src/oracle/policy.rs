//! Policy-state invariants: the DPA occupancy registers and any
//! policy-specific self-check ([`PriorityPolicy::check_invariant`]).
//!
//! [`PriorityPolicy::check_invariant`]: crate::arbitration::PriorityPolicy::check_invariant

use super::{Checker, OracleViolation};
use crate::network::Network;

/// After the state-update phase every router's `ovc_native`/`ovc_foreign`
/// registers must equal a fresh occupancy recount — both for updated
/// routers (just recomputed) and for skipped ones (unchanged occupancy is
/// exactly the skip condition). On top, the active policy gets to verify
/// the state it maintains (e.g. RAIR checks the DPA bit is a fixed point of
/// its own hysteresis transition, the soundness condition of the
/// skip-if-idempotent optimization).
#[derive(Debug, Default)]
pub struct PolicyInvariant;

impl Checker for PolicyInvariant {
    fn name(&self) -> &'static str {
        "policy-invariant"
    }

    fn end_of_cycle(&mut self, net: &Network, out: &mut Vec<OracleViolation>) {
        for r in &net.routers {
            let (native, foreign) = r.count_occupancy();
            if (native, foreign) != (r.ovc_native, r.ovc_foreign) {
                out.push(OracleViolation {
                    cycle: net.cycle(),
                    checker: self.name(),
                    router: Some(r.id),
                    detail: format!(
                        "OVC registers ({}, {}) drifted from recount ({native}, {foreign})",
                        r.ovc_native, r.ovc_foreign
                    ),
                });
            }
            if let Some(detail) = net.policy().check_invariant(r) {
                out.push(OracleViolation {
                    cycle: net.cycle(),
                    checker: self.name(),
                    router: Some(r.id),
                    detail,
                });
            }
        }
    }
}
