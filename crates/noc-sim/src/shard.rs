//! Sharded parallel tick engine with deterministic merge.
//!
//! ## Execution model
//!
//! The network is partitioned into `effective_shards()` contiguous *bands*
//! of routers (and their NIs — `concentration` nodes per router on a
//! concentrated mesh), each owned by a persistent worker thread for
//! the duration of a *segment* (a span of cycles bounded by the oracle's
//! end-of-cycle scan schedule). Each cycle:
//!
//! 1. The **coordinator** (the caller's thread) consumes last cycle's
//!    ejected flits (latency recording, reply generation — sequential,
//!    exactly the scalar order), asks the traffic source for this cycle's
//!    packets in ascending node order (packet ids and RNG draws are
//!    order-sensitive), and routes last cycle's boundary flits/credits plus
//!    the fresh packets to their owning bands over per-band channels.
//! 2. Each **worker** runs the full reverse-dataflow pipeline over its band
//!    — deliver, SA (+ST), VA, RC, injection, state update — using the
//!    shared band-scoped phase functions of [`crate::network`]. Flits that
//!    cross a band boundary, returned credits, ejected flits, buffered
//!    oracle events and stat deltas go into a [`PhaseOut`] sink.
//! 3. The coordinator receives one sink per band **in band-index order**
//!    (plain blocking `recv` per band — a fixed reduction order, never a
//!    racy first-come drain) and merges: queues are concatenated in band
//!    order (bands are contiguous and ascending, so concatenation equals
//!    the scalar engine's single ascending sweep), counters are summed, and
//!    oracle events are replayed band by band.
//!
//! Determinism therefore never depends on thread scheduling: every
//! cross-band interaction funnels through the coordinator's fixed-order
//! merge, and each band's internal work is sequential. `SimStats::digest`
//! is bit-identical to the scalar engine at every shard count (asserted by
//! `tests/sharded.rs` across schemes, routings and shard counts).
//!
//! ## Fast-forward
//!
//! Workers report an *idle span* with every cycle: whether their band is
//! quiescent (no occupied VC, no dirty router), whether their NI backlogs
//! are empty, and the earliest pending reply. When every band is idle, no
//! traffic is in flight between bands and the source promises silence, the
//! coordinator merges the per-shard spans into one global jump — the
//! sharded analogue of the scalar engine's idle fast-forward — without
//! waking a single worker. Between segments the scalar fast-forward runs
//! as usual.
//!
//! ## Scope
//!
//! Configurations that thread per-cycle global state through the mesh
//! (analysis instrumentation, fault timelines, injected frozen-allocator
//! faults) fall back to the scalar engine via
//! [`Network::effective_shards`]; link traversal then always takes exactly
//! one cycle, which the workers assert.

use crate::arbitration::PriorityPolicy;
use crate::config::SimConfig;
use crate::flit::PacketInfo;
use crate::ids::{NodeId, Port};
use crate::network::{
    replay_notes, InFlight, Network, OracleNote, PhaseOut, ReplySchedule, SaCand, VaReq,
};
use crate::node::Node;
use crate::region::RegionMap;
use crate::router::Router;
use crate::routing::RoutingAlgorithm;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Everything one band needs to execute one cycle.
struct CycleCmd {
    cycle: u64,
    /// Credits returned to this band's routers (global indices).
    credits: Vec<(usize, Port, usize)>,
    /// Flits arriving at this band's routers this cycle (global indices).
    arrivals: Vec<InFlight>,
    /// Replies this band's NIs must schedule (from last cycle's ejects).
    replies: Vec<ReplySchedule>,
    /// Freshly generated packets for this band's NIs, ascending.
    enqueues: Vec<(u32, PacketInfo)>,
    /// Full previous-cycle congestion view (adaptive routing reads remote
    /// entries).
    congestion: Vec<u16>,
}

/// One band's per-cycle output.
struct ShardOut {
    out: PhaseOut,
    /// The band's slice of the end-of-cycle congestion view.
    congestion: Vec<u16>,
    /// No occupied VC and no dirty router anywhere in the band.
    quiescent: bool,
    /// Every NI backlog in the band is empty.
    backlog_empty: bool,
    /// Earliest pending NI reply in the band, if any.
    next_reply: Option<u64>,
}

enum ShardMsg {
    Cycle(Box<ShardOut>),
    /// Sent once when the command channel closes: the band's state comes
    /// home for reassembly.
    Done(Vec<Router>, Vec<Node>),
}

/// Per-band idle information retained between cycles for the merged jump.
struct IdleInfo {
    quiescent: bool,
    backlog_empty: bool,
    next_reply: Option<u64>,
}

struct WorkerCfg<'a> {
    cfg: &'a SimConfig,
    region: &'a RegionMap,
    routing: &'a dyn RoutingAlgorithm,
    policy: &'a dyn PriorityPolicy,
    base: usize,
    num_apps: usize,
    record_notes: bool,
    force_exhaustive: bool,
    may_skip_updates: bool,
}

/// A worker owns one contiguous band of routers and NIs and runs the full
/// pipeline over it each commanded cycle. Exits (returning its state) when
/// the command channel closes.
fn worker_loop(
    w: &WorkerCfg<'_>,
    mut routers: Vec<Router>,
    mut nodes: Vec<Node>,
    rx: &Receiver<CycleCmd>,
    tx: &Sender<ShardMsg>,
) {
    let base = w.base;
    // Nodes are banded alongside their router: `concentration` nodes per
    // router, so the band's first node is `base * concentration`.
    let node_base = base * w.cfg.concentration();
    let mut sa_scratch: Vec<SaCand> = Vec::new();
    let mut va_scratch: Vec<VaReq> = Vec::new();
    while let Ok(cmd) = rx.recv() {
        let cycle = cmd.cycle;
        let mut out = PhaseOut::new(w.num_apps, w.record_notes);
        // Deliver: credits first (they free space SA may use this cycle).
        for (r, port, vc) in cmd.credits {
            routers[r - base].return_credit(port, vc);
        }
        for a in &cmd.arrivals {
            debug_assert_eq!(
                a.arrive, cycle,
                "sharded engine requires single-cycle links (no fault state)"
            );
            let newly = Network::apply_arrival(w.cfg, &mut routers[a.dst_router - base], a);
            if out.record_notes {
                let id = a.dst_router as NodeId;
                out.notes.push(OracleNote::Arrival {
                    router: id,
                    port: a.in_port,
                    vc: a.vc,
                    flit: a.flit,
                });
                if newly {
                    out.notes.push(OracleNote::Occupancy {
                        router: id,
                        port: a.in_port,
                        vc: a.vc,
                        occupied: true,
                    });
                }
            }
        }
        for rs in &cmd.replies {
            nodes[rs.node - node_base]
                .schedule_reply(rs.ready, rs.id, rs.dst, rs.app, rs.class, rs.size);
        }
        Network::sa_band(
            w.cfg,
            w.policy,
            &mut routers,
            base,
            cycle,
            w.force_exhaustive,
            None,
            None,
            None,
            &mut sa_scratch,
            &mut out,
        );
        Network::va_band(
            w.cfg,
            w.region,
            w.routing,
            w.policy,
            &cmd.congestion,
            &mut routers,
            w.force_exhaustive,
            &mut va_scratch,
            &mut out.router_cycles_skipped,
        );
        Network::rc_band(
            w.cfg,
            w.routing,
            &mut routers,
            base,
            w.force_exhaustive,
            None,
            &mut out.router_cycles_skipped,
        );
        Network::inject_band(
            w.cfg,
            &mut nodes,
            &mut routers,
            base,
            cycle,
            &cmd.enqueues,
            None,
            &mut out,
        );
        // Skipped routers keep their previous congestion export.
        let mut cong_band = cmd.congestion[base..base + routers.len()].to_vec();
        Network::update_band(
            w.cfg,
            w.policy,
            &mut routers,
            &mut cong_band,
            w.may_skip_updates,
            cycle,
            None,
            &mut out.state_updates_skipped,
        );
        let quiescent = routers.iter().all(|r| r.occ_vcs == 0 && !r.occ_dirty);
        let mut backlog_empty = true;
        let mut next_reply: Option<u64> = None;
        for n in &nodes {
            if n.backlog() > 0 {
                backlog_empty = false;
            }
            if let Some(r) = n.next_reply_ready() {
                next_reply = Some(next_reply.map_or(r, |c| c.min(r)));
            }
        }
        if tx
            .send(ShardMsg::Cycle(Box::new(ShardOut {
                out,
                congestion: cong_band,
                quiescent,
                backlog_empty,
                next_reply,
            })))
            .is_err()
        {
            break; // coordinator gone (panic unwinding) — stop quietly
        }
    }
    let _ = tx.send(ShardMsg::Done(routers, nodes));
}

/// Run `cycles` cycles on the sharded engine. Digest-equivalent to
/// [`Network::run_scalar`]; see the module docs for the argument.
pub(crate) fn run_sharded(net: &mut Network, cycles: u64) {
    let end = net.cycle() + cycles;
    while net.cycle() < end {
        // Between segments the scalar idle fast-forward applies unchanged.
        if let Some(target) = net.fast_forward_target(end) {
            net.fast_forward_to(target);
            continue;
        }
        // A segment ends right after the next oracle scan cycle, so the
        // scan runs against fully reassembled state; without an oracle the
        // whole window is one segment.
        let seg_start = net.cycle();
        let stop = match net.oracle_check_interval() {
            Some(k) => end.min(seg_start.next_multiple_of(k) + 1),
            None => end,
        };
        run_segment(net, stop);
    }
}

fn run_segment(net: &mut Network, stop: u64) {
    let num_shards = net.effective_shards();
    let n = net.routers.len();
    let chunk = n.div_ceil(num_shards);
    // Router bands come from the topology (uniform `chunk`-sized spans of
    // the row-major router order, so `router / chunk` routes work to its
    // band); each band also owns the `concentration` nodes per router.
    let bounds = crate::topology::contiguous_bands(&net.cfg, num_shards);
    let num_bands = bounds.len();
    let conc = net.cfg.concentration();
    let num_apps = net.stats.injected_packets.len();
    let record_notes = net.oracle.is_some();
    let force_exhaustive = net.force_exhaustive;
    let may_skip_updates = !force_exhaustive && net.policy_idempotent;
    let ff_ok = net.fast_forward && !force_exhaustive && net.policy_idempotent;
    let seg_start = net.cycle();

    // Take the per-band state and the pending queues; everything flows back
    // at segment end.
    let routers_owned = std::mem::take(&mut net.routers);
    let nodes_owned = std::mem::take(&mut net.nodes);
    let mut pend_inflight = std::mem::take(&mut net.in_flight);
    let mut pend_credits = std::mem::take(&mut net.credit_q);
    let mut pend_ejects = std::mem::take(&mut net.eject_q);

    // Disjoint field borrows: shared config/algorithms for the workers,
    // mutable global state for the coordinator.
    let cfg = &net.cfg;
    let region = &net.region;
    let routing: &dyn RoutingAlgorithm = &*net.routing;
    let policy: &dyn PriorityPolicy = &*net.policy;
    let source = &mut net.source;
    let stats = &mut net.stats;
    let oracle = &mut net.oracle;
    let next_pkt_id = &mut net.next_pkt_id;
    let rngs = &mut net.rngs;
    let congestion = &mut net.congestion;

    let (new_routers, new_nodes) = std::thread::scope(|s| {
        let mut cmd_txs: Vec<Sender<CycleCmd>> = Vec::with_capacity(num_bands);
        let mut out_rxs: Vec<Receiver<ShardMsg>> = Vec::with_capacity(num_bands);
        {
            let mut riter = routers_owned.into_iter();
            let mut niter = nodes_owned.into_iter();
            for &(lo, hi) in &bounds {
                let r_band: Vec<Router> = riter.by_ref().take(hi - lo).collect();
                let n_band: Vec<Node> = niter.by_ref().take((hi - lo) * conc).collect();
                let (ctx, crx) = channel::<CycleCmd>();
                let (otx, orx) = channel::<ShardMsg>();
                cmd_txs.push(ctx);
                out_rxs.push(orx);
                let wcfg = WorkerCfg {
                    cfg,
                    region,
                    routing,
                    policy,
                    base: lo,
                    num_apps,
                    record_notes,
                    force_exhaustive,
                    may_skip_updates,
                };
                s.spawn(move || worker_loop(&wcfg, r_band, n_band, &crx, &otx));
            }
        }

        let mut last_infos: Option<Vec<IdleInfo>> = None;
        let mut gen_buf: Vec<(u32, PacketInfo)> = Vec::new();
        let mut arr_bands: Vec<Vec<InFlight>> = (0..num_bands).map(|_| Vec::new()).collect();
        let mut cred_bands: Vec<Vec<(usize, Port, usize)>> =
            (0..num_bands).map(|_| Vec::new()).collect();
        let mut rep_bands: Vec<Vec<ReplySchedule>> = (0..num_bands).map(|_| Vec::new()).collect();
        let mut enq_bands: Vec<Vec<(u32, PacketInfo)>> =
            (0..num_bands).map(|_| Vec::new()).collect();
        let mut t = seg_start;
        while t < stop {
            // Merged per-shard idle spans → one global jump (needs every
            // band idle since its last cycle and nothing pending between
            // bands; the source must promise silence without side effects).
            if ff_ok
                && pend_inflight.is_empty()
                && pend_credits.is_empty()
                && pend_ejects.is_empty()
            {
                if let Some(infos) = &last_infos {
                    if infos.iter().all(|i| i.quiescent && i.backlog_empty) {
                        if let Some(next_src) = source.next_injection_cycle(t) {
                            let mut target = stop.min(next_src);
                            for i in infos {
                                if let Some(r) = i.next_reply {
                                    target = target.min(r);
                                }
                            }
                            if target > t {
                                stats.idle_cycles_skipped += target - t;
                                t = target;
                                continue;
                            }
                        }
                    }
                }
            }
            // Consume last cycle's ejected flits — sequential, the exact
            // scalar order (eject queue order, before this cycle's
            // generation so packet ids interleave identically).
            for (nidx, flit) in pend_ejects.drain(..) {
                if let Some(rs) = Network::consume_ejected_core(
                    t,
                    nidx,
                    flit,
                    stats,
                    oracle.as_deref_mut(),
                    &mut **source,
                    next_pkt_id,
                    None,
                ) {
                    rep_bands[rs.node / conc / chunk].push(rs);
                }
            }
            Network::generate_packets(
                cfg,
                &mut **source,
                rngs,
                stats,
                next_pkt_id,
                None,
                t,
                &mut gen_buf,
            );
            // Route pending work to its owning band (stable partition:
            // per-band relative order is preserved).
            for a in pend_inflight.drain(..) {
                arr_bands[a.dst_router / chunk].push(a);
            }
            for c in pend_credits.drain(..) {
                cred_bands[c.0 / chunk].push(c);
            }
            for &e in &gen_buf {
                enq_bands[e.0 as usize / conc / chunk].push(e);
            }
            for (b, tx) in cmd_txs.iter().enumerate() {
                let cmd = CycleCmd {
                    cycle: t,
                    credits: std::mem::take(&mut cred_bands[b]),
                    arrivals: std::mem::take(&mut arr_bands[b]),
                    replies: std::mem::take(&mut rep_bands[b]),
                    enqueues: std::mem::take(&mut enq_bands[b]),
                    congestion: congestion.clone(),
                };
                tx.send(cmd).expect("worker alive");
            }
            // Fixed reduction order: band 0, band 1, … — blocking recv per
            // band, so merge order never depends on thread scheduling.
            let mut infos = Vec::with_capacity(num_bands);
            let mut progress = false;
            for (b, rx) in out_rxs.iter().enumerate() {
                let msg = rx.recv().expect("worker alive");
                let ShardMsg::Cycle(so) = msg else {
                    unreachable!("worker sent Done while commands pending")
                };
                let so = *so;
                // Contiguous ascending bands ⇒ concatenation equals the
                // scalar engine's single ascending sweep order.
                pend_inflight.extend(so.out.in_flight);
                pend_ejects.extend(so.out.eject);
                pend_credits.extend(so.out.credit);
                stats.router_cycles_skipped += so.out.router_cycles_skipped;
                stats.state_updates_skipped += so.out.state_updates_skipped;
                stats.injected_flits += so.out.injected_flits;
                for (a, cnt) in so.out.injected_packets.iter().enumerate() {
                    stats.injected_packets[a] += cnt;
                }
                progress |= so.out.progress;
                if let Some(o) = oracle.as_deref_mut() {
                    replay_notes(o, cfg, &so.out.notes, t);
                }
                let (lo, hi) = bounds[b];
                congestion[lo..hi].copy_from_slice(&so.congestion);
                infos.push(IdleInfo {
                    quiescent: so.quiescent,
                    backlog_empty: so.backlog_empty,
                    next_reply: so.next_reply,
                });
            }
            if progress {
                stats.last_progress = t;
            }
            last_infos = Some(infos);
            t += 1;
        }

        // Closing the command channels is the shutdown signal; each worker
        // answers with its state, collected in band order.
        drop(cmd_txs);
        let mut new_routers: Vec<Router> = Vec::with_capacity(n);
        let mut new_nodes: Vec<Node> = Vec::with_capacity(n * conc);
        for rx in &out_rxs {
            match rx.recv().expect("worker sends Done") {
                ShardMsg::Done(r, nd) => {
                    new_routers.extend(r);
                    new_nodes.extend(nd);
                }
                ShardMsg::Cycle(_) => unreachable!("unexpected cycle output after shutdown"),
            }
        }
        (new_routers, new_nodes)
    });

    net.routers = new_routers;
    net.nodes = new_nodes;
    net.in_flight = pend_inflight;
    net.credit_q = pend_credits;
    net.eject_q = pend_ejects;
    net.rebuild_masks();
    net.cycle = stop;
    // Replay the oracle scan the segment was sized around, against the
    // reassembled state and with the scan cycle's clock — the identical
    // schedule the scalar engine's per-tick (interval-gated) flush
    // produces.
    if let Some(k) = net.oracle_check_interval() {
        let last = stop - 1;
        if last.is_multiple_of(k) {
            net.cycle = last;
            net.flush_oracle(false);
            net.cycle = stop;
        }
    }
}
