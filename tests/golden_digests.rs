//! Golden-digest regression tests: small-configuration end-state digests
//! pinned under `results/golden/`. A digest covers every counter and the
//! full latency-recorder state (`SimStats::digest`), so *any* behavioral
//! change to the kernel — arbitration order, routing choice, credit
//! timing — flips the digest and fails here.
//!
//! When a change is intentional, regenerate the files and review the diff:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_digests
//! ```
//!
//! The digest algorithm is a pinned FNV-1a (`metrics::Digest`), stable
//! across Rust releases and debug/release builds.

use noc_sim::network::Network;
use noc_sim::prelude::*;
use rair::prelude::*;
use std::path::PathBuf;
use traffic::prelude::*;

const SEED: u64 = 0xC0FFEE;
const WARMUP: u64 = 300;
const MEASURE: u64 = 900;

/// The pinned configurations: Table 1 mesh, two-application scenario at an
/// inter-region fraction and load spread that exercises each routing.
fn cases() -> Vec<(&'static str, Scheme, Routing, f64, f64, f64)> {
    vec![
        (
            "table1_ro_rr_local_p100",
            Scheme::RoRr,
            Routing::Local,
            1.0,
            0.04,
            0.15,
        ),
        (
            "table1_rair_local_p100",
            Scheme::rair(),
            Routing::Local,
            1.0,
            0.04,
            0.15,
        ),
        (
            "table1_rair_dbar_p50",
            Scheme::rair(),
            Routing::Dbar,
            0.5,
            0.04,
            0.15,
        ),
        (
            "table1_ro_rank_xy_p50",
            Scheme::ro_rank(vec![0.1, 0.3]),
            Routing::Xy,
            0.5,
            0.04,
            0.15,
        ),
    ]
}

fn run_case(scheme: &Scheme, routing: Routing, p: f64, r0: f64, r1: f64) -> u64 {
    run_case_on(SimConfig::table1(), scheme, routing, p, r0, r1)
}

fn run_case_on(cfg: SimConfig, scheme: &Scheme, routing: Routing, p: f64, r0: f64, r1: f64) -> u64 {
    let (region, scenario) = two_app(&cfg, p, r0, r1);
    let mut net = Network::new(
        cfg,
        region,
        routing.build(),
        scheme.build(),
        Box::new(scenario),
        SEED,
    );
    net.run_warmup_measure(WARMUP, MEASURE);
    net.stats.digest()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results/golden")
        .join(format!("{name}.digest"))
}

fn check_goldens(results: Vec<(&'static str, u64)>) {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let mut mismatches = Vec::new();
    for (name, digest) in results {
        let digest = format!("{digest:016x}");
        let path = golden_path(name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, format!("{digest}\n")).unwrap();
            eprintln!("[golden] wrote {name} = {digest}");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden file {path:?} ({e}); regenerate with UPDATE_GOLDEN=1")
        });
        if want.trim() != digest {
            mismatches.push(format!("{name}: golden {} != actual {digest}", want.trim()));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden digest mismatch (intentional change? rerun with UPDATE_GOLDEN=1 and review):\n  {}",
        mismatches.join("\n  ")
    );
}

#[test]
fn golden_digests_match() {
    check_goldens(
        cases()
            .into_iter()
            .map(|(name, scheme, routing, p, r0, r1)| (name, run_case(&scheme, routing, p, r0, r1)))
            .collect(),
    );
}

/// One canonical configuration per non-mesh topology
/// ([`SimConfig::table1_topology`]): RAIR over Duato-adaptive routing on
/// the two-halves scenario. The mesh goldens above are untouched by the
/// topology abstraction (the mesh is digest-transparent), which
/// `golden_digests_match` enforces separately.
#[test]
fn golden_topology_digests_match() {
    let results = [
        TopologyKind::Torus,
        TopologyKind::Ring,
        TopologyKind::CMesh { concentration: 4 },
    ]
    .into_iter()
    .map(|kind| {
        let name = match kind {
            TopologyKind::Torus => "topology_torus_rair_local_p50",
            TopologyKind::Ring => "topology_ring_rair_local_p50",
            TopologyKind::CMesh { .. } => "topology_cmesh4_rair_local_p50",
            TopologyKind::Mesh => unreachable!(),
        };
        let cfg = SimConfig::table1_topology(kind);
        (
            name,
            run_case_on(cfg, &Scheme::rair(), Routing::Local, 0.5, 0.04, 0.15),
        )
    })
    .collect();
    check_goldens(results);
}
