//! Fault model and runtime resilience machinery.
//!
//! Three layers live here:
//!
//! 1. **[`FaultTimeline`]** — the *configured* fault schedule carried in
//!    [`SimConfig`]: a seeded transient bit-error rate applied to every
//!    link traversal plus scheduled permanent [`FaultEvent`]s (link or
//!    router death). An empty timeline keeps the whole subsystem off-path:
//!    `Network` then allocates no [`FaultState`] and the cycle kernel is
//!    bit-identical to the fault-free build (golden digests unchanged).
//! 2. **[`FaultState`]** — the *runtime* state: which links/routers are
//!    dead, the link-level retransmission draw (CRC + ack/nack abstracted
//!    as a deterministic per-send attempt count), the drop ledger the
//!    conservation checkers reconcile against, and the source-retry
//!    bookkeeping (exponential backoff, capped attempts).
//! 3. **[`DegradedTable`]** — the reconfigured routing function computed
//!    after each permanent fault: escape routing detours around dead links
//!    (a lane-shifted XY function, deadlock-free by turn-model argument),
//!    adaptive ports filtered to alive productive links, and per-pair
//!    routability from a bounded escape-chain walk. Every rebuilt table is
//!    re-verified by the static CDG verifier ([`crate::verify`]) *before*
//!    the network resumes; if the detour function fails verification (turn
//!    unions of multiple faults can be cyclic) the table falls back to
//!    [`DegradedMode::Strict`] — plain XY over surviving links, a subgraph
//!    of the provably acyclic XY CDG — trading coverage for safety.
//!
//! The [`Fault`] enum (moved here from the oracle module) drives the
//! *differential* harness: seeded protocol mutations applied by
//! [`Network::inject_fault`](crate::network::Network::inject_fault), each
//! of which a named checker must catch.

use crate::config::SimConfig;
use crate::ids::{
    opposite, Coord, NodeId, Port, NUM_PORTS, PORT_EAST, PORT_LOCAL, PORT_NORTH, PORT_SOUTH,
    PORT_WEST,
};
use crate::network::Network;
use crate::region::RegionMap;
use crate::routing::{escape_port, step, NextHops, RoutingAlgorithm, SelectCtx};
use crate::verify::{Verifier, VerifyReport};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Cap on link-level send attempts per flit: after this many consecutive
/// CRC failures the send is forced through (the draw is deterministic, so
/// an unbounded retry at BER ~1 would never terminate).
pub const MAX_SEND_ATTEMPTS: u32 = 16;

/// Extra link latency per retransmission round trip (nack + replay).
pub const RETRANSMIT_LATENCY: u64 = 4;

/// Source-side retry attempts for a packet extracted as stranded before it
/// is dropped for good.
pub const MAX_SOURCE_RETRIES: u32 = 3;

/// Base backoff (cycles) before the first source-side retry; doubles per
/// attempt (exponential backoff).
pub const RETRY_BACKOFF_BASE: u64 = 64;

/// How often (cycles) the network sweeps for stranded packets after a
/// permanent fault.
pub const STRANDED_SCAN_INTERVAL: u64 = 64;

/// A seeded protocol fault for the differential harness. Applied between
/// cycles by [`Network::inject_fault`](crate::network::Network::inject_fault);
/// each variant must be caught by at least one checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Silently lose one credit of output `(port, vc)` at `router` —
    /// caught by `CreditConservation`.
    DropCredit {
        router: usize,
        port: Port,
        vc: usize,
    },
    /// Retransmit (duplicate) the newest buffered flit of input `(port,
    /// vc)` at `router` as if the upstream replay buffer fired spuriously.
    /// Credit accounting is coherent (the upstream output pays for the
    /// copy), so `CreditConservation` stays clean while
    /// `WormholeContiguity` (sequence break) and `FlitConservation`
    /// (phantom flit) must catch it.
    DuplicateFlit {
        router: usize,
        port: Port,
        vc: usize,
    },
    /// Teleport a single-flit packet one non-minimal hop out of input
    /// `(port, vc)` at `router` (with correct credit accounting, so only
    /// the route is wrong) — caught by `RoutingLegality`.
    MisrouteFlit {
        router: usize,
        port: Port,
        vc: usize,
    },
    /// Flip payload bits of the front flit of input `(port, vc)` at
    /// `router` without updating its CRC — caught by `CrcIntegrity`.
    CorruptFlit {
        router: usize,
        port: Port,
        vc: usize,
    },
    /// Permanently freeze `router`'s switch allocator — caught by
    /// `DeadlockWatch` once a VC exceeds the stall horizon.
    FreezeRouter { router: usize },
}

/// A permanent topology fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Both directions of the link out of `router` through mesh port
    /// `port` die.
    LinkDown { router: NodeId, port: Port },
    /// The router and all its links die. Resident packets drain or are
    /// extracted; its NI stops generating.
    RouterDown { router: NodeId },
}

/// A permanent fault scheduled at an absolute cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    pub cycle: u64,
    pub event: FaultEvent,
}

/// The configured fault schedule, carried in [`SimConfig::fault`]. An
/// empty (default) timeline keeps every fault mechanism off-path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultTimeline {
    /// Per-link-traversal probability of a transient CRC-detected
    /// corruption (resolved by retransmission). `0.0` disables.
    pub transient_ber: f64,
    /// Seed for the corruption draw, independent of the traffic seed.
    pub seed: u64,
    /// Scheduled permanent faults (applied in cycle order).
    pub events: Vec<ScheduledFault>,
}

impl FaultTimeline {
    /// True when the timeline schedules nothing — the fault subsystem is
    /// then fully off-path and digests match the fault-free build.
    pub fn is_empty(&self) -> bool {
        self.transient_ber == 0.0 && self.events.is_empty()
    }

    /// Internal consistency, folded into [`SimConfig::validate`].
    pub fn validate(&self, cfg: &SimConfig) -> Result<(), String> {
        if !self.transient_ber.is_finite() || !(0.0..1.0).contains(&self.transient_ber) {
            return Err(format!(
                "fault.transient_ber must be in [0, 1), got {}",
                self.transient_ber
            ));
        }
        for ev in &self.events {
            match ev.event {
                FaultEvent::LinkDown { router, port } => {
                    if router as usize >= cfg.num_nodes() {
                        return Err(format!("fault event router {router} out of bounds"));
                    }
                    let c = cfg.coord_of(router);
                    if !(1..=4).contains(&port) || !Network::port_in_bounds(cfg, c, port) {
                        return Err(format!(
                            "fault event link ({router}, {port}) is not an in-bounds mesh link"
                        ));
                    }
                }
                FaultEvent::RouterDown { router } => {
                    if router as usize >= cfg.num_nodes() {
                        return Err(format!("fault event router {router} out of bounds"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Fold the timeline into a digest (only called when non-empty, so
    /// empty-timeline configs keep their pre-fault digests).
    pub fn digest_into(&self, d: &mut metrics::Digest) {
        d.write_u64(self.transient_ber.to_bits());
        d.write_u64(self.seed);
        d.write_u64(self.events.len() as u64);
        for ev in &self.events {
            d.write_u64(ev.cycle);
            match ev.event {
                FaultEvent::LinkDown { router, port } => {
                    d.write_u64(1);
                    d.write_u64(router as u64);
                    d.write_u64(port as u64);
                }
                FaultEvent::RouterDown { router } => {
                    d.write_u64(2);
                    d.write_u64(router as u64);
                }
            }
        }
    }
}

/// Which degraded routing function a [`DegradedTable`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedMode {
    /// Lane-shifted XY escape: detours around dead links, keeping almost
    /// every pair routable. Escape-only (adaptive channels disabled —
    /// minimal adaptive hops after a sidestep would close extended
    /// escape-CDG cycles). Used when no router is down and the detour CDG
    /// verifies acyclic.
    Detour,
    /// Plain XY over surviving links: any pair whose XY path crosses a
    /// dead element is unroutable, but the CDG is a subgraph of XY's and
    /// thus provably acyclic. The fallback when detours cannot be proven
    /// safe (router death, adverse multi-fault turn unions).
    Strict,
}

/// The reconfigured routing function after permanent faults: per-pair
/// escape port, filtered adaptive ports and routability. Built by
/// [`DegradedTable::rebuild`], which re-verifies the result with the CDG
/// verifier before it is ever used.
pub struct DegradedTable {
    n: usize,
    mode: DegradedMode,
    /// `esc[src * n + dst]` — the escape port, `None` if unroutable here.
    esc: Vec<Option<Port>>,
    /// `adap[src * n + dst]` — usable adaptive (minimal, alive) ports.
    adap: Vec<[Option<Port>; 2]>,
    /// `routable[src * n + dst]` — the escape chain reaches `dst`.
    routable: Vec<bool>,
}

impl DegradedTable {
    /// Build and statically verify the degraded routing for the given dead
    /// sets. Tries [`DegradedMode::Detour`] first (when no router is
    /// dead); on any verifier violation falls back to
    /// [`DegradedMode::Strict`]. Returns the table actually adopted plus
    /// the verification report of that table.
    pub fn rebuild(
        cfg: &SimConfig,
        region: &RegionMap,
        routing: &dyn RoutingAlgorithm,
        dead_links: &BTreeSet<(usize, Port)>,
        dead_routers: &BTreeSet<usize>,
    ) -> (Self, VerifyReport) {
        let modes: &[DegradedMode] = if dead_routers.is_empty() {
            &[DegradedMode::Detour, DegradedMode::Strict]
        } else {
            &[DegradedMode::Strict]
        };
        let mut last = None;
        for &mode in modes {
            let table = Self::compute(cfg, region, routing, dead_links, dead_routers, mode);
            let report = table.verify(cfg, dead_links);
            if report.ok() {
                return (table, report);
            }
            last = Some((table, report));
        }
        // Strict failed verification too — adopt it anyway (its violations
        // are surfaced through SimStats by the caller) rather than leaving
        // the network without any routing function.
        last.expect("at least one mode attempted")
    }

    /// Run the CDG verifier over this table (dead links filtered out,
    /// unroutable pairs exempt, escape minimality relaxed in detour mode).
    pub fn verify(&self, cfg: &SimConfig, dead_links: &BTreeSet<(usize, Port)>) -> VerifyReport {
        let adapter = DegradedRouting { cfg, table: self };
        let mut v = Verifier::new(cfg, &adapter)
            .with_link_filter(|r, p| !dead_links.contains(&(r as usize, p)))
            .with_pair_filter(|s, d| self.routable(s as usize, d as usize));
        if self.mode == DegradedMode::Detour {
            v = v.with_detour_escape();
        }
        v.run()
    }

    fn compute(
        cfg: &SimConfig,
        region: &RegionMap,
        routing: &dyn RoutingAlgorithm,
        dead_links: &BTreeSet<(usize, Port)>,
        dead_routers: &BTreeSet<usize>,
        mode: DegradedMode,
    ) -> Self {
        let n = cfg.num_nodes();
        let mut esc = vec![None; n * n];
        let mut routable = vec![false; n * n];
        let mut adap = vec![[None; 2]; n * n];
        for d in 0..n {
            let cd = cfg.coord_of(d as NodeId);
            let dead_pair = |s: usize| dead_routers.contains(&s) || dead_routers.contains(&d);
            for s in 0..n {
                if s == d || dead_pair(s) {
                    continue;
                }
                let cs = cfg.coord_of(s as NodeId);
                esc[s * n + d] = match mode {
                    DegradedMode::Strict => {
                        let p = escape_port(cs, cd);
                        link_alive(cfg, dead_links, cs, p).then_some(p)
                    }
                    DegradedMode::Detour => detour_escape(cfg, region, dead_links, cs, cd),
                };
            }
            // Routability: walk the escape chain with a generous bound
            // (detours add at most a few laps of the mesh perimeter).
            let bound = 4 * (cfg.width as usize + cfg.height as usize);
            for s in 0..n {
                if s == d {
                    routable[s * n + d] = !dead_routers.contains(&s);
                    continue;
                }
                if dead_pair(s) {
                    continue;
                }
                let mut c = cfg.coord_of(s as NodeId);
                for _ in 0..=bound {
                    let r = cfg.node_at(c) as usize;
                    if r == d {
                        routable[s * n + d] = true;
                        break;
                    }
                    let Some(p) = esc[r * n + d] else { break };
                    c = step(c, p);
                }
            }
            // Adaptive ports. Strict mode keeps the base routing's minimal
            // productive ports (alive link, neighbor still routable): its
            // extended escape CDG is a subgraph of the pristine verified
            // one, so adaptivity stays safe. Detour mode is *escape-only*:
            // the sidestep sends escape packets sideways with the X offset
            // unresolved, and minimal adaptive hops taken after such a
            // sidestep re-enter escape channels against the dimension
            // order — Duato's extended (escape → adaptive* → escape)
            // dependencies then close real cycles (the CDG verifier finds
            // them). Dropping the adaptive channels removes every extended
            // dependency, and the direct detour CDG is acyclic by the
            // turn-model argument on `detour_escape`.
            if mode == DegradedMode::Strict {
                for s in 0..n {
                    if s == d || !routable[s * n + d] {
                        continue;
                    }
                    let cs = cfg.coord_of(s as NodeId);
                    let mut k = 0;
                    for p in routing.adaptive_ports(cfg, cs, cd).into_iter().flatten() {
                        if !link_alive(cfg, dead_links, cs, p) {
                            continue;
                        }
                        let nbr = cfg.node_at(step(cs, p)) as usize;
                        if routable[nbr * n + d] {
                            adap[s * n + d][k] = Some(p);
                            k += 1;
                        }
                    }
                }
            }
        }
        Self {
            n,
            mode,
            esc,
            adap,
            routable,
        }
    }

    /// The mode actually adopted.
    pub fn mode(&self) -> DegradedMode {
        self.mode
    }

    /// Escape port from `src` toward `dst` (`None` = unroutable here).
    #[inline]
    pub fn esc_at(&self, src: usize, dst: usize) -> Option<Port> {
        self.esc[src * self.n + dst]
    }

    /// Usable adaptive ports from `src` toward `dst`.
    #[inline]
    pub fn adap_at(&self, src: usize, dst: usize) -> [Option<Port>; 2] {
        self.adap[src * self.n + dst]
    }

    /// Can a packet at `src` still reach `dst`?
    #[inline]
    pub fn routable(&self, src: usize, dst: usize) -> bool {
        self.routable[src * self.n + dst]
    }
}

/// Adapter presenting a [`DegradedTable`] to the static verifier as a
/// [`RoutingAlgorithm`] (only `next_hops` matters; selection is never
/// exercised symbolically).
struct DegradedRouting<'a> {
    cfg: &'a SimConfig,
    table: &'a DegradedTable,
}

impl RoutingAlgorithm for DegradedRouting<'_> {
    fn name(&self) -> &'static str {
        "degraded"
    }

    fn adaptive_ports(&self, cfg: &SimConfig, cur: Coord, dst: Coord) -> [Option<Port>; 2] {
        let (s, d) = (cfg.node_at(cur) as usize, cfg.node_at(dst) as usize);
        self.table.adap_at(s, d)
    }

    fn select(&self, _ctx: &SelectCtx<'_>, _cands: &[Port]) -> usize {
        0
    }

    fn next_hops(&self, _cfg: &SimConfig, cur: Coord, dst: Coord) -> NextHops {
        let (s, d) = (
            self.cfg.node_at(cur) as usize,
            self.cfg.node_at(dst) as usize,
        );
        NextHops {
            adaptive: self.table.adap_at(s, d),
            // Only called for pair-filtered (routable) pairs, where the
            // escape chain exists; PORT_LOCAL would be flagged as a bad
            // hop by the verifier if this invariant were ever broken.
            escape: self.table.esc_at(s, d).unwrap_or(PORT_LOCAL),
            // Fault timelines are mesh-only (validated), so no datelines.
            escape_lane: 0,
        }
    }
}

/// Is the directed link out of `cur` through mesh port `p` in bounds and
/// not in the dead set?
#[inline]
fn link_alive(cfg: &SimConfig, dead: &BTreeSet<(usize, Port)>, cur: Coord, p: Port) -> bool {
    Network::port_in_bounds(cfg, cur, p) && !dead.contains(&(cfg.node_at(cur) as usize, p))
}

/// Is some vertical link in column `x` between rows `y0` and `y1` dead
/// (walking from `y0` toward `y1`)?
fn col_blocked(cfg: &SimConfig, dead: &BTreeSet<(usize, Port)>, x: u8, y0: u8, y1: u8) -> bool {
    let (lo, hi, port) = if y1 > y0 {
        (y0, y1, PORT_SOUTH)
    } else {
        (y1, y0, PORT_NORTH)
    };
    (lo..hi).any(|y| {
        let c = Coord {
            x,
            y: if port == PORT_SOUTH { y } else { y + 1 },
        };
        !link_alive(cfg, dead, c, port)
    })
}

/// The sidestep column used to bypass dead vertical links in column `x`:
/// prefer the neighbor column that stays in the dead link's region (RAIR
/// confinement, best-effort), then east. Deterministic per column so every
/// router on the detour agrees.
fn lat_col(cfg: &SimConfig, region: &RegionMap, dead: &BTreeSet<(usize, Port)>, x: u8) -> u8 {
    let east = (x as usize + 1) < cfg.width as usize;
    let west = x > 0;
    if !east {
        return x - 1;
    }
    if !west {
        return x + 1;
    }
    // Region preference anchored at the northernmost dead vertical link.
    let anchor = (0..cfg.height)
        .find(|&y| !link_alive(cfg, dead, Coord { x, y }, PORT_SOUTH))
        .unwrap_or(0);
    let app = region.app_of(cfg.node_at(Coord { x, y: anchor }));
    let app_e = region.app_of(cfg.node_at(Coord {
        x: x + 1,
        y: anchor,
    }));
    let app_w = region.app_of(cfg.node_at(Coord {
        x: x - 1,
        y: anchor,
    }));
    if app_e != app && app_w == app {
        x - 1
    } else {
        x + 1
    }
}

/// Vertical sidestep direction for a dead horizontal link at `cur`:
/// prefer the row that stays in `cur`'s region, then south.
fn sidestep_v(
    cfg: &SimConfig,
    region: &RegionMap,
    dead: &BTreeSet<(usize, Port)>,
    cur: Coord,
) -> Option<Port> {
    let s_ok = link_alive(cfg, dead, cur, PORT_SOUTH);
    let n_ok = link_alive(cfg, dead, cur, PORT_NORTH);
    if s_ok && n_ok {
        let app = region.app_of(cfg.node_at(cur));
        let app_s = region.app_of(cfg.node_at(step(cur, PORT_SOUTH)));
        let app_n = region.app_of(cfg.node_at(step(cur, PORT_NORTH)));
        if app_s != app && app_n == app {
            Some(PORT_NORTH)
        } else {
            Some(PORT_SOUTH)
        }
    } else if s_ok {
        Some(PORT_SOUTH)
    } else if n_ok {
        Some(PORT_NORTH)
    } else {
        None
    }
}

/// The lane-shifted XY escape function used in [`DegradedMode::Detour`].
///
/// Deadlock-freedom argument (single dead link; the CDG verifier is the
/// net for multi-fault unions): a dead *horizontal* link adds only the
/// sidestep turns `{S→E, S→W}` (or `{N→E, N→W}`), which cannot complete a
/// turn cycle with XY's base turns; a dead *vertical* link in column `x`
/// diverts the whole column walk to the sidestep column, adding only the
/// rejoin turns `{S→W, N→W}` (sidestep east) or `{S→E, N→E}` (sidestep
/// west). The potentially dangerous divert turn (e.g. `S→E` *at* the dead
/// column) never enters the per-destination CDG: any packet bound past the
/// dead link diverts at its first column router, so no channel both enters
/// the column southbound and exits it eastbound for the same destination.
fn detour_escape(
    cfg: &SimConfig,
    region: &RegionMap,
    dead: &BTreeSet<(usize, Port)>,
    cur: Coord,
    dst: Coord,
) -> Option<Port> {
    if cur == dst {
        return Some(PORT_LOCAL);
    }
    // Deferred-X rule: on the sidestep column right next to the
    // destination's blocked column, finish Y first and rejoin where the
    // column clears.
    if cur.x.abs_diff(dst.x) == 1
        && cur.y != dst.y
        && col_blocked(cfg, dead, dst.x, cur.y, dst.y)
        && lat_col(cfg, region, dead, dst.x) == cur.x
    {
        let p = if dst.y > cur.y {
            PORT_SOUTH
        } else {
            PORT_NORTH
        };
        return link_alive(cfg, dead, cur, p).then_some(p);
    }
    let p = escape_port(cur, dst);
    if p == PORT_EAST || p == PORT_WEST {
        // X phase: sidestep one row when the next horizontal link is dead.
        return if link_alive(cfg, dead, cur, p) {
            Some(p)
        } else {
            sidestep_v(cfg, region, dead, cur)
        };
    }
    // Y phase in the destination column: divert laterally if the column
    // walk ahead crosses a dead link.
    if col_blocked(cfg, dead, cur.x, cur.y, dst.y) {
        let lat = lat_col(cfg, region, dead, cur.x);
        let q = if lat > cur.x { PORT_EAST } else { PORT_WEST };
        return link_alive(cfg, dead, cur, q).then_some(q);
    }
    Some(p)
}

/// Runtime fault state, allocated by `Network::new` only when the
/// configured timeline is non-empty.
pub(crate) struct FaultState {
    /// Scheduled events sorted by cycle; `next_event` is the cursor.
    events: Vec<ScheduledFault>,
    next_event: usize,
    seed: u64,
    /// `transient_ber` scaled to a `u64` comparison threshold.
    corrupt_threshold: u64,
    pub(crate) dead_links: BTreeSet<(usize, Port)>,
    pub(crate) dead_routers: BTreeSet<usize>,
    /// The verified degraded routing, present after the first permanent
    /// fault.
    pub(crate) table: Option<DegradedTable>,
    /// Last scheduled arrival cycle per `(router, in_port, vc)` slot, so
    /// retransmitted flits never overtake within a link slot.
    pub(crate) last_arrival: Vec<u64>,
    /// Flits dropped per app — the ledger the conservation checkers add
    /// back into their balance.
    pub(crate) dropped_flits: Vec<u64>,
    pub(crate) dropped_flits_total: u64,
    /// Source-retry attempts per packet id.
    retry_counts: BTreeMap<u64, u32>,
}

impl FaultState {
    pub(crate) fn new(cfg: &SimConfig, num_apps: usize) -> Self {
        let mut events = cfg.fault.events.clone();
        events.sort_by_key(|e| e.cycle);
        let slots = cfg.num_nodes() * NUM_PORTS * cfg.vcs_per_port();
        Self {
            events,
            next_event: 0,
            seed: cfg.fault.seed,
            corrupt_threshold: (cfg.fault.transient_ber * 18_446_744_073_709_551_616.0) as u64,
            dead_links: BTreeSet::new(),
            dead_routers: BTreeSet::new(),
            table: None,
            last_arrival: vec![0; slots],
            dropped_flits: vec![0; num_apps],
            dropped_flits_total: 0,
            retry_counts: BTreeMap::new(),
        }
    }

    /// Pop every event due at or before `cycle` (events are pre-sorted).
    pub(crate) fn take_due_events(&mut self, cycle: u64) -> Vec<FaultEvent> {
        let mut due = Vec::new();
        while let Some(ev) = self.events.get(self.next_event) {
            if ev.cycle > cycle {
                break;
            }
            due.push(ev.event);
            self.next_event += 1;
        }
        due
    }

    /// Mark an event's links/routers dead (both link directions; a dead
    /// router takes all its links with it).
    pub(crate) fn apply_event(&mut self, cfg: &SimConfig, ev: FaultEvent) {
        let mut kill_link = |r: usize, p: Port| {
            let c = cfg.coord_of(r as NodeId);
            if !Network::port_in_bounds(cfg, c, p) {
                return;
            }
            self.dead_links.insert((r, p));
            let nbr = cfg.node_at(step(c, p)) as usize;
            self.dead_links.insert((nbr, opposite(p)));
        };
        match ev {
            FaultEvent::LinkDown { router, port } => kill_link(router as usize, port),
            FaultEvent::RouterDown { router } => {
                for p in 1..NUM_PORTS {
                    kill_link(router as usize, p);
                }
                self.dead_routers.insert(router as usize);
            }
        }
    }

    /// Any permanent damage applied so far?
    pub(crate) fn has_dead(&self) -> bool {
        !self.dead_links.is_empty() || !self.dead_routers.is_empty()
    }

    /// Transient corruption active?
    pub(crate) fn corrupts(&self) -> bool {
        self.corrupt_threshold != 0
    }

    /// Deterministic link-level send: how many attempts until the CRC
    /// check passes (1 = clean first try). Capped at
    /// [`MAX_SEND_ATTEMPTS`]; the draw mixes the flit identity and link so
    /// it is independent of simulation order.
    pub(crate) fn send_attempts(&self, pkt: u64, seq: u32, router: usize, port: Port) -> u32 {
        if self.corrupt_threshold == 0 {
            return 1;
        }
        for attempt in 1..MAX_SEND_ATTEMPTS {
            let mut z = self
                .seed
                .wrapping_add(pkt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ (u64::from(seq) << 40)
                ^ (u64::from(attempt) << 24)
                ^ ((router as u64) << 8)
                ^ port as u64;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            if z >= self.corrupt_threshold {
                return attempt;
            }
        }
        MAX_SEND_ATTEMPTS
    }

    /// Flat index of an input-VC slot (for [`Self::last_arrival`]).
    #[inline]
    pub(crate) fn slot(cfg: &SimConfig, router: usize, port: Port, vc: usize) -> usize {
        (router * NUM_PORTS + port) * cfg.vcs_per_port() + vc
    }

    /// Record `flits` flits of `app` dropped (extraction or terminal drop).
    pub(crate) fn note_dropped_flits(&mut self, app: usize, flits: u64) {
        if app < self.dropped_flits.len() {
            self.dropped_flits[app] += flits;
        }
        self.dropped_flits_total += flits;
    }

    /// Bump and return the retry attempt count for packet `pkt`.
    pub(crate) fn bump_retry(&mut self, pkt: u64) -> u32 {
        let c = self.retry_counts.entry(pkt).or_insert(0);
        *c += 1;
        *c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::DuatoLocalAdaptive;

    fn dead_set(links: &[(usize, Port)]) -> BTreeSet<(usize, Port)> {
        let cfg = SimConfig::table1();
        let mut s = BTreeSet::new();
        for &(r, p) in links {
            s.insert((r, p));
            let nbr = cfg.node_at(step(cfg.coord_of(r as NodeId), p)) as usize;
            s.insert((nbr, opposite(p)));
        }
        s
    }

    #[test]
    fn empty_timeline_is_empty() {
        let t = FaultTimeline::default();
        assert!(t.is_empty());
        assert!(t.validate(&SimConfig::table1()).is_ok());
    }

    #[test]
    fn timeline_validation_rejects_bad_events() {
        let cfg = SimConfig::table1();
        let t = FaultTimeline {
            transient_ber: 1.5,
            ..Default::default()
        };
        assert!(t.validate(&cfg).is_err());
        let t = FaultTimeline {
            events: vec![ScheduledFault {
                cycle: 0,
                event: FaultEvent::LinkDown {
                    router: 0,
                    port: PORT_NORTH, // out of bounds at the top edge
                },
            }],
            ..Default::default()
        };
        assert!(t.validate(&cfg).is_err());
        let t = FaultTimeline {
            events: vec![ScheduledFault {
                cycle: 0,
                event: FaultEvent::RouterDown { router: 999 },
            }],
            ..Default::default()
        };
        assert!(t.validate(&cfg).is_err());
    }

    #[test]
    fn detour_single_horizontal_link_verifies_and_routes_all_pairs() {
        let cfg = SimConfig::table1();
        let region = RegionMap::quadrants(&cfg);
        // Kill the east link out of router 27 (3,3) — mid-mesh.
        let dead = dead_set(&[(27, PORT_EAST)]);
        let (t, report) =
            DegradedTable::rebuild(&cfg, &region, &DuatoLocalAdaptive, &dead, &BTreeSet::new());
        assert_eq!(t.mode(), DegradedMode::Detour);
        assert!(report.ok(), "{:?}", report.violations.first());
        let n = cfg.num_nodes();
        for s in 0..n {
            for d in 0..n {
                assert!(t.routable(s, d), "pair {s}->{d} lost");
            }
        }
    }

    #[test]
    fn detour_single_vertical_link_verifies_and_routes_all_pairs() {
        let cfg = SimConfig::table1();
        let region = RegionMap::quadrants(&cfg);
        // Kill the south link out of router 20 (4,2).
        let dead = dead_set(&[(20, PORT_SOUTH)]);
        let (t, report) =
            DegradedTable::rebuild(&cfg, &region, &DuatoLocalAdaptive, &dead, &BTreeSet::new());
        assert_eq!(t.mode(), DegradedMode::Detour);
        assert!(report.ok(), "{:?}", report.violations.first());
        let n = cfg.num_nodes();
        for s in 0..n {
            for d in 0..n {
                assert!(t.routable(s, d), "pair {s}->{d} lost");
            }
        }
    }

    #[test]
    fn router_down_falls_back_to_strict_and_verifies() {
        let cfg = SimConfig::table1();
        let region = RegionMap::quadrants(&cfg);
        let mut st = FaultState::new(&cfg, region.num_apps());
        st.apply_event(&cfg, FaultEvent::RouterDown { router: 27 });
        let (t, report) = DegradedTable::rebuild(
            &cfg,
            &region,
            &DuatoLocalAdaptive,
            &st.dead_links,
            &st.dead_routers,
        );
        assert_eq!(t.mode(), DegradedMode::Strict);
        assert!(report.ok(), "{:?}", report.violations.first());
        // The dead router is unroutable from and to everywhere else.
        for r in 0..cfg.num_nodes() {
            if r != 27 {
                assert!(!t.routable(r, 27));
                assert!(!t.routable(27, r));
            }
        }
        // Pairs whose XY path avoids the dead router survive.
        assert!(t.routable(0, 7));
    }

    #[test]
    fn edge_row_sidestep_goes_north() {
        let cfg = SimConfig::table1();
        let region = RegionMap::single(&cfg);
        // Bottom-row horizontal link (56 is (0,7)): sidestep must go north.
        let dead = dead_set(&[(56, PORT_EAST)]);
        let (t, report) =
            DegradedTable::rebuild(&cfg, &region, &DuatoLocalAdaptive, &dead, &BTreeSet::new());
        assert!(report.ok(), "{:?}", report.violations.first());
        assert_eq!(t.esc_at(56, 63), Some(PORT_NORTH));
        for d in 0..cfg.num_nodes() {
            assert!(t.routable(56, d));
        }
    }

    #[test]
    fn send_attempts_deterministic_and_bounded() {
        let mut cfg = SimConfig::table1();
        cfg.fault.transient_ber = 0.5;
        cfg.fault.seed = 7;
        let st = FaultState::new(&cfg, 1);
        for pkt in 0..200u64 {
            let a = st.send_attempts(pkt, 0, 3, PORT_EAST);
            assert_eq!(a, st.send_attempts(pkt, 0, 3, PORT_EAST));
            assert!((1..=MAX_SEND_ATTEMPTS).contains(&a));
        }
        // At BER 0.5 both single and multi-attempt sends must occur.
        let attempts: Vec<u32> = (0..200u64)
            .map(|p| st.send_attempts(p, 0, 3, PORT_EAST))
            .collect();
        assert!(attempts.contains(&1));
        assert!(attempts.iter().any(|&a| a > 1));
    }

    #[test]
    fn zero_ber_never_retransmits() {
        let cfg = SimConfig::table1();
        let st = FaultState::new(&cfg, 1);
        assert!(!st.corrupts());
        assert_eq!(st.send_attempts(42, 3, 5, PORT_WEST), 1);
    }

    #[test]
    fn timeline_digest_is_sensitive() {
        let t1 = FaultTimeline {
            transient_ber: 1e-3,
            seed: 1,
            events: vec![],
        };
        let mut t2 = t1.clone();
        t2.seed = 2;
        let digest = |t: &FaultTimeline| {
            let mut d = metrics::Digest::new();
            t.digest_into(&mut d);
            d.finish()
        };
        assert_ne!(digest(&t1), digest(&t2));
    }
}
