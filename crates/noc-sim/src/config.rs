//! Simulator configuration, including the paper's Table 1 parameters.

use crate::fault::FaultTimeline;
use crate::ids::{Coord, MsgClass, NodeId, NUM_PORTS};
use crate::oracle::OracleConfig;
use crate::topology::TopologyKind;
use crate::vc::{VcClass, VcTag};
use crate::verify::VerifyConfig;
use serde::{Deserialize, Serialize};

/// Network and router-microarchitecture configuration.
///
/// Defaults follow Table 1 of the paper: 64 nodes (8×8 mesh), 128-bit links
/// (16-byte flits), atomic 5-flit virtual channels, 6-cycle L2 bank service,
/// 128-cycle memory service, 64-byte cache blocks. Packets are either 1-flit
/// short packets (16 B control) or 5-flit long packets (head + 64 B data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Network topology (mesh, torus, ring, concentrated mesh). The
    /// default mesh keeps every pre-topology digest and cache key
    /// unchanged (see [`SimConfig::digest_into`]).
    pub topology: TopologyKind,
    /// Router-grid width (columns).
    pub width: u8,
    /// Router-grid height (rows; must be 1 for a ring).
    pub height: u8,
    /// Number of message classes (virtual networks). Each class gets one
    /// escape VC per port (deadlock freedom per Duato's theory); all classes
    /// share the adaptive VCs, as prescribed in §IV.D of the paper.
    pub num_classes: usize,
    /// Adaptive (fully-routable) VCs per port, shared by all classes.
    pub adaptive_vcs: usize,
    /// How many of the adaptive VCs are tagged *regional*; the remainder are
    /// tagged *global*. §VI recommends a roughly equal split.
    pub regional_vcs: usize,
    /// Buffer depth of each VC, in flits.
    pub vc_depth: usize,
    /// Flits in a short packet (16-byte control message).
    pub short_flits: u32,
    /// Flits in a long packet (head flit + 64-byte data).
    pub long_flits: u32,
    /// L2 bank service latency in cycles (closed-loop request/reply mode).
    pub l2_latency: u64,
    /// Memory service latency in cycles.
    pub mem_latency: u64,
    /// Cache block size in bytes (documentation only; implied by long_flits).
    pub block_bytes: usize,
    /// Invariant-oracle toggle and tuning (see [`OracleConfig`]).
    pub oracle: OracleConfig,
    /// Static deadlock-freedom/legality verifier toggle (see
    /// [`VerifyConfig`]); resolved at `Network::new`.
    pub verify: VerifyConfig,
    /// Fault timeline (transient BER + scheduled permanent faults). The
    /// default (empty) timeline keeps the resilience machinery fully
    /// off-path and out of the behavioral digest.
    pub fault: FaultTimeline,
    /// Spatial router shards the tick engine may split the mesh into
    /// (`0` = resolve from the `RAIR_SHARDS` environment variable,
    /// defaulting to 1 = scalar). Sharding is an execution strategy, not a
    /// model parameter: stat digests are bit-identical at every shard count,
    /// so the field is excluded from [`SimConfig::digest_into`] just like
    /// the oracle/verify observability toggles.
    pub shards: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::table1()
    }
}

impl SimConfig {
    /// The paper's Table 1 configuration (single message class, as used for
    /// the synthetic-traffic experiments).
    pub fn table1() -> Self {
        Self {
            topology: TopologyKind::Mesh,
            width: 8,
            height: 8,
            num_classes: 1,
            adaptive_vcs: 4,
            regional_vcs: 2,
            vc_depth: 5,
            short_flits: 1,
            long_flits: 5,
            l2_latency: 6,
            mem_latency: 128,
            block_bytes: 64,
            oracle: OracleConfig::default(),
            verify: VerifyConfig::default(),
            fault: FaultTimeline::default(),
            shards: 0,
        }
    }

    /// Resolve the shard count the tick engine should use: an explicit
    /// [`SimConfig::shards`] wins; `0` defers to the `RAIR_SHARDS`
    /// environment variable (mirroring `RAIR_ORACLE`/`RAIR_VERIFY`), and an
    /// absent or unparseable variable means scalar (1).
    pub fn resolve_shards(&self) -> usize {
        if self.shards != 0 {
            return self.shards;
        }
        std::env::var("RAIR_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&s| s > 0)
            .unwrap_or(1)
    }

    /// Table 1 configuration with two message classes (request + reply) for
    /// the closed-loop PARSEC-style workloads.
    pub fn table1_req_reply() -> Self {
        Self {
            num_classes: 2,
            ..Self::table1()
        }
    }

    /// The canonical Table-1-scale configuration for each topology: the
    /// 8×8 mesh itself, an 8×8 torus, a 16-router ring and a 4×4
    /// concentrated mesh with 4 NIs per router (64 nodes, like the mesh).
    /// Used by the cross-topology golden digests and `--topology` CLI.
    pub fn table1_topology(kind: TopologyKind) -> Self {
        let (width, height) = match kind {
            TopologyKind::Mesh | TopologyKind::Torus => (8, 8),
            TopologyKind::Ring => (16, 1),
            TopologyKind::CMesh { .. } => (4, 4),
        };
        Self {
            topology: kind,
            width,
            height,
            ..Self::table1()
        }
    }

    /// Number of routers in the network (`width × height`).
    #[inline]
    pub fn num_routers(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Nodes (NIs) per router — 1 except on a concentrated mesh.
    #[inline]
    pub fn concentration(&self) -> usize {
        self.topology.concentration()
    }

    /// Number of nodes: `concentration ×` routers. Equals
    /// [`Self::num_routers`] on every topology but the concentrated mesh.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_routers() * self.concentration()
    }

    /// Escape lanes per message class (2 on wrapping topologies — the
    /// dateline VCs — 1 otherwise; see [`crate::topology`]).
    #[inline]
    pub fn escape_lanes(&self) -> usize {
        self.topology.escape_lanes()
    }

    /// Number of escape VCs per port (`num_classes × escape_lanes`).
    #[inline]
    pub fn num_escape_vcs(&self) -> usize {
        self.num_classes * self.escape_lanes()
    }

    /// Total VCs per port: the per-class escape VCs (one per escape
    /// lane) + adaptive VCs.
    #[inline]
    pub fn vcs_per_port(&self) -> usize {
        self.num_escape_vcs() + self.adaptive_vcs
    }

    /// Classify VC index `vc` within a port.
    ///
    /// Layout: indices `0..num_classes × escape_lanes` are the per-class
    /// escape VCs (lane-major within a class, running dimension-order
    /// routing); the remaining indices are adaptive VCs, the first
    /// `regional_vcs` of which carry the *regional* tag and the rest the
    /// *global* tag (the 1-bit field of §IV.A).
    #[inline]
    pub fn vc_class(&self, vc: usize) -> VcClass {
        let esc = self.num_escape_vcs();
        if vc < esc {
            VcClass::Escape {
                class: (vc / self.escape_lanes()) as MsgClass,
            }
        } else {
            let a = vc - esc;
            VcClass::Adaptive {
                tag: if a < self.regional_vcs {
                    VcTag::Regional
                } else {
                    VcTag::Global
                },
            }
        }
    }

    /// Index of the lane-0 escape VC for message class `class` (the only
    /// escape VC of the class on non-wrapping topologies).
    #[inline]
    pub fn escape_vc(&self, class: MsgClass) -> usize {
        self.escape_vc_lane(class, 0)
    }

    /// Index of the escape VC for message class `class`, lane `lane`.
    #[inline]
    pub fn escape_vc_lane(&self, class: MsgClass, lane: u8) -> usize {
        debug_assert!((class as usize) < self.num_classes);
        debug_assert!((lane as usize) < self.escape_lanes());
        class as usize * self.escape_lanes() + lane as usize
    }

    /// Iterator over the adaptive VC indices.
    pub fn adaptive_vc_range(&self) -> std::ops::Range<usize> {
        self.num_escape_vcs()..self.vcs_per_port()
    }

    /// Router index of the router at coordinate `c` (row-major).
    #[inline]
    pub fn router_at(&self, c: Coord) -> usize {
        c.y as usize * self.width as usize + c.x as usize
    }

    /// Coordinate of router `r` (row-major).
    #[inline]
    pub fn router_coord(&self, r: usize) -> Coord {
        Coord {
            x: (r % self.width as usize) as u8,
            y: (r / self.width as usize) as u8,
        }
    }

    /// Router index owning node `id` (`id / concentration`).
    #[inline]
    pub fn router_of(&self, id: NodeId) -> usize {
        id as usize / self.concentration()
    }

    /// The *base node* of the router at coordinate `c`: on a
    /// concentrated mesh the first of its `concentration` nodes,
    /// elsewhere simply the node co-located with the router.
    #[inline]
    pub fn node_at(&self, c: Coord) -> NodeId {
        (self.router_at(c) * self.concentration()) as NodeId
    }

    /// Coordinate of the router hosting node `id`.
    #[inline]
    pub fn coord_of(&self, id: NodeId) -> Coord {
        self.router_coord(self.router_of(id))
    }

    /// The four corner node ids (the memory-controller tiles of §V.E) —
    /// base nodes of the corner routers.
    pub fn corners(&self) -> [NodeId; 4] {
        let (w, h) = (self.width, self.height);
        [
            self.node_at(Coord { x: 0, y: 0 }),
            self.node_at(Coord { x: w - 1, y: 0 }),
            self.node_at(Coord { x: 0, y: h - 1 }),
            self.node_at(Coord { x: w - 1, y: h - 1 }),
        ]
    }

    /// Validate internal consistency; called by `Network::new`.
    pub fn validate(&self) -> Result<(), String> {
        match self.topology {
            TopologyKind::Mesh | TopologyKind::CMesh { .. } => {
                if self.width < 2 || self.height < 2 {
                    return Err("mesh must be at least 2x2".into());
                }
            }
            TopologyKind::Torus => {
                // A 2-wide torus dimension degenerates (wrap and direct
                // links coincide), which breaks the dateline argument.
                if self.width < 3 || self.height < 3 {
                    return Err("torus must be at least 3x3".into());
                }
            }
            TopologyKind::Ring => {
                if self.height != 1 {
                    return Err("ring topology requires height 1".into());
                }
                if self.width < 3 {
                    return Err("ring needs at least 3 routers".into());
                }
            }
        }
        if let TopologyKind::CMesh { concentration } = self.topology {
            if !(2..=8).contains(&concentration) {
                return Err("cmesh concentration must be 2..=8".into());
            }
        }
        if !self.fault.is_empty() && self.topology != TopologyKind::Mesh {
            // The detour escape function's turn-model proof is
            // mesh-specific (see crate::topology docs).
            return Err("fault timelines are only supported on the mesh topology".into());
        }
        if self.num_classes == 0 || self.num_classes > 4 {
            return Err("num_classes must be 1..=4".into());
        }
        if self.adaptive_vcs == 0 {
            return Err("need at least one adaptive VC".into());
        }
        if self.regional_vcs > self.adaptive_vcs {
            return Err("regional_vcs exceeds adaptive_vcs".into());
        }
        if self.vc_depth == 0 {
            return Err("vc_depth must be nonzero".into());
        }
        if self.long_flits as usize > self.vc_depth {
            return Err("long packets must fit in one VC (atomic VCs)".into());
        }
        if self.num_nodes() > NodeId::MAX as usize {
            return Err("too many nodes for NodeId".into());
        }
        if NUM_PORTS * self.vcs_per_port() > 64 {
            return Err(
                "NUM_PORTS * vcs_per_port() must fit in a u64 bitset (<= 64 VC slots per router)"
                    .into(),
            );
        }
        self.oracle.validate()?;
        self.fault.validate(self)?;
        Ok(())
    }

    /// Fold every simulation-relevant parameter into `d`. Used to build
    /// collision-proof cache keys; deliberately excludes `block_bytes`
    /// (documentation only) and `oracle`/`verify` (observability, not
    /// behaviour). The fault timeline is folded in only when non-empty, so
    /// pre-fault digests (golden files, cache keys) are unchanged.
    /// Likewise the topology is folded in only when it is not the
    /// default mesh, so mesh digests predating the topology field hold.
    pub fn digest_into(&self, d: &mut metrics::Digest) {
        if self.topology != TopologyKind::Mesh {
            self.topology.digest_into(d);
        }
        d.write_u64(self.width as u64);
        d.write_u64(self.height as u64);
        d.write_u64(self.num_classes as u64);
        d.write_u64(self.adaptive_vcs as u64);
        d.write_u64(self.regional_vcs as u64);
        d.write_u64(self.vc_depth as u64);
        d.write_u64(self.short_flits as u64);
        d.write_u64(self.long_flits as u64);
        d.write_u64(self.l2_latency);
        d.write_u64(self.mem_latency);
        if !self.fault.is_empty() {
            self.fault.digest_into(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = SimConfig::table1();
        assert_eq!(c.num_nodes(), 64); // 64 cores
        assert_eq!(c.vc_depth, 5); // 5-flit/VC
        assert_eq!(c.l2_latency, 6); // 6-cycle L2
        assert_eq!(c.mem_latency, 128); // 128-cycle memory
        assert_eq!(c.block_bytes, 64); // 64-byte blocks
        assert_eq!(c.short_flits, 1); // 16B single-flit
        assert_eq!(c.long_flits, 5); // 64B + head flit
        assert!(c.validate().is_ok());
    }

    #[test]
    fn vc_layout() {
        let c = SimConfig::table1_req_reply();
        assert_eq!(c.num_classes, 2);
        assert_eq!(c.vcs_per_port(), 6);
        assert_eq!(c.vc_class(0), VcClass::Escape { class: 0 });
        assert_eq!(c.vc_class(1), VcClass::Escape { class: 1 });
        assert_eq!(
            c.vc_class(2),
            VcClass::Adaptive {
                tag: VcTag::Regional
            }
        );
        assert_eq!(
            c.vc_class(3),
            VcClass::Adaptive {
                tag: VcTag::Regional
            }
        );
        assert_eq!(c.vc_class(4), VcClass::Adaptive { tag: VcTag::Global });
        assert_eq!(c.vc_class(5), VcClass::Adaptive { tag: VcTag::Global });
        assert_eq!(c.escape_vc(1), 1);
        assert_eq!(c.adaptive_vc_range(), 2..6);
    }

    #[test]
    fn coord_roundtrip() {
        let c = SimConfig::table1();
        for id in 0..c.num_nodes() as NodeId {
            assert_eq!(c.node_at(c.coord_of(id)), id);
        }
        assert_eq!(c.coord_of(0), Coord { x: 0, y: 0 });
        assert_eq!(c.coord_of(63), Coord { x: 7, y: 7 });
    }

    #[test]
    fn corners_are_corners() {
        let c = SimConfig::table1();
        assert_eq!(c.corners(), [0, 7, 56, 63]);
    }

    #[test]
    fn empty_fault_timeline_keeps_digest_nonempty_changes_it() {
        let digest = |c: &SimConfig| {
            let mut d = metrics::Digest::new();
            c.digest_into(&mut d);
            d.finish()
        };
        let base = SimConfig::table1();
        let mut with_empty = SimConfig::table1();
        with_empty.fault = FaultTimeline::default();
        assert_eq!(digest(&base), digest(&with_empty));
        let mut with_ber = SimConfig::table1();
        with_ber.fault.transient_ber = 1e-3;
        assert_ne!(digest(&base), digest(&with_ber));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = SimConfig::table1();
        c.long_flits = 9;
        assert!(c.validate().is_err());

        let mut c = SimConfig::table1();
        c.regional_vcs = 5;
        assert!(c.validate().is_err());

        let mut c = SimConfig::table1();
        c.adaptive_vcs = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::table1();
        c.width = 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn topology_validation() {
        let mut c = SimConfig::table1();
        c.topology = TopologyKind::Ring;
        assert!(c.validate().is_err(), "ring needs height 1");
        c.height = 1;
        c.width = 16;
        assert!(c.validate().is_ok());
        c.width = 2;
        assert!(c.validate().is_err(), "2-router ring rejected");

        let mut c = SimConfig::table1();
        c.topology = TopologyKind::Torus;
        assert!(c.validate().is_ok());
        c.width = 2;
        assert!(c.validate().is_err(), "2-wide torus rejected");

        let mut c = SimConfig::table1();
        c.topology = TopologyKind::CMesh { concentration: 4 };
        assert!(c.validate().is_ok());
        c.topology = TopologyKind::CMesh { concentration: 1 };
        assert!(c.validate().is_err());

        // Fault timelines stay mesh-only.
        let mut c = SimConfig::table1();
        c.topology = TopologyKind::Torus;
        c.fault.transient_ber = 1e-3;
        assert!(c.validate().is_err());
    }

    #[test]
    fn torus_vc_layout_has_two_escape_lanes() {
        let mut c = SimConfig::table1_req_reply();
        c.topology = TopologyKind::Torus;
        assert_eq!(c.escape_lanes(), 2);
        assert_eq!(c.num_escape_vcs(), 4);
        assert_eq!(c.vcs_per_port(), 8);
        assert_eq!(c.vc_class(0), VcClass::Escape { class: 0 });
        assert_eq!(c.vc_class(1), VcClass::Escape { class: 0 });
        assert_eq!(c.vc_class(2), VcClass::Escape { class: 1 });
        assert_eq!(c.vc_class(3), VcClass::Escape { class: 1 });
        assert_eq!(
            c.vc_class(4),
            VcClass::Adaptive {
                tag: VcTag::Regional
            }
        );
        assert_eq!(c.escape_vc_lane(1, 1), 3);
        assert_eq!(c.escape_vc(1), 2);
        assert_eq!(c.adaptive_vc_range(), 4..8);
    }

    #[test]
    fn cmesh_node_router_split() {
        let mut c = SimConfig::table1();
        c.topology = TopologyKind::CMesh { concentration: 4 };
        c.width = 4;
        c.height = 4;
        assert!(c.validate().is_ok());
        assert_eq!(c.num_routers(), 16);
        assert_eq!(c.num_nodes(), 64);
        assert_eq!(c.router_of(7), 1);
        assert_eq!(c.coord_of(7), Coord { x: 1, y: 0 });
        assert_eq!(c.corners(), [0, 12, 48, 60]);
    }

    #[test]
    fn only_non_mesh_topology_changes_digest() {
        let digest = |c: &SimConfig| {
            let mut d = metrics::Digest::new();
            c.digest_into(&mut d);
            d.finish()
        };
        let base = SimConfig::table1();
        let mut explicit = SimConfig::table1();
        explicit.topology = TopologyKind::Mesh;
        assert_eq!(digest(&base), digest(&explicit));
        let mut torus = SimConfig::table1();
        torus.topology = TopologyKind::Torus;
        assert_ne!(digest(&base), digest(&torus));
        let mut ring = SimConfig::table1();
        ring.topology = TopologyKind::Ring;
        ring.height = 1;
        assert_ne!(digest(&torus), digest(&ring));
    }
}
