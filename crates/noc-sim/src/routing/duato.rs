//! Local-information adaptive routing (Duato escape + free-VC selection).

use super::{free_adaptive_credits, RoutingAlgorithm, SelectCtx};
use crate::config::SimConfig;
use crate::ids::{Coord, Port};

/// The "typical adaptive routing algorithm that uses the information
/// available at the local router (e.g., # of free VCs)" of §V.C. Minimal
/// fully-adaptive over the adaptive VCs; selection picks the productive
/// port with the most free downstream adaptive credits.
#[derive(Debug, Clone, Copy, Default)]
pub struct DuatoLocalAdaptive;

impl RoutingAlgorithm for DuatoLocalAdaptive {
    fn name(&self) -> &'static str {
        "Local"
    }

    fn adaptive_ports(&self, cfg: &SimConfig, cur: Coord, dst: Coord) -> [Option<Port>; 2] {
        crate::topology::productive_ports(cfg, cur, dst)
    }

    fn select(&self, ctx: &SelectCtx<'_>, cands: &[Port]) -> usize {
        debug_assert!(!cands.is_empty());
        let mut best = 0;
        let mut best_free = free_adaptive_credits(ctx.cfg, ctx.router, cands[0]);
        for (i, &p) in cands.iter().enumerate().skip(1) {
            let free = free_adaptive_credits(ctx.cfg, ctx.router, p);
            if free > best_free {
                best = i;
                best_free = free;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::ids::{PORT_EAST, PORT_SOUTH};
    use crate::region::RegionMap;
    use crate::router::Router;

    #[test]
    fn selects_port_with_more_free_credits() {
        let cfg = SimConfig::table1();
        let mut router = Router::new(&cfg, 0, cfg.coord_of(0), 0);
        // Drain credits on EAST adaptive VCs.
        for vc in cfg.adaptive_vc_range() {
            router.credits[PORT_EAST][vc] = 0;
        }
        let region = RegionMap::single(&cfg);
        let congestion = vec![0u16; cfg.num_nodes()];
        let ctx = SelectCtx {
            cfg: &cfg,
            router: &router,
            dst: cfg.coord_of(63),
            region: &region,
            congestion: &congestion,
        };
        let cands = [PORT_EAST, PORT_SOUTH];
        let r = DuatoLocalAdaptive;
        assert_eq!(cands[r.select(&ctx, &cands)], PORT_SOUTH);
    }

    #[test]
    fn allocated_vcs_do_not_count_as_free() {
        let cfg = SimConfig::table1();
        let mut router = Router::new(&cfg, 0, cfg.coord_of(0), 0);
        // EAST has full credits but all VCs are held by other packets.
        for vc in cfg.adaptive_vc_range() {
            router.out_alloc[PORT_EAST][vc] = Some((0, 0));
        }
        let region = RegionMap::single(&cfg);
        let congestion = vec![0u16; cfg.num_nodes()];
        let ctx = SelectCtx {
            cfg: &cfg,
            router: &router,
            dst: cfg.coord_of(63),
            region: &region,
            congestion: &congestion,
        };
        let cands = [PORT_EAST, PORT_SOUTH];
        assert_eq!(cands[DuatoLocalAdaptive.select(&ctx, &cands)], PORT_SOUTH);
    }
}
