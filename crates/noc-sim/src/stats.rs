//! Run-level statistics.

use crate::oracle::OracleViolation;
use crate::verify::VerifyViolation;
use metrics::{Digest, LatencyKind, LatencyRecorder};

/// Statistics gathered during a simulation run.
///
/// The latency recorder is windowed: [`SimStats::reset_window`] clears it at
/// the warmup boundary. The flit counters are cumulative for the whole run
/// and back the flit-conservation invariant checks.
#[derive(Debug, Clone)]
pub struct SimStats {
    /// Per-application latency accumulators (measurement window).
    pub recorder: LatencyRecorder,
    /// Packets generated per application (cumulative).
    pub generated: Vec<u64>,
    /// Packets injected into the network per application (cumulative).
    pub injected_packets: Vec<u64>,
    /// Flits injected into the network (cumulative).
    pub injected_flits: u64,
    /// Flits ejected from the network (cumulative).
    pub ejected_flits: u64,
    /// Cycle the measurement window started.
    pub measure_start: u64,
    /// Last cycle any flit moved through a crossbar or was ejected —
    /// the deadlock-watchdog signal.
    pub last_progress: u64,
    /// Router×phase visits elided by the active-set fast path (cumulative;
    /// up to 3 per router per cycle — SA, VA and RC each skip routers with
    /// no occupied input VC). Zero when running force-exhaustive.
    pub router_cycles_skipped: u64,
    /// Per-router end-of-cycle state updates elided because the router's
    /// occupancy was unchanged (cumulative).
    pub state_updates_skipped: u64,
    /// Whole cycles elided by the idle fast-forward (cumulative; the clock
    /// jumped over them without ticking). Zero when fast-forward is off or
    /// never engages.
    pub idle_cycles_skipped: u64,
    /// Invariant violations recorded by the oracle, capped at
    /// `SimConfig::oracle.max_recorded` ([`Self::oracle_violation_count`]
    /// keeps the uncapped total). Empty when the oracle is disabled.
    pub oracle_violations: Vec<OracleViolation>,
    /// Total invariant violations detected (uncapped).
    pub oracle_violation_count: u64,
    /// Link-level retransmissions performed (extra send attempts after a
    /// CRC-detected transient corruption; cumulative). Digest-excluded:
    /// with a given fault timeline the retransmission schedule is part of
    /// the deterministic outcome already reflected in latencies.
    pub flits_retransmitted: u64,
    /// Packets extracted as stranded and re-injected at their source NI
    /// after backoff (cumulative).
    pub packets_retried: u64,
    /// Packets dropped for good: undeliverable after the retry budget, or
    /// generated toward an unreachable destination (cumulative).
    pub packets_dropped: u64,
    /// Routing reconfigurations performed (one per applied permanent-fault
    /// batch, each including a CDG re-verification).
    pub reconfigurations: u64,
    /// Violations found by the static configuration verifier at
    /// construction time, capped at
    /// [`crate::verify::MAX_RECORDED_VIOLATIONS`]. Empty when the verifier
    /// is disabled or the configuration proved clean. Deliberately
    /// excluded from [`Self::digest`]: the verifier observes the
    /// configuration, it does not alter simulation outcome.
    pub verify_violations: Vec<VerifyViolation>,
    /// Total static-verifier violations (uncapped).
    pub verify_violation_count: u64,
}

impl SimStats {
    pub fn new(num_apps: usize) -> Self {
        Self {
            recorder: LatencyRecorder::new(num_apps),
            generated: vec![0; num_apps],
            injected_packets: vec![0; num_apps],
            injected_flits: 0,
            ejected_flits: 0,
            measure_start: 0,
            last_progress: 0,
            router_cycles_skipped: 0,
            state_updates_skipped: 0,
            idle_cycles_skipped: 0,
            flits_retransmitted: 0,
            packets_retried: 0,
            packets_dropped: 0,
            reconfigurations: 0,
            oracle_violations: Vec::new(),
            oracle_violation_count: 0,
            verify_violations: Vec::new(),
            verify_violation_count: 0,
        }
    }

    /// Begin the measurement window at `cycle` (end of warmup).
    pub fn reset_window(&mut self, cycle: u64) {
        self.recorder.reset();
        self.measure_start = cycle;
    }

    /// Average packet latency of one application over the window.
    pub fn apl(&self, app: usize, kind: LatencyKind) -> Option<f64> {
        self.recorder.app(app).mean(kind)
    }

    /// Delivered-flit throughput in flits/cycle/node over the window.
    pub fn throughput(&self, now: u64, num_nodes: usize) -> f64 {
        let cycles = now.saturating_sub(self.measure_start).max(1);
        self.recorder.flits_delivered() as f64 / cycles as f64 / num_nodes as f64
    }

    /// Order-sensitive fingerprint of every simulation-visible statistic:
    /// counters, window boundaries, oracle verdict and the full latency
    /// recorder state. Identical runs (same config + seed) produce identical
    /// digests in debug and release builds and with the fast path on or off
    /// — the diagnostic skip counters are deliberately excluded, since they
    /// measure elided work, not simulation outcome.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_u64(self.generated.len() as u64);
        for &g in &self.generated {
            d.write_u64(g);
        }
        for &p in &self.injected_packets {
            d.write_u64(p);
        }
        d.write_u64(self.injected_flits);
        d.write_u64(self.ejected_flits);
        d.write_u64(self.measure_start);
        d.write_u64(self.last_progress);
        d.write_u64(self.oracle_violation_count);
        self.recorder.digest_into(&mut d);
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_reset_keeps_cumulative_counters() {
        let mut s = SimStats::new(2);
        s.generated[0] = 10;
        s.injected_flits = 50;
        s.router_cycles_skipped = 7;
        s.state_updates_skipped = 3;
        s.idle_cycles_skipped = 11;
        s.flits_retransmitted = 4;
        s.packets_retried = 2;
        s.packets_dropped = 1;
        s.reconfigurations = 1;
        s.recorder.record(0, 10, 12, 3, 1);
        s.reset_window(1000);
        assert_eq!(s.generated[0], 10);
        assert_eq!(s.injected_flits, 50);
        assert_eq!(s.router_cycles_skipped, 7);
        assert_eq!(s.state_updates_skipped, 3);
        assert_eq!(s.idle_cycles_skipped, 11);
        assert_eq!(s.flits_retransmitted, 4);
        assert_eq!(s.packets_retried, 2);
        assert_eq!(s.packets_dropped, 1);
        assert_eq!(s.reconfigurations, 1);
        assert_eq!(s.recorder.delivered(), 0);
        assert_eq!(s.measure_start, 1000);
    }

    #[test]
    fn throughput_accounts_window() {
        let mut s = SimStats::new(1);
        s.reset_window(100);
        for _ in 0..64 {
            s.recorder.record(0, 10, 10, 1, 5);
        }
        // 320 flits over 100 cycles on 64 nodes = 0.05 flits/cycle/node.
        let t = s.throughput(200, 64);
        assert!((t - 0.05).abs() < 1e-12);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let make = || {
            let mut s = SimStats::new(2);
            s.generated[0] = 10;
            s.injected_flits = 50;
            s.ejected_flits = 40;
            s.recorder.record(0, 10, 12, 3, 1);
            s.recorder.record(1, 7, 9, 2, 5);
            s
        };
        assert_eq!(make().digest(), make().digest());
        let mut other = make();
        other.ejected_flits += 1;
        assert_ne!(make().digest(), other.digest());
        let mut other = make();
        other.recorder.record(1, 7, 9, 2, 5);
        assert_ne!(make().digest(), other.digest());
        // The fast-path skip counters measure elided work, not outcome.
        let mut other = make();
        other.router_cycles_skipped = 123;
        other.state_updates_skipped = 45;
        other.idle_cycles_skipped = 678;
        assert_eq!(make().digest(), other.digest());
        // Resilience counters are digest-excluded too: the digest contract
        // covers traffic-visible outcome, and fault runs already diverge
        // through the counters and recorder above.
        let mut other = make();
        other.flits_retransmitted = 9;
        other.packets_retried = 2;
        other.packets_dropped = 1;
        other.reconfigurations = 3;
        assert_eq!(make().digest(), other.digest());
    }
}
