//! Differential validation of the static admission pipeline against the
//! cycle kernel: the simulator runs with the per-cycle **starvation
//! observer** attached ([`noc_sim::oracle::StarvationWatch`]), checking
//! the wait bound the pipeline derived statically.
//!
//! * An **admitted** configuration (full RAIR under a column flood of
//!   cross-region pressure) must never drive a native head flit past the
//!   statically proven bound — the dynamic confirmation of the progress
//!   proof. The observer actually enforces [`INTERFERENCE_THRESHOLD`], an
//!   order of magnitude *tighter* than the proof's worst-case bound, so
//!   passing certifies the bound with a wide margin.
//! * The **rejected** `RAIR_ForeignH` priority inversion carries no
//!   finite bound at all ([`Admission::wait_bound`] is `None` — the lasso
//!   witness is an infinite foreign-over-native schedule). Under the same
//!   offered traffic the observer catches its native head flits starving
//!   past the same threshold the admitted scheme never approaches — the
//!   defect the pipeline refutes statically is real, not an artifact of
//!   the abstraction.
//!
//! [`Admission::wait_bound`]: noc_sim::admit::Admission::wait_bound

use experiments::admit::admit_cell;
use noc_sim::config::SimConfig;
use noc_sim::ids::{AppId, NodeId};
use noc_sim::network::Network;
use noc_sim::oracle::{OracleConfig, StarvationWatch};
use noc_sim::region::RegionMap;
use noc_sim::source::{NewPacket, TrafficSource};
use rair::scheme::{Routing, Scheme};
use rand::rngs::SmallRng;
use rand::Rng;
use traffic::scenario::AppSpec;

/// Per-node generation probabilities. Every app-0 node fires a long packet
/// toward app 1's far column nearly every cycle — far past the boundary
/// links' capacity, and with no downstream bottleneck (the column sinks
/// drain at full rate), so foreign wormholes keep every horizontal link
/// inside app 1's half saturated for the whole run. App 1 trickles intra
/// traffic across those links; under strict foreign-over-native priority
/// its head flits repeatedly lose against the standing foreign backlog.
const FOREIGN_RATE: f64 = 0.9;
const NATIVE_RATE: f64 = 0.04;
const CYCLES: u64 = 12_000;

/// Native head-of-line wait (cycles) separating the two schemes under the
/// column flood: the admitted scheme's worst observed streak stays under
/// half of this; the statically rejected inversion exceeds it dozens of
/// times per run (worst observed streaks are 3x past it). Far below the
/// statically proven worst-case bound, so the admitted run certifies that
/// bound with an order-of-magnitude margin.
const INTERFERENCE_THRESHOLD: u64 = 100;

/// Two-app column flood: app 0 (left half) floods the easternmost column
/// of app 1's half; app 1 sends uniform-random intra traffic.
struct ColumnFlood {
    app_of: Vec<AppId>,
    sinks: Vec<NodeId>,
    natives: Vec<NodeId>,
}

impl ColumnFlood {
    fn new(cfg: &SimConfig, region: &RegionMap) -> Self {
        let app_of: Vec<AppId> = (0..cfg.num_nodes())
            .map(|n| region.app_of(n as NodeId))
            .collect();
        let natives: Vec<NodeId> = (0..cfg.num_nodes() as NodeId)
            .filter(|n| app_of[*n as usize] == 1)
            .collect();
        let sinks: Vec<NodeId> = natives
            .iter()
            .copied()
            .filter(|n| cfg.coord_of(*n).x == cfg.width - 1)
            .collect();
        assert!(!sinks.is_empty(), "far column must be native to app 1");
        Self {
            app_of,
            sinks,
            natives,
        }
    }
}

impl TrafficSource for ColumnFlood {
    fn num_apps(&self) -> usize {
        2
    }

    fn generate(&mut self, node: NodeId, _cycle: u64, rng: &mut SmallRng) -> Option<NewPacket> {
        if self.app_of[node as usize] == 0 {
            let dst = self.sinks[rng.random_range(0..self.sinks.len())];
            rng.random_bool(FOREIGN_RATE).then_some(NewPacket {
                dst,
                app: 0,
                class: 0,
                size: 5,
                reply: None,
            })
        } else {
            if !rng.random_bool(NATIVE_RATE) {
                return None;
            }
            let dst = loop {
                let d = self.natives[rng.random_range(0..self.natives.len())];
                if d != node {
                    break d;
                }
            };
            Some(NewPacket {
                dst,
                app: 1,
                class: 0,
                size: 1,
                reply: None,
            })
        }
    }
}

/// Build the pressure-cooker network for `scheme` with the observer
/// attached at `bound`, run it, and return the count of starvation
/// violations.
fn starvation_violations(scheme: &Scheme, bound: u64) -> u64 {
    let mut cfg = SimConfig::table1();
    cfg.oracle = OracleConfig::forced();
    let region = RegionMap::halves(&cfg);
    let source = ColumnFlood::new(&cfg, &region);
    let mut net = Network::new(
        cfg.clone(),
        region,
        Routing::Local.build(),
        scheme.build(),
        Box::new(source),
        99,
    );
    assert!(
        net.attach_checker(Box::new(StarvationWatch::with_bound(&cfg, bound))),
        "oracle must be enabled for the observer"
    );
    net.run(CYCLES);
    net.stats
        .oracle_violations
        .iter()
        .filter(|v| v.checker == "starvation-observer")
        .count() as u64
}

/// The statically proven native wait bound of the admitted scheme.
fn static_bound() -> u64 {
    let cfg = SimConfig::table1();
    let rep = noc_sim::admit::check_progress(&cfg, &Scheme::rair().automaton());
    rep.wait_bound
        .expect("admitted scheme carries a wait bound")
}

#[test]
fn admitted_scheme_respects_the_static_wait_bound() {
    let bound = static_bound();
    assert!(
        INTERFERENCE_THRESHOLD <= bound,
        "threshold {INTERFERENCE_THRESHOLD} must be at least as strict as the \
         static bound {bound} it certifies"
    );
    // Zero excursions past the tighter threshold implies zero past the
    // statically proven bound.
    assert_eq!(
        starvation_violations(&Scheme::rair(), INTERFERENCE_THRESHOLD),
        0,
        "native head flit exceeded {INTERFERENCE_THRESHOLD} cycles (static \
         bound {bound}) under an admitted scheme"
    );
}

#[test]
fn priority_inversion_is_rejected_statically_and_caught_dynamically() {
    let cfg = SimConfig::table1();
    let region = RegionMap::halves(&cfg);
    let specs = vec![
        Some(AppSpec::intra_only(NATIVE_RATE)),
        Some(AppSpec::intra_only(NATIVE_RATE)),
    ];
    // Statically: the pipeline refutes progress with a concrete lasso and
    // can offer no finite native wait bound.
    let adm = admit_cell(
        &cfg,
        &region,
        &Scheme::rair_foreign_high(),
        Routing::Local,
        &specs,
    );
    assert!(!adm.is_admitted(), "inversion must be rejected statically");
    let rej = adm.rejection().expect("a rejecting property");
    assert_eq!(rej.property, noc_sim::admit::PROP_PROGRESS);
    assert!(rej.witness.is_some(), "rejection carries a witness trace");
    assert_eq!(
        adm.wait_bound(),
        None,
        "no finite bound exists for the inversion"
    );

    // Dynamically: under identical traffic the observer catches native
    // head flits starving past the threshold the admitted scheme never
    // approaches.
    let caught = starvation_violations(&Scheme::rair_foreign_high(), INTERFERENCE_THRESHOLD);
    assert!(
        caught > 0,
        "observer missed the priority inversion (threshold \
         {INTERFERENCE_THRESHOLD}, {CYCLES} cycles)"
    );
}
